//! Factor integers with Shor's algorithm on the approximate simulator —
//! the paper's fidelity-driven showcase: a final-state fidelity around
//! 50 % still factors correctly, orders of magnitude faster than exact
//! simulation.
//!
//! ```text
//! cargo run --release --example shor_factoring [N] [a]
//! ```

use std::time::Instant;

use approxdd::shor::{factor, FactorOptions};
use approxdd::sim::Strategy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(33);
    let a: Option<u64> = args.get(1).and_then(|s| s.parse().ok());

    println!(
        "factoring N = {n} (base: {})",
        a.map_or("auto".into(), |a| a.to_string())
    );

    for (label, strategy) in [
        ("exact            ", Strategy::Exact),
        ("approx f_final=.5", Strategy::fidelity_driven(0.5, 0.9)),
    ] {
        let opts = FactorOptions {
            strategy,
            base: a,
            ..FactorOptions::default()
        };
        let t = Instant::now();
        match factor(n, &opts) {
            Ok(out) => {
                let elapsed = t.elapsed();
                let (p, q) = out.factors;
                print!("{label}: {n} = {p} x {q} (base {}", out.base);
                if let Some(r) = out.order {
                    print!(", order {r}");
                }
                print!(") in {elapsed:?}");
                if let Some(stats) = &out.sim_stats {
                    print!(
                        "  [max DD {} nodes, {} rounds, f_final {:.3}]",
                        stats.max_dd_size, stats.approx_rounds, stats.fidelity
                    );
                }
                println!();
            }
            Err(e) => println!("{label}: failed: {e}"),
        }
    }
    Ok(())
}

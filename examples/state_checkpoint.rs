//! Checkpoint/restore: serialize a mid-simulation decision-diagram
//! state to disk, restore it into a fresh package, and continue the
//! simulation — the workflow for long approximate runs.
//!
//! ```text
//! cargo run --release --example state_checkpoint
//! ```

use approxdd::circuit::{generators, Circuit};
use approxdd::sim::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 12;
    let full = generators::supremacy(3, 4, 10, 5);
    let ops = full.ops().to_vec();
    let half = ops.len() / 2;

    // First half of the circuit, approximated.
    let mut first = Circuit::new(n, "first_half");
    for op in &ops[..half] {
        first.push(op.clone());
    }
    let mut sim_a = Simulator::builder().fidelity_driven(0.7, 0.95).build();
    let run_a = sim_a.run(&first)?;
    println!(
        "first half : {} gates, DD {} nodes, f so far {:.4}",
        run_a.stats.gates_applied,
        sim_a.package().vsize(run_a.state()),
        run_a.stats.fidelity
    );

    // Checkpoint to disk.
    let text = sim_a.package().serialize_state(run_a.state());
    let path = std::env::temp_dir().join("approxdd_checkpoint.vdd");
    std::fs::write(&path, &text)?;
    println!(
        "checkpoint : {} ({} bytes, {} lines)",
        path.display(),
        text.len(),
        text.lines().count()
    );

    // Restore into a brand-new simulator and finish the circuit
    // exactly. (Continuing *with approximation* after a restore is also
    // fine, but near-tied greedy node selections may resolve differently
    // in the new package, so bit-identical cross-checks need the exact
    // tail used here.)
    let restored_text = std::fs::read_to_string(&path)?;
    let mut sim_b = Simulator::builder().exact().build();
    let state = sim_b.package_mut().deserialize_state(&restored_text)?;
    let mut second = Circuit::new(n, "second_half");
    for op in &ops[half..] {
        second.push(op.clone());
    }
    let run_b = sim_b.run_from(&second, state)?;
    println!(
        "second half: {} gates, final DD {} nodes",
        run_b.stats.gates_applied,
        sim_b.package().vsize(run_b.state())
    );

    // Cross-check against an uninterrupted run of the same pipeline
    // (approximate first half, exact second half).
    let mut sim_c = Simulator::builder().fidelity_driven(0.7, 0.95).build();
    let run_first = sim_c.run(&first)?;
    let mut sim_c_tail = Simulator::builder().exact().build();
    let tail_state = sim_c_tail
        .package_mut()
        .deserialize_state(&sim_c.package().serialize_state(run_first.state()))?;
    let run_ref = sim_c_tail.run_from(&second, tail_state)?;
    // Compare amplitude by amplitude through dense export.
    let a = sim_b.amplitudes(&run_b)?;
    let b = sim_c_tail.amplitudes(&run_ref)?;
    let max_err = a
        .iter()
        .zip(&b)
        .map(|(x, y)| (*x - *y).mag())
        .fold(0.0f64, f64::max);
    println!("max deviation vs uninterrupted run: {max_err:.3e}");
    assert!(max_err < 1e-9);
    println!("checkpoint/restore is exact.");
    std::fs::remove_file(&path).ok();
    Ok(())
}

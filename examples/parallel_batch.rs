//! Parallel batched execution with the `BackendPool`: the Table-I
//! sweep shape (one circuit family × several approximation configs)
//! submitted as one batch of jobs across worker threads, plus sharded
//! shot-sampling — with the pool's determinism contract demonstrated
//! by re-running the same batch on a different worker count.
//!
//! ```text
//! cargo run --release --example parallel_batch [workers]
//! ```

use approxdd::circuit::generators;
use approxdd::exec::{BuildPool, PoolJob};
use approxdd::sim::{Simulator, Strategy};

/// Exact reference plus a two-point `f_round` sweep per instance.
fn sweep_jobs() -> Vec<PoolJob> {
    let mut jobs = Vec::new();
    for seed in 0..3 {
        let circuit = generators::supremacy(3, 3, 10, seed);
        jobs.push(PoolJob::new(circuit.clone())); // exact (template strategy)
        for f_round in [0.99, 0.95] {
            jobs.push(
                PoolJob::new(circuit.clone())
                    .strategy(Strategy::memory_driven_table1(1 << 8, f_round)),
            );
        }
    }
    jobs
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let pool = Simulator::builder().seed(7).workers(workers).build_pool();
    println!(
        "pool: {} workers, root seed {}",
        pool.workers(),
        pool.root_seed()
    );

    // One batch: exact references and the sweep, all in flight at once.
    println!(
        "\n{:<16} {:>8} {:>8} {:>8} {:>8}",
        "circuit", "maxDD", "rounds", "ffinal", "worker"
    );
    let mut outcomes = Vec::new();
    for result in pool.run_jobs(sweep_jobs()) {
        let o = result?;
        println!(
            "{:<16} {:>8} {:>8} {:>8.4} {:>8}",
            o.name, o.stats.peak_size, o.stats.approx_rounds, o.stats.fidelity, o.worker
        );
        outcomes.push(o);
    }

    // Sharded sampling: a large shot budget split into fixed chunks
    // across the workers, merged into one histogram.
    let ghz = generators::ghz(12);
    let counts = pool.sample_counts(&ghz, 100_000)?;
    println!(
        "\nghz(12), 100k shots over {} workers: |0…0> {} |1…1> {}",
        pool.workers(),
        counts.get(&0).copied().unwrap_or(0),
        counts.get(&0xFFF).copied().unwrap_or(0),
    );

    // Determinism: the same root seed on one worker gives byte-identical
    // outcomes and histograms — worker count only changes wall time.
    let single = Simulator::builder().seed(7).workers(1).build_pool();
    let same_outcomes = single
        .run_jobs(sweep_jobs())
        .iter()
        .zip(&outcomes)
        .all(|(a, b)| a.as_ref().is_ok_and(|a| a.fingerprint() == b.fingerprint()));
    let same_counts = single.sample_counts(&ghz, 100_000)? == counts;
    println!(
        "\ndeterminism: {workers}-worker vs 1-worker — outcomes identical: \
         {same_outcomes}, histograms identical: {same_counts}"
    );

    let stats = pool.stats();
    println!(
        "\npool stats: {} tasks, max queue depth {}, total busy {:?} over {:?} uptime",
        stats.tasks_submitted,
        stats.max_queue_depth,
        stats.total_busy(),
        stats.uptime
    );
    for w in &stats.per_worker {
        println!(
            "  worker {}: {} jobs, {} chunks, {} shots, busy {:?}, {} alive nodes, {} cached gates",
            w.worker, w.jobs, w.sample_chunks, w.shots_drawn, w.busy, w.alive_nodes, w.cached_gates
        );
    }
    Ok(())
}

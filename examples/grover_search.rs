//! Grover search under approximation: how much final-state fidelity
//! does amplitude amplification tolerate before the marked item stops
//! winning? A small study in the spirit of the paper's error-tolerance
//! argument (Section III) — and of its caveat that suitability depends
//! on the algorithm: mid-amplification the *marked* amplitude is the
//! small one, so aggressive early truncation can remove exactly the
//! signal the algorithm is amplifying.
//!
//! ```text
//! cargo run --release --example grover_search [n_qubits]
//! ```

use approxdd::backend::{Backend, BuildBackend};
use approxdd::circuit::generators;
use approxdd::sim::{Simulator, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let marked: u64 = 0b1011 & ((1 << n) - 1) | (1 << (n - 1));
    let circuit = generators::grover(n, marked, None);
    println!(
        "grover on {n} qubits, marked |{marked:0n$b}>, {} gates",
        circuit.gate_count()
    );

    for (label, strategy) in [
        ("exact        ", Strategy::Exact),
        ("f_final = 0.9", Strategy::fidelity_driven(0.9, 0.99)),
        ("f_final = 0.5", Strategy::fidelity_driven(0.5, 0.9)),
        ("f_final = 0.2", Strategy::fidelity_driven(0.2, 0.8)),
    ] {
        let mut backend = Simulator::builder()
            .strategy(strategy)
            .seed(7)
            .build_backend();
        let exe = backend.prepare(&circuit)?;
        let run = backend.run(&exe)?;
        let shots = 500;
        let counts = backend.sample_counts(&run, shots);
        let hits = counts.get(&marked).copied().unwrap_or(0);
        println!(
            "{label}: marked sampled {hits:>3}/{shots}  (measured f_final {:.3}, {} rounds, max DD {})",
            run.stats.fidelity, run.stats.approx_rounds, run.stats.peak_size
        );
        backend.release(run);
    }
    println!("\nMild approximation (f_final ≈ 0.9) leaves the search intact; aggressive");
    println!("early truncation can zero out the still-small marked amplitude and break");
    println!("the algorithm — the per-algorithm suitability caveat of the paper (Sec. IV).");
    println!("Contrast with Shor (see shor_factoring), which tolerates ~50% fidelity.");
    Ok(())
}

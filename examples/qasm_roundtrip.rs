//! Interchange example: export a benchmark circuit to OpenQASM 2,
//! re-import it, and verify both versions simulate to the same state.
//!
//! ```text
//! cargo run --release --example qasm_roundtrip
//! ```

use approxdd::circuit::{generators, qasm};
use approxdd::sim::{SimOptions, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = generators::qft(6);
    let text = qasm::to_qasm(&circuit)?;
    println!("--- exported OpenQASM ({} lines) ---", text.lines().count());
    for line in text.lines().take(12) {
        println!("{line}");
    }
    println!("...\n");

    let reimported = qasm::from_qasm(&text)?;
    println!(
        "reimported: {} gates on {} qubits",
        reimported.gate_count(),
        reimported.n_qubits()
    );

    let mut sim = Simulator::new(SimOptions::default());
    let run_a = sim.run(&circuit)?;
    let run_b = sim.run(&reimported)?;
    let fidelity = sim.fidelity_between(&run_a, &run_b);
    println!("fidelity(original, reimported) = {fidelity:.12}");
    assert!((fidelity - 1.0).abs() < 1e-9);
    println!("round-trip is exact.");
    Ok(())
}

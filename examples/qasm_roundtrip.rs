//! Interchange example: export a benchmark circuit to OpenQASM 2,
//! re-import it, and verify both versions simulate to the same state.
//!
//! ```text
//! cargo run --release --example qasm_roundtrip
//! ```

use approxdd::backend::{Backend, BuildBackend};
use approxdd::circuit::{generators, qasm};
use approxdd::sim::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = generators::qft(6);
    let text = qasm::to_qasm(&circuit)?;
    println!("--- exported OpenQASM ({} lines) ---", text.lines().count());
    for line in text.lines().take(12) {
        println!("{line}");
    }
    println!("...\n");

    let reimported = qasm::from_qasm(&text)?;
    println!(
        "reimported: {} gates on {} qubits",
        reimported.gate_count(),
        reimported.n_qubits()
    );

    let mut backend = Simulator::builder().exact().build_backend();
    let batch = backend.run_batch(&[backend.prepare(&circuit)?, backend.prepare(&reimported)?])?;
    let fidelity = backend.fidelity_between(&batch[0], &batch[1]);
    println!("fidelity(original, reimported) = {fidelity:.12}");
    assert!((fidelity - 1.0).abs() < 1e-9);
    println!("round-trip is exact.");
    Ok(())
}

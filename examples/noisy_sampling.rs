//! Stochastic noisy simulation end-to-end: build a NISQ-style noise
//! model, fan Monte-Carlo trajectories across the pool, and validate
//! the trajectory statistics against the exact density-matrix baseline
//! — with the determinism contract demonstrated by re-running the same
//! experiment on a different worker count.
//!
//! ```text
//! cargo run --release --example noisy_sampling [workers]
//! ```

use std::sync::Arc;

use approxdd::circuit::generators;
use approxdd::exec::SharedDiagonal;
use approxdd::noise::{exact, BuildNoisePool, NoiseChannel, NoiseModel, TrajectoryConfig};
use approxdd::sim::{Simulator, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    // A NISQ-style model: uniform depolarizing noise after every
    // operation, two-qubit depolarizing on entangling ops, and extra
    // amplitude damping on qubit 0.
    let model = NoiseModel::new()
        .with_global(NoiseChannel::depolarizing(0.01)?)
        .with_global(NoiseChannel::depolarizing2(0.02)?)
        .with_qubit(0, NoiseChannel::amplitude_damping(0.03)?);

    let circuit = generators::ghz(6);
    let pool = Simulator::builder()
        .noise(model.clone())
        .seed(7)
        .workers(workers)
        .build_noise_pool();
    println!(
        "pool: {} workers, root seed {}, {} channels attached",
        pool.workers(),
        pool.root_seed(),
        pool.model().channel_count()
    );

    // 1. Trajectories with measurement shots and a diagonal observable
    //    (the number of excited qubits).
    let excited: SharedDiagonal = Arc::new(|i: u64| f64::from(i.count_ones()));
    let cfg = TrajectoryConfig::new(200)
        .shots(100)
        .observable(Arc::clone(&excited));
    let outcome = pool.run_trajectories(&circuit, &cfg)?;
    println!(
        "\n{} trajectories ({} noise ops inserted), {} shots total",
        outcome.trajectories,
        outcome.noise_ops_total,
        outcome.counts.values().sum::<usize>()
    );
    println!(
        "measured fidelity  : {:.4} ± {:.4}",
        outcome.fidelity_mean, outcome.fidelity_std
    );

    // 2. Validate the trajectory mean against the exact density/Kraus
    //    baseline (n = 6 is comfortably inside the dense window).
    let mean = outcome.observable_mean.expect("observable requested");
    let stderr = outcome.observable_standard_error().expect("σ/√T");
    let exact_value = exact::exact_expectation(&circuit, &model, &|i| f64::from(i.count_ones()))?;
    println!(
        "⟨excited qubits⟩   : trajectories {mean:.4} ± {stderr:.4}  |  exact density {exact_value:.4}"
    );
    assert!(
        (mean - exact_value).abs() <= 4.0 * stderr + 1e-9,
        "trajectory mean must match the exact baseline"
    );

    // The noisy histogram leaks outside the two ideal GHZ branches.
    let ghz_mass: usize = outcome
        .counts
        .iter()
        .filter(|(k, _)| **k == 0 || **k == 0x3F)
        .map(|(_, v)| *v)
        .sum();
    let total: usize = outcome.counts.values().sum();
    #[allow(clippy::cast_precision_loss)]
    let leak = 1.0 - ghz_mass as f64 / total as f64;
    println!(
        "histogram leakage  : {:.2}% outside the GHZ branches",
        leak * 100.0
    );

    // 3. Determinism: the same experiment on a different worker count
    //    is byte-identical.
    let replica = Simulator::builder()
        .noise(model.clone())
        .seed(7)
        .workers(workers.saturating_sub(2).max(1))
        .build_noise_pool();
    let again = replica.run_trajectories(&circuit, &cfg)?;
    assert_eq!(outcome.fingerprint(), again.fingerprint());
    println!(
        "fingerprint        : {:016x} (identical on {} and {} workers)",
        outcome.fingerprint(),
        pool.workers(),
        replica.workers()
    );

    // 4. Noise composes with the paper's approximation policies: run
    //    the same trajectories under a memory-driven truncation budget.
    let approx_cfg = TrajectoryConfig::new(32)
        .shots(100)
        .strategy(Strategy::memory_driven_table1(1 << 4, 0.97));
    let noisy_approx = pool.run_trajectories(&generators::supremacy(2, 3, 10, 1), &approx_cfg)?;
    println!(
        "noisy + approx     : fidelity {:.4} ± {:.4} over {} trajectories ({} distinct outcomes)",
        noisy_approx.fidelity_mean,
        noisy_approx.fidelity_std,
        noisy_approx.trajectories,
        noisy_approx.counts.len()
    );

    Ok(())
}

//! Quickstart: run the same circuit through **both** engines via the
//! unified `Backend` API, compare them, then showcase what makes
//! decision diagrams special (exponential compression, DOT export).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use approxdd::backend::{Backend, BuildBackend, ExecError, StatevectorBackend};
use approxdd::circuit::{generators, Circuit};
use approxdd::sim::Simulator;

/// One generic driver serves every engine: prepare, run, report the
/// unified stats, sample a histogram, release.
fn showcase<B: Backend>(backend: &mut B, circuit: &Circuit) -> Result<(), ExecError> {
    let exe = backend.prepare(circuit)?;
    let run = backend.run(&exe)?;
    println!(
        "[{:<11}] peak representation {:>6} | {} gates in {:?}",
        backend.name(),
        run.stats.peak_size,
        run.stats.gates_applied,
        run.stats.runtime
    );
    let mut entries: Vec<(u64, usize)> = backend.sample_counts(&run, 1000).into_iter().collect();
    entries.sort_unstable();
    let n = run.n_qubits();
    for (outcome, count) in entries {
        println!("  |{outcome:0n$b}> : {count}");
    }
    backend.release(run);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16;
    let circuit = generators::ghz(n);
    println!(
        "circuit: {} ({} gates on {n} qubits), 1000 shots on each backend\n",
        circuit.name(),
        circuit.gate_count()
    );

    // The two engines behind the same trait: approximate decision
    // diagrams and the dense exact baseline.
    let mut dd = Simulator::builder().seed(2024).build_backend();
    let mut sv = StatevectorBackend::with_seed(2024);
    showcase(&mut dd, &circuit)?;
    showcase(&mut sv, &circuit)?;

    // The GHZ state is the showcase of DD compression: one node per
    // qubit regardless of the 2^24 amplitudes it represents. The raw
    // simulator stays available underneath the backend.
    let wide = generators::ghz(24);
    let sim = dd.sim_mut();
    let run = sim.run(&wide)?;
    println!(
        "\n24-qubit GHZ on DDs: {} nodes (a dense vector would need {} amplitudes)",
        sim.package().vsize(run.state()),
        1u64 << 24
    );

    // Render a small instance as Graphviz DOT (Fig. 1 style).
    let small = generators::ghz(3);
    let run_small = sim.run(&small)?;
    println!(
        "\nDOT of the 3-qubit GHZ decision diagram:\n{}",
        sim.package().to_dot(run_small.state())
    );
    Ok(())
}

//! Quickstart: build a GHZ state, simulate it on decision diagrams,
//! inspect the representation, and sample measurements.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use approxdd::circuit::generators;
use approxdd::sim::{SimOptions, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 24;
    let circuit = generators::ghz(n);
    println!("circuit: {} ({} gates on {n} qubits)", circuit.name(), circuit.gate_count());

    let mut sim = Simulator::new(SimOptions::default());
    let run = sim.run(&circuit)?;

    // The GHZ state is the showcase of DD compression: one node per
    // qubit regardless of the 2^24 amplitudes it represents.
    println!(
        "final DD size: {} nodes (dense vector would need {} amplitudes)",
        sim.package().vsize(run.state()),
        1u64 << n
    );
    println!("max DD size during simulation: {}", run.stats.max_dd_size);
    println!("runtime: {:?}", run.stats.runtime);

    let mut rng = StdRng::seed_from_u64(2024);
    let counts = sim.sample_counts(&run, 1000, &mut rng);
    let mut entries: Vec<(u64, usize)> = counts.into_iter().collect();
    entries.sort();
    println!("\nmeasurement histogram (1000 shots):");
    for (outcome, count) in entries {
        println!("  |{outcome:0n$b}> : {count}");
    }

    // Render a small instance as Graphviz DOT (Fig. 1 style).
    let small = generators::ghz(3);
    let mut sim_small = Simulator::new(SimOptions::default());
    let run_small = sim_small.run(&small)?;
    println!("\nDOT of the 3-qubit GHZ decision diagram:\n{}", sim_small.package().to_dot(run_small.state()));
    Ok(())
}

//! `serve_client` — the smoke client CI drives against a live `serve`
//! process.
//!
//! ```text
//! serve_client ADDR [SEED]
//! ```
//!
//! Talks plain HTTP over [`std::net::TcpStream`] (no client library —
//! the same offline constraint as the server). It submits a GHZ job,
//! reads the NDJSON stream to completion, and asserts the serving
//! determinism contract end to end:
//!
//! 1. the final `result` event's fingerprint and histogram are
//!    byte-identical to a direct in-process [`BackendPool`] run of
//!    the same (QASM, seed, shots) — the server must not move a bit;
//! 2. a second, identical submission hits the warm session
//!    (`"warm":true` in its stream, `session_hits ≥ 1` in `/stats`);
//! 3. `POST /shutdown` answers 200 and the server drains (the CI
//!    step then `wait`s on the server process and requires exit 0).
//!
//! `SEED` must match the `--seed` the server was started with — the
//! root seed is the determinism domain both sides derive from.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use approxdd::circuit::generators;
use approxdd::circuit::qasm::{from_qasm, to_qasm};
use approxdd::exec::{BuildPool, PoolJob};
use approxdd::sim::json::Json;
use approxdd::sim::Simulator;

const SHOTS: usize = 512;

fn http(addr: &str, method: &str, target: &str, body: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: smoke\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("no status line in: {response}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

fn run(addr: &str, seed: u64) -> Result<(), String> {
    // The reference: the exact job the server will run, executed on a
    // direct in-process pool with the same root seed. The circuit is
    // round-tripped through QASM so both sides parse identical input.
    let qasm = to_qasm(&generators::ghz(6)).map_err(|e| e.to_string())?;
    let circuit = from_qasm(&qasm).map_err(|e| e.to_string())?;
    let pool = Simulator::builder().seed(seed).build_pool();
    let direct = pool
        .run_jobs(vec![PoolJob::new(circuit).shots(SHOTS)])
        .pop()
        .ok_or("empty pool result")?
        .map_err(|e| e.to_string())?;
    let want_fingerprint = format!("{:016x}", direct.fingerprint());
    let want_counts =
        Json::counts(direct.counts.as_ref().ok_or("direct run has no counts")?).to_string();

    for pass in ["cold", "warm"] {
        let (status, body) = http(addr, "POST", &format!("/jobs?shots={SHOTS}"), &qasm)?;
        if status != 202 {
            return Err(format!(
                "submit ({pass}): expected 202, got {status}: {body}"
            ));
        }
        let job = field(&body, "stream").ok_or_else(|| format!("no stream url in: {body}"))?;
        let (status, stream) = http(addr, "GET", job, "")?;
        if status != 200 {
            return Err(format!("stream ({pass}): expected 200, got {status}"));
        }
        let result = stream
            .lines()
            .find(|l| l.contains("\"type\":\"result\""))
            .ok_or_else(|| format!("no result event ({pass}):\n{stream}"))?;
        let fingerprint = field(result, "fingerprint").ok_or("result has no fingerprint")?;
        if fingerprint != want_fingerprint {
            return Err(format!(
                "fingerprint mismatch ({pass}): server {fingerprint}, direct {want_fingerprint}"
            ));
        }
        if !result.contains(&want_counts) {
            return Err(format!(
                "histogram mismatch ({pass}):\nwant {want_counts}\ngot  {result}"
            ));
        }
        let expected_warm = format!("\"warm\":{}", pass == "warm");
        if !stream.contains(&expected_warm) {
            return Err(format!(
                "expected {expected_warm} in {pass} stream:\n{stream}"
            ));
        }
        println!("serve_client: {pass} fingerprint {fingerprint} matches direct run");
    }

    let (status, stats) = http(addr, "GET", "/stats", "")?;
    if status != 200 {
        return Err(format!("stats: expected 200, got {status}"));
    }
    let warm_proof = ["\"session_hits\":1", "\"session_hits\":2"]
        .iter()
        .any(|k| stats.contains(*k));
    if !warm_proof {
        return Err(format!("stats must show session_hits ≥ 1: {stats}"));
    }
    println!("serve_client: /stats proves the warm session hit");

    // The observability contract: `GET /metrics` is valid Prometheus
    // text exposition carrying at least one counter series (requests by
    // route) and one histogram series (the phase-duration family).
    let (status, metrics) = http(addr, "GET", "/metrics", "")?;
    if status != 200 {
        return Err(format!("metrics: expected 200, got {status}"));
    }
    if !metrics.contains("# TYPE approxdd_server_requests_total counter") {
        return Err(format!("metrics missing requests counter TYPE:\n{metrics}"));
    }
    if !metrics.contains("approxdd_server_requests_total{route=\"/jobs\"}") {
        return Err(format!("metrics missing /jobs route counter:\n{metrics}"));
    }
    if !metrics.contains("approxdd_phase_duration_nanoseconds_bucket")
        || !metrics.contains("le=\"+Inf\"")
    {
        return Err(format!("metrics missing phase histogram:\n{metrics}"));
    }
    if !metrics.contains("approxdd_pool_workers") {
        return Err(format!("metrics missing pool gauges:\n{metrics}"));
    }
    println!("serve_client: /metrics exposes counter and histogram series");

    let (status, _) = http(addr, "POST", "/shutdown", "")?;
    if status != 200 {
        return Err(format!("shutdown: expected 200, got {status}"));
    }
    println!("serve_client: shutdown accepted, server draining");
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(addr) = args.next() else {
        eprintln!("usage: serve_client ADDR [SEED]");
        return ExitCode::FAILURE;
    };
    let seed: u64 = match args.next().map(|s| s.parse()) {
        None => 0,
        Some(Ok(seed)) => seed,
        Some(Err(_)) => {
            eprintln!("SEED must be an integer");
            return ExitCode::FAILURE;
        }
    };
    match run(&addr, seed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("serve_client: {msg}");
            ExitCode::FAILURE
        }
    }
}

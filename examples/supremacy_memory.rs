//! Memory-driven approximation on quantum-supremacy circuits — the
//! paper's reactive strategy (Section IV-B): when the decision diagram
//! outgrows a node threshold, truncate to a per-round fidelity, trading
//! accuracy for a representation that fits in memory. The circuit is
//! prepared once into a `Backend` `Executable` and the same executable
//! is re-run across differently-configured backends for the sweep.
//!
//! ```text
//! cargo run --release --example supremacy_memory [rows cols depth]
//! ```

use approxdd::backend::{Backend, BuildBackend};
use approxdd::circuit::generators;
use approxdd::sim::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|s| s.parse().ok())
        .collect();
    let (rows, cols, depth) = match args.as_slice() {
        [r, c, d, ..] => (*r, *c, *d),
        _ => (4, 4, 12),
    };
    let circuit = generators::supremacy(rows, cols, depth, 0);
    println!(
        "circuit: {} ({} qubits, {} gates)",
        circuit.name(),
        circuit.n_qubits(),
        circuit.gate_count()
    );

    // Exact reference through the same API.
    let mut exact = Simulator::builder().exact().build_backend();
    let exe = exact.prepare(&circuit)?;
    let exact_run = exact.run(&exe)?;
    println!(
        "\nexact:  max DD {:>8} nodes, runtime {:?}",
        exact_run.stats.peak_size, exact_run.stats.runtime
    );
    exact.release(exact_run);

    // Memory-driven at three per-round fidelities (the Table-I sweep,
    // fixed threshold — the regime the table reports).
    let threshold = 1 << 11;
    for f_round in [0.99, 0.975, 0.95] {
        let mut backend = Simulator::builder()
            .memory_driven_table1(threshold, f_round)
            .build_backend();
        let run = backend.run(&exe)?;
        println!(
            "f_round {f_round:<5}: max DD {:>8} nodes, {:>2} rounds, runtime {:?}, f_final {:.4}",
            run.stats.peak_size, run.stats.approx_rounds, run.stats.runtime, run.stats.fidelity
        );
        backend.release(run);
    }
    println!(
        "\n(threshold fixed at {threshold} nodes — `memory_driven_table1`; lower f_round\n trades more fidelity for smaller DDs and faster simulation)"
    );
    Ok(())
}

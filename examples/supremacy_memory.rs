//! Memory-driven approximation on quantum-supremacy circuits — the
//! paper's reactive strategy (Section IV-B): when the decision diagram
//! outgrows a node threshold, truncate to a per-round fidelity and
//! double the threshold, trading accuracy for a representation that
//! fits in memory.
//!
//! ```text
//! cargo run --release --example supremacy_memory [rows cols depth]
//! ```

use approxdd::circuit::generators;
use approxdd::sim::{SimOptions, Simulator, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|s| s.parse().ok())
        .collect();
    let (rows, cols, depth) = match args.as_slice() {
        [r, c, d, ..] => (*r, *c, *d),
        _ => (4, 4, 12),
    };
    let circuit = generators::supremacy(rows, cols, depth, 0);
    println!(
        "circuit: {} ({} qubits, {} gates)",
        circuit.name(),
        circuit.n_qubits(),
        circuit.gate_count()
    );

    // Exact reference.
    let mut exact = Simulator::new(SimOptions::default());
    let exact_run = exact.run(&circuit)?;
    println!(
        "\nexact:  max DD {:>8} nodes, runtime {:?}",
        exact_run.stats.max_dd_size, exact_run.stats.runtime
    );

    // Memory-driven at three per-round fidelities (the Table-I sweep).
    let threshold = 1 << 11;
    for f_round in [0.99, 0.975, 0.95] {
        let mut sim = Simulator::new(SimOptions {
            strategy: Strategy::MemoryDriven {
                node_threshold: threshold,
                round_fidelity: f_round,
                threshold_growth: 1.0,
            },
            ..SimOptions::default()
        });
        let run = sim.run(&circuit)?;
        println!(
            "f_round {f_round:<5}: max DD {:>8} nodes, {:>2} rounds, runtime {:?}, f_final {:.4}",
            run.stats.max_dd_size,
            run.stats.approx_rounds,
            run.stats.runtime,
            run.stats.fidelity
        );
    }
    println!(
        "\n(threshold starts at {threshold} nodes and doubles per round; lower f_round\n trades more fidelity for smaller DDs and faster simulation)"
    );
    Ok(())
}

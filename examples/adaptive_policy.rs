//! A custom approximation policy defined **outside** `approxdd-core`,
//! proving the `ApproxPolicy` seam is public, object-safe, and
//! sufficient: no simulator internals are touched, yet the policy sees
//! every per-gate snapshot and its decisions are fully audited through
//! the `SimObserver` trace.
//!
//! The policy here is *adaptive*: it watches the DD's growth rate and
//! truncates only when the state doubled since the last round — harder
//! (lower round fidelity) the faster it grew — while refusing to spend
//! below a hard final-fidelity floor. It runs both through a plain
//! `SimulatorBuilder` and through a `BackendPool` (per-job policy
//! instantiation keeps pooled results worker-count-invariant).
//!
//! ```text
//! cargo run --release --example adaptive_policy
//! ```

use approxdd::circuit::generators;
use approxdd::exec::{BuildPool, PoolJob};
use approxdd::sim::{
    ApproxPolicy, BudgetPolicy, PolicyAction, PolicyCtx, SimError, Simulator, TraceEvent,
    TraceRecorder,
};

/// Truncate when the DD doubled since the last round, scaling the
/// round's aggressiveness with how hot the growth is, but never let
/// the guaranteed fidelity floor drop below `min_fidelity`.
#[derive(Debug, Clone)]
struct GrowthAdaptivePolicy {
    /// Node count at the last round (or the run start).
    last_round_nodes: usize,
    /// Never truncate below this guaranteed floor.
    min_fidelity: f64,
}

impl GrowthAdaptivePolicy {
    fn new(min_fidelity: f64) -> Self {
        Self {
            last_round_nodes: 0,
            min_fidelity,
        }
    }
}

impl ApproxPolicy for GrowthAdaptivePolicy {
    fn name(&self) -> &str {
        "growth-adaptive"
    }

    fn begin(&mut self, _circuit: &approxdd::circuit::Circuit) -> Result<(), SimError> {
        if !(self.min_fidelity > 0.0 && self.min_fidelity < 1.0) {
            return Err(SimError::InvalidStrategy {
                reason: "growth-adaptive floor must lie in (0, 1)",
            });
        }
        self.last_round_nodes = 0;
        Ok(())
    }

    fn decide(&mut self, ctx: &PolicyCtx) -> PolicyAction {
        if !ctx.applied_gate {
            return PolicyAction::Continue;
        }
        if self.last_round_nodes == 0 {
            self.last_round_nodes = ctx.live_nodes.max(1);
            return PolicyAction::Continue;
        }
        if ctx.live_nodes < self.last_round_nodes * 2 || ctx.live_nodes < 64 {
            return PolicyAction::Continue;
        }
        // Doubled: truncate, harder the further past 2x we overshot —
        // but clamp so the guaranteed floor stays above min_fidelity.
        let overshoot = ctx.live_nodes as f64 / self.last_round_nodes as f64;
        let round_fidelity = (1.0 - 0.01 * overshoot).clamp(0.9, 0.999);
        if ctx.fidelity_lower_bound * round_fidelity < self.min_fidelity {
            return PolicyAction::Continue; // budget exhausted: exact from here on
        }
        self.last_round_nodes = ctx.live_nodes;
        PolicyAction::Truncate { round_fidelity }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = generators::supremacy(3, 3, 12, 1);

    // --- Single simulator: custom policy + trace observer. ----------
    let trace = TraceRecorder::shared();
    let mut sim = Simulator::builder()
        .policy(|| GrowthAdaptivePolicy::new(0.75))
        .observe(trace.clone())
        .seed(7)
        .build();
    let run = sim.run(&circuit)?;
    println!(
        "policy {:?}: {} gates, {} rounds, fidelity {:.4} (floor {:.4}), peak {} nodes",
        run.stats.policy,
        run.stats.gates_applied,
        run.stats.approx_rounds,
        run.stats.fidelity,
        run.stats.fidelity_lower_bound,
        run.stats.max_dd_size,
    );
    assert!(run.stats.fidelity_lower_bound >= 0.75 - 1e-9);

    // Audit every approximation decision from the trace.
    let events = trace.lock().unwrap().take();
    for event in &events {
        match event {
            TraceEvent::RoundStarted {
                op_index,
                round,
                target_fidelity,
                live_nodes,
            } => println!(
                "  round {round} after op {op_index}: {live_nodes} nodes, target {target_fidelity:.4}"
            ),
            TraceEvent::Truncated {
                nodes_before,
                nodes_after,
                removed_mass,
                ..
            } => println!(
                "    -> {nodes_before} to {nodes_after} nodes, removed mass {removed_mass:.5}"
            ),
            _ => {}
        }
    }
    let gate_events = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::GateApplied { .. }))
        .count();
    assert_eq!(gate_events, run.stats.gates_applied);

    // --- Pooled: the same custom policy per job, plus the built-in
    // budget hybrid, running side by side on one pool. ---------------
    let pool = Simulator::builder().workers(2).seed(7).build_pool();
    let jobs = vec![
        PoolJob::new(circuit.clone())
            .policy(|| GrowthAdaptivePolicy::new(0.75))
            .trace(true),
        PoolJob::new(circuit.clone())
            .policy(|| BudgetPolicy::new(256, 0.97, 0.8))
            .trace(true),
    ];
    for result in pool.run_jobs(jobs) {
        let outcome = result?;
        let rounds_in_trace = outcome.trace.as_ref().map_or(0, |t| {
            t.iter()
                .filter(|e| matches!(e, TraceEvent::Truncated { .. }))
                .count()
        });
        println!(
            "pooled {} [{}]: {} rounds (trace agrees: {}), fidelity {:.4} >= floor {:.4}",
            outcome.name,
            outcome.stats.policy,
            outcome.stats.approx_rounds,
            rounds_in_trace == outcome.stats.approx_rounds,
            outcome.stats.fidelity,
            outcome.stats.fidelity_lower_bound,
        );
        assert_eq!(rounds_in_trace, outcome.stats.approx_rounds);
        assert!(outcome.stats.fidelity >= outcome.stats.fidelity_lower_bound - 1e-12);
    }
    Ok(())
}

//! Integration of the extension features around the paper's core:
//! gate fusion, state/operator serialization, marginal queries, and
//! the node- vs edge-level truncation primitives.

use approxdd::circuit::generators;
use approxdd::dd::Package;
use approxdd::sim::{ApproxPrimitive, Simulator, Strategy};

#[test]
fn fused_and_sequential_shor_agree() {
    let circuit = approxdd::shor::shor_circuit(15, 7).expect("circuit");
    let mut sim = Simulator::builder().exact().build();
    let seq = sim.run(&circuit).expect("sequential");
    let fused = sim.run_fused(&circuit, 8).expect("fused");
    let f = sim.fidelity_between(&seq, &fused);
    assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
}

#[test]
fn serialized_gate_cache_survives_processes() {
    // Simulate persisting an expensive modular-multiplication gate DD
    // and reusing it from a fresh package.
    let mut builder = Package::new();
    let perm: Vec<usize> = (0..64)
        .map(|x| if x < 33 { (5 * x) % 33 } else { x })
        .collect();
    let gate = builder
        .permutation_gate(8, 0, 6, &perm, &[(7, true)])
        .expect("gate");
    let blob = builder.serialize_operator(gate);

    let mut user = Package::new();
    let restored = user.deserialize_operator(&blob).expect("restore");
    // Control off: identity. Control on: multiplication by 5 mod 33.
    let off = user.basis_state(8, 2);
    let r = user.apply(restored, off);
    assert!((user.probability(r, 2) - 1.0).abs() < 1e-10);
    let on = user.basis_state(8, (1 << 7) | 2);
    let r = user.apply(restored, on);
    assert!((user.probability(r, (1 << 7) | 10) - 1.0).abs() < 1e-10);
}

#[test]
fn marginals_match_sampling_histogram() {
    use rand::SeedableRng;
    let circuit = generators::supremacy(2, 3, 8, 6);
    let mut sim = Simulator::builder().exact().build();
    let run = sim.run(&circuit).expect("run");
    let dist = sim
        .package()
        .marginal_distribution(run.state(), &[0, 3])
        .expect("marginal");
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let shots = 20_000usize;
    let mut hist = [0usize; 4];
    for _ in 0..shots {
        let s = sim.sample(&run, &mut rng);
        let idx = ((s & 1) | ((s >> 3) & 1) << 1) as usize;
        hist[idx] += 1;
    }
    for (i, &want) in dist.iter().enumerate() {
        let got = hist[i] as f64 / shots as f64;
        assert!((want - got).abs() < 0.02, "outcome {i}: {want} vs {got}");
    }
}

#[test]
fn edge_primitive_needs_no_more_rounds_than_node_primitive() {
    // Both primitives, same memory-driven configuration: both must
    // respect the threshold mechanics and produce valid states.
    let circuit = generators::supremacy(3, 3, 10, 2);
    for primitive in [ApproxPrimitive::Nodes, ApproxPrimitive::Edges] {
        let mut sim = Simulator::builder()
            .strategy(Strategy::memory_driven_table1(64, 0.95))
            .primitive(primitive)
            .build();
        let run = sim.run(&circuit).expect("run");
        assert!(run.stats.approx_rounds > 0, "{primitive:?} must engage");
        assert!(run.stats.fidelity > 0.0 && run.stats.fidelity <= 1.0);
        let amps = sim.amplitudes(&run).expect("amps");
        let norm: f64 = amps.iter().map(|a| a.mag2()).sum();
        assert!((norm - 1.0).abs() < 1e-9, "{primitive:?}: norm {norm}");
    }
}

#[test]
fn dot_export_renders_simulated_states() {
    let mut sim = Simulator::builder().exact().build();
    let run = sim.run(&generators::w_state(4)).expect("run");
    let dot = sim.package().to_dot(run.state());
    assert!(dot.contains("digraph"));
    assert!(dot.contains("q3"));
    // W state: each level has two nodes at most; DOT must have one line
    // per edge — sanity: more than 8 lines.
    assert!(dot.lines().count() > 8);
}

//! Contract tests of the composable `ApproxPolicy` / `SimObserver`
//! API: a user-defined policy (defined here, outside `approxdd-core`)
//! runs through `SimulatorBuilder::policy` and `BackendPool`, preset
//! strategies and their policy equivalents produce fingerprint-identical
//! pooled outcomes across worker counts, and trace streams are
//! deterministic regardless of scheduling.

use approxdd::circuit::{generators, Circuit};
use approxdd::exec::{BuildPool, PoolJob, PoolOutcome};
use approxdd::sim::{
    ApproxPolicy, BudgetPolicy, PolicyAction, PolicyCtx, SimError, Simulator, Strategy, TraceEvent,
    TraceRecorder,
};
use proptest::prelude::*;

/// A user-defined replica of the paper-text memory-driven preset
/// (doubling threshold growth), written against the public seam only.
#[derive(Debug, Clone)]
struct ReplicaMemoryPolicy {
    threshold: usize,
    round_fidelity: f64,
    current: usize,
}

impl ReplicaMemoryPolicy {
    fn new(threshold: usize, round_fidelity: f64) -> Self {
        Self {
            threshold,
            round_fidelity,
            current: threshold,
        }
    }
}

impl ApproxPolicy for ReplicaMemoryPolicy {
    fn name(&self) -> &str {
        // Deliberately different from the preset's "memory-driven":
        // fingerprints must not depend on the policy's name.
        "user-replica"
    }

    fn begin(&mut self, _circuit: &Circuit) -> Result<(), SimError> {
        self.current = self.threshold;
        Ok(())
    }

    fn decide(&mut self, ctx: &PolicyCtx) -> PolicyAction {
        if ctx.applied_gate && ctx.live_nodes > self.current {
            self.current = (self.current as f64 * 2.0).ceil() as usize;
            PolicyAction::Truncate {
                round_fidelity: self.round_fidelity,
            }
        } else {
            PolicyAction::Continue
        }
    }
}

fn pooled_outcomes(jobs: Vec<PoolJob>, workers: usize) -> Vec<PoolOutcome> {
    let pool = Simulator::builder().seed(42).workers(workers).build_pool();
    pool.run_jobs(jobs)
        .into_iter()
        .map(|r| r.expect("pool job"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // A user-defined policy replicating the memory-driven preset's
    // decisions yields `PoolOutcome::fingerprint`-identical results to
    // the enum preset, across 1, 2 and 8 workers.
    #[test]
    fn replica_policy_fingerprints_match_preset_across_worker_counts(
        threshold in 8usize..48,
        f_round_pct in 88u32..98,
        seed in 0u64..3
    ) {
        let f_round = f64::from(f_round_pct) / 100.0;
        let circuit = generators::supremacy(2, 3, 10, seed);
        let preset = Strategy::memory_driven(threshold, f_round);
        let preset_job = || PoolJob::new(circuit.clone()).strategy(preset).shots(256);
        let replica_job = || {
            PoolJob::new(circuit.clone())
                .policy(move || ReplicaMemoryPolicy::new(threshold, f_round))
                .shots(256)
        };
        let mut fingerprints = Vec::new();
        for workers in [1usize, 2, 8] {
            // Separate submissions so both jobs sit at index 0 of the
            // seed stream — identical decisions then mean identical
            // everything, histogram included.
            let pool = Simulator::builder().seed(42).workers(workers).build_pool();
            let preset_out = pool.run_jobs(vec![preset_job()]).remove(0).expect("preset");
            let replica_out = pool
                .run_jobs(vec![replica_job()])
                .remove(0)
                .expect("replica");
            prop_assert_eq!(preset_out.stats.policy.as_str(), "memory-driven");
            prop_assert_eq!(replica_out.stats.policy.as_str(), "user-replica");
            // Preset and replica agree on everything deterministic.
            prop_assert_eq!(
                preset_out.fingerprint(),
                replica_out.fingerprint(),
                "preset vs replica at {} workers", workers
            );
            fingerprints.push((preset_out.fingerprint(), replica_out.fingerprint()));
        }
        prop_assert_eq!(&fingerprints[0], &fingerprints[1], "1 vs 2 workers");
        prop_assert_eq!(&fingerprints[0], &fingerprints[2], "1 vs 8 workers");
    }
}

#[test]
fn trace_streams_are_identical_across_worker_counts() {
    let circuits: Vec<Circuit> = (0..4).map(|s| generators::supremacy(2, 3, 10, s)).collect();
    let jobs = || -> Vec<PoolJob> {
        circuits
            .iter()
            .map(|c| {
                PoolJob::new(c.clone())
                    .strategy(Strategy::memory_driven_table1(16, 0.95))
                    .trace(true)
            })
            .collect()
    };
    let traces: Vec<Vec<Vec<TraceEvent>>> = [1usize, 2, 8]
        .iter()
        .map(|&workers| {
            pooled_outcomes(jobs(), workers)
                .into_iter()
                .map(|o| o.trace.expect("trace requested"))
                .collect()
        })
        .collect();
    // Traces are non-trivial: every job saw gates and rounds.
    for trace in &traces[0] {
        assert!(trace
            .iter()
            .any(|e| matches!(e, TraceEvent::GateApplied { .. })));
        assert!(trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Truncated { .. })));
        assert!(matches!(trace.first(), Some(TraceEvent::RunStarted { .. })));
        assert!(matches!(trace.last(), Some(TraceEvent::RunFinished { .. })));
    }
    assert_eq!(traces[0], traces[1], "1 vs 2 workers");
    assert_eq!(traces[0], traces[2], "1 vs 8 workers");
}

#[test]
fn custom_policy_runs_through_builder_and_reports_stats() {
    let circuit = generators::supremacy(2, 3, 12, 0);
    let trace = TraceRecorder::shared();
    let mut sim = Simulator::builder()
        .policy(|| ReplicaMemoryPolicy::new(16, 0.95))
        .observe(trace.clone())
        .seed(1)
        .build();
    let run = sim.run(&circuit).unwrap();
    assert_eq!(run.stats.policy, "user-replica");
    assert!(run.stats.approx_rounds > 0, "threshold 16 must trigger");
    assert!(run.stats.fidelity >= run.stats.fidelity_lower_bound - 1e-12);
    // The trace audits exactly the rounds the stats report, and the
    // guaranteed floor is the product of the targets of exactly the
    // rounds that removed nodes (no-op rounds charge nothing).
    let events = trace.lock().unwrap().take();
    let removing_rounds = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Truncated { removed_nodes, .. } if *removed_nodes > 0))
        .count();
    let expected_floor = 0.95f64.powi(i32::try_from(removing_rounds).unwrap());
    assert!((run.stats.fidelity_lower_bound - expected_floor).abs() < 1e-12);
    let rounds = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Truncated { .. }))
        .count();
    assert_eq!(rounds, run.stats.approx_rounds);
    // Node counts in Truncated events are internally consistent.
    for event in &events {
        if let TraceEvent::Truncated {
            nodes_before,
            nodes_after,
            removed_mass,
            ..
        } = event
        {
            assert!(nodes_after <= nodes_before);
            assert!((0.0..=1.0).contains(removed_mass));
        }
    }
}

#[test]
fn budget_policy_bounds_memory_until_budget_then_stops() {
    let circuit = generators::supremacy(2, 3, 14, 2);
    let mut budget = Simulator::builder()
        .policy(|| BudgetPolicy::new(24, 0.95, 0.8))
        .build();
    let run = budget.run(&circuit).unwrap();
    assert_eq!(run.stats.policy, "budget");
    assert!(run.stats.approx_rounds > 0, "threshold 24 must trigger");
    // The budget guarantee: the floor never drops below 0.8, even
    // though memory pressure continues.
    assert!(
        run.stats.fidelity_lower_bound >= 0.8 - 1e-12,
        "floor {} spent past the budget",
        run.stats.fidelity_lower_bound
    );
    assert!(run.stats.fidelity >= run.stats.fidelity_lower_bound - 1e-12);
    // It stopped before spending what an unbudgeted memory policy
    // would: the same trigger without a budget fires more rounds.
    let mut unbounded = Simulator::builder().memory_driven_table1(24, 0.95).build();
    let unbounded_run = unbounded.run(&circuit).unwrap();
    assert!(unbounded_run.stats.approx_rounds >= run.stats.approx_rounds);
}

#[test]
fn noop_rounds_charge_nothing_to_the_fidelity_floor() {
    // Fires a round after every gate with target 1.0 (budget 0): every
    // round is a no-op, so the run stays exact and the guaranteed
    // floor must stay at 1.0 — a floor that dropped here would make
    // budget policies burn budget on rounds that removed nothing.
    struct AlwaysNoop;
    impl ApproxPolicy for AlwaysNoop {
        fn name(&self) -> &str {
            "always-noop"
        }
        fn decide(&mut self, ctx: &PolicyCtx) -> PolicyAction {
            if ctx.applied_gate {
                PolicyAction::Truncate {
                    round_fidelity: 1.0,
                }
            } else {
                PolicyAction::Continue
            }
        }
    }
    let circuit = generators::qft(6);
    let mut sim = Simulator::builder().policy(|| AlwaysNoop).build();
    let run = sim.run(&circuit).unwrap();
    assert_eq!(run.stats.approx_rounds, run.stats.gates_applied);
    assert_eq!(run.stats.nodes_removed, 0);
    assert_eq!(run.stats.fidelity, 1.0);
    assert_eq!(
        run.stats.fidelity_lower_bound, 1.0,
        "no-op rounds must not charge the floor"
    );
}

#[test]
fn abort_surfaces_as_typed_error() {
    /// Aborts as soon as the DD exceeds a hard cap.
    struct HardCap(usize);
    impl ApproxPolicy for HardCap {
        fn name(&self) -> &str {
            "hard-cap"
        }
        fn decide(&mut self, ctx: &PolicyCtx) -> PolicyAction {
            if ctx.live_nodes > self.0 {
                PolicyAction::Abort
            } else {
                PolicyAction::Continue
            }
        }
    }
    let cap = 16;
    let mut sim = Simulator::builder().policy(move || HardCap(cap)).build();
    match sim.run(&generators::supremacy(2, 3, 12, 0)) {
        Err(SimError::PolicyAbort { policy, .. }) => assert_eq!(policy, "hard-cap"),
        other => panic!("expected PolicyAbort, got {other:?}"),
    }
    // The simulator stays usable after an aborted run.
    let run = sim.run(&generators::ghz(4)).unwrap();
    assert_eq!(run.stats.gates_applied, 4);
}

#[test]
fn bad_policy_round_fidelity_is_rejected_mid_run() {
    struct NanPolicy;
    impl ApproxPolicy for NanPolicy {
        fn name(&self) -> &str {
            "nan"
        }
        fn decide(&mut self, ctx: &PolicyCtx) -> PolicyAction {
            if ctx.applied_gate {
                PolicyAction::Truncate {
                    round_fidelity: f64::NAN,
                }
            } else {
                PolicyAction::Continue
            }
        }
    }
    let mut sim = Simulator::builder().policy(|| NanPolicy).build();
    assert!(matches!(
        sim.run(&generators::ghz(4)),
        Err(SimError::InvalidStrategy { .. })
    ));
}

#[test]
fn try_build_rejects_invalid_presets_eagerly() {
    for strategy in [
        Strategy::memory_driven(0, 0.9),
        Strategy::memory_driven(16, f64::NAN),
        Strategy::fidelity_driven(0.0, 0.9),
        Strategy::fidelity_driven(0.5, 1.5),
    ] {
        assert!(
            matches!(
                Simulator::builder().strategy(strategy).try_build(),
                Err(SimError::InvalidStrategy { .. })
            ),
            "{strategy:?} must be rejected"
        );
    }
    assert!(Simulator::builder()
        .memory_driven(16, 0.9)
        .try_build()
        .is_ok());
}

#[test]
fn presets_report_policy_names_through_backend_stats() {
    use approxdd::backend::{run_circuit, Backend, BuildBackend};
    let circuit = generators::supremacy(2, 3, 10, 0);
    for (strategy, name) in [
        (Strategy::Exact, "exact"),
        (Strategy::memory_driven(16, 0.95), "memory-driven"),
        (Strategy::fidelity_driven(0.6, 0.9), "fidelity-driven"),
    ] {
        let mut backend = Simulator::builder().strategy(strategy).build_backend();
        let out = run_circuit(&mut backend, &circuit).unwrap();
        assert_eq!(out.stats.policy, name);
        assert!(out.stats.fidelity >= out.stats.fidelity_lower_bound - 1e-12);
        backend.release(out);
    }
}

//! Integration: the DD simulator must agree exactly with the dense
//! state-vector baseline on every workload family, and approximation
//! must degrade gracefully with measurable fidelity. Both engines are
//! driven through the unified `Backend` trait, so an equivalence check
//! is one generic function.

use approxdd::backend::{amplitudes_of, Backend, BuildBackend, StatevectorBackend};
use approxdd::circuit::{generators, Circuit};
use approxdd::complex::Cplx;
use approxdd::sim::Simulator;

/// The generic half of every check: final amplitudes of `circuit` on
/// any backend.
fn backend_amplitudes<B: Backend>(backend: &mut B, circuit: &Circuit) -> Vec<Cplx> {
    amplitudes_of(backend, circuit)
        .unwrap_or_else(|e| panic!("{} run of {}: {e}", backend.name(), circuit.name()))
}

fn assert_same_state(circuit: &Circuit) {
    let mut dd = Simulator::builder().exact().build_backend();
    let mut sv = StatevectorBackend::new();
    let a = backend_amplitudes(&mut dd, circuit);
    let b = backend_amplitudes(&mut sv, circuit);
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert!(
            (*x - *y).mag() < 1e-9,
            "{}: amplitude {i}: dd={x} sv={y}",
            circuit.name()
        );
    }
}

#[test]
fn all_families_match_dense_baseline() {
    assert_same_state(&generators::ghz(8));
    assert_same_state(&generators::w_state(7));
    assert_same_state(&generators::qft(7));
    assert_same_state(&generators::inverse_qft(6, true));
    assert_same_state(&generators::grover(6, 0b110101, None));
    assert_same_state(&generators::bernstein_vazirani(9, 0b101100111));
    assert_same_state(&generators::supremacy(2, 4, 10, 11));
    for seed in 0..3 {
        assert_same_state(&generators::random_circuit(7, 12, seed));
    }
}

#[test]
fn shor_circuit_matches_dense_baseline() {
    let circuit = approxdd::shor::shor_circuit(15, 7).expect("shor_15_7");
    assert_same_state(&circuit);
}

#[test]
fn approximate_fidelity_is_honest_against_dense_reference() {
    // Run approximately on DDs, exactly on the dense baseline, and
    // check the *reported* fidelity (product of round fidelities)
    // equals the true overlap — Lemma 1 end-to-end.
    let circuit = generators::supremacy(3, 3, 12, 4);
    let mut dd = Simulator::builder()
        .fidelity_driven(0.5, 0.9)
        .build_backend();
    let run = approxdd::backend::run_circuit(&mut dd, &circuit).expect("approx run");
    let reported = run.stats.fidelity;
    let approx = dd.amplitudes(&run).expect("amps");
    dd.release(run);
    let exact = backend_amplitudes(&mut StatevectorBackend::new(), &circuit);
    let mut ip = Cplx::ZERO;
    for (e, a) in exact.iter().zip(&approx) {
        ip += e.conj() * *a;
    }
    let true_fidelity = ip.mag2();
    // The product of per-round kept norms is Lemma 1's identity under
    // aligned truncation sets; in a live run the sets are chosen on the
    // already-approximated state, so the product is an estimate. It must
    // track the true overlap within a few percent.
    assert!(
        (true_fidelity - reported).abs() < 0.05,
        "reported {reported} vs true {true_fidelity}"
    );
    assert!(reported >= 0.5 - 1e-9);
}

#[test]
fn memory_driven_state_stays_normalized() {
    let circuit = generators::supremacy(3, 3, 14, 2);
    let mut dd = Simulator::builder().memory_driven(64, 0.95).build_backend();
    let run = approxdd::backend::run_circuit(&mut dd, &circuit).expect("run");
    let amps = dd.amplitudes(&run).expect("amps");
    let norm: f64 = amps.iter().map(|a| a.mag2()).sum();
    assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
    assert!(run.stats.approx_rounds > 0);
    dd.release(run);
}

//! Integration: the DD simulator must agree exactly with the dense
//! state-vector baseline on every workload family, and approximation
//! must degrade gracefully with measurable fidelity.

use approxdd::circuit::{generators, Circuit};
use approxdd::complex::Cplx;
use approxdd::sim::{SimOptions, Simulator, Strategy};
use approxdd::statevector::State;

fn dd_amplitudes(circuit: &Circuit) -> Vec<Cplx> {
    let mut sim = Simulator::new(SimOptions::default());
    let run = sim.run(circuit).expect("dd run");
    sim.amplitudes(&run).expect("amplitudes")
}

fn sv_amplitudes(circuit: &Circuit) -> Vec<Cplx> {
    let mut s = State::zero(circuit.n_qubits());
    s.run(circuit).expect("sv run");
    s.amplitudes().to_vec()
}

fn assert_same_state(circuit: &Circuit) {
    let dd = dd_amplitudes(circuit);
    let sv = sv_amplitudes(circuit);
    for (i, (a, b)) in dd.iter().zip(&sv).enumerate() {
        assert!(
            (*a - *b).mag() < 1e-9,
            "{}: amplitude {i}: dd={a} sv={b}",
            circuit.name()
        );
    }
}

#[test]
fn all_families_match_dense_baseline() {
    assert_same_state(&generators::ghz(8));
    assert_same_state(&generators::w_state(7));
    assert_same_state(&generators::qft(7));
    assert_same_state(&generators::inverse_qft(6, true));
    assert_same_state(&generators::grover(6, 0b110101, None));
    assert_same_state(&generators::bernstein_vazirani(9, 0b101100111));
    assert_same_state(&generators::supremacy(2, 4, 10, 11));
    for seed in 0..3 {
        assert_same_state(&generators::random_circuit(7, 12, seed));
    }
}

#[test]
fn shor_circuit_matches_dense_baseline() {
    let circuit = approxdd::shor::shor_circuit(15, 7).expect("shor_15_7");
    assert_same_state(&circuit);
}

#[test]
fn approximate_fidelity_is_honest_against_dense_reference() {
    // Run approximately on DDs, exactly on the dense baseline, and
    // check the *reported* fidelity (product of round fidelities)
    // equals the true overlap — Lemma 1 end-to-end.
    let circuit = generators::supremacy(3, 3, 12, 4);
    let mut sim = Simulator::new(SimOptions {
        strategy: Strategy::FidelityDriven {
            final_fidelity: 0.5,
            round_fidelity: 0.9,
        },
        ..SimOptions::default()
    });
    let run = sim.run(&circuit).expect("approx run");
    let approx = sim.amplitudes(&run).expect("amps");
    let exact = sv_amplitudes(&circuit);
    let mut ip = Cplx::ZERO;
    for (e, a) in exact.iter().zip(&approx) {
        ip += e.conj() * *a;
    }
    let true_fidelity = ip.mag2();
    // The product of per-round kept norms is Lemma 1's identity under
    // aligned truncation sets; in a live run the sets are chosen on the
    // already-approximated state, so the product is an estimate. It must
    // track the true overlap within a few percent.
    assert!(
        (true_fidelity - run.stats.fidelity).abs() < 0.05,
        "reported {} vs true {}",
        run.stats.fidelity,
        true_fidelity
    );
    assert!(run.stats.fidelity >= 0.5 - 1e-9);
}

#[test]
fn memory_driven_state_stays_normalized() {
    let circuit = generators::supremacy(3, 3, 14, 2);
    let mut sim = Simulator::new(SimOptions {
        strategy: Strategy::MemoryDriven {
            node_threshold: 64,
            round_fidelity: 0.95,
            threshold_growth: 2.0,
        },
        ..SimOptions::default()
    });
    let run = sim.run(&circuit).expect("run");
    let amps = sim.amplitudes(&run).expect("amps");
    let norm: f64 = amps.iter().map(|a| a.mag2()).sum();
    assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
    assert!(run.stats.approx_rounds > 0);
}

//! Integration: algorithm-level correctness of the simulator on phase
//! estimation and Deutsch–Jozsa, and XEB-based fidelity estimation of
//! approximate supremacy sampling (the measurement-side view of the
//! paper's accuracy story).

use approxdd::circuit::generators;
use approxdd::sim::Simulator;
use approxdd::statevector::{xeb, State};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn phase_estimation_recovers_the_phase() {
    let n = 7;
    let theta = 0.3218 * std::f64::consts::TAU; // phase fraction 0.3218
    let circuit = generators::phase_estimation(n, theta);
    let mut sim = Simulator::builder().exact().build();
    let run = sim.run(&circuit).expect("qpe run");

    let mut rng = StdRng::seed_from_u64(17);
    let mut hits = 0;
    let shots = 200;
    let want = (0.3218 * f64::from(1u32 << n)).round() as u64;
    for _ in 0..shots {
        let outcome = sim.sample(&run, &mut rng);
        let counting = outcome >> 1; // qubit 0 is the eigenstate target
        if counting.abs_diff(want) <= 1 {
            hits += 1;
        }
    }
    assert!(
        hits as f64 / shots as f64 > 0.6,
        "phase peak too weak: {hits}/{shots} near {want}"
    );
}

#[test]
fn phase_estimation_survives_approximation() {
    let n = 7;
    let theta = 0.25 * std::f64::consts::TAU; // exactly representable phase
    let circuit = generators::phase_estimation(n, theta);
    let mut sim = Simulator::builder().fidelity_driven(0.5, 0.9).build();
    let run = sim.run(&circuit).expect("approx qpe");
    let mut rng = StdRng::seed_from_u64(23);
    let want = 1u64 << (n - 2); // 0.25 * 2^n
    let mut hits = 0;
    for _ in 0..100 {
        let outcome = sim.sample(&run, &mut rng) >> 1;
        if outcome == want {
            hits += 1;
        }
    }
    assert!(hits > 50, "approximate QPE peak: {hits}/100");
}

#[test]
fn deutsch_jozsa_distinguishes_constant_from_balanced() {
    let n = 8;
    let mut sim = Simulator::builder().exact().build();

    let constant = sim
        .run(&generators::deutsch_jozsa(n, None))
        .expect("constant run");
    assert!(
        (sim.package().probability(constant.state(), 0) - 1.0).abs() < 1e-9,
        "constant oracle must yield all zeros"
    );

    let balanced = sim
        .run(&generators::deutsch_jozsa(n, Some(0b1011_0110)))
        .expect("balanced run");
    assert!(
        sim.package().probability(balanced.state(), 0) < 1e-9,
        "balanced oracle must never yield all zeros"
    );
}

#[test]
fn shor_counting_register_peaks_at_multiples_of_period() {
    // shor_15_7: order r = 4, counting register = 8 qubits (qubits
    // 4..12). The marginal distribution over the counting register must
    // concentrate on multiples of 2^8 / r = 64.
    let circuit = approxdd::shor::shor_circuit(15, 7).expect("circuit");
    let mut sim = Simulator::builder().exact().build();
    let run = sim.run(&circuit).expect("run");
    let counting: Vec<usize> = (4..12).collect();
    let dist = sim
        .package()
        .marginal_distribution(run.state(), &counting)
        .expect("marginal");
    let peak_mass: f64 = [0usize, 64, 128, 192].iter().map(|&i| dist[i]).sum();
    assert!(
        peak_mass > 0.99,
        "mass on multiples of 64: {peak_mass} (dist sums to {})",
        dist.iter().sum::<f64>()
    );
    // Each peak carries ~1/4.
    for &i in &[0usize, 64, 128, 192] {
        assert!((dist[i] - 0.25).abs() < 0.01, "peak {i}: {}", dist[i]);
    }
}

#[test]
fn cuccaro_adder_adds_on_the_dd_simulator() {
    let n = 4;
    let circuit = generators::cuccaro_adder(n);
    let mut sim = Simulator::builder().exact().build();
    for (a, b) in [(0u64, 0u64), (3, 5), (9, 9), (15, 1), (7, 12), (15, 15)] {
        // Input layout: ancilla 0, a in bits 1..=n, b in bits n+1..=2n.
        let input = (a << 1) | (b << (1 + n));
        let p = sim.package_mut();
        let init = p.basis_state(2 * n + 2, input);
        let run = sim.run_from(&circuit, init).expect("adder run");
        let sum = a + b;
        let want = (a << 1) | ((sum & 0xF) << (1 + n)) | ((sum >> n) << (2 * n + 1));
        let prob = sim.package().probability(run.state(), want);
        assert!(
            (prob - 1.0).abs() < 1e-9,
            "{a}+{b}: expected output {want:#012b}, p={prob}"
        );
    }
}

#[test]
fn quantum_volume_matches_dense_baseline() {
    let circuit = generators::quantum_volume(5, 3, 2);
    let mut sim = Simulator::builder().exact().build();
    let run = sim.run(&circuit).expect("qv run");
    let dd = sim.amplitudes(&run).expect("amps");

    let mut sv = State::zero(5);
    sv.run(&circuit).expect("dense run");
    for (i, (x, y)) in dd.iter().zip(sv.amplitudes()).enumerate() {
        assert!((*x - *y).mag() < 1e-9, "amplitude {i}: {x} vs {y}");
    }
}

#[test]
fn quantum_volume_under_approximation_keeps_unit_norm() {
    let circuit = generators::quantum_volume(8, 5, 4);
    let mut sim = Simulator::builder().fidelity_driven(0.5, 0.9).build();
    let run = sim.run(&circuit).expect("approx qv");
    assert!(run.stats.fidelity >= 0.5 - 1e-9);
    let amps = sim.amplitudes(&run).expect("amps");
    let norm: f64 = amps.iter().map(|a| a.mag2()).sum();
    assert!((norm - 1.0).abs() < 1e-9);
}

#[test]
fn xeb_of_approximate_supremacy_sampling_tracks_fidelity() {
    // Sample from an approximately-simulated supremacy circuit and
    // score the samples with XEB against the exact distribution: the
    // statistic must sit well below the ideal value but well above
    // uniform noise, in the vicinity of the reported state fidelity.
    let circuit = generators::supremacy(2, 5, 12, 3);

    let mut exact_sv = State::zero(10);
    exact_sv.run(&circuit).expect("exact dense run");
    let d = 1024.0;
    let ideal: f64 = d * exact_sv
        .amplitudes()
        .iter()
        .map(|a| a.mag2().powi(2))
        .sum::<f64>()
        - 1.0;

    let mut sim = Simulator::builder().fidelity_driven(0.4, 0.85).build();
    let run = sim.run(&circuit).expect("approx run");
    let f = run.stats.fidelity;
    assert!(f < 0.999, "approximation must have engaged");

    let mut rng = StdRng::seed_from_u64(5);
    let samples: Vec<u64> = (0..8000).map(|_| sim.sample(&run, &mut rng)).collect();
    let score = xeb::xeb_against_state(&exact_sv, &samples);

    assert!(score > 0.1 * ideal, "score {score} vs ideal {ideal}");
    assert!(score < ideal * 1.1, "score {score} vs ideal {ideal}");
}

//! Resilience integration suite: under seeded fault injection (worker
//! panics, delays, forced aborts) the pool must self-heal, retry
//! deterministically, and produce results **byte-identical** to a
//! fault-free run at any worker count — and the resilience counters
//! must themselves be worker-count-invariant, because every one of
//! them counts deterministic per-job events, never scheduling
//! accidents.

use std::time::Duration;

use approxdd::backend::ExecError;
use approxdd::circuit::generators;
use approxdd::circuit::noise::NoiseModel;
use approxdd::exec::{silence_injected_panics, BuildPool, FaultPlan, PoolJob};
use approxdd::noise::{BuildNoisePool, TrajectoryConfig};
use approxdd::sim::{RetryPolicy, Simulator, Strategy};
use proptest::prelude::*;

/// A small batch with enough structure that fingerprints cover
/// non-trivial amplitudes, counts and approximation decisions.
fn batch() -> Vec<approxdd::circuit::Circuit> {
    (0..6).map(|s| generators::supremacy(2, 2, 8, s)).collect()
}

/// Runs `batch()` with `shots` per job on a fresh pool, returning each
/// job's fingerprint plus the pool's resilience counters.
fn run_batch(
    workers: usize,
    seed: u64,
    plan: Option<FaultPlan>,
) -> (Vec<u64>, (usize, usize, usize)) {
    let pool = Simulator::builder()
        .workers(workers)
        .seed(seed)
        .retry(RetryPolicy::new(3))
        .build_pool();
    pool.inject_faults(plan);
    let jobs: Vec<_> = batch()
        .into_iter()
        .map(|c| PoolJob::new(c).shots(128))
        .collect();
    let fingerprints: Vec<u64> = pool
        .run_jobs(jobs)
        .iter()
        .map(|r| r.as_ref().expect("job must recover").fingerprint())
        .collect();
    let stats = pool.stats();
    (
        fingerprints,
        (stats.respawns, stats.retries, stats.deadline_exceeded),
    )
}

/// The issue's acceptance scenario: an explicit plan that kills a
/// worker on one job and delays two others; with three attempts
/// allowed, every job must come back `Ok` with results byte-identical
/// to the fault-free run at 1, 2 and 8 workers — and the pool must run
/// a follow-up batch at full capacity afterwards.
#[test]
fn injected_panics_and_delays_recover_byte_identically() {
    silence_injected_panics();
    let run = |workers: usize, plan: Option<FaultPlan>| {
        let pool = Simulator::builder()
            .workers(workers)
            .seed(11)
            .retry(RetryPolicy::new(3))
            .build_pool();
        pool.inject_faults(plan);
        let jobs: Vec<_> = batch()
            .into_iter()
            .map(|c| PoolJob::new(c).shots(128))
            .collect();
        let results = pool.run_jobs(jobs);
        let fingerprints: Vec<u64> = results
            .iter()
            .map(|r| r.as_ref().expect("every job must recover").fingerprint())
            .collect();
        // Follow-up batch on the same (healed) pool, faults cleared.
        pool.inject_faults(None);
        let follow = pool.run_jobs(batch().into_iter().map(PoolJob::new).collect());
        assert!(follow.iter().all(Result::is_ok), "follow-up batch failed");
        assert_eq!(pool.alive_workers(), workers, "pool not at full capacity");
        (fingerprints, pool.stats())
    };
    let (clean, clean_stats) = run(2, None);
    assert_eq!(clean_stats.respawns, 0);
    assert_eq!(clean_stats.retries, 0);
    let plan = FaultPlan::new()
        .panic_on([1])
        .delay_on([0, 3], Duration::from_millis(10));
    for workers in [1, 2, 8] {
        let (faulted, stats) = run(workers, Some(plan.clone()));
        assert_eq!(clean, faulted, "fingerprints diverge at {workers} workers");
        assert_eq!(stats.respawns, 1, "one panic, one respawn");
        assert_eq!(stats.retries, 1, "only the panicked job re-dispatches");
        // The recovered job reports both attempts it consumed.
        assert_eq!(stats.deadline_exceeded, 0);
    }
}

/// Capacity-leak regression: a pool whose worker panicked mid-batch
/// must complete subsequent full-width batches with **all** N workers
/// participating — the respawned slot included.
#[test]
fn panicked_worker_mid_batch_does_not_leak_capacity() {
    silence_injected_panics();
    let workers = 3;
    let pool = Simulator::builder()
        .workers(workers)
        .seed(5)
        .retry(RetryPolicy::new(2))
        .build_pool();
    pool.inject_faults(Some(FaultPlan::new().panic_on([2])));
    let results = pool.run_jobs(batch().into_iter().map(PoolJob::new).collect());
    assert!(results.iter().all(Result::is_ok), "batch must recover");
    let stats = pool.stats();
    assert_eq!(stats.respawns, 1);
    assert_eq!(
        stats.per_worker.iter().map(|w| w.respawns).sum::<usize>(),
        1,
        "the respawn must be attributed to one worker slot"
    );
    assert_eq!(pool.alive_workers(), workers);
    // Delayed follow-up jobs keep every worker busy long enough that an
    // idle (leaked) slot would be caught not participating; a few
    // rounds compensate for scheduling noise, and per-worker `jobs`
    // counters accumulate across them.
    let mut all_active = false;
    for _round in 0..5 {
        pool.inject_faults(Some(
            FaultPlan::new().delay_on(0..3 * workers, Duration::from_millis(10)),
        ));
        let follow = pool.run_jobs(
            (0..3 * workers)
                .map(|_| PoolJob::new(generators::ghz(4)))
                .collect(),
        );
        assert!(follow.iter().all(Result::is_ok));
        assert_eq!(pool.alive_workers(), workers);
        if pool.stats().per_worker.iter().all(|w| w.jobs > 0) {
            all_active = true;
            break;
        }
    }
    assert!(
        all_active,
        "a worker slot never picked up jobs after healing: {:?}",
        pool.stats().per_worker
    );
}

/// Deadline + degradation ladder: a zero deadline aborts the job at the
/// first operation; with a coarser fallback installed the pool reruns
/// it once, deadline-free, and marks the outcome degraded. Without a
/// fallback the caller gets the typed error.
#[test]
fn zero_deadline_degrades_to_fallback_policy() {
    let circuit = generators::supremacy(2, 3, 10, 1);
    let pool = Simulator::builder().workers(2).seed(3).build_pool();
    let results = pool.run_jobs(vec![PoolJob::new(circuit.clone())
        .deadline(Duration::ZERO)
        .degrade_with(Strategy::fidelity_driven(0.6, 0.9))]);
    let outcome = results[0].as_ref().expect("degraded rerun must succeed");
    assert!(outcome.degraded, "fallback outcome must be marked degraded");
    assert_eq!(outcome.attempts, 2, "first try aborted, rerun succeeded");
    let stats = pool.stats();
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.respawns, 0, "deadlines never kill workers");

    let failing = pool.run_jobs(vec![PoolJob::new(circuit).deadline(Duration::ZERO)]);
    match failing[0]
        .as_ref()
        .expect_err("no fallback: must fail typed")
    {
        ExecError::DeadlineExceeded { job, budget, .. } => {
            assert_eq!(*job, 0);
            assert_eq!(*budget, Duration::ZERO);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

/// The noise crate inherits the whole fault-tolerance layer through its
/// inner pool: a panic-injected trajectory batch under retry produces
/// counts identical to the undisturbed run.
#[test]
fn noise_pool_inherits_retry_and_supervision() {
    silence_injected_panics();
    let circuit = generators::ghz(6);
    let config = TrajectoryConfig::new(8).shots(64);
    let run = |plan: Option<FaultPlan>| {
        let pool = Simulator::builder()
            .noise(NoiseModel::depolarizing(0.02).expect("valid rate"))
            .workers(2)
            .seed(7)
            .retry(RetryPolicy::new(3))
            .build_noise_pool();
        pool.pool().inject_faults(plan);
        let outcome = pool
            .run_trajectories(&circuit, &config)
            .expect("trajectories must recover");
        (outcome.counts, pool.pool().stats().respawns)
    };
    let (clean, clean_respawns) = run(None);
    assert_eq!(clean_respawns, 0);
    let (faulted, respawns) = run(Some(FaultPlan::new().panic_on([3])));
    assert_eq!(clean, faulted, "retried trajectory diverged");
    assert_eq!(respawns, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The central property: under an arbitrary seeded fault plan
    // (panics, delays and forced aborts at ~15/20/15 % rates), a pool
    // with three attempts per job returns every job Ok with
    // fingerprints byte-identical to the fault-free run — at 1, 2 and
    // 8 workers — and the (respawns, retries, deadline_exceeded)
    // counter sums are identical across worker counts.
    #[test]
    fn seeded_faults_never_change_results(root in any::<u64>()) {
        silence_injected_panics();
        let plan = FaultPlan::seeded(root)
            .rates(0.15, 0.2, 0.15)
            .delay_duration(Duration::from_millis(2));
        let (clean, clean_counters) = run_batch(2, root, None);
        prop_assert_eq!(clean_counters, (0, 0, 0));
        let mut counters = Vec::new();
        for workers in [1usize, 2, 8] {
            let (faulted, c) = run_batch(workers, root, Some(plan.clone()));
            prop_assert_eq!(&clean, &faulted, "fingerprints diverge at {} workers", workers);
            counters.push(c);
        }
        prop_assert_eq!(counters[0], counters[1]);
        prop_assert_eq!(counters[0], counters[2]);
    }
}

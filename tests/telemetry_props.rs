//! Telemetry invariance: metrics are a write-only side channel, so
//! toggling recording on or off must not move a single bit of
//! simulation output.
//!
//! Why this holds: instrumentation sites only *record* (relaxed atomic
//! adds into the global registry and clock reads that were already
//! taken for `runtime` statistics) — nothing in `approxdd-telemetry`
//! is ever read back into a scheduling, truncation, or sampling
//! decision, and no telemetry value feeds
//! [`PoolOutcome::fingerprint`]. This file lives in its own test
//! binary because it flips the process-global enable flag.

use approxdd::circuit::generators;
use approxdd::exec::{BuildPool, PoolJob};
use approxdd::sim::{Simulator, Strategy};
use approxdd::telemetry;
use proptest::prelude::*;

/// Fingerprints of a batch at a given worker count, under whatever
/// telemetry state the caller has set.
fn fingerprints(workers: usize, jobs: Vec<PoolJob>) -> Vec<u64> {
    let pool = Simulator::builder().seed(11).workers(workers).build_pool();
    pool.run_jobs(jobs)
        .into_iter()
        .map(|r| r.expect("pool job").fingerprint())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Random mixed batches (exact + truncating jobs, with sampling) run
    // with telemetry enabled and disabled at 1, 2 and 8 workers: every
    // configuration must reproduce the single-worker reference
    // fingerprints byte for byte.
    #[test]
    fn fingerprints_identical_with_telemetry_on_and_off(
        n in 3usize..7,
        depth in 4usize..10,
        seed in 0u64..500
    ) {
        let circuits: Vec<_> = (0..3u64)
            .map(|i| generators::random_circuit(n, depth, seed * 3 + i))
            .collect();
        let jobs = || {
            circuits
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let job = PoolJob::new(c.clone()).shots(64);
                    if i % 2 == 0 {
                        job
                    } else {
                        job.strategy(Strategy::memory_driven_table1(64, 0.95))
                    }
                })
                .collect::<Vec<_>>()
        };

        telemetry::set_enabled(true);
        let reference = fingerprints(1, jobs());
        for workers in [1usize, 2, 8] {
            telemetry::set_enabled(true);
            let on = fingerprints(workers, jobs());
            telemetry::set_enabled(false);
            let off = fingerprints(workers, jobs());
            telemetry::set_enabled(true);
            prop_assert_eq!(
                &reference, &on,
                "telemetry-on diverged at {} workers", workers
            );
            prop_assert_eq!(
                &reference, &off,
                "telemetry-off diverged at {} workers", workers
            );
        }
    }
}

/// The spans wired through the run loop actually record: one pooled
/// run must grow the phase-duration family (and the recorded phase
/// time is invisible to the outcome, per the proptest above).
#[test]
fn pooled_run_records_phase_series() {
    telemetry::set_enabled(true);
    let before = telemetry::phase_histogram("dd.apply").count();
    let pool = Simulator::builder().seed(11).workers(2).build_pool();
    let outcome = pool
        .run_jobs(vec![PoolJob::new(generators::ghz(6)).shots(32)])
        .pop()
        .expect("one job")
        .expect("job succeeds");
    assert!(outcome.counts.is_some());
    assert!(
        telemetry::phase_histogram("dd.apply").count() > before,
        "run loop must record dd.apply observations"
    );
    let text = telemetry::global().render_prometheus();
    assert!(text.contains("approxdd_phase_duration_nanoseconds_bucket"));
    assert!(text.contains("phase=\"pool.run_job\""));
}

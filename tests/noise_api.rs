//! Contract suite of the stochastic noise-trajectory subsystem:
//!
//! * determinism — [`TrajectoryOutcome::fingerprint`] is byte-identical
//!   across 1/2/8 workers for the same `(seed, model, circuit)`, and
//!   trajectory work does not perturb the existing
//!   `run_batch`/`sample_counts` fingerprints (the PR 2 determinism
//!   contract, extended to the noise seed domain);
//! * statistical correctness — for n ≤ 6 the trajectory-mean
//!   observable agrees with the exact density/Kraus baseline within a
//!   stated tolerance of `4·σ/√T + ε`, and sampled histograms of Pauli
//!   models converge to the exact diagonal in total variation;
//! * composition — trajectories run under the paper's approximation
//!   strategies report sub-unit measured fidelities with the mean/σ
//!   aggregated per run.

use std::sync::Arc;

use approxdd::circuit::generators;
use approxdd::circuit::Circuit;
use approxdd::exec::{BuildPool, SharedDiagonal};
use approxdd::noise::{
    exact, BuildNoisePool, NoiseChannel, NoiseModel, NoisePool, TrajectoryConfig, TrajectoryOutcome,
};
use approxdd::sim::{Simulator, Strategy};

fn nisq_model() -> NoiseModel {
    NoiseModel::new()
        .with_global(NoiseChannel::depolarizing(0.02).unwrap())
        .with_global(NoiseChannel::depolarizing2(0.03).unwrap())
        .with_qubit(0, NoiseChannel::amplitude_damping(0.05).unwrap())
}

fn pool_with(workers: usize, model: &NoiseModel, seed: u64) -> NoisePool {
    Simulator::builder()
        .noise(model.clone())
        .seed(seed)
        .workers(workers)
        .build_noise_pool()
}

fn run_with(workers: usize, circuit: &Circuit, cfg: &TrajectoryConfig) -> TrajectoryOutcome {
    pool_with(workers, &nisq_model(), 42)
        .run_trajectories(circuit, cfg)
        .expect("trajectories")
}

/// The acceptance-criteria determinism assertion: same (seed, model,
/// circuit) ⇒ same fingerprint on 1, 2 and 8 workers.
#[test]
fn trajectory_fingerprints_are_worker_count_invariant() {
    let circuit = generators::supremacy(2, 3, 8, 2);
    let ones: SharedDiagonal = Arc::new(|i: u64| f64::from(i.count_ones()));
    let cfg = TrajectoryConfig::new(10).shots(300).observable(ones);
    let one = run_with(1, &circuit, &cfg);
    let two = run_with(2, &circuit, &cfg);
    let eight = run_with(8, &circuit, &cfg);
    assert!(one.noise_ops_total > 0, "workload must actually be noisy");
    assert_eq!(one.fingerprint(), two.fingerprint(), "1 vs 2 workers");
    assert_eq!(one.fingerprint(), eight.fingerprint(), "1 vs 8 workers");
    // Outcome aggregates agree field-for-field, not just by hash.
    assert_eq!(one.counts, eight.counts);
    assert_eq!(
        one.fidelity_mean.to_bits(),
        eight.fidelity_mean.to_bits(),
        "bit-identical fidelity aggregation"
    );
    assert_eq!(one.observable_mean, eight.observable_mean);
    // A different root seed samples different trajectories.
    let other = pool_with(2, &nisq_model(), 43)
        .run_trajectories(&circuit, &cfg)
        .expect("trajectories");
    assert_ne!(one.fingerprint(), other.fingerprint());
}

/// The acceptance-criteria statistical assertion: for n ≤ 6 the
/// trajectory mean of a diagonal observable matches the exact
/// density/Kraus baseline within 4 standard errors (plus a small
/// absolute floor for the σ→0 edge).
#[test]
fn trajectory_mean_matches_exact_density_baseline() {
    let circuit = generators::ghz(5);
    let observable: SharedDiagonal = Arc::new(|i: u64| f64::from(i.count_ones()));
    let trajectories = 300;
    for model in [
        NoiseModel::new().with_global(NoiseChannel::bit_flip(0.1).unwrap()),
        NoiseModel::new().with_global(NoiseChannel::phase_flip(0.15).unwrap()),
        NoiseModel::depolarizing(0.05).unwrap(),
        NoiseModel::new().with_global(NoiseChannel::amplitude_damping(0.1).unwrap()),
        // γ = 1 regression: the nonzero K₀ = diag(1, 0) must survive
        // branch filtering or the ground state is annihilated.
        NoiseModel::new().with_global(NoiseChannel::amplitude_damping(1.0).unwrap()),
        nisq_model(),
    ] {
        let exact_value =
            exact::exact_expectation(&circuit, &model, &|i| f64::from(i.count_ones()))
                .expect("exact baseline");
        let outcome = pool_with(4, &model, 7)
            .run_trajectories(
                &circuit,
                &TrajectoryConfig::new(trajectories).observable(Arc::clone(&observable)),
            )
            .expect("trajectories");
        let mean = outcome.observable_mean.expect("observable requested");
        let stderr = outcome.observable_standard_error().expect("σ/√T");
        let tolerance = 4.0 * stderr + 1e-9;
        assert!(
            (mean - exact_value).abs() <= tolerance,
            "model {model:?}: trajectory mean {mean} vs exact {exact_value} (tolerance {tolerance})"
        );
    }
}

/// Sampled histograms of a Pauli-only model converge to the exact
/// noisy diagonal (Pauli trajectories are normalized, so counts are an
/// exact mixture sample — total variation shrinks with the budget).
#[test]
fn pauli_model_histograms_converge_to_exact_diagonal() {
    let circuit = generators::ghz(4);
    let model = NoiseModel::new()
        .with_global(NoiseChannel::depolarizing(0.04).unwrap())
        .with_global(NoiseChannel::depolarizing2(0.04).unwrap());
    let diag = exact::exact_diagonal(&circuit, &model).expect("exact");
    let outcome = pool_with(4, &model, 12)
        .run_trajectories(&circuit, &TrajectoryConfig::new(400).shots(100))
        .expect("trajectories");
    let tv = exact::total_variation(&outcome.counts, &diag);
    assert!(tv < 0.05, "total variation {tv}");
}

/// Noisy trajectories compose with the paper's approximation policies:
/// per-trajectory measured fidelity drops below 1 and the outcome
/// aggregates its mean and spread.
#[test]
fn trajectories_compose_with_approximation_strategies() {
    let circuit = generators::supremacy(2, 3, 12, 1);
    let model = NoiseModel::new().with_global(NoiseChannel::depolarizing(0.01).unwrap());
    let cfg = TrajectoryConfig::new(6)
        .shots(64)
        .strategy(Strategy::memory_driven_table1(1 << 4, 0.97));
    let outcome = pool_with(2, &model, 9)
        .run_trajectories(&circuit, &cfg)
        .expect("trajectories");
    assert!(
        outcome.fidelity_mean < 1.0,
        "approximation must fire: mean {}",
        outcome.fidelity_mean
    );
    assert!(outcome.records.iter().all(|r| r.fidelity <= 1.0));
    assert!(outcome.records.iter().any(|r| r.stats.approx_rounds > 0));
    // And the fingerprint contract holds under approximation too.
    let again = pool_with(8, &model, 9)
        .run_trajectories(&circuit, &cfg)
        .expect("trajectories");
    assert_eq!(outcome.fingerprint(), again.fingerprint());
}

/// The satellite guard: introducing the noise seed domain (and running
/// noise work on a pool) leaves the existing `run_batch` /
/// `sample_counts` streams untouched — batch fingerprints and sampled
/// histograms are identical whether or not trajectory work happened.
#[test]
fn noise_domain_does_not_perturb_existing_pool_fingerprints() {
    let circuits: Vec<Circuit> = (0..4).map(|s| generators::supremacy(2, 3, 8, s)).collect();
    let sample_target = generators::ghz(6);

    // Reference: a plain pool, no noise work at all.
    let plain = Simulator::builder().seed(77).workers(2).build_pool();
    let plain_fps: Vec<u64> = plain
        .run_batch(&circuits)
        .expect("batch")
        .iter()
        .map(approxdd::exec::PoolOutcome::fingerprint)
        .collect();
    let plain_counts = plain.sample_counts(&sample_target, 5000).expect("counts");

    // Same seed, but trajectory work runs first on the same pool.
    let noisy = pool_with(2, &nisq_model(), 77);
    noisy
        .run_trajectories(&generators::ghz(5), &TrajectoryConfig::new(5).shots(100))
        .expect("trajectories");
    let mixed_fps: Vec<u64> = noisy
        .pool()
        .run_batch(&circuits)
        .expect("batch")
        .iter()
        .map(approxdd::exec::PoolOutcome::fingerprint)
        .collect();
    let mixed_counts = noisy
        .pool()
        .sample_counts(&sample_target, 5000)
        .expect("counts");

    assert_eq!(plain_fps, mixed_fps, "run_batch fingerprints perturbed");
    assert_eq!(plain_counts, mixed_counts, "sample_counts perturbed");
}

/// Zero-trajectory and zero-shot requests degrade gracefully.
#[test]
fn degenerate_configs_are_well_defined() {
    let pool = pool_with(2, &nisq_model(), 1);
    let empty = pool
        .run_trajectories(&generators::ghz(3), &TrajectoryConfig::new(0))
        .expect("empty");
    assert_eq!(empty.trajectories, 0);
    assert!(empty.counts.is_empty());
    assert_eq!(empty.fidelity_mean, 0.0);
    let shotless = pool
        .run_trajectories(&generators::ghz(3), &TrajectoryConfig::new(3))
        .expect("no shots");
    assert!(shotless.counts.is_empty());
    assert_eq!(shotless.records.len(), 3);
}

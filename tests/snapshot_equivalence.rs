//! Snapshot equivalence: sharing a copy-on-write package snapshot
//! across pool workers is a pure throughput optimization, so
//! snapshot-on and snapshot-off runs must produce byte-identical
//! [`PoolOutcome::fingerprint`]s at every worker count, and the
//! delta-only GC must never free a node in the frozen tier.
//!
//! Why this holds: the snapshot is built on the submitting thread, in
//! input order, as a pure function of the job list — it pins exactly
//! the canonicalization history that per-job rebuilds would have
//! produced. Frozen arena slots are pinned below the watermark
//! (refcounts are no-ops, marks always read live) and the sweep
//! iterates the delta only. See docs/ARCHITECTURE.md.

use std::sync::Arc;

use approxdd::circuit::generators;
use approxdd::exec::{BuildPool, PoolJob};
use approxdd::sim::{Simulator, Strategy};
use proptest::prelude::*;

/// Fingerprints of a batch under one snapshot configuration.
fn fingerprints(share: bool, workers: usize, jobs: Vec<PoolJob>) -> Vec<u64> {
    let pool = Simulator::builder()
        .seed(9)
        .workers(workers)
        .record_size_series(true)
        .share_snapshot(share)
        .build_pool();
    pool.run_jobs(jobs)
        .into_iter()
        .map(|r| r.expect("pool job").fingerprint())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn snapshot_on_matches_snapshot_off_at_any_worker_count(
        n in 3usize..7,
        depth in 4usize..10,
        seed in 0u64..500
    ) {
        // Three related circuits per batch (shared gate families make
        // the frozen prefix actually earn hits), alternating exact and
        // truncating jobs so delta GC runs under the snapshot.
        let circuits: Vec<_> = (0..3u64)
            .map(|i| generators::random_circuit(n, depth, seed * 3 + i))
            .collect();
        let jobs = || {
            circuits
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let job = PoolJob::new(c.clone()).shots(128);
                    if i % 2 == 0 {
                        job
                    } else {
                        job.strategy(Strategy::memory_driven_table1(64, 0.95))
                    }
                })
                .collect::<Vec<_>>()
        };
        let reference = fingerprints(false, 1, jobs());
        for workers in [1usize, 2, 8] {
            let on = fingerprints(true, workers, jobs());
            prop_assert_eq!(
                &reference, &on,
                "snapshot-on diverged from snapshot-off at {} workers", workers
            );
        }
    }
}

/// Delta GC must respect the watermark: heavy truncation-driven
/// sweeps may free delta nodes freely, but every frozen node stays
/// alive and the frozen tier remains fully usable afterwards.
#[test]
fn delta_gc_never_frees_frozen_nodes() {
    let circuit = generators::supremacy(3, 3, 10, 0);
    let builder = || {
        Simulator::builder()
            .seed(5)
            .strategy(Strategy::memory_driven(32, 0.9))
            .gc_node_threshold(16)
    };
    let snapshot = Arc::new(
        builder()
            .build_snapshot([&circuit])
            .expect("snapshot build"),
    );
    let frozen = snapshot.frozen_nodes();
    assert!(frozen > 0, "the batch must freeze a nonempty gate prefix");

    let mut sim = builder().build_with_snapshot(snapshot.clone());
    let run = sim.run(&circuit).expect("layered run");
    assert!(
        run.stats.approx_rounds > 0,
        "test needs truncation pressure"
    );
    let stats = sim.package().stats();
    assert!(stats.gc_runs > 0, "test needs delta GC to actually fire");
    assert_eq!(
        stats.frozen_nodes(),
        frozen,
        "the frozen tier must survive every sweep intact"
    );
    assert!(stats.vnodes_alive >= stats.frozen_vnodes);
    assert!(stats.mnodes_alive >= stats.frozen_mnodes);

    // The shared tier is still fully usable after the sweeps: a fresh
    // layered simulator matches a plain rebuild bit for bit.
    let mut layered = builder().build_with_snapshot(snapshot);
    let mut plain = builder().build();
    let a = layered.run(&circuit).expect("layered rerun");
    let b = plain.run(&circuit).expect("plain run");
    assert_eq!(a.stats.max_dd_size, b.stats.max_dd_size);
    assert_eq!(a.stats.fidelity.to_bits(), b.stats.fidelity.to_bits());
    assert_eq!(layered.draw_counts(&a, 256), plain.draw_counts(&b, 256));
}

//! The unified `Backend` API, exercised generically: one
//! `check_backend::<B>()` suite runs the standard workloads (GHZ, QFT,
//! one supremacy instance) on any engine and validates its whole
//! lifecycle — prepare, run, batched runs, sampling, histograms,
//! amplitudes, probabilities, expectations, release — then the engines
//! are compared against each other for amplitude and fidelity
//! agreement.

use approxdd::backend::{amplitudes_of, Backend, BuildBackend, ExecError, StatevectorBackend};
use approxdd::circuit::{generators, Circuit};
use approxdd::complex::Cplx;
use approxdd::sim::Simulator;

fn workloads() -> Vec<Circuit> {
    vec![
        generators::ghz(8),
        generators::qft(6),
        generators::supremacy(2, 3, 10, 5),
    ]
}

/// The generic per-engine contract: every workload runs through the
/// full lifecycle with self-consistent results.
fn check_backend<B: Backend>(backend: &mut B) {
    let circuits = workloads();
    let exes: Vec<_> = circuits
        .iter()
        .map(|c| {
            backend
                .prepare(c)
                .unwrap_or_else(|e| panic!("{}: prepare {}: {e}", backend.name(), c.name()))
        })
        .collect();

    // Batched and single runs must describe the same states.
    let outcomes = backend.run_batch(&exes).expect("batch");
    assert_eq!(outcomes.len(), circuits.len());
    for (outcome, circuit) in outcomes.iter().zip(&circuits) {
        assert_eq!(outcome.n_qubits(), circuit.n_qubits());
        assert_eq!(
            outcome.stats.gates_applied,
            circuit.gate_count(),
            "{}: {}",
            backend.name(),
            circuit.name()
        );
        assert!((outcome.stats.fidelity - 1.0).abs() < 1e-12, "exact run");

        // Amplitudes are a unit vector; probabilities match them.
        let amps = backend.amplitudes(outcome).expect("amplitudes");
        assert_eq!(amps.len(), 1 << circuit.n_qubits());
        let norm: f64 = amps.iter().map(|a| a.mag2()).sum();
        assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
        for idx in [0u64, (1 << circuit.n_qubits()) - 1] {
            let p = backend.probability(outcome, idx).expect("probability");
            assert!((p - amps[idx as usize].mag2()).abs() < 1e-12);
        }

        // Expectation of the identity observable is 1.
        let one = backend.expectation(outcome, &|_| 1.0).expect("expectation");
        assert!((one - 1.0).abs() < 1e-9);

        // Histograms agree with per-shot sampling under the same seed.
        backend.reseed(1234);
        let counts = backend.sample_counts(outcome, 200);
        assert_eq!(counts.values().sum::<usize>(), 200);
        backend.reseed(1234);
        let mut replay = std::collections::HashMap::new();
        for _ in 0..200 {
            *replay.entry(backend.sample(outcome)).or_insert(0) += 1;
        }
        assert_eq!(
            counts,
            replay,
            "{}: sampling not deterministic",
            backend.name()
        );
    }
    for outcome in outcomes {
        backend.release(outcome);
    }

    // Out-of-range queries fail loudly rather than lying.
    let exe = backend.prepare(&generators::ghz(3)).expect("prepare");
    let run = backend.run(&exe).expect("run");
    assert!(matches!(
        backend.probability(&run, 1 << 3),
        Err(ExecError::BasisOutOfRange { .. })
    ));
    backend.release(run);
}

#[test]
fn dd_backend_satisfies_the_contract() {
    check_backend(&mut Simulator::builder().seed(5).build_backend());
}

#[test]
fn statevector_backend_satisfies_the_contract() {
    check_backend(&mut StatevectorBackend::with_seed(5));
}

#[test]
fn engines_agree_on_amplitudes_and_fidelity() {
    let mut dd = Simulator::builder().seed(9).build_backend();
    let mut sv = StatevectorBackend::with_seed(9);
    for circuit in workloads() {
        let a = amplitudes_of(&mut dd, &circuit).expect("dd");
        let b = amplitudes_of(&mut sv, &circuit).expect("sv");
        let mut ip = Cplx::ZERO;
        for (x, y) in a.iter().zip(&b) {
            assert!(
                (*x - *y).mag() < 1e-9,
                "{}: amplitude mismatch {x} vs {y}",
                circuit.name()
            );
            ip += x.conj() * *y;
        }
        let fidelity = ip.mag2();
        assert!(
            (fidelity - 1.0).abs() < 1e-9,
            "{}: cross-engine fidelity {fidelity}",
            circuit.name()
        );
    }
}

#[test]
fn executables_are_portable_across_engines() {
    // Preparation is engine-agnostic: an executable prepared by one
    // backend runs on the other.
    let circuit = generators::w_state(6);
    let mut dd = Simulator::builder().build_backend();
    let mut sv = StatevectorBackend::new();
    let exe = dd.prepare(&circuit).expect("prepare on dd");
    let sv_run = sv.run(&exe).expect("run on sv");
    let dd_run = dd.run(&exe).expect("run on dd");
    let p_dd = dd.probability(&dd_run, 1).expect("dd p");
    let p_sv = sv.probability(&sv_run, 1).expect("sv p");
    assert!((p_dd - p_sv).abs() < 1e-12);
    assert!((p_dd - 1.0 / 6.0).abs() < 1e-9);
    dd.release(dd_run);
    sv.release(sv_run);
}

#[test]
fn approximating_backend_reports_honest_fidelity_vs_exact_engine() {
    // The comparative shape of the paper as one generic flow: an
    // approximate DD run scored against the exact dense baseline.
    let circuit = generators::supremacy(2, 3, 12, 7);
    let mut approx = Simulator::builder()
        .fidelity_driven(0.6, 0.9)
        .seed(1)
        .build_backend();
    let run = approxdd::backend::run_circuit(&mut approx, &circuit).expect("approx");
    let reported = run.stats.fidelity;
    assert!(run.stats.approx_rounds > 0, "approximation must engage");
    let approx_amps = approx.amplitudes(&run).expect("amps");
    approx.release(run);

    let exact_amps = amplitudes_of(&mut StatevectorBackend::new(), &circuit).expect("exact");
    let mut ip = Cplx::ZERO;
    for (e, a) in exact_amps.iter().zip(&approx_amps) {
        ip += e.conj() * *a;
    }
    let measured = ip.mag2();
    assert!(reported >= 0.6 - 1e-9);
    assert!(
        (measured - reported).abs() < 0.05,
        "reported {reported} vs measured {measured}"
    );
}

//! The unified `Backend` API, exercised generically: one
//! `check_backend::<B>()` suite runs the standard workloads (GHZ, QFT,
//! one supremacy instance) on any engine and validates its whole
//! lifecycle — prepare, run, batched runs, sampling, histograms,
//! amplitudes, probabilities, expectations, release — then the engines
//! are compared against each other for amplitude and fidelity
//! agreement.
//!
//! The second half is the `BackendPool` contract suite: batch results
//! and sharded sampling must be byte-identical across worker counts,
//! empty and oversized batches must behave, and a poisoned job must
//! neither deadlock the queue nor disturb its neighbours' results.

use approxdd::backend::{
    amplitudes_of, Backend, BuildBackend, ExecError, HybridBackend, StabilizerBackend,
    StatevectorBackend,
};
use approxdd::circuit::{generators, Circuit};
use approxdd::complex::Cplx;
use approxdd::exec::{BuildPool, PoolJob};
use approxdd::sim::{Engine, Simulator, Strategy};
use proptest::prelude::*;

fn workloads() -> Vec<Circuit> {
    vec![
        generators::ghz(8),
        generators::qft(6),
        generators::supremacy(2, 3, 10, 5),
    ]
}

/// Clifford-only workloads for the tableau engine (which rejects
/// anything else at prepare time).
fn clifford_workloads() -> Vec<Circuit> {
    vec![
        generators::ghz(8),
        generators::random_clifford(6, 8, 3),
        generators::random_clifford(10, 5, 4),
    ]
}

/// The generic per-engine contract: every workload runs through the
/// full lifecycle with self-consistent results.
fn check_backend<B: Backend>(backend: &mut B) {
    check_backend_on(backend, workloads());
}

fn check_backend_on<B: Backend>(backend: &mut B, circuits: Vec<Circuit>) {
    let exes: Vec<_> = circuits
        .iter()
        .map(|c| {
            backend
                .prepare(c)
                .unwrap_or_else(|e| panic!("{}: prepare {}: {e}", backend.name(), c.name()))
        })
        .collect();

    // Batched and single runs must describe the same states.
    let outcomes = backend.run_batch(&exes).expect("batch");
    assert_eq!(outcomes.len(), circuits.len());
    for (outcome, circuit) in outcomes.iter().zip(&circuits) {
        assert_eq!(outcome.n_qubits(), circuit.n_qubits());
        assert_eq!(
            outcome.stats.gates_applied,
            circuit.gate_count(),
            "{}: {}",
            backend.name(),
            circuit.name()
        );
        assert!((outcome.stats.fidelity - 1.0).abs() < 1e-12, "exact run");

        // Amplitudes are a unit vector; probabilities match them.
        let amps = backend.amplitudes(outcome).expect("amplitudes");
        assert_eq!(amps.len(), 1 << circuit.n_qubits());
        let norm: f64 = amps.iter().map(|a| a.mag2()).sum();
        assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
        for idx in [0u64, (1 << circuit.n_qubits()) - 1] {
            let p = backend.probability(outcome, idx).expect("probability");
            assert!((p - amps[idx as usize].mag2()).abs() < 1e-12);
        }

        // Expectation of the identity observable is 1.
        let one = backend.expectation(outcome, &|_| 1.0).expect("expectation");
        assert!((one - 1.0).abs() < 1e-9);

        // Histograms agree with per-shot sampling under the same seed.
        backend.reseed(1234);
        let counts = backend.sample_counts(outcome, 200);
        assert_eq!(counts.values().sum::<usize>(), 200);
        backend.reseed(1234);
        let mut replay = std::collections::HashMap::new();
        for _ in 0..200 {
            *replay.entry(backend.sample(outcome)).or_insert(0) += 1;
        }
        assert_eq!(
            counts,
            replay,
            "{}: sampling not deterministic",
            backend.name()
        );
    }
    for outcome in outcomes {
        backend.release(outcome);
    }

    // Out-of-range queries fail loudly rather than lying.
    let exe = backend.prepare(&generators::ghz(3)).expect("prepare");
    let run = backend.run(&exe).expect("run");
    assert!(matches!(
        backend.probability(&run, 1 << 3),
        Err(ExecError::BasisOutOfRange { .. })
    ));
    backend.release(run);
}

#[test]
fn dd_backend_satisfies_the_contract() {
    check_backend(&mut Simulator::builder().seed(5).build_backend());
}

#[test]
fn statevector_backend_satisfies_the_contract() {
    check_backend(&mut StatevectorBackend::with_seed(5));
}

#[test]
fn stabilizer_backend_satisfies_the_contract() {
    check_backend_on(&mut StabilizerBackend::with_seed(5), clifford_workloads());
}

#[test]
fn hybrid_backend_satisfies_the_contract() {
    // The full workloads: GHZ is pure Clifford (tableau path), QFT and
    // supremacy have non-Clifford tails (synthesis + DD path).
    check_backend(&mut HybridBackend::with_seed(
        Simulator::builder().seed(5).build(),
        5,
    ));
}

#[test]
fn engine_knob_backends_satisfy_the_contract() {
    // The builder's engine knob produces the same contract-conforming
    // backends through the pooled construction path.
    let mut hybrid = Simulator::builder()
        .seed(5)
        .engine(Engine::Hybrid)
        .build_engine_backend();
    check_backend(&mut hybrid);
    let mut stab = Simulator::builder()
        .seed(5)
        .engine(Engine::Stabilizer)
        .build_engine_backend();
    check_backend_on(&mut stab, clifford_workloads());
}

#[test]
fn stabilizer_rejects_non_clifford_and_wide_registers() {
    let backend = StabilizerBackend::new();
    assert!(matches!(
        backend.prepare(&generators::qft(4)),
        Err(ExecError::Stabilizer(_))
    ));
    assert!(matches!(
        backend.prepare(&generators::ghz(64)),
        Err(ExecError::Stabilizer(_))
    ));
}

#[test]
fn hybrid_reports_the_clifford_prefix() {
    let mut backend = HybridBackend::new(Simulator::builder().build());

    // Pure Clifford: the outcome is a tableau, no DD stats at all.
    let ghz = generators::ghz(12);
    let exe = backend.prepare(&ghz).expect("prepare");
    let run = backend.run(&exe).expect("run");
    assert_eq!(run.stats.engine, "hybrid");
    assert_eq!(run.stats.clifford_prefix_len, ghz.gate_count());
    assert!(run.stats.dd.is_none(), "pure Clifford never touches DD");
    backend.release(run);

    // Clifford prefix then a T gate: the prefix length is exactly the
    // split point, DD stats cover the suffix.
    let mut mixed = Circuit::new(4, "mixed");
    mixed.h(0).cx(0, 1).s(2).cz(1, 3).t(0).h(3);
    let exe = backend.prepare(&mixed).expect("prepare");
    let run = backend.run(&exe).expect("run");
    assert_eq!(run.stats.clifford_prefix_len, 4);
    assert_eq!(run.stats.gates_applied, 6);
    assert!(run.stats.dd.is_some(), "suffix runs on the DD engine");
    backend.release(run);
}

#[test]
fn engines_agree_on_amplitudes_and_fidelity() {
    let mut dd = Simulator::builder().seed(9).build_backend();
    let mut sv = StatevectorBackend::with_seed(9);
    for circuit in workloads() {
        let a = amplitudes_of(&mut dd, &circuit).expect("dd");
        let b = amplitudes_of(&mut sv, &circuit).expect("sv");
        let mut ip = Cplx::ZERO;
        for (x, y) in a.iter().zip(&b) {
            assert!(
                (*x - *y).mag() < 1e-9,
                "{}: amplitude mismatch {x} vs {y}",
                circuit.name()
            );
            ip += x.conj() * *y;
        }
        let fidelity = ip.mag2();
        assert!(
            (fidelity - 1.0).abs() < 1e-9,
            "{}: cross-engine fidelity {fidelity}",
            circuit.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Random Clifford circuits up to 10 qubits: the tableau engine's
    // amplitudes must agree with both the DD and the dense statevector
    // engine, elementwise and in probability.
    #[test]
    fn stabilizer_matches_dd_and_statevector_on_random_cliffords(
        n in 2usize..11,
        depth in 1usize..9,
        seed in 0u64..1000
    ) {
        let circuit = generators::random_clifford(n, depth, seed);
        let mut stab = StabilizerBackend::with_seed(seed);
        let mut dd = Simulator::builder().seed(seed).build_backend();
        let mut sv = StatevectorBackend::with_seed(seed);
        let a = amplitudes_of(&mut stab, &circuit).expect("stabilizer");
        let b = amplitudes_of(&mut dd, &circuit).expect("dd");
        let c = amplitudes_of(&mut sv, &circuit).expect("sv");
        for (i, ((x, y), z)) in a.iter().zip(&b).zip(&c).enumerate() {
            prop_assert!((*x - *y).mag() < 1e-9,
                "{}: basis {i}: stabilizer {x} vs dd {y}", circuit.name());
            prop_assert!((*x - *z).mag() < 1e-9,
                "{}: basis {i}: stabilizer {x} vs sv {z}", circuit.name());
        }
    }

    // Hybrid dispatch is exact regardless of where the circuit's
    // Clifford prefix ends: a random Clifford prefix with a
    // non-Clifford tail matches the dense engine.
    #[test]
    fn hybrid_matches_statevector_on_clifford_prefixed_circuits(
        n in 2usize..9,
        depth in 1usize..7,
        seed in 0u64..1000
    ) {
        let mut circuit = generators::random_clifford(n, depth, seed);
        circuit.t(0).rz(0.7, n - 1).h(0);
        let mut hybrid = HybridBackend::with_seed(Simulator::builder().seed(seed).build(), seed);
        let mut sv = StatevectorBackend::with_seed(seed);
        let a = amplitudes_of(&mut hybrid, &circuit).expect("hybrid");
        let b = amplitudes_of(&mut sv, &circuit).expect("sv");
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            prop_assert!((*x - *y).mag() < 1e-9,
                "{}: basis {i}: hybrid {x} vs sv {y}", circuit.name());
        }
    }
}

#[test]
fn executables_are_portable_across_engines() {
    // Preparation is engine-agnostic: an executable prepared by one
    // backend runs on the other.
    let circuit = generators::w_state(6);
    let mut dd = Simulator::builder().build_backend();
    let mut sv = StatevectorBackend::new();
    let exe = dd.prepare(&circuit).expect("prepare on dd");
    let sv_run = sv.run(&exe).expect("run on sv");
    let dd_run = dd.run(&exe).expect("run on dd");
    let p_dd = dd.probability(&dd_run, 1).expect("dd p");
    let p_sv = sv.probability(&sv_run, 1).expect("sv p");
    assert!((p_dd - p_sv).abs() < 1e-12);
    assert!((p_dd - 1.0 / 6.0).abs() < 1e-9);
    dd.release(dd_run);
    sv.release(sv_run);
}

// ---------------------------------------------------------------------
// BackendPool contract suite
// ---------------------------------------------------------------------

/// A mixed batch that exercises exact runs, approximation and sampling.
fn pool_jobs() -> Vec<PoolJob> {
    let mut jobs: Vec<PoolJob> = (0..4)
        .map(|seed| PoolJob::new(generators::supremacy(2, 3, 12, seed)).shots(500))
        .collect();
    jobs.push(
        PoolJob::new(generators::supremacy(2, 3, 12, 9))
            .strategy(Strategy::fidelity_driven(0.6, 0.9))
            .shots(500),
    );
    jobs.push(PoolJob::new(generators::ghz(10)).shots(1000));
    jobs
}

#[test]
fn pool_results_are_identical_across_worker_counts() {
    // The determinism acceptance criterion: same root seed, any worker
    // count -> byte-identical outcomes (fingerprints cover every field
    // except wall-clock runtime) and byte-identical histograms.
    let fingerprints: Vec<Vec<u64>> = [1usize, 2, 8]
        .iter()
        .map(|&workers| {
            let pool = Simulator::builder().seed(42).workers(workers).build_pool();
            pool.run_jobs(pool_jobs())
                .into_iter()
                .map(|r| r.expect("pool job").fingerprint())
                .collect()
        })
        .collect();
    assert_eq!(fingerprints[0], fingerprints[1], "1 vs 2 workers");
    assert_eq!(fingerprints[0], fingerprints[2], "1 vs 8 workers");

    let circuit = generators::supremacy(2, 3, 10, 3);
    let reference = Simulator::builder()
        .seed(42)
        .workers(1)
        .build_pool()
        .sample_counts(&circuit, 5000)
        .expect("counts");
    assert_eq!(reference.values().sum::<usize>(), 5000);
    for workers in [2usize, 8] {
        let counts = Simulator::builder()
            .seed(42)
            .workers(workers)
            .build_pool()
            .sample_counts(&circuit, 5000)
            .expect("counts");
        assert_eq!(reference, counts, "sample_counts with {workers} workers");
    }
}

#[test]
fn stabilizer_and_hybrid_pool_results_are_identical_across_worker_counts() {
    // The hybrid acceptance criterion: engine-knob pools fingerprint
    // byte-identically across 1/2/8 workers, for both pure-Clifford
    // batches on the tableau engine and mixed batches on hybrid
    // dispatch.
    let stab_jobs = || -> Vec<PoolJob> {
        (0..4)
            .map(|seed| PoolJob::new(generators::random_clifford(8, 6, seed)).shots(500))
            .collect()
    };
    let hybrid_jobs = || -> Vec<PoolJob> {
        vec![
            PoolJob::new(generators::ghz(10)).shots(500),
            PoolJob::new(generators::random_clifford(8, 6, 1)).shots(500),
            PoolJob::new(generators::supremacy(2, 3, 10, 2)).shots(500),
            PoolJob::new(generators::qft(6)).shots(500),
        ]
    };
    for (engine, jobs) in [
        (Engine::Stabilizer, stab_jobs as fn() -> Vec<PoolJob>),
        (Engine::Hybrid, hybrid_jobs as fn() -> Vec<PoolJob>),
    ] {
        let fingerprints: Vec<Vec<u64>> = [1usize, 2, 8]
            .iter()
            .map(|&workers| {
                let pool = Simulator::builder()
                    .engine(engine)
                    .seed(42)
                    .workers(workers)
                    .build_pool();
                pool.run_jobs(jobs())
                    .into_iter()
                    .map(|r| r.expect("pool job").fingerprint())
                    .collect()
            })
            .collect();
        assert_eq!(fingerprints[0], fingerprints[1], "{engine:?}: 1 vs 2");
        assert_eq!(fingerprints[0], fingerprints[2], "{engine:?}: 1 vs 8");
    }

    // Sharded sampling through the tableau engine is worker-count
    // invariant too.
    let circuit = generators::random_clifford(10, 6, 9);
    let reference = Simulator::builder()
        .engine(Engine::Stabilizer)
        .seed(42)
        .workers(1)
        .build_pool()
        .sample_counts(&circuit, 5000)
        .expect("counts");
    assert_eq!(reference.values().sum::<usize>(), 5000);
    for workers in [2usize, 8] {
        let counts = Simulator::builder()
            .engine(Engine::Stabilizer)
            .seed(42)
            .workers(workers)
            .build_pool()
            .sample_counts(&circuit, 5000)
            .expect("counts");
        assert_eq!(reference, counts, "stabilizer sharding, {workers} workers");
    }
}

#[test]
fn pool_matches_single_threaded_backend() {
    // The pool is a faster way to run the same engine: its per-job
    // statistics must equal a fresh single-threaded backend's.
    let circuit = generators::supremacy(2, 3, 12, 2);
    let pool = Simulator::builder().seed(7).workers(3).build_pool();
    let pooled = pool
        .run_jobs(vec![
            PoolJob::new(circuit.clone()).strategy(Strategy::fidelity_driven(0.6, 0.9))
        ])
        .pop()
        .unwrap()
        .expect("pool job");

    let mut serial = Simulator::builder()
        .fidelity_driven(0.6, 0.9)
        .seed(7)
        .build_backend();
    let run = approxdd::backend::run_circuit(&mut serial, &circuit).expect("serial");
    assert_eq!(pooled.stats.gates_applied, run.stats.gates_applied);
    assert_eq!(pooled.stats.peak_size, run.stats.peak_size);
    assert_eq!(pooled.stats.approx_rounds, run.stats.approx_rounds);
    assert_eq!(
        pooled.stats.fidelity.to_bits(),
        run.stats.fidelity.to_bits()
    );
    assert_eq!(pooled.stats.nodes_removed, run.stats.nodes_removed);
    serial.release(run);
}

#[test]
fn pool_runs_empty_batches_and_batches_larger_than_the_pool() {
    let pool = Simulator::builder().workers(2).build_pool();
    assert!(pool.run_batch(&[]).expect("empty").is_empty());

    // 9 jobs over 2 workers: everything completes, in input order.
    let circuits: Vec<Circuit> = (0..9).map(|n| generators::ghz(3 + n)).collect();
    let outcomes = pool.run_batch(&circuits).expect("oversized batch");
    assert_eq!(outcomes.len(), 9);
    for (outcome, circuit) in outcomes.iter().zip(&circuits) {
        assert_eq!(outcome.name, circuit.name());
        assert_eq!(outcome.n_qubits, circuit.n_qubits());
    }
    let stats = pool.stats();
    assert_eq!(stats.jobs_completed(), 9);
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn poisoned_job_neither_deadlocks_nor_loses_neighbours() {
    let pool = Simulator::builder().seed(5).workers(2).build_pool();
    let mut jobs: Vec<PoolJob> = (0..6)
        .map(|seed| PoolJob::new(generators::supremacy(2, 2, 8, seed)))
        .collect();
    // Job 2 is poisoned: an invalid strategy fails preparation.
    jobs[2] = PoolJob::new(generators::ghz(4)).strategy(Strategy::FidelityDriven {
        final_fidelity: 2.0,
        round_fidelity: 0.9,
    });
    let results = pool.run_jobs(jobs);
    assert_eq!(results.len(), 6);
    for (i, result) in results.iter().enumerate() {
        if i == 2 {
            assert!(
                matches!(result, Err(ExecError::Sim(_))),
                "job 2 must fail loudly: {result:?}"
            );
        } else {
            assert!(result.is_ok(), "job {i} must survive the poisoned job");
        }
    }
    // The queue is intact: the pool keeps serving work afterwards.
    let counts = pool
        .sample_counts(&generators::ghz(5), 300)
        .expect("pool usable after poison");
    assert_eq!(counts.values().sum::<usize>(), 300);
    // run_batch's fail-fast view surfaces errors instead of hanging: a
    // pool whose template strategy is invalid fails every job loudly.
    let bad_pool = Simulator::builder()
        .fidelity_driven(2.0, 0.9)
        .workers(2)
        .build_pool();
    assert!(matches!(
        bad_pool.run_batch(&[generators::ghz(3)]),
        Err(ExecError::Sim(_))
    ));
}

/// The speed acceptance criterion: a 4-worker pool finishes a
/// 16-circuit batch in ≤ 0.6× the 1-worker wall time. Needs release
/// optimization and ≥ 4 real cores, so it is ignored by default — CI's
/// bench-smoke job reports the same ratio in its JSON artifact, and
/// this assertion can be run explicitly with
/// `cargo test --release -- --ignored pool_speedup`.
#[test]
#[ignore = "timing assertion: needs --release and a multi-core machine"]
fn pool_speedup_on_smoke_workload() {
    // Same workload and same measurement helper as table1's smoke
    // probe, so this assertion and the CI-reported ratio cannot
    // silently diverge.
    let circuits: Vec<Circuit> = (0..16)
        .map(|seed| generators::supremacy(4, 4, 8, seed))
        .collect();
    let template = || Simulator::builder().strategy(Strategy::memory_driven_table1(1 << 11, 0.97));
    let serial = approxdd_bench::pool_batch_walltime(template(), 1, &circuits).expect("1 worker");
    let parallel =
        approxdd_bench::pool_batch_walltime(template(), 4, &circuits).expect("4 workers");
    let ratio = parallel.as_secs_f64() / serial.as_secs_f64();
    assert!(
        ratio <= 0.6,
        "4 workers took {ratio:.3}x the 1-worker wall time \
         ({parallel:?} vs {serial:?}) — expected <= 0.6x"
    );
}

#[test]
fn approximating_backend_reports_honest_fidelity_vs_exact_engine() {
    // The comparative shape of the paper as one generic flow: an
    // approximate DD run scored against the exact dense baseline.
    let circuit = generators::supremacy(2, 3, 12, 7);
    let mut approx = Simulator::builder()
        .fidelity_driven(0.6, 0.9)
        .seed(1)
        .build_backend();
    let run = approxdd::backend::run_circuit(&mut approx, &circuit).expect("approx");
    let reported = run.stats.fidelity;
    assert!(run.stats.approx_rounds > 0, "approximation must engage");
    let approx_amps = approx.amplitudes(&run).expect("amps");
    approx.release(run);

    let exact_amps = amplitudes_of(&mut StatevectorBackend::new(), &circuit).expect("exact");
    let mut ip = Cplx::ZERO;
    for (e, a) in exact_amps.iter().zip(&approx_amps) {
        ip += e.conj() * *a;
    }
    let measured = ip.mag2();
    assert!(reported >= 0.6 - 1e-9);
    assert!(
        (measured - reported).abs() < 0.05,
        "reported {reported} vs measured {measured}"
    );
}

//! Integration: Shor's algorithm factors correctly through the whole
//! stack — circuit construction, approximate DD simulation, sampling,
//! and classical post-processing — reproducing the paper's key claim
//! that ~50 % fidelity suffices.

use approxdd::shor::{classical, factor, find_order, FactorOptions};
use approxdd::sim::Strategy;

fn approx_opts(a: u64) -> FactorOptions {
    FactorOptions {
        strategy: Strategy::FidelityDriven {
            final_fidelity: 0.5,
            round_fidelity: 0.9,
        },
        base: Some(a),
        ..FactorOptions::default()
    }
}

#[test]
fn factors_15_at_half_fidelity() {
    let out = factor(15, &approx_opts(7)).expect("factor 15");
    let (p, q) = out.factors;
    assert_eq!(p * q, 15);
    assert!(p > 1 && q > 1);
    let stats = out.sim_stats.expect("quantum run happened");
    assert!(stats.fidelity >= 0.5 - 1e-9);
    assert!(stats.approx_rounds > 0, "approximation must engage");
}

#[test]
fn factors_21_at_half_fidelity() {
    let out = factor(21, &approx_opts(2)).expect("factor 21");
    assert_eq!(out.factors.0 * out.factors.1, 21);
}

#[test]
fn factors_33_at_half_fidelity_like_table1() {
    // shor_33_5 is the smallest Table-I instance (18 qubits).
    let out = factor(33, &approx_opts(5)).expect("factor 33");
    let (p, q) = out.factors;
    assert_eq!(p * q, 33);
    assert!((p == 3 && q == 11) || (p == 11 && q == 3));
    let stats = out.sim_stats.expect("quantum stats");
    assert!(
        stats.fidelity >= 0.5 - 1e-9,
        "fidelity {} below the guaranteed bound",
        stats.fidelity
    );
}

#[test]
fn approximate_order_finding_agrees_with_brute_force() {
    for (n, a) in [(15u64, 7u64), (15, 2), (21, 2), (33, 5)] {
        let found = find_order(n, a, &approx_opts(a)).expect("order");
        let brute = classical::multiplicative_order(a, n).expect("brute order");
        // Continued fractions may land on a multiple's divisor first,
        // but the verified minimum must be the true order.
        assert_eq!(found.order, brute, "order of {a} mod {n}");
    }
}

#[test]
fn exact_and_approximate_runs_agree_on_factors() {
    for n in [15u64, 21, 35] {
        let exact = factor(
            n,
            &FactorOptions {
                strategy: Strategy::Exact,
                ..FactorOptions::default()
            },
        )
        .expect("exact factor");
        let approx = factor(n, &FactorOptions::default()).expect("approx factor");
        assert_eq!(exact.factors.0 * exact.factors.1, n);
        assert_eq!(approx.factors.0 * approx.factors.1, n);
    }
}

#[test]
fn approximation_shrinks_shor_dd() {
    // The fidelity-driven run must reach a smaller max DD than exact on
    // the same instance (the Table-I effect).
    let circuit = approxdd::shor::shor_circuit(33, 5).expect("circuit");
    let mut exact = approxdd::sim::Simulator::builder().exact().build();
    let exact_run = exact.run(&circuit).expect("exact");
    let mut approx = approxdd::sim::Simulator::builder()
        .fidelity_driven(0.5, 0.9)
        .build();
    let approx_run = approx.run(&circuit).expect("approx");
    assert!(
        approx_run.stats.max_dd_size <= exact_run.stats.max_dd_size,
        "approx {} vs exact {}",
        approx_run.stats.max_dd_size,
        exact_run.stats.max_dd_size
    );
}

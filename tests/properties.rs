//! Property-based integration tests of the paper's mathematical claims:
//! Lemma 1 (fidelity multiplicativity under chained truncation),
//! unitary invariance of fidelity, contribution normalization, and
//! truncation lower bounds — on randomized states and circuits.

use approxdd::complex::Cplx;
use approxdd::dd::{Package, RemovalStrategy};
use proptest::prelude::*;

/// Strategy: a random normalized amplitude vector on `n` qubits.
fn unit_state(n: usize) -> impl Strategy<Value = Vec<Cplx>> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1 << n).prop_filter_map(
        "non-degenerate norm",
        |pairs| {
            let norm: f64 = pairs
                .iter()
                .map(|(re, im)| re * re + im * im)
                .sum::<f64>()
                .sqrt();
            if norm < 1e-3 {
                return None;
            }
            Some(
                pairs
                    .into_iter()
                    .map(|(re, im)| Cplx::new(re / norm, im / norm))
                    .collect(),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn contributions_sum_to_one_per_level(amps in unit_state(4)) {
        let mut p = Package::new();
        let root = p.from_amplitudes(&amps).unwrap();
        let cm = p.contributions(root);
        for var in 0..cm.level_count() {
            let sum = cm.level_sum(var);
            prop_assert!((sum - 1.0).abs() < 1e-9, "level {var}: {sum}");
        }
    }

    #[test]
    fn truncation_honors_budget_bound(amps in unit_state(4), budget in 0.0f64..0.5) {
        let mut p = Package::new();
        let root = p.from_amplitudes(&amps).unwrap();
        p.inc_ref(root);
        let r = p.truncate(root, RemovalStrategy::Budget(budget)).unwrap();
        prop_assert!(r.fidelity >= 1.0 - budget - 1e-9);
        // Reported fidelity equals the true overlap.
        let measured = p.fidelity(root, r.edge);
        prop_assert!((measured - r.fidelity).abs() < 1e-8,
            "reported {} measured {}", r.fidelity, measured);
        // Output is unit norm.
        prop_assert!((r.edge.w.mag() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lemma1_chained_truncations_multiply(amps in unit_state(4),
                                           b1 in 0.01f64..0.3,
                                           b2 in 0.01f64..0.3) {
        let mut p = Package::new();
        let psi = p.from_amplitudes(&amps).unwrap();
        p.inc_ref(psi);
        let r1 = p.truncate(psi, RemovalStrategy::Budget(b1)).unwrap();
        p.inc_ref(r1.edge);
        let r2 = p.truncate(r1.edge, RemovalStrategy::Budget(b2)).unwrap();
        let total = p.fidelity(psi, r2.edge);
        let product = r1.fidelity * r2.fidelity;
        prop_assert!((total - product).abs() < 1e-8,
            "total {total} vs product {product}");
    }

    #[test]
    fn fidelity_is_unitarily_invariant(amps_a in unit_state(3), amps_b in unit_state(3), seed in 0u64..1000) {
        use approxdd::circuit::generators;
        let mut p = Package::new();
        let a = p.from_amplitudes(&amps_a).unwrap();
        let b = p.from_amplitudes(&amps_b).unwrap();
        p.inc_ref(a);
        p.inc_ref(b);
        let before = p.fidelity(a, b);

        // Apply the same random unitary circuit to both states.
        let circuit = generators::random_circuit(3, 6, seed);
        let mut ua = a;
        let mut ub = b;
        for op in circuit.ops() {
            if let approxdd::circuit::Operation::Gate { gate, target, controls } = op {
                let pairs: Vec<(usize, bool)> = controls.iter().map(|c| (c.qubit, c.positive)).collect();
                let g = p.controlled_gate_polarized(3, &pairs, *target, gate.matrix()).unwrap();
                ua = p.apply(g, ua);
                ub = p.apply(g, ub);
            }
        }
        let after = p.fidelity(ua, ub);
        prop_assert!((before - after).abs() < 1e-8, "before {before} after {after}");
    }

    #[test]
    fn dd_roundtrip_is_exact(amps in unit_state(5)) {
        let mut p = Package::new();
        let root = p.from_amplitudes(&amps).unwrap();
        let back = p.to_amplitudes(root, 5).unwrap();
        for (x, y) in amps.iter().zip(&back) {
            prop_assert!((*x - *y).mag() < 1e-10);
        }
    }

    #[test]
    fn sampling_matches_probabilities(amps in unit_state(3)) {
        use rand::SeedableRng;
        let mut p = Package::new();
        let root = p.from_amplitudes(&amps).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let shots = 3000;
        let counts = p.sample_counts(root, shots, &mut rng);
        for idx in 0..8u64 {
            let want = p.probability(root, idx);
            let got = *counts.get(&idx).unwrap_or(&0) as f64 / shots as f64;
            // Loose statistical tolerance.
            prop_assert!((want - got).abs() < 0.07,
                "idx {idx}: p={want} sampled={got}");
        }
    }
}

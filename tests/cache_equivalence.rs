//! Cache-size equivalence: the DD package's lossy compute caches are a
//! pure time/memory trade, so **every** cache size must produce
//! byte-identical results. Random circuits run with tiny (4-bit),
//! default (16-bit), and huge (20-bit) caches and must produce equal
//! [`PoolOutcome::fingerprint`]s (covering stats, size series, final
//! size, and sampled histograms), and must match the dense statevector
//! baseline within numerical tolerance.
//!
//! Why this holds: an undersized cache only loses memoized results,
//! forcing recomputation — and recomputation is bit-deterministic
//! because node canonicalization lives in the (exact, never lossy)
//! unique table, whose evolution is independent of the memoization
//! pattern. See the `approxdd_dd` crate docs.

use approxdd::backend::{amplitudes_of, BuildBackend, StatevectorBackend};
use approxdd::circuit::generators;
use approxdd::exec::{BuildPool, PoolJob};
use approxdd::sim::{Simulator, SimulatorBuilder, Strategy};
use proptest::prelude::*;

/// The three cache configurations under test: tiny, engine default,
/// huge. `None` leaves the builder knob unset (engine default).
const CACHE_BITS: [Option<u32>; 3] = [Some(4), None, Some(20)];

fn template(bits: Option<u32>) -> SimulatorBuilder {
    let b = Simulator::builder()
        .seed(11)
        .workers(2)
        .record_size_series(true)
        .gc_node_threshold(48); // force GC interleavings into the mix
    match bits {
        Some(bits) => b.compute_cache_bits(bits),
        None => b,
    }
}

/// Fingerprints of a batch of jobs under one cache configuration.
fn fingerprints(bits: Option<u32>, jobs: Vec<PoolJob>) -> Vec<u64> {
    let pool = template(bits).build_pool();
    pool.run_jobs(jobs)
        .into_iter()
        .map(|r| r.expect("pool job").fingerprint())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn exact_runs_are_cache_size_invariant(
        n in 3usize..7,
        depth in 4usize..10,
        seed in 0u64..500
    ) {
        let circuit = generators::random_circuit(n, depth, seed);
        let jobs = || vec![PoolJob::new(circuit.clone()).shots(256)];
        let reference = fingerprints(CACHE_BITS[0], jobs());
        for bits in &CACHE_BITS[1..] {
            let other = fingerprints(*bits, jobs());
            prop_assert_eq!(&reference, &other, "cache bits {:?} diverged", bits);
        }

        // And the tiny-cache engine still matches the dense baseline.
        let mut dd = template(Some(4)).build_backend();
        let mut sv = StatevectorBackend::with_seed(11);
        let a = amplitudes_of(&mut dd, &circuit).expect("dd amplitudes");
        let b = amplitudes_of(&mut sv, &circuit).expect("sv amplitudes");
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            prop_assert!((*x - *y).mag() < 1e-9, "amplitude {i}: {x} vs {y}");
        }
    }

    #[test]
    fn approximate_runs_are_cache_size_invariant(
        seed in 0u64..200,
        threshold in 8usize..64
    ) {
        // Truncation rounds + GC exercise the generation-stamped clear
        // path; the fingerprint covers rounds, fidelity bits, removed
        // nodes, and the sampled histogram.
        let circuit = generators::supremacy(2, 3, 10, seed);
        let strategy = Strategy::memory_driven_table1(threshold, 0.9);
        let jobs = || vec![PoolJob::new(circuit.clone()).strategy(strategy).shots(256)];
        let reference = fingerprints(CACHE_BITS[0], jobs());
        for bits in &CACHE_BITS[1..] {
            let other = fingerprints(*bits, jobs());
            prop_assert_eq!(&reference, &other, "cache bits {:?} diverged", bits);
        }
    }
}

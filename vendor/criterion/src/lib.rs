//! Offline vendored subset of the `criterion` API.
//!
//! Provides the benchmarking surface this workspace uses —
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `Bencher::iter` / `iter_batched` — with a simple adaptive wall-clock
//! harness instead of criterion's statistical machinery: each benchmark
//! is warmed up, then timed over enough iterations to fill a small
//! measurement budget, and the mean time per iteration is printed.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted for API parity; the
/// harness always runs setup per batch of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine inputs.
    SmallInput,
    /// Large routine inputs.
    LargeInput,
    /// Setup re-run for every iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Substring filter from the command line (`cargo bench -- filter`).
    filter: Option<String>,
    /// Wall-clock budget per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        // `cargo bench -- --test` (real criterion's smoke mode): run
        // every benchmark body once to prove it works, skip the timed
        // measurement loop. CI uses this so the harness cannot rot
        // without spending bench-length wall time.
        let test_mode = std::env::args().skip(1).any(|a| a == "--test");
        Self {
            filter,
            measurement_time: if test_mode {
                Duration::ZERO
            } else {
                Duration::from_millis(400)
            },
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the adaptive harness sizes itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark if it passes the command-line filter.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            budget: self.criterion.measurement_time,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((iters, total)) => {
                let per_iter = total / u32::try_from(iters.max(1)).unwrap_or(u32::MAX);
                println!("{full:<60} {per_iter:>12.2?}/iter ({iters} iters in {total:.2?})");
            }
            None => println!("{full:<60} (no measurement)"),
        }
        self
    }

    /// Ends the group (no-op; prints nothing extra).
    pub fn finish(self) {}
}

/// Measures a closure under a fixed wall-clock budget.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: one untimed call.
        black_box(routine());
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < self.budget {
            black_box(routine());
            iters += 1;
        }
        self.result = Some((iters.max(1), start.elapsed()));
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut measured = Duration::ZERO;
        let mut iters: u64 = 0;
        let wall = Instant::now();
        while measured < self.budget && wall.elapsed() < self.budget * 4 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured += t.elapsed();
            iters += 1;
        }
        self.result = Some((iters.max(1), measured));
    }
}

/// Declares a group runner function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_harness_measures() {
        let mut c = Criterion {
            filter: None,
            measurement_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput);
        });
        group.finish();
        assert!(runs > 0);
    }
}

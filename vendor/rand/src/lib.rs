//! Offline vendored subset of the `rand` 0.8 API.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the small slice of `rand` it actually uses is provided
//! here as a drop-in path dependency: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 — deterministic, high-quality, and unrelated to the real
//! `StdRng` stream. All workspace call sites treat seeds as opaque
//! reproducibility tokens, never as cross-library fixtures, so the
//! stream difference is harmless.

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough bounded integer draw via 128-bit multiply-shift.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + (self.end - self.start) * unit
    }
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its uniform/standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from wall-clock entropy. Prefer
    /// [`SeedableRng::seed_from_u64`] anywhere reproducibility matters.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0x5EED_CAFE, |d| d.as_nanos() as u64);
        Self::seed_from_u64(nanos ^ (std::process::id() as u64) << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            seen_lo |= w == 0;
            seen_hi |= w == 3;
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        assert!(seen_lo && seen_hi, "inclusive range must hit both ends");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
    }
}

//! Offline vendored subset of the `proptest` API.
//!
//! Implements exactly the surface this workspace's property tests use —
//! the [`proptest!`] macro, range/tuple/`vec`/`Just`/`prop_oneof!`
//! strategies with `prop_map` / `prop_filter_map`, and the
//! `prop_assert*` family — over a deterministic xoshiro256++ source.
//! Failing cases are reported with their values (via the assert message)
//! but are **not shrunk**; each test function runs a fixed number of
//! accepted cases ([`ProptestConfig::cases`]).

use std::fmt;
use std::ops::Range;

/// Deterministic RNG driving all strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds deterministically from a test name.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name, then SplitMix64 expansion.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut s = [0u64; 4];
        for slot in &mut s {
            h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        Self { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index below `n`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }
}

/// Why a generated case did not produce a pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "rejected by prop_assume"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values. `generate` may return `None` when a
/// filter rejects the draw; the harness retries.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value, or `None` on filter rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Maps values through `f`, rejecting draws where it returns `None`.
    fn prop_filter_map<U, F>(self, _whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { inner: self, f }
    }

    /// Type-erases the strategy (for heterogeneous `prop_oneof!` arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe internal face of [`Strategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> Option<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.0.generate_dyn(rng)
    }
}

/// Strategy yielding a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// Output of [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// Uniform choice between boxed arms (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.below(self.0.len());
        self.0[idx].generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        Some(self.start + (self.end - self.start) * rng.unit_f64())
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let off = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                Some(self.start.wrapping_add(off as $t))
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        Some((self.0.generate(rng)?, self.1.generate(rng)?))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        Some((
            self.0.generate(rng)?,
            self.1.generate(rng)?,
            self.2.generate(rng)?,
        ))
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait ArbitraryValue: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 2.0 - 1.0
    }
}

/// Strategy for [`ArbitraryValue`] types.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// The whole-domain strategy for `T`.
#[must_use]
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod prop {
    //! Namespaced strategy constructors (`prop::collection::vec`).

    pub mod collection {
        //! Collection strategies.
        use crate::{Strategy, TestRng};

        /// Strategy for fixed-length vectors of `element` draws.
        pub struct VecStrategy<S> {
            element: S,
            len: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                (0..self.len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A vector of exactly `len` values drawn from `element`.
        pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runs the body of one generated case (used by [`proptest!`]).
#[doc(hidden)]
pub fn __run_case<F: FnOnce() -> Result<(), TestCaseError>>(f: F) -> Result<(), TestCaseError> {
    f()
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident, $label:lifetime; $arg:ident in $strat:expr) => {
        let $arg = match $crate::Strategy::generate(&($strat), &mut $rng) {
            ::std::option::Option::Some(v) => v,
            ::std::option::Option::None => continue $label,
        };
    };
    ($rng:ident, $label:lifetime; $arg:ident in $strat:expr, $($rest:tt)+) => {
        $crate::__proptest_bindings!($rng, $label; $arg in $strat);
        $crate::__proptest_bindings!($rng, $label; $($rest)+);
    };
}

/// Property-test harness macro: accepts the same shape as real
/// `proptest!` (optional `#![proptest_config(...)]`, then `#[test]`
/// functions whose arguments are `name in strategy` bindings).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(#[test] fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut attempts: u64 = 0;
                'cases: while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= u64::from(config.cases) * 512 + 4096,
                        "proptest-lite: too many rejected cases in {}",
                        stringify!($name)
                    );
                    $crate::__proptest_bindings!(rng, 'cases; $($args)*);
                    let outcome = $crate::__run_case(move || { $body Ok(()) });
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed: {msg}")
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                left, right, stringify!($a), stringify!($b)
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}: `{:?}` != `{:?}`", format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Rejects the current case (retried with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategy arms (all arms must yield one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vec_generate() {
        let mut rng = crate::TestRng::deterministic("smoke");
        let s = prop::collection::vec((-1.0f64..1.0, 0usize..4), 8);
        let v = s.generate(&mut rng).unwrap();
        assert_eq!(v.len(), 8);
        for (f, i) in v {
            assert!((-1.0..1.0).contains(&f));
            assert!(i < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_runs_and_filters(x in 0u64..100, pair in (0.0f64..1.0, 1usize..3)) {
            prop_assume!(x != 7);
            prop_assert!(x < 100, "x was {x}");
            prop_assert_eq!(pair.1.min(2), pair.1);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(1usize), (2usize..5).prop_map(|x| x)]) {
            prop_assert!(v == 1 || (2..5).contains(&v));
        }
    }
}

//! The single-qubit gate alphabet.

use std::fmt;

use approxdd_complex::Cplx;
use approxdd_dd::GateKind;

/// A single-qubit gate (possibly parameterized). The alphabet covers the
/// paper's benchmark families: Clifford+T for general circuits, √X/√Y/T
/// for quantum-supremacy circuits, and phases/rotations for the QFT.
///
/// # Examples
///
/// ```
/// use approxdd_circuit::Gate;
/// assert_eq!(Gate::T.name(), "t");
/// assert_eq!(Gate::Phase(0.5).inverse(), Gate::Phase(-0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Gate {
    /// Identity (useful for timing/padding in generated workloads).
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// S = diag(1, i).
    S,
    /// S†.
    Sdg,
    /// T = diag(1, e^{iπ/4}).
    T,
    /// T†.
    Tdg,
    /// √X.
    Sx,
    /// √X†.
    Sxdg,
    /// √Y.
    Sy,
    /// √Y†.
    Sydg,
    /// diag(1, e^{iθ}).
    Phase(f64),
    /// X-rotation by θ.
    Rx(f64),
    /// Y-rotation by θ.
    Ry(f64),
    /// Z-rotation by θ.
    Rz(f64),
}

impl Gate {
    /// The corresponding decision-diagram gate kind.
    #[must_use]
    pub fn kind(self) -> GateKind {
        match self {
            Gate::I => GateKind::I,
            Gate::X => GateKind::X,
            Gate::Y => GateKind::Y,
            Gate::Z => GateKind::Z,
            Gate::H => GateKind::H,
            Gate::S => GateKind::S,
            Gate::Sdg => GateKind::Sdg,
            Gate::T => GateKind::T,
            Gate::Tdg => GateKind::Tdg,
            Gate::Sx => GateKind::SxGate,
            Gate::Sxdg => GateKind::SxdgGate,
            Gate::Sy => GateKind::SyGate,
            Gate::Sydg => GateKind::SydgGate,
            Gate::Phase(t) => GateKind::Phase(t),
            Gate::Rx(t) => GateKind::Rx(t),
            Gate::Ry(t) => GateKind::Ry(t),
            Gate::Rz(t) => GateKind::Rz(t),
        }
    }

    /// The 2×2 unitary matrix, row-major.
    #[must_use]
    pub fn matrix(self) -> [[Cplx; 2]; 2] {
        self.kind().matrix()
    }

    /// The inverse gate.
    #[must_use]
    pub fn inverse(self) -> Gate {
        match self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Sx => Gate::Sxdg,
            Gate::Sxdg => Gate::Sx,
            Gate::Sy => Gate::Sydg,
            Gate::Sydg => Gate::Sy,
            Gate::Phase(t) => Gate::Phase(-t),
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            other => other,
        }
    }

    /// Lowercase mnemonic (OpenQASM style).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Sx => "sx",
            Gate::Sxdg => "sxdg",
            Gate::Sy => "sy",
            Gate::Sydg => "sydg",
            Gate::Phase(_) => "p",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
        }
    }

    /// The rotation/phase parameter, if the gate has one.
    #[must_use]
    pub fn parameter(self) -> Option<f64> {
        match self {
            Gate::Phase(t) | Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.parameter() {
            Some(t) => write!(f, "{}({t})", self.name()),
            None => f.write_str(self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_is_involutive_on_alphabet() {
        let gates = [
            Gate::I,
            Gate::X,
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::Sy,
            Gate::Phase(0.7),
            Gate::Rz(1.2),
        ];
        for g in gates {
            assert_eq!(g.inverse().inverse(), g, "{g}");
        }
    }

    #[test]
    fn names_match_qasm_convention() {
        assert_eq!(Gate::Sdg.name(), "sdg");
        assert_eq!(Gate::Rz(1.0).name(), "rz");
        assert_eq!(Gate::Phase(1.0).to_string(), "p(1)");
    }

    #[test]
    fn parameters_only_on_rotations() {
        assert_eq!(Gate::H.parameter(), None);
        assert_eq!(Gate::Rx(0.25).parameter(), Some(0.25));
    }
}

//! OpenQASM 2.0 subset import/export.
//!
//! The supported subset covers what the benchmark families need:
//! `qreg`/`creg`, the standard single-qubit alphabet (`h x y z s sdg t
//! tdg sx id`, `rx ry rz p u1`), two-qubit `cx cz cp cu1 swap`, `ccx`,
//! `barrier`, and `measure` (parsed and ignored — this workspace
//! simulates terminal measurement by sampling). Negative controls and
//! permutation blocks have no QASM 2 representation; exporting them
//! fails with [`QasmError::Unsupported`].

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::op::Operation;

/// Errors from QASM import/export.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QasmError {
    /// The exporter met an operation with no QASM 2 representation.
    Unsupported {
        /// Human-readable description of the operation.
        what: String,
    },
    /// The importer met malformed input.
    Parse {
        /// Line number (1-based; 0 when the whole input is at fault,
        /// e.g. a missing `qreg`).
        line: usize,
        /// Column of the offending statement within the line (1-based
        /// byte offset; 0 when no statement is at fault).
        column: usize,
        /// Reason.
        reason: String,
    },
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QasmError::Unsupported { what } => {
                write!(f, "operation not representable in OpenQASM 2: {what}")
            }
            QasmError::Parse {
                line,
                column,
                reason,
            } => write!(f, "parse error at line {line}, column {column}: {reason}"),
        }
    }
}

impl Error for QasmError {}

/// Serializes a circuit to OpenQASM 2.0.
///
/// # Errors
///
/// [`QasmError::Unsupported`] for negative controls, more than two
/// controls, or permutation blocks.
pub fn to_qasm(circuit: &Circuit) -> Result<String, QasmError> {
    let mut out = String::new();
    let _ = writeln!(out, "OPENQASM 2.0;");
    let _ = writeln!(out, "include \"qelib1.inc\";");
    let _ = writeln!(out, "// circuit: {}", circuit.name());
    let _ = writeln!(out, "qreg q[{}];", circuit.n_qubits());
    for op in circuit.ops() {
        match op {
            Operation::Gate {
                gate,
                target,
                controls,
            } => {
                if controls.iter().any(|c| !c.positive) {
                    return Err(QasmError::Unsupported {
                        what: format!("negative control in {op}"),
                    });
                }
                match controls.len() {
                    0 => {
                        let _ = writeln!(out, "{} q[{}];", gate_call(*gate), target);
                    }
                    1 => {
                        let c = controls[0].qubit;
                        match gate {
                            Gate::X => {
                                let _ = writeln!(out, "cx q[{c}],q[{target}];");
                            }
                            Gate::Z => {
                                let _ = writeln!(out, "cz q[{c}],q[{target}];");
                            }
                            Gate::Phase(t) => {
                                let _ = writeln!(out, "cp({t}) q[{c}],q[{target}];");
                            }
                            other => {
                                return Err(QasmError::Unsupported {
                                    what: format!("controlled {other}"),
                                })
                            }
                        }
                    }
                    2 if *gate == Gate::X => {
                        let _ = writeln!(
                            out,
                            "ccx q[{}],q[{}],q[{}];",
                            controls[0].qubit, controls[1].qubit, target
                        );
                    }
                    _ => {
                        return Err(QasmError::Unsupported {
                            what: format!("{op}"),
                        })
                    }
                }
            }
            Operation::Permutation { label, .. } => {
                return Err(QasmError::Unsupported {
                    what: format!("permutation block {label}"),
                })
            }
            Operation::DenseBlock { label, .. } => {
                return Err(QasmError::Unsupported {
                    what: format!("dense unitary block {label}"),
                })
            }
            Operation::ApproxPoint => {
                let _ = writeln!(out, "// approx_point");
            }
            Operation::Barrier => {
                let _ = writeln!(out, "barrier q;");
            }
        }
    }
    Ok(out)
}

fn gate_call(g: Gate) -> String {
    match g.parameter() {
        Some(t) => format!("{}({t})", g.name()),
        None => g.name().to_string(),
    }
}

/// Parses an OpenQASM 2.0 subset into a [`Circuit`].
///
/// Comment lines of the form `// approx_point` round-trip back into
/// [`Operation::ApproxPoint`] markers.
///
/// # Errors
///
/// [`QasmError::Parse`] with the offending line on malformed input or
/// constructs outside the subset.
pub fn from_qasm(src: &str) -> Result<Circuit, QasmError> {
    let span = approxdd_telemetry::Span::enter("qasm.parse");
    let result = from_qasm_inner(src);
    let _ = span.finish();
    let result_label = if result.is_ok() { "ok" } else { "error" };
    approxdd_telemetry::count_with("approxdd_qasm_parses_total", &[("result", result_label)], 1);
    result
}

fn from_qasm_inner(src: &str) -> Result<Circuit, QasmError> {
    let mut circuit: Option<Circuit> = None;
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.trim();
        if text == "// approx_point" {
            if let Some(c) = circuit.as_mut() {
                c.approx_point();
            }
            continue;
        }
        let text = text.split("//").next().unwrap_or("").trim_end();
        if text.trim().is_empty() {
            continue;
        }
        // Track each statement's byte offset within the raw line so
        // parse errors point at the statement, not just the line.
        let mut offset = raw.len() - raw.trim_start().len();
        for stmt in text.split(';') {
            let leading = stmt.len() - stmt.trim_start().len();
            let column = offset + leading + 1;
            let trimmed = stmt.trim();
            offset += stmt.len() + 1; // consumed statement + ';'
            if trimmed.is_empty() {
                continue;
            }
            parse_statement(trimmed, line, column, &mut circuit)?;
        }
    }
    circuit.ok_or(QasmError::Parse {
        line: 0,
        column: 0,
        reason: "no qreg declaration found".to_string(),
    })
}

fn parse_statement(
    stmt: &str,
    line: usize,
    column: usize,
    circuit: &mut Option<Circuit>,
) -> Result<(), QasmError> {
    let err = |reason: &str| QasmError::Parse {
        line,
        column,
        reason: reason.to_string(),
    };
    if stmt.starts_with("OPENQASM") || stmt.starts_with("include") || stmt.starts_with("creg") {
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("qreg") {
        let rest = rest.trim();
        let open = rest.find('[').ok_or_else(|| err("malformed qreg"))?;
        let close = rest.find(']').ok_or_else(|| err("malformed qreg"))?;
        let n: usize = rest[open + 1..close]
            .parse()
            .map_err(|_| err("bad qreg size"))?;
        if circuit.is_some() {
            return Err(err("multiple qreg declarations are not supported"));
        }
        *circuit = Some(Circuit::new(n, "qasm"));
        return Ok(());
    }
    let c = circuit
        .as_mut()
        .ok_or_else(|| err("statement before qreg"))?;
    if stmt.starts_with("barrier") {
        c.barrier();
        return Ok(());
    }
    if stmt.starts_with("measure") {
        return Ok(()); // terminal measurement handled by sampling
    }

    // "<name>(args?) q[a],q[b],..."
    let (head, tail) = stmt
        .split_once(' ')
        .ok_or_else(|| err("missing operands"))?;
    let (name, param) = match head.split_once('(') {
        Some((n, p)) => {
            let p = p
                .strip_suffix(')')
                .ok_or_else(|| err("unbalanced parens"))?;
            (
                n.trim(),
                Some(parse_angle(p).ok_or_else(|| err("bad angle"))?),
            )
        }
        None => (head.trim(), None),
    };
    let qubits: Vec<usize> = tail
        .split(',')
        .map(|t| {
            let t = t.trim();
            let open = t.find('[')?;
            let close = t.find(']')?;
            t[open + 1..close].parse().ok()
        })
        .collect::<Option<Vec<usize>>>()
        .ok_or_else(|| err("malformed qubit operand"))?;

    let single = |g: Gate| -> Result<Gate, QasmError> { Ok(g) };
    match (name, qubits.as_slice()) {
        ("h", [q]) => c.gate(single(Gate::H)?, *q),
        ("x", [q]) => c.gate(Gate::X, *q),
        ("y", [q]) => c.gate(Gate::Y, *q),
        ("z", [q]) => c.gate(Gate::Z, *q),
        ("s", [q]) => c.gate(Gate::S, *q),
        ("sdg", [q]) => c.gate(Gate::Sdg, *q),
        ("t", [q]) => c.gate(Gate::T, *q),
        ("tdg", [q]) => c.gate(Gate::Tdg, *q),
        ("sx", [q]) => c.gate(Gate::Sx, *q),
        ("sxdg", [q]) => c.gate(Gate::Sxdg, *q),
        // Non-standard but used by supremacy circuits; we emit and accept
        // these mnemonics so our own exports round-trip.
        ("sy", [q]) => c.gate(Gate::Sy, *q),
        ("sydg", [q]) => c.gate(Gate::Sydg, *q),
        ("id", [q]) => c.gate(Gate::I, *q),
        ("rx", [q]) => c.gate(Gate::Rx(param.ok_or_else(|| err("rx needs angle"))?), *q),
        ("ry", [q]) => c.gate(Gate::Ry(param.ok_or_else(|| err("ry needs angle"))?), *q),
        ("rz", [q]) => c.gate(Gate::Rz(param.ok_or_else(|| err("rz needs angle"))?), *q),
        ("p" | "u1", [q]) => c.gate(
            Gate::Phase(param.ok_or_else(|| err("phase needs angle"))?),
            *q,
        ),
        ("cx", [a, b]) => c.cx(*a, *b),
        ("cz", [a, b]) => c.cz(*a, *b),
        ("cp" | "cu1", [a, b]) => c.cp(param.ok_or_else(|| err("cp needs angle"))?, *a, *b),
        ("swap", [a, b]) => c.swap(*a, *b),
        ("ccx", [a, b, t]) => c.ccx(*a, *b, *t),
        _ => return Err(err(&format!("unsupported statement '{stmt}'"))),
    };
    Ok(())
}

/// Parses the angle grammar `[-] (float | pi | float*pi | pi/float |
/// float*pi/float)`.
fn parse_angle(s: &str) -> Option<f64> {
    let s = s.trim().replace(' ', "");
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest.to_string()),
        None => (false, s),
    };
    let value = if let Some((num, den)) = s.split_once('/') {
        parse_term(num)? / parse_term(den)?
    } else {
        parse_term(&s)?
    };
    Some(if neg { -value } else { value })
}

fn parse_term(s: &str) -> Option<f64> {
    if let Some((a, b)) = s.split_once('*') {
        return Some(parse_term(a)? * parse_term(b)?);
    }
    if s == "pi" {
        return Some(std::f64::consts::PI);
    }
    s.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn roundtrip_simple_circuit() {
        let mut c = Circuit::new(3, "rt");
        c.h(0)
            .cx(0, 1)
            .t(2)
            .cp(PI / 4.0, 1, 2)
            .approx_point()
            .ccx(0, 1, 2);
        let qasm = to_qasm(&c).unwrap();
        let back = from_qasm(&qasm).unwrap();
        assert_eq!(back.n_qubits(), 3);
        assert_eq!(back.gate_count(), c.gate_count());
        assert_eq!(back.stats().approx_points, 1);
    }

    #[test]
    fn parse_angles() {
        assert_eq!(parse_angle("pi"), Some(PI));
        assert_eq!(parse_angle("-pi/2"), Some(-PI / 2.0));
        assert_eq!(parse_angle("3*pi/4"), Some(3.0 * PI / 4.0));
        assert_eq!(parse_angle("0.25"), Some(0.25));
        assert_eq!(parse_angle("2*pi"), Some(2.0 * PI));
        assert_eq!(parse_angle("x"), None);
    }

    #[test]
    fn parse_realistic_header() {
        let src = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg m[2];
h q[0];
cx q[0],q[1];
measure q[0] -> m[0];
"#;
        let c = from_qasm(src).unwrap();
        assert_eq!(c.n_qubits(), 2);
        assert_eq!(c.gate_count(), 2);
    }

    #[test]
    fn export_rejects_negative_controls() {
        let mut c = Circuit::new(2, "neg");
        c.push(Operation::Gate {
            gate: Gate::X,
            target: 0,
            controls: vec![crate::op::Control::negative(1)],
        });
        assert!(matches!(to_qasm(&c), Err(QasmError::Unsupported { .. })));
    }

    #[test]
    fn export_rejects_permutations() {
        let mut c = Circuit::new(2, "perm");
        c.permutation(0, 1, vec![1, 0], &[], "x");
        assert!(matches!(to_qasm(&c), Err(QasmError::Unsupported { .. })));
    }

    #[test]
    fn import_errors_carry_line_numbers() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];\n";
        match from_qasm(src) {
            Err(QasmError::Parse { line, column, .. }) => {
                assert_eq!(line, 3);
                assert_eq!(column, 1);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn import_errors_carry_column_context() {
        // The offending statement is the second on its line, behind
        // leading indentation: the column must point at it, and the
        // rendered message must carry both coordinates so a `simulate`
        // user can act on it.
        let src = "OPENQASM 2.0;\nqreg q[2];\n  h q[0]; frobnicate q[1];\n";
        let err = from_qasm(src).expect_err("must fail");
        match &err {
            QasmError::Parse {
                line,
                column,
                reason,
            } => {
                assert_eq!(*line, 3);
                assert_eq!(*column, 11, "column of `frobnicate`");
                assert!(reason.contains("frobnicate"), "{reason}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        let message = err.to_string();
        assert!(
            message.contains("line 3") && message.contains("column 11"),
            "{message}"
        );
        // A bad angle mid-statement still reports the statement start.
        let src = "qreg q[1];\nrx(oops) q[0];\n";
        match from_qasm(src) {
            Err(QasmError::Parse { line, column, .. }) => {
                assert_eq!((line, column), (2, 1));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn import_requires_qreg() {
        assert!(matches!(
            from_qasm("OPENQASM 2.0;\nh q[0];\n"),
            Err(QasmError::Parse { .. })
        ));
    }

    #[test]
    fn supremacy_roundtrips_through_qasm() {
        let c = crate::generators::supremacy(2, 3, 8, 1);
        let qasm = to_qasm(&c).unwrap();
        let back = from_qasm(&qasm).unwrap();
        assert_eq!(back.n_qubits(), c.n_qubits());
        assert_eq!(back.gate_count(), c.gate_count());
    }

    #[test]
    fn qft_exports_cleanly() {
        let c = crate::generators::qft(4);
        let qasm = to_qasm(&c).unwrap();
        assert!(qasm.contains("cp("));
        let back = from_qasm(&qasm).unwrap();
        assert_eq!(back.gate_count(), c.gate_count());
    }
}

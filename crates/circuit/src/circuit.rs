//! The [`Circuit`] container and builder API.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use crate::gate::Gate;
use crate::op::{Control, Operation};

/// Validation errors for circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// An operation references a qubit outside the register.
    QubitOutOfRange {
        /// Index of the offending operation.
        op_index: usize,
        /// The offending qubit.
        qubit: usize,
        /// Register width.
        n_qubits: usize,
    },
    /// An operation uses the same qubit twice (e.g. control == target).
    DuplicateQubit {
        /// Index of the offending operation.
        op_index: usize,
        /// The duplicated qubit.
        qubit: usize,
    },
    /// A permutation table has the wrong length or is not a bijection.
    InvalidPermutation {
        /// Index of the offending operation.
        op_index: usize,
    },
    /// A dense block has the wrong number of entries.
    InvalidDenseBlock {
        /// Index of the offending operation.
        op_index: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange {
                op_index,
                qubit,
                n_qubits,
            } => write!(
                f,
                "operation {op_index}: qubit {qubit} out of range for {n_qubits}-qubit register"
            ),
            CircuitError::DuplicateQubit { op_index, qubit } => {
                write!(f, "operation {op_index}: qubit {qubit} used twice")
            }
            CircuitError::InvalidPermutation { op_index } => {
                write!(f, "operation {op_index}: permutation is not a bijection")
            }
            CircuitError::InvalidDenseBlock { op_index } => {
                write!(f, "operation {op_index}: dense block must have 4^k entries")
            }
        }
    }
}

impl Error for CircuitError {}

/// Aggregate statistics of a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitStats {
    /// State-transforming operations (gates + permutation blocks).
    pub gates: usize,
    /// Single-qubit gates without controls.
    pub single_qubit: usize,
    /// Controlled gates (any number of controls).
    pub controlled: usize,
    /// Permutation blocks.
    pub permutations: usize,
    /// Dense unitary blocks.
    pub dense_blocks: usize,
    /// Approximation markers.
    pub approx_points: usize,
}

/// A quantum circuit: a register width and an operation sequence.
///
/// Builder methods return `&mut Self` so construction chains:
///
/// ```
/// use approxdd_circuit::Circuit;
/// let mut c = Circuit::new(2, "bell");
/// c.h(1).cx(1, 0);
/// assert_eq!(c.gate_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    name: String,
    ops: Vec<Operation>,
}

impl Circuit {
    /// Creates an empty circuit on `n_qubits` qubits.
    #[must_use]
    pub fn new(n_qubits: usize, name: impl Into<String>) -> Self {
        Self {
            n_qubits,
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Register width.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Circuit name (used in benchmark reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The operation sequence.
    #[must_use]
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Number of state-transforming operations (markers excluded).
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_gate()).count()
    }

    /// Number of operations including markers/barriers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the circuit has no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> CircuitStats {
        let mut s = CircuitStats::default();
        for op in &self.ops {
            match op {
                Operation::Gate { controls, .. } => {
                    s.gates += 1;
                    if controls.is_empty() {
                        s.single_qubit += 1;
                    } else {
                        s.controlled += 1;
                    }
                }
                Operation::Permutation { .. } => {
                    s.gates += 1;
                    s.permutations += 1;
                }
                Operation::DenseBlock { .. } => {
                    s.gates += 1;
                    s.dense_blocks += 1;
                }
                Operation::ApproxPoint => s.approx_points += 1,
                Operation::Barrier => {}
            }
        }
        s
    }

    /// Appends a raw operation.
    pub fn push(&mut self, op: Operation) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Appends every operation of `other`, with qubits shifted up by
    /// `offset`. Used to embed sub-circuits (e.g. an inverse QFT on
    /// Shor's counting register).
    ///
    /// # Panics
    ///
    /// Panics if the shifted operations would exceed this register.
    pub fn append(&mut self, other: &Circuit, offset: usize) -> &mut Self {
        assert!(
            other.n_qubits + offset <= self.n_qubits,
            "appended circuit does not fit the register"
        );
        for op in &other.ops {
            let shifted = match op {
                Operation::Gate {
                    gate,
                    target,
                    controls,
                } => Operation::Gate {
                    gate: *gate,
                    target: target + offset,
                    controls: controls
                        .iter()
                        .map(|c| Control {
                            qubit: c.qubit + offset,
                            positive: c.positive,
                        })
                        .collect(),
                },
                Operation::Permutation {
                    lo,
                    k,
                    perm,
                    controls,
                    label,
                } => Operation::Permutation {
                    lo: lo + offset,
                    k: *k,
                    perm: Arc::clone(perm),
                    controls: controls
                        .iter()
                        .map(|c| Control {
                            qubit: c.qubit + offset,
                            positive: c.positive,
                        })
                        .collect(),
                    label: label.clone(),
                },
                Operation::DenseBlock {
                    lo,
                    k,
                    matrix,
                    controls,
                    label,
                } => Operation::DenseBlock {
                    lo: lo + offset,
                    k: *k,
                    matrix: Arc::clone(matrix),
                    controls: controls
                        .iter()
                        .map(|c| Control {
                            qubit: c.qubit + offset,
                            positive: c.positive,
                        })
                        .collect(),
                    label: label.clone(),
                },
                Operation::ApproxPoint => Operation::ApproxPoint,
                Operation::Barrier => Operation::Barrier,
            };
            self.ops.push(shifted);
        }
        self
    }

    /// The inverse (adjoint) circuit: reversed operation order, each gate
    /// inverted. Markers and barriers are preserved in reversed positions.
    #[must_use]
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::new(self.n_qubits, format!("{}_inv", self.name));
        for op in self.ops.iter().rev() {
            let inverted = match op {
                Operation::Gate {
                    gate,
                    target,
                    controls,
                } => Operation::Gate {
                    gate: gate.inverse(),
                    target: *target,
                    controls: controls.clone(),
                },
                Operation::Permutation {
                    lo,
                    k,
                    perm,
                    controls,
                    label,
                } => {
                    let mut inv_perm = vec![0usize; perm.len()];
                    for (c, &r) in perm.iter().enumerate() {
                        inv_perm[r] = c;
                    }
                    Operation::Permutation {
                        lo: *lo,
                        k: *k,
                        perm: Arc::new(inv_perm),
                        controls: controls.clone(),
                        label: format!("{label}^-1"),
                    }
                }
                Operation::DenseBlock {
                    lo,
                    k,
                    matrix,
                    controls,
                    label,
                } => {
                    // Inverse of a unitary block = conjugate transpose.
                    let dim = 1usize << k;
                    let mut dag = vec![approxdd_complex::Cplx::ZERO; matrix.len()];
                    for r in 0..dim {
                        for c in 0..dim {
                            dag[c * dim + r] = matrix[r * dim + c].conj();
                        }
                    }
                    Operation::DenseBlock {
                        lo: *lo,
                        k: *k,
                        matrix: Arc::new(dag),
                        controls: controls.clone(),
                        label: format!("{label}^-1"),
                    }
                }
                Operation::ApproxPoint => Operation::ApproxPoint,
                Operation::Barrier => Operation::Barrier,
            };
            inv.ops.push(inverted);
        }
        inv
    }

    /// Checks qubit ranges, duplicate usage and permutation bijectivity.
    ///
    /// # Errors
    ///
    /// The first [`CircuitError`] encountered, if any.
    pub fn validate(&self) -> Result<(), CircuitError> {
        for (i, op) in self.ops.iter().enumerate() {
            let qubits = op.qubits();
            let mut seen = vec![false; self.n_qubits];
            for q in qubits {
                if q >= self.n_qubits {
                    return Err(CircuitError::QubitOutOfRange {
                        op_index: i,
                        qubit: q,
                        n_qubits: self.n_qubits,
                    });
                }
                if seen[q] {
                    return Err(CircuitError::DuplicateQubit {
                        op_index: i,
                        qubit: q,
                    });
                }
                seen[q] = true;
            }
            if let Operation::Permutation { k, perm, .. } = op {
                let dim = 1usize << k;
                if perm.len() != dim {
                    return Err(CircuitError::InvalidPermutation { op_index: i });
                }
                let mut hit = vec![false; dim];
                for &p in perm.iter() {
                    if p >= dim || hit[p] {
                        return Err(CircuitError::InvalidPermutation { op_index: i });
                    }
                    hit[p] = true;
                }
            }
            if let Operation::DenseBlock { k, matrix, .. } = op {
                let dim = 1usize << k;
                if matrix.len() != dim * dim {
                    return Err(CircuitError::InvalidDenseBlock { op_index: i });
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // builder methods
    // ------------------------------------------------------------------

    /// Appends an uncontrolled single-qubit gate.
    pub fn gate(&mut self, gate: Gate, target: usize) -> &mut Self {
        self.push(Operation::Gate {
            gate,
            target,
            controls: Vec::new(),
        })
    }

    /// Appends a controlled single-qubit gate (positive controls).
    pub fn controlled(&mut self, gate: Gate, controls: &[usize], target: usize) -> &mut Self {
        self.push(Operation::Gate {
            gate,
            target,
            controls: controls.iter().map(|&q| Control::positive(q)).collect(),
        })
    }

    /// Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::H, q)
    }

    /// Pauli-X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::X, q)
    }

    /// Pauli-Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Y, q)
    }

    /// Pauli-Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Z, q)
    }

    /// S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::S, q)
    }

    /// T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::T, q)
    }

    /// Phase gate diag(1, e^{iθ}).
    pub fn p(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(Gate::Phase(theta), q)
    }

    /// X-rotation.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(Gate::Rx(theta), q)
    }

    /// Y-rotation.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(Gate::Ry(theta), q)
    }

    /// Z-rotation.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(Gate::Rz(theta), q)
    }

    /// CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.controlled(Gate::X, &[c], t)
    }

    /// Controlled-Z.
    pub fn cz(&mut self, c: usize, t: usize) -> &mut Self {
        self.controlled(Gate::Z, &[c], t)
    }

    /// Controlled phase gate.
    pub fn cp(&mut self, theta: f64, c: usize, t: usize) -> &mut Self {
        self.controlled(Gate::Phase(theta), &[c], t)
    }

    /// Toffoli (CCX).
    pub fn ccx(&mut self, c1: usize, c2: usize, t: usize) -> &mut Self {
        self.controlled(Gate::X, &[c1, c2], t)
    }

    /// SWAP, decomposed into three CNOTs.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.cx(a, b).cx(b, a).cx(a, b)
    }

    /// Appends a controlled basis permutation on qubits `[lo, lo+k)`.
    pub fn permutation(
        &mut self,
        lo: usize,
        k: usize,
        perm: Vec<usize>,
        controls: &[Control],
        label: impl Into<String>,
    ) -> &mut Self {
        self.push(Operation::Permutation {
            lo,
            k,
            perm: Arc::new(perm),
            controls: controls.to_vec(),
            label: label.into(),
        })
    }

    /// Appends a controlled dense unitary block on qubits `[lo, lo+k)`
    /// (row-major `2^k × 2^k` matrix).
    pub fn dense_block(
        &mut self,
        lo: usize,
        k: usize,
        matrix: Vec<approxdd_complex::Cplx>,
        controls: &[Control],
        label: impl Into<String>,
    ) -> &mut Self {
        self.push(Operation::DenseBlock {
            lo,
            k,
            matrix: Arc::new(matrix),
            controls: controls.to_vec(),
            label: label.into(),
        })
    }

    /// Appends an approximation marker (a block boundary for the
    /// fidelity-driven strategy).
    pub fn approx_point(&mut self) -> &mut Self {
        self.push(Operation::ApproxPoint)
    }

    /// Appends a barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.push(Operation::Barrier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_and_counts() {
        let mut c = Circuit::new(3, "test");
        c.h(0).cx(0, 1).ccx(0, 1, 2).approx_point().t(2);
        assert_eq!(c.gate_count(), 4);
        assert_eq!(c.len(), 5);
        let s = c.stats();
        assert_eq!(s.single_qubit, 2);
        assert_eq!(s.controlled, 2);
        assert_eq!(s.approx_points, 1);
        c.validate().unwrap();
    }

    #[test]
    fn validate_catches_out_of_range() {
        let mut c = Circuit::new(2, "bad");
        c.h(5);
        assert!(matches!(
            c.validate(),
            Err(CircuitError::QubitOutOfRange { qubit: 5, .. })
        ));
    }

    #[test]
    fn validate_catches_duplicate_qubits() {
        let mut c = Circuit::new(2, "bad");
        c.cx(1, 1);
        assert!(matches!(
            c.validate(),
            Err(CircuitError::DuplicateQubit { qubit: 1, .. })
        ));
    }

    #[test]
    fn validate_catches_bad_permutation() {
        let mut c = Circuit::new(2, "bad");
        c.permutation(0, 1, vec![0, 0], &[], "dup");
        assert!(matches!(
            c.validate(),
            Err(CircuitError::InvalidPermutation { .. })
        ));
    }

    #[test]
    fn append_shifts_qubits() {
        let mut inner = Circuit::new(2, "inner");
        inner.h(0).cx(0, 1);
        let mut outer = Circuit::new(5, "outer");
        outer.append(&inner, 3);
        match &outer.ops()[0] {
            Operation::Gate { target, .. } => assert_eq!(*target, 3),
            other => panic!("unexpected {other:?}"),
        }
        match &outer.ops()[1] {
            Operation::Gate {
                target, controls, ..
            } => {
                assert_eq!(*target, 4);
                assert_eq!(controls[0].qubit, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        outer.validate().unwrap();
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2, "fwd");
        c.h(0).s(1).cx(0, 1);
        let inv = c.inverse();
        assert_eq!(inv.gate_count(), 3);
        match &inv.ops()[0] {
            Operation::Gate { gate, .. } => assert_eq!(*gate, Gate::X), // cx last -> first
            other => panic!("unexpected {other:?}"),
        }
        match &inv.ops()[1] {
            Operation::Gate { gate, .. } => assert_eq!(*gate, Gate::Sdg),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inverse_of_permutation_inverts_table() {
        let mut c = Circuit::new(2, "perm");
        c.permutation(0, 2, vec![1, 2, 3, 0], &[], "cycle");
        let inv = c.inverse();
        match &inv.ops()[0] {
            Operation::Permutation { perm, .. } => {
                assert_eq!(perm.as_slice(), &[3, 0, 1, 2]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn swap_is_three_cnots() {
        let mut c = Circuit::new(2, "swap");
        c.swap(0, 1);
        assert_eq!(c.gate_count(), 3);
    }
}

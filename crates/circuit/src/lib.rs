//! Quantum circuit intermediate representation and benchmark generators.
//!
//! A [`Circuit`] is a register width plus a sequence of [`Operation`]s:
//! (controlled) single-qubit gates, basis-permutation blocks (used for
//! Shor's modular arithmetic), and **approximation markers** —
//! [`Operation::ApproxPoint`] — that tell the fidelity-driven simulation
//! strategy where circuit-block boundaries lie (Example 10 / Fig. 2 of
//! the paper).
//!
//! The [`generators`] module produces the workload families of the
//! paper's evaluation (quantum-supremacy grids, QFT, Grover, GHZ, random
//! circuits), and [`qasm`] provides an OpenQASM 2 subset for interchange.
//!
//! # Examples
//!
//! ```
//! use approxdd_circuit::{Circuit, Gate};
//!
//! let mut c = Circuit::new(3, "bell3");
//! c.h(2).cx(2, 1).cx(1, 0);
//! assert_eq!(c.gate_count(), 3);
//! assert_eq!(c.n_qubits(), 3);
//! c.validate().unwrap();
//! let _ = Gate::H; // gate alphabet re-exported for matching
//! ```

mod circuit;
mod clifford;
mod gate;
mod op;

pub mod generators;
pub mod noise;
pub mod qasm;

pub use circuit::{Circuit, CircuitError, CircuitStats};
pub use clifford::{CliffordGate, CliffordOp};
pub use gate::Gate;
pub use op::{Control, Operation};

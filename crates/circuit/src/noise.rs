//! Noise channels and noise models for stochastic trajectory
//! simulation.
//!
//! A [`NoiseChannel`] is a completely positive trace-preserving map
//! given in Kraus form `ρ → Σᵢ Kᵢ ρ Kᵢ†`. Every channel here is
//! normalized into a list of [`KrausBranch`]es: branch `i` carries a
//! fixed selection probability `qᵢ` and the *rescaled* operator
//! `Kᵢ/√qᵢ` as per-qubit factors. That one representation serves both
//! consumers:
//!
//! * **trajectory sampling** (`approxdd-noise`) selects a branch with
//!   probability `qᵢ` and inserts its factors into the op stream —
//!   Pauli factors as plain gates, general factors (amplitude damping)
//!   as 1-qubit [`Operation::DenseBlock`]s. Because the inserted
//!   operator is `Kᵢ/√qᵢ`, the expected outer product over trajectories
//!   is exactly `Σᵢ qᵢ (Kᵢ/√qᵢ) ρ (Kᵢ/√qᵢ)† = Σᵢ Kᵢ ρ Kᵢ†` — the
//!   channel itself, with no state-dependent branch probabilities
//!   needed. Pauli branches are unitary, so those trajectories stay
//!   normalized; amplitude-damping trajectories carry their importance
//!   weight in the state norm.
//! * the **exact density baseline** (`approxdd-statevector`'s
//!   `DensityMatrix`) applies `Σᵢ qᵢ Fᵢ ρ Fᵢ†` over the same branches.
//!
//! A [`NoiseModel`] attaches channels to a circuit: globally (after
//! every state-transforming operation), per gate name, and per qubit.
//! The model is pure data — deterministic to walk, cheap to clone —
//! so pooled trajectory sampling stays byte-identical across worker
//! counts.

use std::error::Error;
use std::fmt;

use approxdd_complex::Cplx;

use crate::gate::Gate;
use crate::op::Operation;

/// Errors from noise-model construction/validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NoiseError {
    /// A channel probability or damping rate outside `[0, 1]`.
    InvalidRate {
        /// The channel's name.
        channel: &'static str,
        /// The offending rate.
        rate: f64,
    },
    /// A two-qubit channel attached where only one qubit is available
    /// (per-qubit attachments accept only one-qubit channels).
    ArityMismatch {
        /// The channel's name.
        channel: &'static str,
    },
}

impl fmt::Display for NoiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseError::InvalidRate { channel, rate } => {
                write!(f, "{channel}: rate {rate} outside [0, 1]")
            }
            NoiseError::ArityMismatch { channel } => {
                write!(
                    f,
                    "{channel}: two-qubit channel needs a two-qubit attachment point"
                )
            }
        }
    }
}

impl Error for NoiseError {}

/// One single-qubit factor of a Kraus branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KrausFactor {
    /// A unitary factor expressible as a gate from the alphabet
    /// (identity/Pauli for the channels shipped here). Trajectories
    /// insert it as a plain [`Operation::Gate`]; identity factors are
    /// skipped entirely.
    Gate(Gate),
    /// A general (possibly non-unitary) 2×2 factor, row-major.
    /// Trajectories insert it as a width-1 [`Operation::DenseBlock`].
    Matrix([[Cplx; 2]; 2]),
}

impl KrausFactor {
    /// The factor as a dense 2×2 matrix (row-major).
    #[must_use]
    pub fn matrix(&self) -> [[Cplx; 2]; 2] {
        match self {
            KrausFactor::Gate(g) => g.matrix(),
            KrausFactor::Matrix(m) => *m,
        }
    }

    /// Whether inserting this factor is a no-op (the identity gate).
    #[must_use]
    pub fn is_identity(&self) -> bool {
        matches!(self, KrausFactor::Gate(Gate::I))
    }
}

/// One branch of a channel's Kraus decomposition: selection probability
/// `q` plus the rescaled operator `K/√q` as one factor per touched
/// qubit (`factors.len()` equals the channel's [`NoiseChannel::arity`]).
#[derive(Debug, Clone, PartialEq)]
pub struct KrausBranch {
    /// Fixed selection probability (branch probabilities sum to 1).
    pub probability: f64,
    /// Per-qubit factors of `K/√q`, one per channel slot.
    pub factors: Vec<KrausFactor>,
}

/// A noise channel in Kraus form. Rates are validated into `[0, 1]` by
/// the constructors.
///
/// # Examples
///
/// ```
/// use approxdd_circuit::noise::NoiseChannel;
///
/// let depol = NoiseChannel::depolarizing(0.01).unwrap();
/// assert_eq!(depol.arity(), 1);
/// let total: f64 = depol.branches().iter().map(|b| b.probability).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// assert!(NoiseChannel::bit_flip(1.5).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum NoiseChannel {
    /// Single-qubit depolarizing: with probability `p`, apply a
    /// uniformly random non-identity Pauli (`p/3` each).
    Depolarizing1 {
        /// Error probability in `[0, 1]`.
        p: f64,
    },
    /// Two-qubit depolarizing: with probability `p`, apply a uniformly
    /// random non-identity Pauli pair (`p/15` each).
    Depolarizing2 {
        /// Error probability in `[0, 1]`.
        p: f64,
    },
    /// Bit flip: `X` with probability `p`.
    BitFlip {
        /// Error probability in `[0, 1]`.
        p: f64,
    },
    /// Phase flip: `Z` with probability `p`.
    PhaseFlip {
        /// Error probability in `[0, 1]`.
        p: f64,
    },
    /// Amplitude damping with rate `γ`: Kraus operators
    /// `K₀ = diag(1, √(1−γ))` and `K₁ = |0⟩⟨1|·√γ`.
    AmplitudeDamping {
        /// Damping rate in `[0, 1]`.
        gamma: f64,
    },
}

fn check_rate(channel: &'static str, rate: f64) -> Result<f64, NoiseError> {
    if rate.is_finite() && (0.0..=1.0).contains(&rate) {
        Ok(rate)
    } else {
        Err(NoiseError::InvalidRate { channel, rate })
    }
}

impl NoiseChannel {
    /// Single-qubit depolarizing with error probability `p`.
    ///
    /// # Errors
    ///
    /// [`NoiseError::InvalidRate`] outside `[0, 1]`.
    pub fn depolarizing(p: f64) -> Result<Self, NoiseError> {
        Ok(NoiseChannel::Depolarizing1 {
            p: check_rate("depolarizing", p)?,
        })
    }

    /// Two-qubit depolarizing with error probability `p`.
    ///
    /// # Errors
    ///
    /// [`NoiseError::InvalidRate`] outside `[0, 1]`.
    pub fn depolarizing2(p: f64) -> Result<Self, NoiseError> {
        Ok(NoiseChannel::Depolarizing2 {
            p: check_rate("depolarizing2", p)?,
        })
    }

    /// Bit-flip with error probability `p`.
    ///
    /// # Errors
    ///
    /// [`NoiseError::InvalidRate`] outside `[0, 1]`.
    pub fn bit_flip(p: f64) -> Result<Self, NoiseError> {
        Ok(NoiseChannel::BitFlip {
            p: check_rate("bit_flip", p)?,
        })
    }

    /// Phase-flip with error probability `p`.
    ///
    /// # Errors
    ///
    /// [`NoiseError::InvalidRate`] outside `[0, 1]`.
    pub fn phase_flip(p: f64) -> Result<Self, NoiseError> {
        Ok(NoiseChannel::PhaseFlip {
            p: check_rate("phase_flip", p)?,
        })
    }

    /// Amplitude damping with rate `γ`.
    ///
    /// # Errors
    ///
    /// [`NoiseError::InvalidRate`] outside `[0, 1]`.
    pub fn amplitude_damping(gamma: f64) -> Result<Self, NoiseError> {
        Ok(NoiseChannel::AmplitudeDamping {
            gamma: check_rate("amplitude_damping", gamma)?,
        })
    }

    /// Channel name for labels and error messages.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            NoiseChannel::Depolarizing1 { .. } => "depolarizing",
            NoiseChannel::Depolarizing2 { .. } => "depolarizing2",
            NoiseChannel::BitFlip { .. } => "bit_flip",
            NoiseChannel::PhaseFlip { .. } => "phase_flip",
            NoiseChannel::AmplitudeDamping { .. } => "amplitude_damping",
        }
    }

    /// Number of qubits the channel acts on (1 or 2).
    #[must_use]
    pub fn arity(&self) -> usize {
        match self {
            NoiseChannel::Depolarizing2 { .. } => 2,
            _ => 1,
        }
    }

    /// The channel's error rate (`p` or `γ`).
    #[must_use]
    pub fn rate(&self) -> f64 {
        match *self {
            NoiseChannel::Depolarizing1 { p }
            | NoiseChannel::Depolarizing2 { p }
            | NoiseChannel::BitFlip { p }
            | NoiseChannel::PhaseFlip { p } => p,
            NoiseChannel::AmplitudeDamping { gamma } => gamma,
        }
    }

    /// The Kraus branches. Selection probabilities are
    /// **trace-proportional**: `qᵢ = tr(Kᵢ†Kᵢ)/2ᵃ` (with `a` the
    /// arity), so `qᵢ = 0` exactly when `Kᵢ = 0` — zero branches are
    /// dropped and the `1/√qᵢ` rescaling of every surviving branch is
    /// well defined for *all* valid rates, including the γ = 1
    /// amplitude-damping edge where `K₀ = diag(1, 0)` is nonzero but
    /// its naive "keep probability" `1 − γ` vanishes. For the Pauli
    /// channels `tr(Kᵢ†Kᵢ)/2ᵃ` reduces to the usual error
    /// probabilities. Probabilities sum to 1 (trace preservation).
    #[must_use]
    pub fn branches(&self) -> Vec<KrausBranch> {
        let pauli1 = |g: Gate, q: f64| KrausBranch {
            probability: q,
            factors: vec![KrausFactor::Gate(g)],
        };
        let branches = match *self {
            NoiseChannel::BitFlip { p } => vec![pauli1(Gate::I, 1.0 - p), pauli1(Gate::X, p)],
            NoiseChannel::PhaseFlip { p } => vec![pauli1(Gate::I, 1.0 - p), pauli1(Gate::Z, p)],
            NoiseChannel::Depolarizing1 { p } => vec![
                pauli1(Gate::I, 1.0 - p),
                pauli1(Gate::X, p / 3.0),
                pauli1(Gate::Y, p / 3.0),
                pauli1(Gate::Z, p / 3.0),
            ],
            NoiseChannel::Depolarizing2 { p } => {
                let paulis = [Gate::I, Gate::X, Gate::Y, Gate::Z];
                let mut v = Vec::with_capacity(16);
                for a in paulis {
                    for b in paulis {
                        let q = if a == Gate::I && b == Gate::I {
                            1.0 - p
                        } else {
                            p / 15.0
                        };
                        v.push(KrausBranch {
                            probability: q,
                            factors: vec![KrausFactor::Gate(a), KrausFactor::Gate(b)],
                        });
                    }
                }
                v
            }
            NoiseChannel::AmplitudeDamping { gamma } => {
                // K₀ = diag(1, √(1−γ)), K₁ = √γ·|0⟩⟨1|. Trace-
                // proportional selection: q₀ = (2−γ)/2, q₁ = γ/2; the
                // inserted operators are Kᵢ/√qᵢ.
                let q0 = (2.0 - gamma) / 2.0;
                let q1 = gamma / 2.0;
                let k0 = [
                    [Cplx::real(1.0 / q0.sqrt()), Cplx::ZERO],
                    [Cplx::ZERO, Cplx::real(((1.0 - gamma) / q0).sqrt())],
                ];
                let k1 = [
                    [Cplx::ZERO, Cplx::real(std::f64::consts::SQRT_2)],
                    [Cplx::ZERO, Cplx::ZERO],
                ];
                vec![
                    KrausBranch {
                        probability: q0,
                        factors: vec![KrausFactor::Matrix(k0)],
                    },
                    KrausBranch {
                        probability: q1,
                        factors: vec![KrausFactor::Matrix(k1)],
                    },
                ]
            }
        };
        branches
            .into_iter()
            .filter(|b| b.probability > 0.0)
            .collect()
    }

    /// Selects the branch a uniform draw `r ∈ [0, 1)` lands in.
    /// Rebuilds the branch table per call — samplers drawing in a loop
    /// should cache [`NoiseChannel::branches`] and walk it with
    /// [`select_branch`] instead.
    #[must_use]
    pub fn select(&self, r: f64) -> KrausBranch {
        let branches = self.branches();
        select_branch(&branches, r).clone()
    }
}

/// Selects the branch of a cached table that a uniform draw
/// `r ∈ [0, 1)` lands in (cumulative walk; the single walker shared by
/// [`NoiseChannel::select`] and the trajectory sampler).
///
/// # Panics
///
/// Panics on an empty table (channels always have ≥ 1 branch).
#[must_use]
pub fn select_branch(branches: &[KrausBranch], r: f64) -> &KrausBranch {
    let mut acc = 0.0;
    for branch in branches {
        acc += branch.probability;
        if r < acc {
            return branch;
        }
    }
    branches.last().expect("channels have ≥1 branch")
}

/// One channel application site: the channel plus the qubits it acts on
/// (length equals the channel's arity).
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseApplication {
    /// The channel to apply.
    pub channel: NoiseChannel,
    /// Target qubits in slot order.
    pub qubits: Vec<usize>,
}

/// A noise model: channels attached globally, per gate name, and per
/// qubit, applied after every state-transforming operation.
///
/// # Examples
///
/// ```
/// use approxdd_circuit::noise::{NoiseChannel, NoiseModel};
/// use approxdd_circuit::Circuit;
///
/// let model = NoiseModel::new()
///     .with_global(NoiseChannel::depolarizing(0.01).unwrap())
///     .with_gate("cx", NoiseChannel::depolarizing2(0.02).unwrap())
///     .with_qubit(0, NoiseChannel::amplitude_damping(0.05).unwrap());
/// model.validate().unwrap();
///
/// let mut c = Circuit::new(2, "bell");
/// c.h(1).cx(1, 0);
/// // h touches one qubit: global depolarizing only (no qubit-0 site).
/// assert_eq!(model.applications(&c.ops()[0]).len(), 1);
/// // cx touches both: 2 global + 1 per-gate + 1 per-qubit site.
/// assert_eq!(model.applications(&c.ops()[1]).len(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NoiseModel {
    global: Vec<NoiseChannel>,
    per_gate: Vec<(String, NoiseChannel)>,
    per_qubit: Vec<(usize, NoiseChannel)>,
}

impl NoiseModel {
    /// An ideal (noiseless) model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A uniform depolarizing model: rate `p` after every single-qubit
    /// gate (per touched qubit) and two-qubit depolarizing at the same
    /// rate after every multi-qubit operation — the standard NISQ
    /// smoke-test model.
    ///
    /// # Errors
    ///
    /// [`NoiseError::InvalidRate`] outside `[0, 1]`.
    pub fn depolarizing(p: f64) -> Result<Self, NoiseError> {
        Ok(Self::new()
            .with_global(NoiseChannel::depolarizing(p)?)
            .with_global(NoiseChannel::depolarizing2(p)?))
    }

    /// Attaches a channel after every state-transforming operation:
    /// arity-1 channels fire once per touched qubit, arity-2 channels
    /// once per operation touching ≥ 2 qubits (on its first two).
    #[must_use]
    pub fn with_global(mut self, channel: NoiseChannel) -> Self {
        self.global.push(channel);
        self
    }

    /// Attaches a channel to every operation whose base mnemonic is
    /// `gate` (`"h"`, `"cx"` matches controlled-X, `"perm"` for
    /// permutation blocks, `"unitary"` for dense blocks). Expansion to
    /// qubits follows [`NoiseModel::with_global`].
    #[must_use]
    pub fn with_gate(mut self, gate: impl Into<String>, channel: NoiseChannel) -> Self {
        self.per_gate.push((gate.into(), channel));
        self
    }

    /// Attaches a one-qubit channel to qubit `q`, firing whenever an
    /// operation touches `q`.
    #[must_use]
    pub fn with_qubit(mut self, q: usize, channel: NoiseChannel) -> Self {
        self.per_qubit.push((q, channel));
        self
    }

    /// Whether the model carries no channels at all.
    #[must_use]
    pub fn is_ideal(&self) -> bool {
        self.global.is_empty() && self.per_gate.is_empty() && self.per_qubit.is_empty()
    }

    /// Total number of attached channels (all three attachment kinds).
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.global.len() + self.per_gate.len() + self.per_qubit.len()
    }

    /// Checks rates and attachment arities.
    ///
    /// # Errors
    ///
    /// The first [`NoiseError`] found.
    pub fn validate(&self) -> Result<(), NoiseError> {
        let all = self
            .global
            .iter()
            .chain(self.per_gate.iter().map(|(_, c)| c))
            .chain(self.per_qubit.iter().map(|(_, c)| c));
        for channel in all {
            check_rate(channel.name(), channel.rate())?;
        }
        for (_, channel) in &self.per_qubit {
            if channel.arity() != 1 {
                return Err(NoiseError::ArityMismatch {
                    channel: channel.name(),
                });
            }
        }
        Ok(())
    }

    /// The base mnemonic a [`NoiseModel::with_gate`] attachment matches
    /// against (controls are ignored: `cx` matches as `"x"` *and*
    /// `"cx"` for convenience — see the match below).
    fn op_name(op: &Operation) -> Option<&'static str> {
        match op {
            Operation::Gate { gate, .. } => Some(gate.name()),
            Operation::Permutation { .. } => Some("perm"),
            Operation::DenseBlock { .. } => Some("unitary"),
            Operation::ApproxPoint | Operation::Barrier => None,
        }
    }

    fn matches_gate(key: &str, op: &Operation) -> bool {
        let Some(base) = Self::op_name(op) else {
            return false;
        };
        if key == base {
            return true;
        }
        // "cx"/"ccx"-style keys: controlled forms of a base mnemonic.
        if let Operation::Gate { controls, .. } = op {
            if !controls.is_empty() {
                if let Some(stripped) = key.strip_prefix('c') {
                    return stripped == base && controls.len() == 1
                        || key.strip_prefix("cc") == Some(base) && controls.len() == 2;
                }
            }
        }
        false
    }

    /// The channel application sites this model attaches to `op`, in a
    /// deterministic order (global, then per-gate, then per-qubit —
    /// each in attachment order). Markers and barriers get none.
    ///
    /// Both the trajectory sampler and the exact density baseline walk
    /// this same list, so the two agree on channel ordering (channels
    /// do not commute in general).
    #[must_use]
    pub fn applications(&self, op: &Operation) -> Vec<NoiseApplication> {
        if !op.is_gate() {
            return Vec::new();
        }
        let qubits = op.qubits();
        let mut sites = Vec::new();
        let mut expand = |channel: &NoiseChannel| match channel.arity() {
            1 => {
                for &q in &qubits {
                    sites.push(NoiseApplication {
                        channel: *channel,
                        qubits: vec![q],
                    });
                }
            }
            _ => {
                if qubits.len() >= 2 {
                    sites.push(NoiseApplication {
                        channel: *channel,
                        qubits: vec![qubits[0], qubits[1]],
                    });
                }
            }
        };
        for channel in &self.global {
            expand(channel);
        }
        for (key, channel) in &self.per_gate {
            if Self::matches_gate(key, op) {
                expand(channel);
            }
        }
        for (q, channel) in &self.per_qubit {
            // Arity-2 channels have no single-qubit attachment; the
            // mismatch is reported by validate() — never emitted as a
            // malformed site (a one-qubit site with a two-factor
            // branch would index past its qubit list downstream).
            if channel.arity() == 1 && qubits.contains(q) {
                sites.push(NoiseApplication {
                    channel: *channel,
                    qubits: vec![*q],
                });
            }
        }
        sites
    }
}

/// Deduplicated branch tables of a model's distinct channels — the one
/// table-resolution structure shared by the trajectory sampler and the
/// exact density baseline, so both always agree on which table a site
/// uses. Models attach a handful of distinct channels, so lookup is a
/// linear scan.
#[derive(Debug, Clone, Default)]
pub struct ChannelTables {
    channels: Vec<NoiseChannel>,
    tables: Vec<Vec<KrausBranch>>,
}

impl ChannelTables {
    /// An empty table set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The table index of `channel`, resolving its branches on first
    /// sight.
    pub fn index_of(&mut self, channel: NoiseChannel) -> usize {
        match self.channels.iter().position(|c| *c == channel) {
            Some(i) => i,
            None => {
                self.channels.push(channel);
                self.tables.push(channel.branches());
                self.channels.len() - 1
            }
        }
    }

    /// The branch table at `index` (as returned by
    /// [`ChannelTables::index_of`]).
    #[must_use]
    pub fn table(&self, index: usize) -> &[KrausBranch] {
        &self.tables[index]
    }

    /// Number of distinct channels resolved so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Whether no channel has been resolved yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn rates_are_validated() {
        assert!(NoiseChannel::bit_flip(-0.1).is_err());
        assert!(NoiseChannel::depolarizing(1.1).is_err());
        assert!(NoiseChannel::amplitude_damping(f64::NAN).is_err());
        assert!(NoiseChannel::phase_flip(0.0).is_ok());
        assert!(NoiseChannel::depolarizing2(1.0).is_ok());
    }

    #[test]
    fn branch_probabilities_sum_to_one() {
        for channel in [
            NoiseChannel::bit_flip(0.25).unwrap(),
            NoiseChannel::phase_flip(0.1).unwrap(),
            NoiseChannel::depolarizing(0.3).unwrap(),
            NoiseChannel::depolarizing2(0.2).unwrap(),
            NoiseChannel::amplitude_damping(0.4).unwrap(),
        ] {
            let total: f64 = channel.branches().iter().map(|b| b.probability).sum();
            assert!((total - 1.0).abs() < 1e-12, "{}: {total}", channel.name());
            for branch in channel.branches() {
                assert_eq!(branch.factors.len(), channel.arity());
            }
        }
    }

    #[test]
    fn zero_operator_branches_are_dropped() {
        // p = 0: only the identity branch survives, so a trajectory
        // never divides by √0.
        let branches = NoiseChannel::bit_flip(0.0).unwrap().branches();
        assert_eq!(branches.len(), 1);
        assert!(branches[0].factors[0].is_identity());
        // γ = 0: K₁ = √γ·|0⟩⟨1| is the zero operator and is dropped.
        let branches = NoiseChannel::amplitude_damping(0.0).unwrap().branches();
        assert_eq!(branches.len(), 1);
        assert!((branches[0].probability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_amplitude_damping_keeps_the_nonzero_k0() {
        // γ = 1: the naive "keep probability" 1 − γ vanishes, but
        // K₀ = diag(1, 0) is NOT the zero operator — trace-proportional
        // selection keeps both branches at q = 1/2 and the channel
        // still satisfies Σ qᵢFᵢ†Fᵢ = I (covered by the completeness
        // test below). Dropping K₀ here would annihilate the ground
        // state: every |0⟩ population would vanish from trajectories
        // and the exact baseline alike.
        let branches = NoiseChannel::amplitude_damping(1.0).unwrap().branches();
        assert_eq!(branches.len(), 2);
        for branch in &branches {
            assert!((branch.probability - 0.5).abs() < 1e-12);
            let m = branch.factors[0].matrix();
            assert!(m.iter().flatten().all(|e| e.is_finite()));
            assert!(
                m.iter().flatten().any(|e| e.mag() > 0.0),
                "no branch may carry the zero operator"
            );
        }
    }

    #[test]
    fn kraus_completeness_sums_to_identity() {
        // Σ Kᵢ†Kᵢ = Σ qᵢ Fᵢ†Fᵢ = I for every channel.
        for channel in [
            NoiseChannel::bit_flip(0.3).unwrap(),
            NoiseChannel::depolarizing(0.2).unwrap(),
            NoiseChannel::amplitude_damping(0.37).unwrap(),
            NoiseChannel::amplitude_damping(0.0).unwrap(),
            NoiseChannel::amplitude_damping(1.0).unwrap(),
        ] {
            let mut sum = [[Cplx::ZERO; 2]; 2];
            for branch in channel.branches() {
                let m = branch.factors[0].matrix();
                for (r, sum_row) in sum.iter_mut().enumerate() {
                    for (c, slot) in sum_row.iter_mut().enumerate() {
                        let acc: Cplx = m.iter().map(|row| row[r].conj() * row[c]).sum();
                        *slot += acc.scale(branch.probability);
                    }
                }
            }
            for (r, sum_row) in sum.iter().enumerate() {
                for (c, value) in sum_row.iter().enumerate() {
                    let want = if r == c { 1.0 } else { 0.0 };
                    assert!(
                        (*value - Cplx::real(want)).mag() < 1e-12,
                        "{}: Σ K†K [{r}][{c}] = {value:?}",
                        channel.name()
                    );
                }
            }
        }
    }

    #[test]
    fn select_walks_the_cumulative_distribution() {
        let channel = NoiseChannel::depolarizing(0.3).unwrap();
        assert!(channel.select(0.0).factors[0].is_identity());
        assert!(channel.select(0.69).factors[0].is_identity());
        assert!(!channel.select(0.71).factors[0].is_identity());
        // r → 1 lands in the last branch, never panics.
        assert_eq!(channel.select(0.999_999).factors.len(), 1);
    }

    #[test]
    fn model_applications_follow_attachments() {
        let model = NoiseModel::new()
            .with_global(NoiseChannel::depolarizing(0.01).unwrap())
            .with_global(NoiseChannel::depolarizing2(0.02).unwrap())
            .with_gate("t", NoiseChannel::phase_flip(0.1).unwrap())
            .with_qubit(1, NoiseChannel::amplitude_damping(0.2).unwrap());
        model.validate().unwrap();
        let mut c = Circuit::new(3, "m");
        c.t(0).cx(0, 1).approx_point();

        // t q[0]: global depol1 on qubit 0 + per-gate phase flip.
        let t_sites = model.applications(&c.ops()[0]);
        assert_eq!(t_sites.len(), 2);
        assert_eq!(t_sites[0].channel.name(), "depolarizing");
        assert_eq!(t_sites[1].channel.name(), "phase_flip");

        // cx q[0],q[1]: depol1 ×2 + depol2 + per-qubit damping on q1.
        let cx_sites = model.applications(&c.ops()[1]);
        assert_eq!(cx_sites.len(), 4);
        assert_eq!(cx_sites[2].channel.arity(), 2);
        assert_eq!(cx_sites[2].qubits, vec![1, 0]); // target first (op.qubits order)
        assert_eq!(cx_sites[3].qubits, vec![1]);

        // markers get nothing.
        assert!(model.applications(&c.ops()[2]).is_empty());
    }

    #[test]
    fn gate_keys_match_controlled_mnemonics() {
        let mut c = Circuit::new(3, "m");
        c.cx(0, 1).ccx(0, 1, 2).x(0);
        let cx_model = NoiseModel::new().with_gate("cx", NoiseChannel::bit_flip(0.1).unwrap());
        assert_eq!(cx_model.applications(&c.ops()[0]).len(), 2); // both cx qubits
        assert!(cx_model.applications(&c.ops()[1]).is_empty()); // not ccx
        assert!(cx_model.applications(&c.ops()[2]).is_empty()); // not bare x
        let x_model = NoiseModel::new().with_gate("x", NoiseChannel::bit_flip(0.1).unwrap());
        assert_eq!(x_model.applications(&c.ops()[2]).len(), 1);
    }

    #[test]
    fn per_qubit_rejects_two_qubit_channels() {
        let model = NoiseModel::new().with_qubit(0, NoiseChannel::depolarizing2(0.1).unwrap());
        assert!(matches!(
            model.validate(),
            Err(NoiseError::ArityMismatch { .. })
        ));
        // And applications() never emits the malformed site, so even
        // callers that skip validate() cannot index past a site's
        // qubit list.
        let mut c = Circuit::new(2, "m");
        c.cx(0, 1);
        assert!(model.applications(&c.ops()[0]).is_empty());
    }

    #[test]
    fn channel_tables_deduplicate_by_value() {
        let mut tables = ChannelTables::new();
        assert!(tables.is_empty());
        let depol = NoiseChannel::depolarizing(0.1).unwrap();
        let damp = NoiseChannel::amplitude_damping(0.2).unwrap();
        let a = tables.index_of(depol);
        let b = tables.index_of(damp);
        assert_eq!(tables.index_of(depol), a, "same channel, same table");
        assert_ne!(a, b);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables.table(a).len(), depol.branches().len());
    }

    #[test]
    fn ideal_model_is_ideal() {
        assert!(NoiseModel::new().is_ideal());
        assert!(!NoiseModel::depolarizing(0.01).unwrap().is_ideal());
        assert_eq!(NoiseModel::depolarizing(0.01).unwrap().channel_count(), 2);
    }
}

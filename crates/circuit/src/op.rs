//! Circuit operations: gates with controls, permutation blocks, dense
//! unitary blocks, markers.

use std::fmt;
use std::sync::Arc;

use approxdd_complex::Cplx;

use crate::gate::Gate;

/// A control condition on one qubit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Control {
    /// The controlling qubit.
    pub qubit: usize,
    /// `true`: fires on `|1⟩` (positive control); `false`: fires on `|0⟩`.
    pub positive: bool,
}

impl Control {
    /// A positive (fires-on-one) control.
    #[must_use]
    pub fn positive(qubit: usize) -> Self {
        Self {
            qubit,
            positive: true,
        }
    }

    /// A negative (fires-on-zero) control.
    #[must_use]
    pub fn negative(qubit: usize) -> Self {
        Self {
            qubit,
            positive: false,
        }
    }
}

/// One step of a circuit.
///
/// This enum is deliberately *not* `#[non_exhaustive]`: simulators match
/// on it exhaustively, and extending the IR is a semver-breaking change
/// by design.
#[derive(Debug, Clone, PartialEq)]
pub enum Operation {
    /// A (multi-)controlled single-qubit gate.
    Gate {
        /// The base gate.
        gate: Gate,
        /// Target qubit.
        target: usize,
        /// Control conditions (empty for an uncontrolled gate).
        controls: Vec<Control>,
    },
    /// A (multi-)controlled permutation of the computational basis of the
    /// contiguous qubits `[lo, lo + k)`: `|c⟩ → |perm[c]⟩`. Shor's
    /// modular multiplications are expressed this way.
    Permutation {
        /// Lowest qubit of the permuted block.
        lo: usize,
        /// Width of the block (`perm.len() == 2^k`).
        k: usize,
        /// The permutation table (shared; circuits are cheap to clone).
        perm: Arc<Vec<usize>>,
        /// Control conditions.
        controls: Vec<Control>,
        /// Human-readable label (e.g. `"*a^2 mod 33"`).
        label: String,
    },
    /// A (multi-)controlled dense unitary on the contiguous qubits
    /// `[lo, lo + k)`, given as a row-major `2^k × 2^k` matrix. Used for
    /// quantum-volume style workloads with Haar-random two-qubit blocks.
    DenseBlock {
        /// Lowest qubit of the block.
        lo: usize,
        /// Width of the block (`matrix.len() == 4^k`).
        k: usize,
        /// Row-major matrix entries (shared).
        matrix: Arc<Vec<Cplx>>,
        /// Control conditions.
        controls: Vec<Control>,
        /// Human-readable label.
        label: String,
    },
    /// A marker designating a good location for an approximation round
    /// (a circuit-block boundary, Example 10 of the paper). Semantically
    /// the identity.
    ApproxPoint,
    /// A scheduling barrier (semantically the identity; kept for QASM
    /// round-trips).
    Barrier,
}

impl Operation {
    /// Whether this operation actually transforms the state (markers and
    /// barriers do not).
    #[must_use]
    pub fn is_gate(&self) -> bool {
        matches!(
            self,
            Operation::Gate { .. } | Operation::Permutation { .. } | Operation::DenseBlock { .. }
        )
    }

    /// All qubits touched by this operation (targets then controls).
    #[must_use]
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Operation::Gate {
                target, controls, ..
            } => {
                let mut v = vec![*target];
                v.extend(controls.iter().map(|c| c.qubit));
                v
            }
            Operation::Permutation {
                lo, k, controls, ..
            }
            | Operation::DenseBlock {
                lo, k, controls, ..
            } => {
                let mut v: Vec<usize> = (*lo..*lo + *k).collect();
                v.extend(controls.iter().map(|c| c.qubit));
                v
            }
            Operation::ApproxPoint | Operation::Barrier => Vec::new(),
        }
    }

    /// Control list as `(qubit, positive)` pairs, the format the DD gate
    /// builders consume.
    #[must_use]
    pub fn control_pairs(&self) -> Vec<(usize, bool)> {
        match self {
            Operation::Gate { controls, .. }
            | Operation::Permutation { controls, .. }
            | Operation::DenseBlock { controls, .. } => {
                controls.iter().map(|c| (c.qubit, c.positive)).collect()
            }
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Gate {
                gate,
                target,
                controls,
            } => {
                if controls.is_empty() {
                    write!(f, "{gate} q[{target}]")
                } else {
                    let ctl: Vec<String> = controls
                        .iter()
                        .map(|c| {
                            if c.positive {
                                format!("q[{}]", c.qubit)
                            } else {
                                format!("!q[{}]", c.qubit)
                            }
                        })
                        .collect();
                    write!(f, "c{gate} {} -> q[{target}]", ctl.join(","))
                }
            }
            Operation::Permutation { lo, k, label, .. } => {
                write!(f, "perm[{label}] q[{lo}..{}]", lo + k)
            }
            Operation::DenseBlock { lo, k, label, .. } => {
                write!(f, "unitary[{label}] q[{lo}..{}]", lo + k)
            }
            Operation::ApproxPoint => f.write_str("approx_point"),
            Operation::Barrier => f.write_str("barrier"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubits_of_controlled_gate() {
        let op = Operation::Gate {
            gate: Gate::X,
            target: 0,
            controls: vec![Control::positive(2), Control::negative(1)],
        };
        assert_eq!(op.qubits(), vec![0, 2, 1]);
        assert_eq!(op.control_pairs(), vec![(2, true), (1, false)]);
        assert!(op.is_gate());
    }

    #[test]
    fn markers_touch_no_qubits() {
        assert!(Operation::ApproxPoint.qubits().is_empty());
        assert!(!Operation::ApproxPoint.is_gate());
        assert!(!Operation::Barrier.is_gate());
    }

    #[test]
    fn display_forms() {
        let op = Operation::Gate {
            gate: Gate::H,
            target: 3,
            controls: vec![],
        };
        assert_eq!(op.to_string(), "h q[3]");
        let op = Operation::Gate {
            gate: Gate::X,
            target: 0,
            controls: vec![Control::positive(1)],
        };
        assert_eq!(op.to_string(), "cx q[1] -> q[0]");
    }
}

//! Benchmark circuit generators: the workload families of the paper's
//! evaluation plus standard sanity workloads.
//!
//! * [`supremacy`] — Boixo-et-al.-style quantum-supremacy grid circuits
//!   with conditional phase (CZ) gates, the memory-driven benchmark of
//!   Table I ("qsup_AxB_C").
//! * [`qft`] / [`inverse_qft`] — the quantum Fourier transform, the
//!   expensive tail block of Shor's algorithm; the inverse variant
//!   carries approximation markers after each qubit's rotation block
//!   (Example 10).
//! * [`grover`], [`ghz`], [`w_state`], [`bernstein_vazirani`],
//!   [`random_circuit`] — standard families for tests, examples and
//!   ablations.

use approxdd_complex::Cplx;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::op::Control;

/// The GHZ (cat) state preparation `(|0…0⟩ + |1…1⟩)/√2`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn ghz(n: usize) -> Circuit {
    assert!(n > 0, "ghz requires at least one qubit");
    let mut c = Circuit::new(n, format!("ghz_{n}"));
    c.h(n - 1);
    for q in (0..n - 1).rev() {
        c.cx(q + 1, q);
    }
    c
}

/// The W-state preparation `(|10…0⟩ + |01…0⟩ + … + |0…01⟩)/√n` via a
/// cascade of controlled rotations.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn w_state(n: usize) -> Circuit {
    assert!(n > 0, "w_state requires at least one qubit");
    let mut c = Circuit::new(n, format!("w_{n}"));
    // Standard construction: qubit n-1 starts in |1>, then distribute the
    // excitation downward with controlled rotations + CNOTs.
    c.x(n - 1);
    for i in (1..n).rev() {
        // Keep amplitude 1/sqrt(i+1) of the remaining excitation on
        // qubit i and pass the rest to qubit i-1:
        // controlled-Ry(2*acos(1/sqrt(i+1))) then CX back.
        let theta = 2.0 * (1.0 / (i as f64 + 1.0)).sqrt().acos();
        c.controlled(Gate::Ry(theta), &[i], i - 1);
        c.cx(i - 1, i);
    }
    c
}

/// The quantum Fourier transform on `n` qubits, textbook form with the
/// final swap layer (so the matrix equals `F_{2^n}` in the standard
/// little-endian basis).
#[must_use]
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n, format!("qft_{n}"));
    for i in (0..n).rev() {
        c.h(i);
        for j in (0..i).rev() {
            let theta = std::f64::consts::PI / f64::from(1u32 << (i - j));
            c.cp(theta, j, i);
        }
    }
    for q in 0..n / 2 {
        c.swap(q, n - 1 - q);
    }
    c
}

/// The inverse quantum Fourier transform on `n` qubits.
///
/// When `with_markers` is set, an [`crate::Operation::ApproxPoint`] is
/// inserted after each qubit's H+controlled-rotation block — the
/// locations the paper's fidelity-driven strategy uses inside Shor's
/// algorithm (Example 10: "after the controlled rotations during the
/// inverse QFT").
#[must_use]
pub fn inverse_qft(n: usize, with_markers: bool) -> Circuit {
    let mut c = Circuit::new(n, format!("iqft_{n}"));
    for q in 0..n / 2 {
        c.swap(q, n - 1 - q);
    }
    for i in 0..n {
        for j in 0..i {
            let theta = -std::f64::consts::PI / f64::from(1u32 << (i - j));
            c.cp(theta, j, i);
        }
        c.h(i);
        if with_markers {
            c.approx_point();
        }
    }
    c
}

/// Grover search marking the basis state `marked`, with
/// `iterations` rounds (pass `None` for the optimal
/// `⌊π/4 · √(2^n)⌋`).
///
/// # Panics
///
/// Panics if `n == 0` or `n > 63`, or if `marked >= 2^n`.
#[must_use]
pub fn grover(n: usize, marked: u64, iterations: Option<usize>) -> Circuit {
    assert!(n > 0 && n <= 63, "grover supports 1..=63 qubits");
    assert!(marked < (1u64 << n), "marked state out of range");
    let iters = iterations.unwrap_or_else(|| {
        let opt = std::f64::consts::FRAC_PI_4 * ((1u64 << n) as f64).sqrt();
        (opt.floor() as usize).max(1)
    });
    let mut c = Circuit::new(n, format!("grover_{n}_{marked:b}"));
    for q in 0..n {
        c.h(q);
    }
    for _ in 0..iters {
        // Oracle: flip the phase of |marked> using a multi-controlled Z
        // with negative controls on the zero bits.
        oracle_phase_flip(&mut c, n, marked);
        // Diffusion: H^n X^n (multi-controlled Z) X^n H^n.
        for q in 0..n {
            c.h(q);
        }
        oracle_phase_flip(&mut c, n, 0); // flips |0…0> phase
        for q in 0..n {
            c.h(q);
        }
        c.approx_point();
    }
    c
}

/// Appends a phase flip of basis state `marked`: Z on qubit n−1
/// controlled on all other qubits matching `marked` (negative controls
/// for zero bits), conjugated by X on the target when its bit is zero.
fn oracle_phase_flip(c: &mut Circuit, n: usize, marked: u64) {
    let target = n - 1;
    let controls: Vec<Control> = (0..n - 1)
        .map(|q| Control {
            qubit: q,
            positive: (marked >> q) & 1 == 1,
        })
        .collect();
    let target_bit = (marked >> target) & 1 == 1;
    if !target_bit {
        c.x(target);
    }
    if controls.is_empty() {
        c.z(target);
    } else {
        c.push(crate::op::Operation::Gate {
            gate: Gate::Z,
            target,
            controls,
        });
    }
    if !target_bit {
        c.x(target);
    }
}

/// Bernstein–Vazirani circuit recovering the `n`-bit secret `s` in one
/// query (the oracle is compiled inline as CZ/Z gates on the phase
/// register formulation).
///
/// # Panics
///
/// Panics if `n == 0` or `n > 63`, or if `secret >= 2^n`.
#[must_use]
pub fn bernstein_vazirani(n: usize, secret: u64) -> Circuit {
    assert!(n > 0 && n <= 63);
    assert!(secret < (1u64 << n));
    let mut c = Circuit::new(n, format!("bv_{n}"));
    for q in 0..n {
        c.h(q);
    }
    // Phase oracle for f(x) = s·x: a Z on every secret bit.
    for q in 0..n {
        if (secret >> q) & 1 == 1 {
            c.z(q);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// Quantum phase estimation of the phase gate `diag(1, e^{iθ})` with
/// `n_counting` counting qubits: one target qubit prepared in `|1⟩`
/// (the eigenstate) below the counting register. Measuring the counting
/// register yields `round(θ/2π · 2^n)` with high probability. The same
/// phase-estimation skeleton underlies Shor's algorithm (Fig. 2).
///
/// Qubit layout: target = qubit 0, counting = qubits `1..=n_counting`.
///
/// # Panics
///
/// Panics if `n_counting == 0`.
#[must_use]
pub fn phase_estimation(n_counting: usize, theta: f64) -> Circuit {
    assert!(n_counting > 0);
    let mut c = Circuit::new(n_counting + 1, format!("qpe_{n_counting}"));
    c.x(0); // eigenstate |1> of the phase gate
    for j in 0..n_counting {
        c.h(1 + j);
    }
    // Controlled-U^(2^j): powers of a phase gate are phase gates with
    // the angle scaled (reduced mod 2π for numerical hygiene).
    for j in 0..n_counting {
        let angle = (theta * 2f64.powi(j as i32)) % std::f64::consts::TAU;
        c.controlled(Gate::Phase(angle), &[1 + j], 0);
    }
    let iqft = inverse_qft(n_counting, true);
    c.append(&iqft, 1);
    c
}

/// Deutsch–Jozsa on `n` input qubits with a phase oracle: `balanced`
/// selects a balanced function `f(x) = parity(x & mask)` with the given
/// non-zero mask; `None` uses the constant function. Measuring all
/// zeros ⇔ constant.
///
/// # Panics
///
/// Panics if the mask is zero or out of range.
#[must_use]
pub fn deutsch_jozsa(n: usize, balanced: Option<u64>) -> Circuit {
    assert!(n > 0 && n <= 63);
    let mut c = Circuit::new(n, format!("dj_{n}"));
    for q in 0..n {
        c.h(q);
    }
    if let Some(mask) = balanced {
        assert!(
            mask != 0 && mask < (1u64 << n),
            "balanced mask out of range"
        );
        for q in 0..n {
            if (mask >> q) & 1 == 1 {
                c.z(q);
            }
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// A random circuit: `depth` layers, each a row of random single-qubit
/// gates from {H, T, S, X, √X} followed by a random non-overlapping CX
/// pairing. Deterministic in `seed`.
#[must_use]
pub fn random_circuit(n: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n, format!("random_{n}_{depth}_{seed}"));
    let singles = [Gate::H, Gate::T, Gate::S, Gate::X, Gate::Sx];
    for _ in 0..depth {
        for q in 0..n {
            let g = singles[rng.gen_range(0..singles.len())];
            c.gate(g, q);
        }
        let mut qubits: Vec<usize> = (0..n).collect();
        for i in (1..qubits.len()).rev() {
            let j = rng.gen_range(0..=i);
            qubits.swap(i, j);
        }
        for pair in qubits.chunks(2) {
            if pair.len() == 2 && rng.gen_bool(0.5) {
                c.cx(pair[0], pair[1]);
            }
        }
    }
    c
}

/// A random **Clifford** circuit in the style of randomized
/// benchmarking: `depth` layers, each applying one uniformly random
/// single-qubit Clifford-alphabet gate per qubit followed by CX/CZ
/// gates on a random qubit pairing. Deterministic in `seed`; the whole
/// circuit classifies as Clifford
/// ([`crate::Circuit::is_clifford`]), so the stabilizer engine
/// simulates it in polynomial time at any width.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn random_clifford(n: usize, depth: usize, seed: u64) -> Circuit {
    assert!(n > 0, "random_clifford requires at least one qubit");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n, format!("clifford_{n}_{depth}_{seed}"));
    let singles = [
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::Sx,
        Gate::Sxdg,
        Gate::Sy,
        Gate::Sydg,
    ];
    for _ in 0..depth {
        for q in 0..n {
            let g = singles[rng.gen_range(0..singles.len())];
            c.gate(g, q);
        }
        let mut qubits: Vec<usize> = (0..n).collect();
        for i in (1..qubits.len()).rev() {
            let j = rng.gen_range(0..=i);
            qubits.swap(i, j);
        }
        for pair in qubits.chunks(2) {
            if pair.len() == 2 {
                if rng.gen_bool(0.5) {
                    c.cx(pair[0], pair[1]);
                } else {
                    c.cz(pair[0], pair[1]);
                }
            }
        }
    }
    c
}

/// A quantum-volume style circuit (Cross et al.): `depth` layers, each
/// a random qubit pairing with a Haar-random SU(4) dense block per
/// pair. These circuits scramble even faster than supremacy grids and
/// exercise the dense-block gate path. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn quantum_volume(n: usize, depth: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "quantum volume needs at least two qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n, format!("qv_{n}_{depth}_{seed}"));
    for layer in 0..depth {
        let mut qubits: Vec<usize> = (0..n).collect();
        for i in (1..qubits.len()).rev() {
            let j = rng.gen_range(0..=i);
            qubits.swap(i, j);
        }
        for (p, pair) in qubits.chunks(2).enumerate() {
            if pair.len() < 2 {
                continue;
            }
            let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            let u4 = random_unitary(4, &mut rng);
            if b == a + 1 {
                // Contiguous: place the block directly.
                c.dense_block(a, 2, u4, &[], format!("su4_l{layer}p{p}"));
            } else {
                // Route qubit b next to a with swaps, apply, swap back.
                c.swap(a + 1, b);
                c.dense_block(a, 2, u4, &[], format!("su4_l{layer}p{p}"));
                c.swap(a + 1, b);
            }
        }
        c.approx_point();
    }
    c
}

/// A Haar-ish random `dim × dim` unitary (row-major) via Gram–Schmidt
/// on complex Gaussian columns (Box–Muller from the given RNG).
#[allow(clippy::needless_range_loop)] // index loops span two columns at once
fn random_unitary(dim: usize, rng: &mut StdRng) -> Vec<Cplx> {
    let mut gauss = || {
        // Box-Muller transform.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };
    // Columns of a random Gaussian matrix.
    let mut cols: Vec<Vec<Cplx>> = (0..dim)
        .map(|_| (0..dim).map(|_| Cplx::new(gauss(), gauss())).collect())
        .collect();
    // Gram-Schmidt orthonormalization.
    for i in 0..dim {
        for j in 0..i {
            let proj: Cplx = (0..dim).map(|r| cols[j][r].conj() * cols[i][r]).sum();
            for r in 0..dim {
                let adj = proj * cols[j][r];
                cols[i][r] -= adj;
            }
        }
        let norm: f64 = cols[i].iter().map(|z| z.mag2()).sum::<f64>().sqrt();
        for r in 0..dim {
            cols[i][r] = cols[i][r] / norm;
        }
    }
    // Row-major matrix with these orthonormal columns.
    let mut m = vec![Cplx::ZERO; dim * dim];
    for (c, col) in cols.iter().enumerate() {
        for (r, v) in col.iter().enumerate() {
            m[r * dim + c] = *v;
        }
    }
    m
}

/// The Cuccaro ripple-carry adder: computes `|a⟩|b⟩ → |a⟩|a+b⟩` with an
/// ancilla carry-in (qubit 0) and a carry-out qubit (the top qubit).
///
/// Qubit layout: `0` = carry-in ancilla (must be `|0⟩`),
/// `1..=n` = the `a` register (bit `i` of `a` on qubit `1+i`),
/// `n+1..=2n` = the `b` register, `2n+1` = carry-out.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn cuccaro_adder(n: usize) -> Circuit {
    assert!(n > 0, "adder needs at least one bit");
    let total = 2 * n + 2;
    let mut c = Circuit::new(total, format!("cuccaro_{n}"));
    let a = |i: usize| 1 + i;
    let b = |i: usize| 1 + n + i;
    let cin = 0usize;
    let cout = 2 * n + 1;

    // MAJ(x, y, z): y ^= z; x ^= z; z ^= x & y  (majority into z).
    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cx(z, y);
        c.cx(z, x);
        c.ccx(x, y, z);
    };
    // UMA(x, y, z): the inverse companion restoring x and producing the
    // sum on y.
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.ccx(x, y, z);
        c.cx(z, x);
        c.cx(x, y);
    };

    maj(&mut c, cin, b(0), a(0));
    for i in 1..n {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cx(a(n - 1), cout);
    for i in (1..n).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, cin, b(0), a(0));
    c
}

/// A quantum-supremacy grid circuit in the style of Boixo et al.
/// ("Characterizing quantum supremacy in near-term devices", Nature
/// Physics 2018): `rows × cols` qubits, `depth` clock cycles of CZ
/// layers cycling through eight staggered patterns, interleaved with
/// the published single-qubit gate rules:
///
/// * cycle 0 applies H everywhere;
/// * a single-qubit gate is placed on a qubit only if it participated
///   in a CZ in the previous cycle;
/// * the first such gate on a qubit is a T; subsequent ones are chosen
///   uniformly from {√X, √Y} but never repeat the qubit's previous
///   single-qubit gate.
///
/// Qubit `(r, c)` maps to index `r * cols + c`. Deterministic in `seed`
/// (the paper's `qsup_AxB_C_k` instances correspond to distinct seeds).
///
/// # Panics
///
/// Panics if the grid is empty.
#[must_use]
pub fn supremacy(rows: usize, cols: usize, depth: usize, seed: u64) -> Circuit {
    assert!(rows > 0 && cols > 0, "supremacy grid must be non-empty");
    let n = rows * cols;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n, format!("qsup_{rows}x{cols}_{depth}_{seed}"));

    // Cycle 0: Hadamard everywhere.
    for q in 0..n {
        c.h(q);
    }

    // Per-qubit single-gate bookkeeping.
    let mut last_single: Vec<Option<Gate>> = vec![None; n];
    let mut in_prev_cz = vec![false; n];

    for cycle in 0..depth {
        // Single-qubit moment (rules above).
        for q in 0..n {
            if !in_prev_cz[q] {
                continue;
            }
            let g = match last_single[q] {
                None => Gate::T,
                Some(prev) => {
                    let choices: Vec<Gate> = [Gate::Sx, Gate::Sy]
                        .into_iter()
                        .filter(|g| *g != prev)
                        .collect();
                    choices[rng.gen_range(0..choices.len())]
                }
            };
            c.gate(g, q);
            last_single[q] = Some(g);
        }

        // CZ layer: one of eight staggered patterns.
        let mut in_cz = vec![false; n];
        for (a, b) in cz_layer_pairs(rows, cols, cycle % 8) {
            c.cz(a, b);
            in_cz[a] = true;
            in_cz[b] = true;
        }
        in_prev_cz = in_cz;
        c.approx_point();
    }
    c
}

/// The CZ pairs of supremacy layer pattern `layer` (0..8) on a
/// `rows × cols` grid: alternating horizontal/vertical neighbor pairs
/// with a stagger that shifts by two positions every other layer, so
/// all couplings are exercised across eight layers.
fn cz_layer_pairs(rows: usize, cols: usize, layer: usize) -> Vec<(usize, usize)> {
    let horizontal = layer.is_multiple_of(2);
    let shift = (layer / 2) % 4;
    let mut pairs = Vec::new();
    for r in 0..rows {
        for ccol in 0..cols {
            let (r2, c2) = if horizontal {
                (r, ccol + 1)
            } else {
                (r + 1, ccol)
            };
            if r2 >= rows || c2 >= cols {
                continue;
            }
            // Stagger: select every other coupling along the direction,
            // offset by the shift and the perpendicular coordinate.
            let key = if horizontal {
                2 * ccol + r
            } else {
                2 * r + ccol
            };
            if key % 4 != shift {
                continue;
            }
            pairs.push((r * cols + ccol, r2 * cols + c2));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Operation;

    #[test]
    fn ghz_structure() {
        let c = ghz(5);
        assert_eq!(c.n_qubits(), 5);
        assert_eq!(c.gate_count(), 5); // 1 H + 4 CX
        c.validate().unwrap();
    }

    #[test]
    fn qft_gate_count() {
        // n H gates + n(n-1)/2 controlled phases + 3*floor(n/2) swap CXs.
        let n = 6;
        let c = qft(n);
        assert_eq!(c.gate_count(), n + n * (n - 1) / 2 + 3 * (n / 2));
        c.validate().unwrap();
    }

    #[test]
    fn inverse_qft_has_markers() {
        let c = inverse_qft(5, true);
        assert_eq!(c.stats().approx_points, 5);
        let c = inverse_qft(5, false);
        assert_eq!(c.stats().approx_points, 0);
    }

    #[test]
    fn grover_defaults_to_optimal_iterations() {
        let c = grover(4, 0b1010, None);
        // floor(pi/4 * 4) = 3 iterations.
        assert_eq!(c.stats().approx_points, 3);
        c.validate().unwrap();
    }

    #[test]
    fn bv_is_shallow() {
        let c = bernstein_vazirani(8, 0b1011_0010);
        // 2n H + popcount Z gates.
        assert_eq!(c.gate_count(), 16 + 4);
        c.validate().unwrap();
    }

    #[test]
    fn random_circuit_is_deterministic() {
        let a = random_circuit(5, 10, 42);
        let b = random_circuit(5, 10, 42);
        assert_eq!(a, b);
        let c = random_circuit(5, 10, 43);
        assert_ne!(a, c);
        a.validate().unwrap();
    }

    #[test]
    fn supremacy_validates_and_has_czs() {
        let c = supremacy(3, 3, 8, 0);
        c.validate().unwrap();
        let cz_count = c
            .ops()
            .iter()
            .filter(|op| {
                matches!(op, Operation::Gate { gate: Gate::Z, controls, .. } if !controls.is_empty())
            })
            .count();
        assert!(cz_count > 0, "supremacy circuit must contain CZ gates");
        // Initial H layer on all 9 qubits.
        let h_prefix = c
            .ops()
            .iter()
            .take(9)
            .filter(|op| matches!(op, Operation::Gate { gate: Gate::H, .. }))
            .count();
        assert_eq!(h_prefix, 9);
    }

    #[test]
    fn supremacy_single_qubit_rules() {
        let c = supremacy(2, 2, 10, 1);
        // After the initial H layer, the first single-qubit gate on any
        // qubit must be a T.
        let mut first_single: Vec<Option<Gate>> = vec![None; 4];
        for op in c.ops().iter().skip(4) {
            if let Operation::Gate {
                gate,
                target,
                controls,
            } = op
            {
                if controls.is_empty() && first_single[*target].is_none() {
                    first_single[*target] = Some(*gate);
                }
            }
        }
        for (q, g) in first_single.iter().enumerate() {
            if let Some(g) = g {
                assert_eq!(*g, Gate::T, "qubit {q} first single-qubit gate");
            }
        }
    }

    #[test]
    fn cz_layers_cover_all_couplings_over_eight_patterns() {
        let rows = 3;
        let cols = 4;
        let mut covered = std::collections::HashSet::new();
        for layer in 0..8 {
            for pair in cz_layer_pairs(rows, cols, layer) {
                covered.insert(pair);
            }
        }
        // Every horizontal + vertical neighbor coupling appears.
        let expected = rows * (cols - 1) + (rows - 1) * cols;
        assert_eq!(covered.len(), expected);
    }

    #[test]
    fn cz_layers_are_disjoint_within_a_layer() {
        for layer in 0..8 {
            let pairs = cz_layer_pairs(4, 5, layer);
            let mut used = std::collections::HashSet::new();
            for (a, b) in pairs {
                assert!(used.insert(a), "qubit {a} reused in layer {layer}");
                assert!(used.insert(b), "qubit {b} reused in layer {layer}");
            }
        }
    }

    #[test]
    fn w_state_validates() {
        for n in 1..6 {
            w_state(n).validate().unwrap();
        }
    }

    #[test]
    fn phase_estimation_validates_and_has_markers() {
        let c = phase_estimation(6, 1.234);
        assert_eq!(c.n_qubits(), 7);
        c.validate().unwrap();
        assert_eq!(c.stats().approx_points, 6, "markers from the inverse QFT");
    }

    #[test]
    fn random_unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(3);
        let dim = 4;
        let m = random_unitary(dim, &mut rng);
        // U† U = I, checked entry-wise.
        for i in 0..dim {
            for j in 0..dim {
                let mut acc = approxdd_complex::Cplx::ZERO;
                for k in 0..dim {
                    acc += m[k * dim + i].conj() * m[k * dim + j];
                }
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (acc.re - want).abs() < 1e-10 && acc.im.abs() < 1e-10,
                    "({i},{j}): {acc}"
                );
            }
        }
    }

    #[test]
    fn quantum_volume_validates_and_is_deterministic() {
        let a = quantum_volume(5, 4, 9);
        let b = quantum_volume(5, 4, 9);
        assert_eq!(a, b);
        a.validate().unwrap();
        assert!(a.stats().dense_blocks >= 4);
    }

    #[test]
    fn cuccaro_adder_structure() {
        let c = cuccaro_adder(4);
        assert_eq!(c.n_qubits(), 10);
        c.validate().unwrap();
        // 2n MAJ/UMA triples of 3 gates each + 1 carry CX.
        assert_eq!(c.gate_count(), 6 * 4 + 1);
    }

    #[test]
    fn deutsch_jozsa_shapes() {
        let constant = deutsch_jozsa(5, None);
        let balanced = deutsch_jozsa(5, Some(0b10101));
        constant.validate().unwrap();
        balanced.validate().unwrap();
        assert_eq!(constant.gate_count(), 10);
        assert_eq!(balanced.gate_count(), 13);
    }
}

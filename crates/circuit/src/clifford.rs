//! Clifford classification metadata for gates and operations.
//!
//! The stabilizer engine (`approxdd-stabilizer`) simulates Clifford
//! circuits in polynomial time, and the hybrid dispatcher of
//! `approxdd-backend` routes the maximal Clifford *prefix* of any
//! circuit through it before handing the remainder to the DD engine.
//! Both need one authoritative answer to "is this operation Clifford?"
//! — that answer lives here, next to the IR, so every layer classifies
//! identically.
//!
//! Classification is **symbolic**: only gates that are Clifford by
//! construction ([`Gate::X`], [`Gate::H`], [`Gate::S`], …) classify as
//! Clifford. Float-parameterized gates are never classified, even when
//! the parameter happens to equal a Clifford angle (`Phase(π/2)` ≈ S):
//! the stabilizer engine's exactness claim would otherwise depend on
//! float rounding. Controlled gates classify only as single-controlled
//! X/Y/Z (CX/CY/CZ, either control polarity — a negative control is
//! the positive one conjugated by X on the control); multi-controlled
//! gates, permutation blocks and dense blocks are non-Clifford as far
//! as the tableau engine is concerned.
//!
//! # Examples
//!
//! ```
//! use approxdd_circuit::{Circuit, CliffordGate, Gate};
//!
//! assert_eq!(Gate::H.clifford_kind(), Some(CliffordGate::H));
//! assert_eq!(Gate::T.clifford_kind(), None);
//!
//! let mut c = Circuit::new(2, "bell+t");
//! c.h(0).cx(0, 1).t(1);
//! assert_eq!(c.clifford_prefix_len(), 2);
//! assert!(!c.is_clifford());
//! ```

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::op::Operation;

/// The single-qubit Clifford gate alphabet: the subset of [`Gate`] a
/// stabilizer tableau can apply exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CliffordGate {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// S = diag(1, i).
    S,
    /// S†.
    Sdg,
    /// √X = H·S·H.
    Sx,
    /// √X† = H·S†·H.
    Sxdg,
    /// √Y = e^{iπ/4}·H·Z.
    Sy,
    /// √Y† = e^{−iπ/4}·Z·H.
    Sydg,
}

/// A circuit operation reduced to the form the stabilizer engine
/// executes: an uncontrolled Clifford gate or a singly-controlled
/// Pauli (CX/CY/CZ, either polarity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliffordOp {
    /// An uncontrolled single-qubit Clifford gate.
    Single {
        /// The gate.
        gate: CliffordGate,
        /// Target qubit.
        target: usize,
    },
    /// A singly-controlled Pauli: CX, CY or CZ (`gate` is restricted to
    /// [`CliffordGate::X`] / [`CliffordGate::Y`] / [`CliffordGate::Z`]
    /// by construction).
    Controlled {
        /// The controlled Pauli.
        gate: CliffordGate,
        /// Controlling qubit.
        control: usize,
        /// `true` for a positive (fires-on-one) control.
        positive: bool,
        /// Target qubit.
        target: usize,
    },
}

impl Gate {
    /// The Clifford classification of this gate, or `None` for
    /// non-Clifford gates (T, rotations, parameterized phases).
    ///
    /// Parameterized gates never classify — see the module docs for the
    /// symbolic-only rationale.
    #[must_use]
    pub fn clifford_kind(self) -> Option<CliffordGate> {
        match self {
            Gate::I => Some(CliffordGate::I),
            Gate::X => Some(CliffordGate::X),
            Gate::Y => Some(CliffordGate::Y),
            Gate::Z => Some(CliffordGate::Z),
            Gate::H => Some(CliffordGate::H),
            Gate::S => Some(CliffordGate::S),
            Gate::Sdg => Some(CliffordGate::Sdg),
            Gate::Sx => Some(CliffordGate::Sx),
            Gate::Sxdg => Some(CliffordGate::Sxdg),
            Gate::Sy => Some(CliffordGate::Sy),
            Gate::Sydg => Some(CliffordGate::Sydg),
            _ => None,
        }
    }
}

impl Operation {
    /// Classifies this operation as a tableau-executable Clifford
    /// operation, or `None`.
    ///
    /// Markers ([`Operation::ApproxPoint`], [`Operation::Barrier`]) are
    /// the identity and do not *break* a Clifford prefix, but they are
    /// not gates either — they return `None` here; prefix scans treat
    /// them separately (see [`Circuit::clifford_prefix_len`]).
    #[must_use]
    pub fn clifford_op(&self) -> Option<CliffordOp> {
        let Operation::Gate {
            gate,
            target,
            controls,
        } = self
        else {
            return None;
        };
        let kind = gate.clifford_kind()?;
        match controls.len() {
            0 => Some(CliffordOp::Single {
                gate: kind,
                target: *target,
            }),
            // A controlled identity is the identity for any number of
            // controls; everything else must be a singly-controlled
            // Pauli.
            _ if kind == CliffordGate::I => Some(CliffordOp::Single {
                gate: CliffordGate::I,
                target: *target,
            }),
            1 if matches!(kind, CliffordGate::X | CliffordGate::Y | CliffordGate::Z) => {
                Some(CliffordOp::Controlled {
                    gate: kind,
                    control: controls[0].qubit,
                    positive: controls[0].positive,
                    target: *target,
                })
            }
            _ => None,
        }
    }

    /// Whether this operation can be absorbed by a Clifford prefix:
    /// a classified Clifford gate, or a marker (identity).
    #[must_use]
    pub fn is_clifford(&self) -> bool {
        !self.is_gate() || self.clifford_op().is_some()
    }
}

impl Circuit {
    /// Length (in operations, markers included) of the maximal leading
    /// segment of this circuit that a stabilizer tableau can simulate:
    /// every operation before the first non-Clifford gate.
    #[must_use]
    pub fn clifford_prefix_len(&self) -> usize {
        self.ops()
            .iter()
            .position(|op| !op.is_clifford())
            .unwrap_or(self.ops().len())
    }

    /// Whether the whole circuit is Clifford (polynomial-time
    /// simulable on the stabilizer engine).
    #[must_use]
    pub fn is_clifford(&self) -> bool {
        self.clifford_prefix_len() == self.ops().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Control;

    #[test]
    fn symbolic_clifford_gates_classify() {
        for g in [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::Sx,
            Gate::Sxdg,
            Gate::Sy,
            Gate::Sydg,
        ] {
            assert!(g.clifford_kind().is_some(), "{g} must classify");
        }
        for g in [Gate::T, Gate::Tdg, Gate::Phase(0.5), Gate::Rx(1.0)] {
            assert!(g.clifford_kind().is_none(), "{g} must not classify");
        }
    }

    #[test]
    fn clifford_angles_of_parameterized_gates_do_not_classify() {
        // Phase(π/2) equals S up to float rounding — deliberately not
        // classified (symbolic-only rule; see module docs).
        assert_eq!(
            Gate::Phase(std::f64::consts::FRAC_PI_2).clifford_kind(),
            None
        );
        assert_eq!(Gate::Rz(std::f64::consts::PI).clifford_kind(), None);
        assert_eq!(Gate::Phase(0.0).clifford_kind(), None);
    }

    #[test]
    fn controlled_paulis_classify_with_polarity() {
        let cx = Operation::Gate {
            gate: Gate::X,
            target: 0,
            controls: vec![Control::positive(1)],
        };
        assert_eq!(
            cx.clifford_op(),
            Some(CliffordOp::Controlled {
                gate: CliffordGate::X,
                control: 1,
                positive: true,
                target: 0,
            })
        );
        let ncz = Operation::Gate {
            gate: Gate::Z,
            target: 2,
            controls: vec![Control::negative(0)],
        };
        assert!(matches!(
            ncz.clifford_op(),
            Some(CliffordOp::Controlled {
                positive: false,
                ..
            })
        ));
    }

    #[test]
    fn multi_controlled_and_controlled_non_pauli_do_not_classify() {
        let ccx = Operation::Gate {
            gate: Gate::X,
            target: 0,
            controls: vec![Control::positive(1), Control::positive(2)],
        };
        assert_eq!(ccx.clifford_op(), None);
        let ch = Operation::Gate {
            gate: Gate::H,
            target: 0,
            controls: vec![Control::positive(1)],
        };
        assert_eq!(ch.clifford_op(), None);
        // Controlled identity stays the identity.
        let ci = Operation::Gate {
            gate: Gate::I,
            target: 0,
            controls: vec![Control::positive(1), Control::negative(2)],
        };
        assert!(matches!(ci.clifford_op(), Some(CliffordOp::Single { .. })));
    }

    #[test]
    fn prefix_scan_passes_markers_and_stops_at_first_non_clifford() {
        let mut c = Circuit::new(3, "prefix");
        c.h(0).cx(0, 1);
        c.barrier();
        c.approx_point();
        c.s(2);
        c.t(1); // first non-Clifford
        c.h(2);
        assert_eq!(c.clifford_prefix_len(), 5);
        assert!(!c.is_clifford());

        let mut pure = Circuit::new(2, "pure");
        pure.h(0).cx(0, 1).gate(Gate::Sy, 1);
        assert!(pure.is_clifford());
        assert_eq!(pure.clifford_prefix_len(), 3);
    }

    #[test]
    fn blocks_are_not_clifford() {
        let mut c = Circuit::new(4, "blocks");
        c.h(0);
        c.permutation(0, 2, vec![0, 1, 2, 3], &[], "id-perm");
        assert_eq!(c.clifford_prefix_len(), 1);
    }
}

//! A minimal JSON value + serializer shared by the benchmark binaries
//! (machine-readable artifacts CI uploads per PR) and the job server
//! (`approxdd-server` response bodies and NDJSON event streams).
//! Hand-rolled because the workspace builds fully offline — no serde.
//!
//! Non-finite numbers serialize as `null` (JSON's grammar has no
//! NaN/Infinity), so every emitted document is valid JSON.

use std::collections::HashMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (serialized via shortest-roundtrip `f64` formatting;
    /// non-finite values degrade to `null` per JSON's grammar).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs (insertion order preserved).
    #[must_use]
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// An integer value (exact for |n| ≤ 2^53, plenty for node counts).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn int(n: usize) -> Self {
        Json::Num(n as f64)
    }

    /// A number or `null` for a missing value.
    #[must_use]
    pub fn opt_int(n: Option<usize>) -> Self {
        n.map_or(Json::Null, Json::int)
    }

    /// The value under `key` when this is an object (`None` for a
    /// missing key or any other variant).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A measurement histogram as `{"outcome": count}` with
    /// deterministically sorted keys.
    #[must_use]
    pub fn counts(counts: &HashMap<u64, usize>) -> Self {
        let mut entries: Vec<(u64, usize)> = counts.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_unstable();
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), Json::int(v)))
                .collect(),
        )
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_values() {
        let v = Json::obj([
            ("name", Json::str("qsup_4x4_12_0")),
            ("qubits", Json::int(16)),
            ("exact", Json::Null),
            ("ok", Json::Bool(true)),
            ("series", Json::Arr(vec![Json::int(1), Json::Num(0.5)])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"qsup_4x4_12_0","qubits":16,"exact":null,"ok":true,"series":[1,0.5]}"#
        );
    }

    #[test]
    fn escapes_strings_and_degrades_nonfinite() {
        assert_eq!(Json::str("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn histograms_have_sorted_keys() {
        let counts = HashMap::from([(255u64, 2usize), (0, 3)]);
        assert_eq!(Json::counts(&counts).to_string(), r#"{"0":3,"255":2}"#);
    }
}

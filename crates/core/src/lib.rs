//! Approximate decision-diagram quantum circuit simulation.
//!
//! This crate is the primary contribution of the reproduced paper
//! (*Hillmich, Kueng, Markov, Wille — DATE 2021*): DD-based simulation
//! with **approximation rounds** that shrink the state representation in
//! a controlled accuracy tradeoff. Two strategies are provided:
//!
//! * [`Strategy::MemoryDriven`] (Sec. IV-B) — reactive: after each gate,
//!   if the DD exceeds a node threshold, truncate targeting a per-round
//!   fidelity and double the threshold (garbage-collection style).
//! * [`Strategy::FidelityDriven`] (Sec. IV-C) — proactive: given a
//!   required final fidelity `f_final` and per-round `f_round`, run
//!   `⌊log_{f_round} f_final⌋` truncation rounds at circuit-block
//!   boundaries ([`approxdd_circuit::Operation::ApproxPoint`] markers)
//!   or evenly spaced when no markers exist.
//!
//! Because each truncation reports its *exact* fidelity (the kept norm)
//! and fidelity is multiplicative across rounds (Lemma 1, proved in the
//! paper and property-tested in this workspace), the simulator reports
//! the exact end-to-end fidelity in [`SimStats::fidelity`] without ever
//! materializing the exact state.
//!
//! Both strategies are presets over an open seam: the [`ApproxPolicy`]
//! trait decides, after every circuit operation, whether to continue,
//! truncate, or abort; [`SimObserver`]s receive structured
//! [`TraceEvent`]s auditing every decision. See the [`policy`] module
//! for writing custom policies (e.g. the built-in [`BudgetPolicy`]
//! hybrid) and observing runs.
//!
//! # Examples
//!
//! ```
//! use approxdd_circuit::generators;
//! use approxdd_sim::Simulator;
//!
//! # fn main() -> Result<(), approxdd_sim::SimError> {
//! let circuit = generators::grover(6, 0b101101, None);
//! let mut sim = Simulator::builder()
//!     .fidelity_driven(0.8, 0.95)
//!     .seed(1)
//!     .build();
//! let run = sim.run(&circuit)?;
//! assert!(run.stats.fidelity >= 0.8);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod builder;
mod error;
mod fusion;
pub mod json;
pub mod ndjson;
mod options;
pub mod policy;
mod schedule;
mod simulator;

pub use builder::SimulatorBuilder;
pub use error::SimError;
pub use options::{ApproxPrimitive, Engine, RetryPolicy, SimOptions, Strategy};
pub use policy::{
    memory_threshold_unreachable, ApproxPolicy, BudgetPolicy, DeadlineFactory, DeadlinePolicy,
    ExactPolicy, FidelityDrivenPolicy, MemoryDrivenPolicy, PolicyAction, PolicyCtx, PolicyFactory,
    SharedObserver, SimObserver, TraceEvent, TraceRecorder,
};
pub use schedule::plan_rounds;
pub use simulator::{RunResult, SimSnapshot, SimStats, Simulator, DEFAULT_SAMPLE_SEED};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;

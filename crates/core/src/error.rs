//! Simulator error type.

use std::error::Error;
use std::fmt;

use approxdd_circuit::CircuitError;
use approxdd_dd::DdError;

/// Errors reported by the simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The decision-diagram engine rejected an operation.
    Dd(DdError),
    /// The circuit failed validation.
    Circuit(CircuitError),
    /// A strategy parameter was out of range.
    InvalidStrategy {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// An initial state's width does not match the circuit's register.
    WidthMismatch {
        /// Width (level) of the provided state.
        state: usize,
        /// Register width of the circuit.
        circuit: usize,
    },
    /// The run's [`crate::ApproxPolicy`] returned
    /// [`crate::PolicyAction::Abort`].
    PolicyAbort {
        /// Index of the operation after which the policy aborted.
        op_index: usize,
        /// Name of the aborting policy.
        policy: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Dd(e) => write!(f, "decision-diagram error: {e}"),
            SimError::Circuit(e) => write!(f, "circuit error: {e}"),
            SimError::InvalidStrategy { reason } => write!(f, "invalid strategy: {reason}"),
            SimError::WidthMismatch { state, circuit } => write!(
                f,
                "initial state has {state} qubits but the circuit expects {circuit}"
            ),
            SimError::PolicyAbort { op_index, policy } => write!(
                f,
                "policy '{policy}' aborted the run after operation {op_index}"
            ),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Dd(e) => Some(e),
            SimError::Circuit(e) => Some(e),
            SimError::InvalidStrategy { .. }
            | SimError::WidthMismatch { .. }
            | SimError::PolicyAbort { .. } => None,
        }
    }
}

impl From<DdError> for SimError {
    fn from(e: DdError) -> Self {
        SimError::Dd(e)
    }
}

impl From<CircuitError> for SimError {
    fn from(e: CircuitError) -> Self {
        SimError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e: SimError = DdError::InvalidPermutation.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("decision-diagram"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}

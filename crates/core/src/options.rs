//! Simulation options and approximation strategies.

use std::time::Duration;

use crate::error::SimError;

/// Which simulation engine a backend built from a
/// [`crate::SimulatorBuilder`] should use.
///
/// The builder itself always constructs the DD [`crate::Simulator`];
/// this knob is read by the backend layer (`approxdd-backend`'s
/// `build_engine_backend`) and by pooled execution to route circuits
/// to the stabilizer tableau or the hybrid Clifford-prefix dispatcher
/// instead. Keeping it here means one template (builder) describes the
/// full experiment, engine choice included.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Engine {
    /// The approximate decision-diagram engine (the default).
    #[default]
    Dd,
    /// The Aaronson–Gottesman stabilizer tableau: polynomial-time and
    /// exact, but restricted to Clifford circuits.
    Stabilizer,
    /// Hybrid dispatch: the maximal Clifford prefix runs on the
    /// tableau, the remainder on the DD engine seeded with the
    /// synthesized stabilizer state. Pure-Clifford circuits never
    /// touch the DD package.
    Hybrid,
}

impl Engine {
    /// Short engine label (`"dd"`, `"stabilizer"`, `"hybrid"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Engine::Dd => "dd",
            Engine::Stabilizer => "stabilizer",
            Engine::Hybrid => "hybrid",
        }
    }
}

/// The approximation strategy applied during simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Strategy {
    /// No approximation: the reference simulation of the paper's
    /// "Non-Approximating" columns.
    Exact,
    /// Section IV-B: after each applied gate, if the state DD exceeds
    /// `node_threshold` nodes, truncate targeting `round_fidelity` and
    /// grow the threshold (so the number of rounds stays bounded).
    ///
    /// The paper's text prescribes doubling (`threshold_growth = 2.0`,
    /// built by [`Strategy::memory_driven`]), but its Table I reports
    /// ~90 rounds on 20-qubit instances — unreachable under strict
    /// doubling — so the effective growth of the reference
    /// implementation must be much slower. `threshold_growth = 1.0`
    /// (fixed threshold, built by [`Strategy::memory_driven_table1`])
    /// reproduces that many-rounds regime and the table's max-DD-size
    /// reductions.
    MemoryDriven {
        /// Initial node-count threshold.
        node_threshold: usize,
        /// Per-round target fidelity `f_round` in `(0, 1]`; each round
        /// removes up to `1 − f_round` of contribution mass.
        round_fidelity: f64,
        /// Multiplicative threshold growth per round (≥ 1.0).
        threshold_growth: f64,
    },
    /// Section IV-C: schedule `⌊log_{f_round} f_final⌋` rounds before
    /// simulating, at circuit block markers or evenly spaced, so the
    /// final fidelity is guaranteed to stay above `final_fidelity`.
    FidelityDriven {
        /// Required final fidelity `f_final` in `(0, 1]`.
        final_fidelity: f64,
        /// Per-round target fidelity `f_round` in `(0, 1)`.
        round_fidelity: f64,
    },
}

impl Strategy {
    /// The memory-driven configuration **as the paper's text prescribes
    /// it** (Sec. IV-B): the given threshold and round fidelity with
    /// *doubling* threshold growth, so the round count stays
    /// logarithmic in the final DD size.
    ///
    /// Note this is not the regime the paper's Table I reports — its
    /// ~90-round rows require a fixed threshold. Use
    /// [`Strategy::memory_driven_table1`] to reproduce the table.
    #[must_use]
    pub fn memory_driven(node_threshold: usize, round_fidelity: f64) -> Self {
        Strategy::MemoryDriven {
            node_threshold,
            round_fidelity,
            threshold_growth: 2.0,
        }
    }

    /// The memory-driven regime **Table I of the paper actually
    /// reports**: a fixed node threshold (`threshold_growth = 1.0`).
    /// The paper's text prescribes doubling, but its reported ~50–90
    /// rounds on 20-qubit instances are unreachable under strict
    /// doubling, so the reference implementation's effective growth
    /// must have been ≈1; this preset reproduces the table's round
    /// counts and max-DD-size reductions.
    #[must_use]
    pub fn memory_driven_table1(node_threshold: usize, round_fidelity: f64) -> Self {
        Strategy::MemoryDriven {
            node_threshold,
            round_fidelity,
            threshold_growth: 1.0,
        }
    }

    /// The paper's fidelity-driven configuration.
    #[must_use]
    pub fn fidelity_driven(final_fidelity: f64, round_fidelity: f64) -> Self {
        Strategy::FidelityDriven {
            final_fidelity,
            round_fidelity,
        }
    }

    /// Validates the strategy parameters.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidStrategy`] when a fidelity is outside its
    /// range or a threshold is zero.
    pub fn validate(&self) -> Result<(), SimError> {
        match *self {
            Strategy::Exact => Ok(()),
            Strategy::MemoryDriven {
                node_threshold,
                round_fidelity,
                threshold_growth,
            } => {
                if node_threshold == 0 {
                    return Err(SimError::InvalidStrategy {
                        reason: "memory-driven node threshold must be positive",
                    });
                }
                if !(0.0..=1.0).contains(&round_fidelity) || round_fidelity <= 0.0 {
                    return Err(SimError::InvalidStrategy {
                        reason: "round fidelity must lie in (0, 1]",
                    });
                }
                if threshold_growth < 1.0 || !threshold_growth.is_finite() {
                    return Err(SimError::InvalidStrategy {
                        reason: "threshold growth must be a finite factor >= 1.0",
                    });
                }
                Ok(())
            }
            Strategy::FidelityDriven {
                final_fidelity,
                round_fidelity,
            } => {
                if !(final_fidelity > 0.0 && final_fidelity <= 1.0) {
                    return Err(SimError::InvalidStrategy {
                        reason: "final fidelity must lie in (0, 1]",
                    });
                }
                if !(round_fidelity > 0.0 && round_fidelity < 1.0) {
                    return Err(SimError::InvalidStrategy {
                        reason: "round fidelity must lie in (0, 1)",
                    });
                }
                if round_fidelity < final_fidelity {
                    return Err(SimError::InvalidStrategy {
                        reason: "round fidelity must not be below the final fidelity",
                    });
                }
                Ok(())
            }
        }
    }

    /// The maximum number of approximation rounds the fidelity-driven
    /// strategy may apply: `⌊log_{f_round}(f_final)⌋` (Sec. IV-C).
    /// Returns 0 for other strategies.
    #[must_use]
    pub fn max_rounds(&self) -> usize {
        match *self {
            Strategy::FidelityDriven {
                final_fidelity,
                round_fidelity,
            } => {
                if final_fidelity >= 1.0 || round_fidelity >= 1.0 {
                    0
                } else {
                    (final_fidelity.ln() / round_fidelity.ln()).floor() as usize
                }
            }
            _ => 0,
        }
    }
}

/// How pooled execution re-dispatches jobs that fail with a *retryable*
/// error (a lost worker, or an injected fault from a test harness).
///
/// Lives in this crate so one builder template describes the full
/// experiment — the pool layer (`approxdd-exec`) reads it from the
/// template and accepts a per-job override. Retrying is safe by
/// construction: a job's seed is a pure function of (root seed, domain,
/// job index), never of the attempt number, so a retried success is
/// byte-identical to a first-try success.
///
/// The default (`max_attempts = 1`) disables retries entirely —
/// failures surface to the caller exactly as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total number of attempts a job may consume, including the first
    /// (so `1` means "never retry"). Zero is treated as one.
    pub max_attempts: u32,
    /// Base backoff slept before each retry, doubled per attempt:
    /// attempt `k` (1-based retry count) waits `backoff · 2^(k−1)`.
    /// [`Duration::ZERO`] (the default) retries immediately — the
    /// right choice for deterministic in-process faults, while a
    /// server fronting flaky external resources wants a real backoff.
    pub backoff: Duration,
}

impl RetryPolicy {
    /// A policy allowing up to `max_attempts` total attempts with no
    /// backoff.
    #[must_use]
    pub fn new(max_attempts: u32) -> Self {
        Self {
            max_attempts,
            backoff: Duration::ZERO,
        }
    }

    /// Sets the base backoff (doubled per retry).
    #[must_use]
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Whether this policy ever retries.
    #[must_use]
    pub fn retries_enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// The exponential-backoff delay before the given zero-based
    /// attempt: nothing before the first attempt, `backoff · 2^(a−1)`
    /// before attempt `a ≥ 1` (saturating, so absurd attempt counts
    /// cannot overflow).
    #[must_use]
    pub fn delay_for(&self, attempt: u32) -> Duration {
        if attempt == 0 || self.backoff.is_zero() {
            return Duration::ZERO;
        }
        self.backoff
            .saturating_mul(1u32.checked_shl(attempt - 1).unwrap_or(u32::MAX))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::new(1)
    }
}

/// The truncation primitive a strategy's rounds use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ApproxPrimitive {
    /// Remove whole nodes by ascending contribution (Sec. IV-A of the
    /// paper; both of its strategies use this).
    #[default]
    Nodes,
    /// Cut individual edges by ascending contribution — finer-grained,
    /// usually keeping more fidelity per round at smaller size savings
    /// (one of the ASP-DAC 2020 schemes the paper builds on).
    Edges,
}

/// Options controlling a [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Approximation strategy (default: [`Strategy::Exact`]).
    pub strategy: Strategy,
    /// Which truncation primitive the rounds use (default: node
    /// removal, as in the paper).
    pub primitive: ApproxPrimitive,
    /// Garbage-collect the package when its total alive node count
    /// exceeds this value (default: 1 « 18).
    pub gc_node_threshold: usize,
    /// Record the DD size after every gate into
    /// [`crate::SimStats::size_series`] (default: off; used by the
    /// benchmark harness to regenerate size-over-time series).
    pub record_size_series: bool,
    /// `log2` slot count of each of the DD package's four lossy compute
    /// caches (`None` → the engine default, 2^16 slots per table;
    /// clamped to `[2, 26]`). A pure time/memory trade: the caches are
    /// lossy, so results are **bit-identical for every size** — an
    /// undersized cache only recomputes more. Tune down for
    /// many-worker pools where per-worker footprint matters, up for
    /// deep single-session circuits with heavy structural reuse.
    pub compute_cache_bits: Option<u32>,
}

impl SimOptions {
    /// Validates the options: the strategy preset's parameters (NaN,
    /// zero and out-of-range fidelities, zero node thresholds — see
    /// [`Strategy::validate`]) plus any future option-level
    /// constraints. What [`crate::SimulatorBuilder::try_build`] checks
    /// eagerly.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidStrategy`] for out-of-range strategy
    /// parameters.
    pub fn validate(&self) -> Result<(), SimError> {
        self.strategy.validate()
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            strategy: Strategy::Exact,
            primitive: ApproxPrimitive::default(),
            gc_node_threshold: 1 << 18,
            record_size_series: false,
            compute_cache_bits: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_always_validates() {
        assert!(Strategy::Exact.validate().is_ok());
        assert_eq!(Strategy::Exact.max_rounds(), 0);
    }

    #[test]
    fn memory_driven_validation() {
        assert!(Strategy::memory_driven(100, 0.95).validate().is_ok());
        assert!(Strategy::memory_driven(0, 0.95).validate().is_err());
        assert!(Strategy::memory_driven(10, 1.5).validate().is_err());
        assert!(Strategy::MemoryDriven {
            node_threshold: 10,
            round_fidelity: 0.9,
            threshold_growth: 0.5,
        }
        .validate()
        .is_err());
        assert!(Strategy::MemoryDriven {
            node_threshold: 10,
            round_fidelity: 0.9,
            threshold_growth: 1.0,
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn fidelity_driven_round_count_matches_paper_formula() {
        // Paper Sec. VI: f_final = 0.5, f_round = 0.9 -> floor(log_0.9 0.5)
        // = floor(6.578) = 6 rounds.
        let s = Strategy::FidelityDriven {
            final_fidelity: 0.5,
            round_fidelity: 0.9,
        };
        s.validate().unwrap();
        assert_eq!(s.max_rounds(), 6);
    }

    #[test]
    fn fidelity_driven_validation() {
        assert!(Strategy::FidelityDriven {
            final_fidelity: 0.0,
            round_fidelity: 0.9
        }
        .validate()
        .is_err());
        assert!(Strategy::FidelityDriven {
            final_fidelity: 0.9,
            round_fidelity: 0.5
        }
        .validate()
        .is_err());
        assert!(Strategy::FidelityDriven {
            final_fidelity: 0.5,
            round_fidelity: 1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn default_options_are_exact() {
        let o = SimOptions::default();
        assert_eq!(o.strategy, Strategy::Exact);
        assert!(!o.record_size_series);
        assert!(o.validate().is_ok());
    }

    #[test]
    fn retry_policy_defaults_and_backoff() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 1);
        assert!(!p.retries_enabled());
        assert_eq!(p.delay_for(0), Duration::ZERO);
        assert_eq!(p.delay_for(3), Duration::ZERO);

        let p = RetryPolicy::new(3).with_backoff(Duration::from_millis(10));
        assert!(p.retries_enabled());
        assert_eq!(p.delay_for(0), Duration::ZERO);
        assert_eq!(p.delay_for(1), Duration::from_millis(10));
        assert_eq!(p.delay_for(2), Duration::from_millis(20));
        assert_eq!(p.delay_for(3), Duration::from_millis(40));
        // Saturates instead of overflowing.
        assert!(p.delay_for(200) > Duration::from_secs(3600));
    }

    /// Input-validation hardening: every NaN / zero / out-of-range
    /// parameter is rejected with a typed error instead of silently
    /// running.
    #[test]
    fn nan_and_out_of_range_parameters_are_rejected() {
        // Memory-driven: NaN round fidelity.
        assert!(matches!(
            Strategy::memory_driven(10, f64::NAN).validate(),
            Err(SimError::InvalidStrategy { .. })
        ));
        // Memory-driven: zero round fidelity.
        assert!(Strategy::memory_driven(10, 0.0).validate().is_err());
        // Memory-driven: zero node threshold.
        assert!(Strategy::memory_driven(0, 0.9).validate().is_err());
        // Memory-driven: NaN / sub-unit / infinite threshold growth.
        for growth in [f64::NAN, 0.5, f64::INFINITY] {
            assert!(
                Strategy::MemoryDriven {
                    node_threshold: 10,
                    round_fidelity: 0.9,
                    threshold_growth: growth,
                }
                .validate()
                .is_err(),
                "growth {growth} must be rejected"
            );
        }
        // Fidelity-driven: NaN final / round fidelity, zero, above one.
        assert!(Strategy::fidelity_driven(f64::NAN, 0.9).validate().is_err());
        assert!(Strategy::fidelity_driven(0.5, f64::NAN).validate().is_err());
        assert!(Strategy::fidelity_driven(0.0, 0.9).validate().is_err());
        assert!(Strategy::fidelity_driven(1.5, 0.9).validate().is_err());
        assert!(Strategy::fidelity_driven(0.5, 0.0).validate().is_err());
        // Options-level validation delegates to the strategy.
        let options = SimOptions {
            strategy: Strategy::memory_driven(0, 0.9),
            ..SimOptions::default()
        };
        assert!(matches!(
            options.validate(),
            Err(SimError::InvalidStrategy { .. })
        ));
    }
}

//! The [`Simulator`]: applies circuits to decision-diagram states with
//! policy-controlled approximation rounds.

use std::collections::HashMap;
use std::sync::{Arc, PoisonError};
use std::time::Duration;

use approxdd_circuit::{Circuit, Operation};
use approxdd_dd::{MEdge, Package, PackageSnapshot, RemovalStrategy, VEdge};
use approxdd_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::SimulatorBuilder;
use crate::options::SimOptions;
use crate::policy::{PolicyAction, PolicyCtx, PolicyFactory, SharedObserver, TraceEvent};
use crate::Result;

/// Seed of a simulator's owned sampling RNG when none is given through
/// [`SimulatorBuilder::seed`] — fixed so unseeded runs stay
/// reproducible.
pub const DEFAULT_SAMPLE_SEED: u64 = 0x0A99_07DD;

/// Statistics of one simulation run — the quantities Table I of the
/// paper reports per benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// State-transforming operations applied.
    pub gates_applied: usize,
    /// Maximum DD node count observed after any gate ("Max. DD Size").
    pub max_dd_size: usize,
    /// Approximation rounds actually performed ("Rounds").
    pub approx_rounds: usize,
    /// End-to-end fidelity estimate ("f_final"): the product of the
    /// measured per-round fidelities, following Lemma 1 of the paper.
    /// Exact when at most one round fires (each round's kept norm is
    /// measured exactly); with multiple rounds the product tracks the
    /// true `F(exact final, approx final)` closely — the lemma's
    /// identity holds exactly for aligned truncation sets, and the
    /// integration suite validates agreement within a few percent on
    /// supremacy workloads. 1.0 for exact runs.
    pub fidelity: f64,
    /// Guaranteed end-to-end fidelity floor: the product of the
    /// *target* fidelities of every fired round that actually removed
    /// nodes (a no-op round provably keeps fidelity exactly 1, so it
    /// charges nothing). Each charged round removes at most
    /// `1 − target` of contribution mass, so the measured
    /// [`SimStats::fidelity`] is always ≥ this bound. 1.0 for exact
    /// runs.
    pub fidelity_lower_bound: f64,
    /// Per-round measured fidelities, in application order.
    pub round_fidelities: Vec<f64>,
    /// Total nodes removed across all rounds.
    pub nodes_removed: usize,
    /// Wall-clock runtime of the run.
    pub runtime: Duration,
    /// Final node threshold ([`crate::ApproxPolicy::node_threshold`];
    /// memory-style policies grow it per round, schedule-driven
    /// policies report `None`).
    pub final_threshold: Option<usize>,
    /// Name of the [`crate::ApproxPolicy`] that steered the run
    /// (`"exact"`, `"memory-driven"`, `"fidelity-driven"`, `"budget"`,
    /// or a custom policy's name).
    pub policy: String,
    /// DD size after every gate (only when
    /// [`SimOptions::record_size_series`] is set).
    pub size_series: Vec<usize>,
    /// DD-package counters at the end of the run: compute-cache
    /// hit rates and occupancy per table, unique-table occupancy, and
    /// peak node counts. Session-cumulative (the package persists
    /// across runs of one simulator) — see
    /// [`approxdd_dd::PackageStats`] for the accounting semantics.
    pub package: approxdd_dd::PackageStats,
}

/// The outcome of a run: the final state plus statistics. The state
/// edge stays registered as a GC root in the simulator's package until
/// the result is released with [`Simulator::release`].
///
/// # Lifetime hazard
///
/// [`RunResult::state`] hands out a raw [`VEdge`], which is only
/// meaningful inside the owning simulator's [`Package`] **and** only
/// while it is still registered as a GC root there. After
/// [`Simulator::release`] (or after dropping the simulator), the edge
/// may reference freed or recycled nodes: using it — including through
/// a stale clone of this result — is a logic error that can silently
/// return garbage amplitudes. Query through the simulator
/// ([`Simulator::sample`], [`Simulator::amplitudes`],
/// [`Simulator::fidelity_between`]) while the result is live, and treat
/// `release` as the end of the result's life. The `Backend` trait in
/// `approxdd-backend` encapsulates exactly this contract
/// (`Backend::release` consumes the outcome by value).
#[derive(Debug, Clone)]
pub struct RunResult {
    state: VEdge,
    n_qubits: usize,
    /// Run statistics.
    pub stats: SimStats,
}

impl RunResult {
    pub(crate) fn new(state: VEdge, n_qubits: usize, stats: SimStats) -> Self {
        Self {
            state,
            n_qubits,
            stats,
        }
    }

    /// The final state edge (owned by the simulator's package).
    ///
    /// The edge dangles once the result is passed to
    /// [`Simulator::release`] or the simulator is dropped — see the
    /// type-level *Lifetime hazard* note.
    #[must_use]
    pub fn state(&self) -> VEdge {
        self.state
    }

    /// Register width of the simulated circuit.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }
}

/// Key identifying a gate DD in the per-simulator cache. Includes the
/// register width: one simulator session may run circuits of different
/// widths back to back, and a gate DD is only valid at the width it
/// was built for.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum GateKey {
    Gate {
        n_qubits: usize,
        name: &'static str,
        param_bits: u64,
        target: usize,
        controls: Vec<(usize, bool)>,
    },
    Permutation {
        n_qubits: usize,
        table_ptr: usize,
        lo: usize,
        k: usize,
        controls: Vec<(usize, bool)>,
    },
}

/// Keeps the allocation behind a pointer-keyed cache entry alive, so
/// the address in its [`GateKey`] can never be recycled by a new table
/// while the entry exists.
#[derive(Debug)]
enum TableGuard {
    // Held for ownership only, never read back.
    Perm(#[allow(dead_code)] std::sync::Arc<Vec<usize>>),
    Dense(#[allow(dead_code)] std::sync::Arc<Vec<approxdd_complex::Cplx>>),
}

/// A frozen simulator prefix shared across pooled workers: an immutable
/// [`PackageSnapshot`] (the gate DDs' nodes, unique-table index and
/// canonical ratios) plus the warmed gate-DD cache that maps circuit
/// operations onto frozen edges.
///
/// Built once per job batch by [`SimSnapshot::build`] (usually through
/// `BackendPool` when [`SimulatorBuilder::share_snapshot`] is on), then
/// handed to every worker job via `Arc`. A simulator layered over a
/// snapshot ([`SimulatorBuilder::build_with_snapshot`]) resolves warmed
/// gates from the frozen cache without touching its own package;
/// everything else — state evolution, compute caches, GC — stays
/// private to the job, which is what keeps results byte-identical to a
/// simulator that built the same gates itself.
#[derive(Debug)]
pub struct SimSnapshot {
    package: PackageSnapshot,
    gates: HashMap<GateKey, (MEdge, Option<TableGuard>)>,
}

impl SimSnapshot {
    /// Warms the gate-DD cache over every gate of every circuit (in
    /// iteration order — the same order a lazy simulator would build
    /// them for each circuit) and freezes the result.
    ///
    /// # Errors
    ///
    /// Propagates gate-construction errors (e.g. malformed
    /// permutations) from the first offending operation.
    pub fn build<'a>(
        options: &SimOptions,
        circuits: impl IntoIterator<Item = &'a Circuit>,
    ) -> Result<Self> {
        let _span = telemetry::Span::enter("snapshot.build");
        let mut sim = Simulator::seeded(*options, DEFAULT_SAMPLE_SEED);
        for circuit in circuits {
            for op in circuit.ops() {
                if op.is_gate() {
                    sim.gate_dd(circuit, op)?;
                }
            }
        }
        Ok(Self {
            package: sim.package.freeze(),
            gates: sim.gate_cache,
        })
    }

    /// Gate DDs held in the frozen cache.
    #[must_use]
    pub fn cached_gates(&self) -> usize {
        self.gates.len()
    }

    /// Alive nodes (both kinds) in the frozen package prefix.
    #[must_use]
    pub fn frozen_nodes(&self) -> usize {
        self.package.frozen_nodes()
    }

    /// The frozen package prefix itself.
    #[must_use]
    pub fn package(&self) -> &PackageSnapshot {
        &self.package
    }

    /// Simulators ever layered over this snapshot (one per pooled
    /// worker job): the cross-batch reuse odometer warm serving
    /// sessions report. Diagnostic only — never part of any result or
    /// fingerprint.
    #[must_use]
    pub fn attaches(&self) -> u64 {
        self.package.attaches()
    }
}

/// A DD-based quantum circuit simulator with policy-controlled
/// approximation (see the crate docs for the paper's two preset
/// strategies and [`crate::ApproxPolicy`] for the extensible seam).
///
/// The simulator owns a [`Package`]; run results reference nodes inside
/// it, so sampling and fidelity queries go through the simulator.
///
/// Every run builds a fresh policy instance from the simulator's
/// [`PolicyFactory`] (so policy state never leaks between runs) and
/// reports structured [`TraceEvent`]s to any attached observers.
pub struct Simulator {
    package: Package,
    options: SimOptions,
    gate_cache: HashMap<GateKey, (MEdge, Option<TableGuard>)>,
    /// Shared frozen prefix, when this simulator was built over one
    /// ([`SimulatorBuilder::build_with_snapshot`]). Probed before the
    /// private gate cache.
    snapshot: Option<Arc<SimSnapshot>>,
    /// Gate-DD lookups served by the frozen snapshot cache.
    snapshot_gate_hits: u64,
    rng: StdRng,
    policy_factory: Arc<dyn PolicyFactory>,
    observers: Vec<SharedObserver>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("package", &self.package)
            .field("options", &self.options)
            .field("policy", &self.policy_factory.build().name())
            .field("observers", &self.observers.len())
            .field("gate_cache", &self.gate_cache.len())
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// Starts a fluent [`SimulatorBuilder`] — the preferred way to
    /// configure a simulator.
    pub fn builder() -> SimulatorBuilder {
        SimulatorBuilder::new()
    }

    /// Creates a simulator with the given options and the default
    /// sampling seed ([`DEFAULT_SAMPLE_SEED`]).
    #[must_use]
    pub fn new(options: SimOptions) -> Self {
        Self::seeded(options, DEFAULT_SAMPLE_SEED)
    }

    /// Creates a simulator with the given options and sampling seed
    /// (what [`SimulatorBuilder::seed`] builds). The approximation
    /// policy is derived from [`SimOptions::strategy`]; use
    /// [`Simulator::set_policy_factory`] (or
    /// [`SimulatorBuilder::policy`]) to install a custom policy.
    #[must_use]
    pub fn seeded(options: SimOptions, seed: u64) -> Self {
        Self {
            package: Package::with_config(
                approxdd_complex::Tolerance::default(),
                options.compute_cache_bits,
            ),
            policy_factory: Arc::new(options.strategy),
            observers: Vec::new(),
            options,
            gate_cache: HashMap::new(),
            snapshot: None,
            snapshot_gate_hits: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a simulator layered over a shared frozen snapshot: its
    /// package resolves frozen nodes through the snapshot and allocates
    /// private nodes above the watermark, and warmed gate DDs are
    /// served from the snapshot's cache. See [`SimSnapshot`].
    #[must_use]
    pub fn with_snapshot(options: SimOptions, seed: u64, snapshot: Arc<SimSnapshot>) -> Self {
        Self {
            package: Package::with_snapshot(snapshot.package(), options.compute_cache_bits),
            policy_factory: Arc::new(options.strategy),
            observers: Vec::new(),
            options,
            gate_cache: HashMap::new(),
            snapshot: Some(snapshot),
            snapshot_gate_hits: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Whether this simulator runs over a shared frozen snapshot.
    #[must_use]
    pub fn has_snapshot(&self) -> bool {
        self.snapshot.is_some()
    }

    /// Gate-DD lookups served by the frozen snapshot cache (0 without
    /// a snapshot).
    #[must_use]
    pub fn snapshot_gate_hits(&self) -> u64 {
        self.snapshot_gate_hits
    }

    /// Replaces the approximation-policy factory. Each run builds a
    /// fresh policy instance from it; [`SimOptions::strategy`] no
    /// longer steers the run after this call (it remains visible in
    /// [`Simulator::options`] as configuration history only).
    pub fn set_policy_factory(&mut self, factory: Arc<dyn PolicyFactory>) {
        self.policy_factory = factory;
    }

    /// The factory runs build their policy from.
    #[must_use]
    pub fn policy_factory(&self) -> &Arc<dyn PolicyFactory> {
        &self.policy_factory
    }

    /// The name of the policy a run of this simulator would use.
    #[must_use]
    pub fn policy_name(&self) -> String {
        self.policy_factory.build().name().to_string()
    }

    /// Attaches a trace observer; every subsequent run reports its
    /// [`TraceEvent`]s to it (in addition to any observers attached
    /// earlier). Keep your own clone of the handle to read results
    /// back — see [`crate::TraceRecorder`].
    pub fn attach_observer(&mut self, observer: SharedObserver) {
        self.observers.push(observer);
    }

    /// Validates this simulator's policy against a circuit without
    /// running it: builds a fresh policy and runs its
    /// [`crate::ApproxPolicy::begin`] hook. What `Backend::prepare`
    /// uses.
    ///
    /// # Errors
    ///
    /// The policy's validation error (typically
    /// [`crate::SimError::InvalidStrategy`]).
    pub fn validate_policy(&self, circuit: &Circuit) -> Result<()> {
        self.policy_factory.build().begin(circuit)
    }

    /// Re-seeds the owned sampling RNG.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// The simulation options.
    #[must_use]
    pub fn options(&self) -> &SimOptions {
        &self.options
    }

    /// Read access to the underlying DD package (sizes, DOT export…).
    #[must_use]
    pub fn package(&self) -> &Package {
        &self.package
    }

    /// Mutable access to the underlying DD package, e.g. for computing
    /// fidelities between run results.
    pub fn package_mut(&mut self) -> &mut Package {
        &mut self.package
    }

    /// Runs `circuit` from `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Strategy validation errors, circuit validation errors, or DD
    /// engine errors (e.g. malformed permutations).
    pub fn run(&mut self, circuit: &Circuit) -> Result<RunResult> {
        let initial = self.package.zero_state(circuit.n_qubits());
        self.run_from(circuit, initial)
    }

    /// Runs `circuit` from a caller-provided initial state (which must
    /// live in this simulator's package and have matching width).
    ///
    /// # Errors
    ///
    /// See [`Simulator::run`].
    pub fn run_from(&mut self, circuit: &Circuit, initial: VEdge) -> Result<RunResult> {
        // A fresh policy per run: no run observes another run's policy
        // state — the determinism linchpin of pooled execution.
        let mut policy = self.policy_factory.build();
        policy.begin(circuit)?;
        circuit.validate()?;
        let level = self.package.vlevel(initial);
        if level != circuit.n_qubits() {
            return Err(crate::SimError::WidthMismatch {
                state: level,
                circuit: circuit.n_qubits(),
            });
        }
        let run_span = telemetry::Span::enter("dd.run");
        let apply_timer = telemetry::PhaseTimer::new("dd.apply");

        let mut state = initial;
        self.package.inc_ref(state);

        let mut stats = SimStats {
            gates_applied: 0,
            max_dd_size: self.package.vsize(state),
            approx_rounds: 0,
            fidelity: 1.0,
            fidelity_lower_bound: 1.0,
            round_fidelities: Vec::new(),
            nodes_removed: 0,
            runtime: Duration::ZERO,
            final_threshold: None,
            size_series: Vec::new(),
            policy: policy.name().to_string(),
            package: approxdd_dd::PackageStats::default(),
        };

        self.emit(|| TraceEvent::RunStarted {
            circuit: circuit.name().to_string(),
            n_qubits: circuit.n_qubits(),
            total_ops: circuit.ops().len(),
            policy: policy.name().to_string(),
        });

        let total_ops = circuit.ops().len();
        let mut live_nodes = stats.max_dd_size;
        for (i, op) in circuit.ops().iter().enumerate() {
            let applied_gate = op.is_gate();
            if applied_gate {
                // On failure, release the state root before returning —
                // a leaked root would pin the partial state in the
                // package forever (all error paths below do the same).
                let gate = match self.gate_dd(circuit, op) {
                    Ok(gate) => gate,
                    Err(e) => {
                        self.package.dec_ref(state);
                        return Err(e);
                    }
                };
                let new_state = apply_timer.time(|| self.package.apply(gate, state));
                self.swap_root(&mut state, new_state);
                stats.gates_applied += 1;

                live_nodes = self.package.vsize(state);
                stats.max_dd_size = stats.max_dd_size.max(live_nodes);
                if self.options.record_size_series {
                    stats.size_series.push(live_nodes);
                }
                self.emit(|| TraceEvent::GateApplied {
                    op_index: i,
                    gates_applied: stats.gates_applied,
                    live_nodes,
                });
            }

            let ctx = PolicyCtx {
                op_index: i,
                total_ops,
                applied_gate,
                at_marker: matches!(op, Operation::ApproxPoint),
                gates_applied: stats.gates_applied,
                live_nodes,
                peak_nodes: stats.max_dd_size,
                rounds_taken: stats.approx_rounds,
                fidelity_lower_bound: stats.fidelity_lower_bound,
                fidelity_estimate: stats.fidelity,
            };
            let mut truncated = false;
            match policy.decide(&ctx) {
                PolicyAction::Continue => {}
                PolicyAction::Truncate { round_fidelity } => {
                    if !(round_fidelity > 0.0 && round_fidelity <= 1.0) {
                        self.package.dec_ref(state);
                        return Err(crate::SimError::InvalidStrategy {
                            reason: "policy returned a round fidelity outside (0, 1]",
                        });
                    }
                    self.emit(|| TraceEvent::RoundStarted {
                        op_index: i,
                        round: stats.approx_rounds + 1,
                        target_fidelity: round_fidelity,
                        live_nodes,
                    });
                    let nodes_before = live_nodes;
                    let removed_before = stats.nodes_removed;
                    if let Err(e) = self.truncate_state(&mut state, round_fidelity, &mut stats) {
                        self.package.dec_ref(state);
                        return Err(e);
                    }
                    // A no-op round provably kept fidelity exactly 1 —
                    // charging its target to the floor would make
                    // budget policies burn budget on rounds that
                    // removed nothing.
                    if stats.nodes_removed > removed_before {
                        stats.fidelity_lower_bound *= round_fidelity;
                    }
                    live_nodes = self.package.vsize(state);
                    self.emit(|| TraceEvent::Truncated {
                        op_index: i,
                        round: stats.approx_rounds,
                        nodes_before,
                        nodes_after: live_nodes,
                        removed_nodes: stats.nodes_removed - removed_before,
                        removed_mass: 1.0 - stats.round_fidelities.last().copied().unwrap_or(1.0),
                    });
                    truncated = true;
                }
                PolicyAction::Abort => {
                    self.package.dec_ref(state);
                    return Err(crate::SimError::PolicyAbort {
                        op_index: i,
                        policy: policy.name().to_string(),
                    });
                }
            }
            if applied_gate || truncated {
                self.maybe_gc();
            }
        }

        stats.final_threshold = policy.node_threshold();
        stats.package = self.package.stats();
        stats.runtime = run_span.finish();
        self.emit(|| TraceEvent::RunFinished {
            gates_applied: stats.gates_applied,
            rounds: stats.approx_rounds,
            fidelity: stats.fidelity,
            fidelity_lower_bound: stats.fidelity_lower_bound,
        });
        Ok(RunResult {
            state,
            n_qubits: circuit.n_qubits(),
            stats,
        })
    }

    /// Delivers one trace event to every attached observer. The closure
    /// keeps event construction free when nobody is listening.
    fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        if self.observers.is_empty() {
            return;
        }
        let event = make();
        for observer in &self.observers {
            observer
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .on_event(&event);
        }
    }

    /// Releases a run result's state from the GC roots. The result's
    /// edge must not be used afterwards.
    pub fn release(&mut self, result: &RunResult) {
        self.package.dec_ref(result.state);
    }

    /// Draws one measurement outcome from a run's final state.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, result: &RunResult, rng: &mut R) -> u64 {
        self.package.sample(result.state(), rng)
    }

    /// Draws one outcome using the simulator's owned RNG (seeded via
    /// [`SimulatorBuilder::seed`]).
    pub fn draw(&mut self, result: &RunResult) -> u64 {
        self.package.sample(result.state(), &mut self.rng)
    }

    /// Draws `shots` outcomes into a histogram using the simulator's
    /// owned RNG.
    pub fn draw_counts(&mut self, result: &RunResult, shots: usize) -> HashMap<u64, usize> {
        self.package
            .sample_counts(result.state(), shots, &mut self.rng)
    }

    /// Draws `shots` outcomes into a histogram.
    #[must_use]
    pub fn sample_counts<R: Rng + ?Sized>(
        &self,
        result: &RunResult,
        shots: usize,
        rng: &mut R,
    ) -> HashMap<u64, usize> {
        self.package.sample_counts(result.state(), shots, rng)
    }

    /// Dense amplitudes of a run's final state (small registers only).
    ///
    /// # Errors
    ///
    /// Propagates [`approxdd_dd::DdError::TooManyQubits`] beyond 26
    /// qubits.
    pub fn amplitudes(&self, result: &RunResult) -> Result<Vec<approxdd_complex::Cplx>> {
        Ok(self
            .package
            .to_amplitudes(result.state(), result.n_qubits())?)
    }

    /// Exact fidelity between two run results (their states must live in
    /// this simulator's package — e.g. an exact and an approximate run
    /// of the same circuit on the same simulator).
    #[must_use]
    pub fn fidelity_between(&mut self, a: &RunResult, b: &RunResult) -> f64 {
        self.package.fidelity(a.state(), b.state())
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn truncate_state(
        &mut self,
        state: &mut VEdge,
        round_fidelity: f64,
        stats: &mut SimStats,
    ) -> Result<()> {
        let span = telemetry::Span::enter("dd.truncate");
        let budget = 1.0 - round_fidelity;
        let result = match self.options.primitive {
            crate::ApproxPrimitive::Nodes => self
                .package
                .truncate(*state, RemovalStrategy::Budget(budget))?,
            crate::ApproxPrimitive::Edges => self.package.truncate_edges(*state, budget)?,
            #[allow(unreachable_patterns)] // non_exhaustive enum
            _ => self
                .package
                .truncate(*state, RemovalStrategy::Budget(budget))?,
        };
        if result.removed_nodes > 0 {
            let new_state = result.edge;
            self.swap_root(state, new_state);
            stats.approx_rounds += 1;
            stats.fidelity *= result.fidelity;
            stats.round_fidelities.push(result.fidelity);
            stats.nodes_removed += result.removed_nodes;
        } else {
            // A no-op round (nothing below budget) still counts as a
            // scheduled round with fidelity 1 for reporting parity with
            // the paper's "Rounds" column.
            stats.approx_rounds += 1;
            stats.round_fidelities.push(1.0);
        }
        let _ = span.finish();
        telemetry::count("approxdd_truncation_rounds_total", 1);
        telemetry::count(
            "approxdd_truncated_nodes_total",
            result.removed_nodes as u64,
        );
        Ok(())
    }

    fn swap_root(&mut self, state: &mut VEdge, new_state: VEdge) {
        self.package.inc_ref(new_state);
        self.package.dec_ref(*state);
        *state = new_state;
    }

    fn maybe_gc(&mut self) {
        // Count only collectable (delta-layer) nodes: a large frozen
        // snapshot prefix is pinned and sweeping can never reclaim it,
        // so it must not drive the trigger. Without a snapshot this is
        // exactly the total alive count.
        if self.package.collectable_nodes() > self.options.gc_node_threshold {
            self.package.collect_garbage();
        }
    }

    /// Builds (or fetches from cache) the operation DD for a circuit op.
    pub(crate) fn gate_dd(&mut self, circuit: &Circuit, op: &Operation) -> Result<MEdge> {
        let n = circuit.n_qubits();
        let key = match op {
            Operation::Gate {
                gate,
                target,
                controls: _,
            } => GateKey::Gate {
                n_qubits: n,
                name: gate.name(),
                param_bits: gate.parameter().map_or(0, f64::to_bits),
                target: *target,
                controls: op.control_pairs(),
            },
            Operation::Permutation { lo, k, perm, .. } => GateKey::Permutation {
                n_qubits: n,
                table_ptr: perm.as_ptr() as usize,
                lo: *lo,
                k: *k,
                controls: op.control_pairs(),
            },
            Operation::DenseBlock { lo, k, matrix, .. } => GateKey::Permutation {
                n_qubits: n,
                table_ptr: matrix.as_ptr() as usize,
                lo: *lo,
                k: *k,
                controls: op.control_pairs(),
            },
            Operation::ApproxPoint | Operation::Barrier => {
                unreachable!("markers are not gates")
            }
        };
        // Frozen-first: a snapshot-warmed gate is served without
        // touching the private package. The edge's nodes sit below the
        // arena watermark, pinned for the snapshot's lifetime — no
        // per-simulator GC root needed.
        if let Some(snap) = &self.snapshot {
            if let Some(&(e, _)) = snap.gates.get(&key) {
                self.snapshot_gate_hits += 1;
                return Ok(e);
            }
        }
        if let Some(&(e, _)) = self.gate_cache.get(&key) {
            return Ok(e);
        }
        let build_span = telemetry::Span::enter("dd.gate_build");
        // For pointer-keyed entries, clone the table's Arc into the
        // cache: while the guard lives, the allocation cannot be freed
        // and recycled at the same address by an unrelated circuit.
        let (edge, guard) = match op {
            Operation::Gate { gate, target, .. } => (
                self.package.controlled_gate_polarized(
                    n,
                    &op.control_pairs(),
                    *target,
                    gate.matrix(),
                )?,
                None,
            ),
            Operation::Permutation { lo, k, perm, .. } => (
                self.package
                    .permutation_gate(n, *lo, *k, perm, &op.control_pairs())?,
                Some(TableGuard::Perm(perm.clone())),
            ),
            Operation::DenseBlock { lo, k, matrix, .. } => (
                self.package
                    .dense_block_gate(n, *lo, *k, matrix, &op.control_pairs())?,
                Some(TableGuard::Dense(matrix.clone())),
            ),
            _ => unreachable!(),
        };
        self.package.inc_ref_m(edge);
        self.gate_cache.insert(key, (edge, guard));
        let _ = build_span.finish();
        Ok(edge)
    }

    /// Number of gate DDs currently resolvable from this simulator's
    /// caches — the private cache plus, when layered over a snapshot,
    /// the frozen cache (pool worker statistics report this per
    /// backend instance).
    #[must_use]
    pub fn gate_cache_len(&self) -> usize {
        let frozen = self.snapshot.as_ref().map_or(0, |s| s.gates.len());
        frozen + self.gate_cache.len()
    }

    /// Drops all privately cached gate DDs (releasing their GC roots).
    /// Frozen snapshot gates are unaffected: they are pinned by the
    /// watermark, not by roots.
    pub fn clear_gate_cache(&mut self) {
        let edges: Vec<MEdge> = self.gate_cache.drain().map(|(_, (e, _))| e).collect();
        for e in edges {
            self.package.dec_ref_m(e);
        }
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new(SimOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;
    use crate::options::Strategy;
    use approxdd_circuit::generators;
    use approxdd_statevector::State;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cross_validate(circuit: &Circuit) {
        let mut sim = Simulator::default();
        let run = sim.run(circuit).unwrap();
        let dd_amps = sim.amplitudes(&run).unwrap();

        let mut sv = State::zero(circuit.n_qubits());
        sv.run(circuit).unwrap();
        for (i, (a, b)) in dd_amps.iter().zip(sv.amplitudes()).enumerate() {
            assert!(
                (*a - *b).mag() < 1e-9,
                "{}: amplitude {i} differs: dd={a} sv={b}",
                circuit.name()
            );
        }
    }

    #[test]
    fn exact_matches_statevector_on_standard_circuits() {
        cross_validate(&generators::ghz(6));
        cross_validate(&generators::w_state(5));
        cross_validate(&generators::qft(5));
        cross_validate(&generators::bernstein_vazirani(7, 0b1010011));
        cross_validate(&generators::grover(5, 0b10110, None));
    }

    #[test]
    fn exact_matches_statevector_on_random_circuits() {
        for seed in 0..4 {
            cross_validate(&generators::random_circuit(6, 10, seed));
        }
    }

    #[test]
    fn exact_matches_statevector_on_supremacy() {
        cross_validate(&generators::supremacy(2, 3, 8, 3));
    }

    #[test]
    fn ghz_sampling_hits_both_branches() {
        let mut sim = Simulator::default();
        let run = sim.run(&generators::ghz(10)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let counts = sim.sample_counts(&run, 500, &mut rng);
        assert_eq!(counts.len(), 2);
        assert!(counts.contains_key(&0));
        assert!(counts.contains_key(&0x3FF));
    }

    #[test]
    fn exact_run_reports_unit_fidelity() {
        let mut sim = Simulator::default();
        let run = sim.run(&generators::qft(6)).unwrap();
        assert_eq!(run.stats.fidelity, 1.0);
        assert_eq!(run.stats.approx_rounds, 0);
        assert!(run.stats.max_dd_size >= 1);
        assert_eq!(run.stats.gates_applied, generators::qft(6).gate_count());
    }

    #[test]
    fn fidelity_driven_respects_final_bound() {
        let circuit = generators::supremacy(2, 3, 12, 1);
        let mut sim = Simulator::builder().fidelity_driven(0.6, 0.9).build();
        let run = sim.run(&circuit).unwrap();
        assert!(
            run.stats.fidelity >= 0.6 - 1e-9,
            "fidelity {} below bound",
            run.stats.fidelity
        );
        // Verify the reported fidelity against an exact co-simulation.
        let mut exact = Simulator::default();
        let exact_run = exact.run(&circuit).unwrap();
        let approx_amps = sim.amplitudes(&run).unwrap();
        let exact_amps = exact.amplitudes(&exact_run).unwrap();
        let mut ip = approxdd_complex::Cplx::ZERO;
        for (a, b) in exact_amps.iter().zip(&approx_amps) {
            ip += a.conj() * *b;
        }
        let measured = ip.mag2();
        // Product of round fidelities tracks the true overlap (exact
        // under Lemma 1's aligned-set assumption; a few percent in a
        // live multi-round run).
        assert!(
            (measured - run.stats.fidelity).abs() < 0.05,
            "reported {} vs measured {} (Lemma 1 estimate)",
            run.stats.fidelity,
            measured
        );
    }

    #[test]
    fn memory_driven_bounds_dd_size() {
        let circuit = generators::supremacy(2, 3, 14, 2);
        // Exact size for reference.
        let mut exact = Simulator::default();
        let exact_run = exact.run(&circuit).unwrap();

        let threshold = 12;
        let mut sim = Simulator::builder().memory_driven(threshold, 0.9).build();
        let run = sim.run(&circuit).unwrap();
        assert!(run.stats.approx_rounds > 0, "threshold should trigger");
        assert!(
            run.stats.max_dd_size <= exact_run.stats.max_dd_size,
            "approximation may not increase the max DD size here"
        );
        assert!(run.stats.fidelity > 0.0 && run.stats.fidelity <= 1.0);
        let ft = run.stats.final_threshold.unwrap();
        assert!(ft >= threshold * 2, "threshold must double per round");
    }

    #[test]
    fn fidelity_product_matches_round_fidelities() {
        let circuit = generators::supremacy(2, 2, 10, 5);
        let mut sim = Simulator::builder().fidelity_driven(0.7, 0.95).build();
        let run = sim.run(&circuit).unwrap();
        let product: f64 = run.stats.round_fidelities.iter().product();
        assert!((product - run.stats.fidelity).abs() < 1e-12);
        assert_eq!(run.stats.round_fidelities.len(), run.stats.approx_rounds);
    }

    #[test]
    fn size_series_is_recorded_on_request() {
        let circuit = generators::ghz(5);
        let mut sim = Simulator::builder().record_size_series(true).build();
        let run = sim.run(&circuit).unwrap();
        assert_eq!(run.stats.size_series.len(), circuit.gate_count());
    }

    #[test]
    fn invalid_strategy_is_rejected_before_running() {
        let mut sim = Simulator::builder().fidelity_driven(2.0, 0.9).build();
        assert!(matches!(
            sim.run(&generators::ghz(3)),
            Err(SimError::InvalidStrategy { .. })
        ));
    }

    #[test]
    fn gate_cache_is_reused_across_runs() {
        let circuit = generators::qft(5);
        let mut sim = Simulator::default();
        let r1 = sim.run(&circuit).unwrap();
        let r2 = sim.run(&circuit).unwrap();
        assert!((sim.fidelity_between(&r1, &r2) - 1.0).abs() < 1e-10);
        sim.clear_gate_cache();
        let r3 = sim.run(&circuit).unwrap();
        assert!((sim.fidelity_between(&r1, &r3) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn edge_primitive_keeps_more_fidelity_per_round() {
        let circuit = generators::supremacy(2, 3, 12, 1);
        let strategy = Strategy::FidelityDriven {
            final_fidelity: 0.6,
            round_fidelity: 0.9,
        };
        let mut node_sim = Simulator::builder()
            .strategy(strategy)
            .primitive(crate::ApproxPrimitive::Nodes)
            .build();
        let node_run = node_sim.run(&circuit).unwrap();
        let mut edge_sim = Simulator::builder()
            .strategy(strategy)
            .primitive(crate::ApproxPrimitive::Edges)
            .build();
        let edge_run = edge_sim.run(&circuit).unwrap();
        // Both honor the floor; both primitives engage the same rounds.
        assert!(node_run.stats.fidelity >= 0.6 - 1e-9);
        assert!(edge_run.stats.fidelity >= 0.6 - 1e-9);
        assert_eq!(node_run.stats.approx_rounds, edge_run.stats.approx_rounds);
        // Both stay normalized.
        let amps = edge_sim.amplitudes(&edge_run).unwrap();
        let norm: f64 = amps.iter().map(|a| a.mag2()).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn one_session_runs_circuits_of_different_widths() {
        // Regression: the gate cache is keyed by register width — a
        // session reusing cached gate DDs across widths must not mix
        // them up.
        let mut sim = Simulator::default();
        for circuit in [
            generators::ghz(6),
            generators::qft(5),
            generators::ghz(6),
            generators::w_state(4),
        ] {
            let run = sim.run(&circuit).unwrap();
            let amps = sim.amplitudes(&run).unwrap();
            let norm: f64 = amps.iter().map(|a| a.mag2()).sum();
            assert!((norm - 1.0).abs() < 1e-9, "{}", circuit.name());
        }
    }

    #[test]
    fn run_from_rejects_width_mismatch() {
        let mut sim = Simulator::default();
        let small = sim.package_mut().zero_state(2);
        assert!(matches!(
            sim.run_from(&generators::ghz(4), small),
            Err(SimError::WidthMismatch {
                state: 2,
                circuit: 4
            })
        ));
    }

    #[test]
    fn snapshot_run_matches_plain_run_bitwise() {
        let circuits = [generators::qft(5), generators::ghz(6)];
        let options = SimOptions::default();
        let snapshot = Arc::new(SimSnapshot::build(&options, circuits.iter()).unwrap());
        assert!(snapshot.cached_gates() > 0);
        assert!(snapshot.frozen_nodes() > 0);
        for circuit in &circuits {
            let mut plain = Simulator::seeded(options, 7);
            let want = plain.run(circuit).unwrap();
            let want_amps = plain.amplitudes(&want).unwrap();

            let mut snap = Simulator::with_snapshot(options, 7, Arc::clone(&snapshot));
            assert!(snap.has_snapshot());
            let got = snap.run(circuit).unwrap();
            let got_amps = snap.amplitudes(&got).unwrap();
            for (g, w) in got_amps.iter().zip(&want_amps) {
                assert_eq!(g.re.to_bits(), w.re.to_bits(), "{}", circuit.name());
                assert_eq!(g.im.to_bits(), w.im.to_bits(), "{}", circuit.name());
            }
            assert!(
                snap.snapshot_gate_hits() > 0,
                "every gate was warmed, so every lookup must hit the frozen cache"
            );
            assert_eq!(
                snap.package().stats().frozen_nodes(),
                snapshot.frozen_nodes()
            );
        }
    }

    #[test]
    fn run_survives_aggressive_gc() {
        let circuit = generators::random_circuit(8, 12, 3);
        // Force frequent collections.
        let mut sim = Simulator::builder().gc_node_threshold(64).build();
        let run = sim.run(&circuit).unwrap();
        // State is intact: norm 1.
        let amps = sim.amplitudes(&run).unwrap();
        let norm: f64 = amps.iter().map(|a| a.mag2()).sum();
        assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
    }
}

//! Gate fusion: matrix–matrix multiplication of consecutive operation
//! DDs before touching the state.
//!
//! Zulehner & Wille ("Matrix-vector vs. matrix-matrix multiplication:
//! Potential in DD-based simulation of quantum computations", DATE
//! 2019 — reference [31] of the reproduced paper, and the source of its
//! Shor benchmarks) showed that fusing gate sequences into a single
//! operation DD can beat gate-by-gate application when intermediate
//! states are larger than the fused operator. This module provides both
//! whole-circuit operator construction and windowed fused execution.

use approxdd_circuit::{Circuit, Operation};
use approxdd_dd::MEdge;

use crate::simulator::{RunResult, SimStats, Simulator};
use crate::Result;

impl Simulator {
    /// Builds the single operation DD of an entire circuit by fusing all
    /// gates with matrix–matrix multiplication (markers are skipped).
    /// Practical for narrow or highly structured circuits; the operator
    /// DD of an entangling wide circuit can be exponentially large.
    ///
    /// # Errors
    ///
    /// Circuit validation or DD construction errors.
    pub fn build_operator(&mut self, circuit: &Circuit) -> Result<MEdge> {
        circuit.validate()?;
        let n = circuit.n_qubits();
        let mut acc = self.package_mut().identity(n);
        for op in circuit.ops() {
            if !op.is_gate() {
                continue;
            }
            let gate = self.gate_dd(circuit, op)?;
            // New gate acts after the accumulated operator: G · acc.
            let p = self.package_mut();
            acc = p.mul_mm(gate, acc);
        }
        Ok(acc)
    }

    /// Runs a circuit by fusing consecutive gates into windows of
    /// `window` gates each, then applying the fused operators to the
    /// state. `window == 1` degenerates to ordinary simulation (without
    /// approximation — fusion is an exact-simulation technique here).
    ///
    /// # Errors
    ///
    /// Circuit validation or DD engine errors.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn run_fused(&mut self, circuit: &Circuit, window: usize) -> Result<RunResult> {
        assert!(window > 0, "fusion window must be positive");
        circuit.validate()?;
        let span = approxdd_telemetry::Span::enter("dd.run_fused");
        let n = circuit.n_qubits();
        let mut state = self.package_mut().zero_state(n);
        self.package_mut().inc_ref(state);

        let mut stats = SimStats {
            gates_applied: 0,
            max_dd_size: self.package().vsize(state),
            approx_rounds: 0,
            fidelity: 1.0,
            fidelity_lower_bound: 1.0,
            round_fidelities: Vec::new(),
            nodes_removed: 0,
            runtime: std::time::Duration::ZERO,
            final_threshold: None,
            size_series: Vec::new(),
            policy: "exact".to_string(),
            package: approxdd_dd::PackageStats::default(),
        };

        let gates: Vec<&Operation> = circuit.ops().iter().filter(|o| o.is_gate()).collect();
        for chunk in gates.chunks(window) {
            // Fuse the window.
            let mut acc: Option<MEdge> = None;
            for op in chunk {
                let gate = self.gate_dd(circuit, op)?;
                acc = Some(match acc {
                    None => gate,
                    Some(prev) => self.package_mut().mul_mm(gate, prev),
                });
                stats.gates_applied += 1;
            }
            if let Some(fused) = acc {
                let new_state = self.package_mut().apply(fused, state);
                self.package_mut().inc_ref(new_state);
                self.package_mut().dec_ref(state);
                state = new_state;
                stats.max_dd_size = stats.max_dd_size.max(self.package().vsize(state));
            }
        }

        stats.package = self.package().stats();
        stats.runtime = span.finish();
        Ok(RunResult::new(state, n, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_circuit::generators;

    #[test]
    fn whole_circuit_operator_matches_sequential_run() {
        let circuit = generators::qft(5);
        let mut sim = Simulator::builder().exact().build();
        let op = sim.build_operator(&circuit).unwrap();

        let seq = sim.run(&circuit).unwrap();
        let p = sim.package_mut();
        let initial = p.zero_state(5);
        let fused_state = p.apply(op, initial);
        let f = p.fidelity(seq.state(), fused_state);
        assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
    }

    #[test]
    fn fused_windows_agree_with_gate_by_gate() {
        for window in [1usize, 2, 4, 16] {
            let circuit = generators::random_circuit(6, 8, 7);
            let mut sim = Simulator::builder().exact().build();
            let fused = sim.run_fused(&circuit, window).unwrap();
            let seq = sim.run(&circuit).unwrap();
            let f = sim.fidelity_between(&seq, &fused);
            assert!((f - 1.0).abs() < 1e-9, "window {window}: fidelity {f}");
            assert_eq!(fused.stats.gates_applied, seq.stats.gates_applied);
        }
    }

    #[test]
    fn operator_of_inverse_pair_is_identity() {
        let n = 4;
        let mut both = generators::qft(n);
        both.append(&generators::inverse_qft(n, false), 0);
        let mut sim = Simulator::builder().exact().build();
        let op = sim.build_operator(&both).unwrap();
        let id = sim.package_mut().identity(n);
        assert_eq!(op.node, id.node, "QFT · QFT⁻¹ must fuse to the identity");
        assert!((op.w - id.w).mag() < 1e-9);
    }

    #[test]
    fn shor_modmul_block_fuses() {
        // Fusing the controlled modular multiplications of shor_15_7
        // yields one operator representing the whole exponentiation.
        let circuit = approxdd_shor_circuit();
        let mut sim = Simulator::builder().exact().build();
        let fused = sim.run_fused(&circuit, 4).unwrap();
        let seq = sim.run(&circuit).unwrap();
        let f = sim.fidelity_between(&seq, &fused);
        assert!((f - 1.0).abs() < 1e-9);
    }

    /// A small Shor-like circuit without depending on the shor crate
    /// (which would create a dependency cycle in dev-deps).
    fn approxdd_shor_circuit() -> approxdd_circuit::Circuit {
        use approxdd_circuit::{Circuit, Control};
        let mut c = Circuit::new(8, "mini_shor");
        c.x(0);
        for j in 0..4 {
            c.h(4 + j);
        }
        // Controlled multiplications by 7^(2^j) mod 15 on the low 4 qubits.
        let mut m = 7u64;
        for j in 0..4 {
            let perm: Vec<usize> = (0..16)
                .map(|x| if x < 15 { (m as usize * x) % 15 } else { x })
                .collect();
            c.permutation(0, 4, perm, &[Control::positive(4 + j)], format!("m{j}"));
            m = m * m % 15;
        }
        c.append(&generators::inverse_qft(4, false), 4);
        c
    }
}

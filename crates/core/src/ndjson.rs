//! NDJSON export: one shared line-oriented format for [`TraceEvent`]
//! streams and telemetry snapshots.
//!
//! The server already streams job events as newline-delimited JSON;
//! this module gives the other two observability producers — the
//! [`crate::TraceRecorder`] observer and the
//! [`approxdd_telemetry::MetricsRegistry`] — the same shape, built on
//! the workspace's own [`Json`] writer. Everything exported here is
//! diagnostic: no value ever feeds back into simulation, and none of
//! it participates in result fingerprints.

use crate::json::Json;
use crate::policy::TraceEvent;
use approxdd_telemetry::{MetricValue, MetricsSnapshot};

/// One trace event as a `{"type": ...}` JSON object — the same
/// field names as the [`TraceEvent`] variants.
#[must_use]
pub fn trace_event_json(event: &TraceEvent) -> Json {
    match event {
        TraceEvent::RunStarted {
            circuit,
            n_qubits,
            total_ops,
            policy,
        } => Json::obj([
            ("type", Json::str("run_started")),
            ("circuit", Json::str(circuit.clone())),
            ("n_qubits", Json::int(*n_qubits)),
            ("total_ops", Json::int(*total_ops)),
            ("policy", Json::str(policy.clone())),
        ]),
        TraceEvent::GateApplied {
            op_index,
            gates_applied,
            live_nodes,
        } => Json::obj([
            ("type", Json::str("gate_applied")),
            ("op_index", Json::int(*op_index)),
            ("gates_applied", Json::int(*gates_applied)),
            ("live_nodes", Json::int(*live_nodes)),
        ]),
        TraceEvent::RoundStarted {
            op_index,
            round,
            target_fidelity,
            live_nodes,
        } => Json::obj([
            ("type", Json::str("round_started")),
            ("op_index", Json::int(*op_index)),
            ("round", Json::int(*round)),
            ("target_fidelity", Json::Num(*target_fidelity)),
            ("live_nodes", Json::int(*live_nodes)),
        ]),
        TraceEvent::Truncated {
            op_index,
            round,
            nodes_before,
            nodes_after,
            removed_nodes,
            removed_mass,
        } => Json::obj([
            ("type", Json::str("truncated")),
            ("op_index", Json::int(*op_index)),
            ("round", Json::int(*round)),
            ("nodes_before", Json::int(*nodes_before)),
            ("nodes_after", Json::int(*nodes_after)),
            ("removed_nodes", Json::int(*removed_nodes)),
            ("removed_mass", Json::Num(*removed_mass)),
        ]),
        TraceEvent::RunFinished {
            gates_applied,
            rounds,
            fidelity,
            fidelity_lower_bound,
        } => Json::obj([
            ("type", Json::str("run_finished")),
            ("gates_applied", Json::int(*gates_applied)),
            ("rounds", Json::int(*rounds)),
            ("fidelity", Json::Num(*fidelity)),
            ("fidelity_lower_bound", Json::Num(*fidelity_lower_bound)),
        ]),
        // `TraceEvent` is non_exhaustive towards downstream crates;
        // new variants added here must extend this match.
        #[allow(unreachable_patterns)]
        other => Json::obj([("type", Json::str(format!("{other:?}")))]),
    }
}

/// Serializes a recorded trace as NDJSON: one event object per line,
/// every line newline-terminated — the format the server streams and
/// `SimObserver` traces now share.
///
/// ```
/// use approxdd_circuit::generators;
/// use approxdd_sim::ndjson::trace_to_ndjson;
/// use approxdd_sim::{Simulator, TraceRecorder};
///
/// let recorder = TraceRecorder::shared();
/// let mut sim = Simulator::builder()
///     .memory_driven(8, 0.9)
///     .observe(recorder.clone())
///     .build();
/// sim.run(&generators::qft(5)).unwrap();
/// let ndjson = trace_to_ndjson(recorder.lock().unwrap().events());
/// let first = ndjson.lines().next().unwrap();
/// assert!(first.contains("\"type\":\"run_started\""));
/// assert!(ndjson.lines().last().unwrap().contains("\"type\":\"run_finished\""));
/// ```
#[must_use]
pub fn trace_to_ndjson(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&trace_event_json(event).to_string());
        out.push('\n');
    }
    out
}

/// One metric entry as a JSON object (`kind`, `name`, `labels`, and
/// the value — histograms expose `count`, `sum` and `seconds`).
#[must_use]
pub fn metric_entry_json(entry: &approxdd_telemetry::MetricEntry) -> Json {
    let labels = Json::Obj(
        entry
            .labels
            .iter()
            .map(|(k, v)| (k.clone(), Json::str(v.clone())))
            .collect(),
    );
    match &entry.value {
        MetricValue::Counter(v) => Json::obj([
            ("kind", Json::str("counter")),
            ("name", Json::str(entry.name.clone())),
            ("labels", labels),
            ("value", Json::int(*v as usize)),
        ]),
        MetricValue::Gauge(v) => Json::obj([
            ("kind", Json::str("gauge")),
            ("name", Json::str(entry.name.clone())),
            ("labels", labels),
            ("value", Json::int(*v as usize)),
        ]),
        MetricValue::Histogram(h) => Json::obj([
            ("kind", Json::str("histogram")),
            ("name", Json::str(entry.name.clone())),
            ("labels", labels),
            ("count", Json::int(h.count as usize)),
            ("sum", Json::int(h.sum as usize)),
            ("seconds", Json::Num(h.sum_seconds())),
        ]),
    }
}

/// Serializes a metrics snapshot as NDJSON: one metric per line, in
/// the snapshot's deterministic `(name, labels)` order.
#[must_use]
pub fn metrics_to_ndjson(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for entry in &snapshot.entries {
        out.push_str(&metric_entry_json(entry).to_string());
        out.push('\n');
    }
    out
}

/// The bench bins' `telemetry` report object: a phase-time breakdown
/// (seconds per [`approxdd_telemetry::PHASE_METRIC`] phase label) plus
/// the top counters, taken from the global registry.
#[must_use]
pub fn telemetry_json() -> Json {
    telemetry_json_from(&approxdd_telemetry::global().snapshot())
}

/// [`telemetry_json`] over an explicit snapshot (tests, merged worker
/// snapshots).
#[must_use]
pub fn telemetry_json_from(snapshot: &MetricsSnapshot) -> Json {
    let mut phases: Vec<(String, Json)> = Vec::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    for entry in &snapshot.entries {
        match &entry.value {
            MetricValue::Histogram(h) if entry.name == approxdd_telemetry::PHASE_METRIC => {
                let phase = entry
                    .labels
                    .iter()
                    .find(|(k, _)| k == "phase")
                    .map_or("?", |(_, v)| v.as_str());
                phases.push((
                    phase.to_string(),
                    Json::obj([
                        ("seconds", Json::Num(h.sum_seconds())),
                        ("count", Json::int(h.count as usize)),
                    ]),
                ));
            }
            MetricValue::Counter(v) => {
                let mut name = entry.name.clone();
                if !entry.labels.is_empty() {
                    let rendered: Vec<String> = entry
                        .labels
                        .iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect();
                    name = format!("{name}{{{}}}", rendered.join(","));
                }
                counters.push((name, *v));
            }
            _ => {}
        }
    }
    // Top counters by value (name-tiebroken for determinism), capped
    // so smoke reports stay readable.
    counters.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    counters.truncate(12);
    Json::obj([
        ("phases", Json::Obj(phases.into_iter().collect())),
        (
            "counters",
            Json::Obj(
                counters
                    .into_iter()
                    .map(|(k, v)| (k, Json::int(v as usize)))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_telemetry::MetricsRegistry;

    #[test]
    fn metrics_ndjson_one_line_per_entry() {
        let registry = MetricsRegistry::new();
        registry.counter("a_total").add(3);
        registry.gauge("b").set(7);
        registry.histogram("c_nanos").observe(1_000);
        let ndjson = metrics_to_ndjson(&registry.snapshot());
        let lines: Vec<&str> = ndjson.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"counter\""));
        assert!(lines[0].contains("\"value\":3"));
        assert!(lines[1].contains("\"kind\":\"gauge\""));
        assert!(lines[2].contains("\"kind\":\"histogram\""));
        assert!(lines[2].contains("\"count\":1"));
    }

    #[test]
    fn telemetry_json_splits_phases_and_counters() {
        let registry = MetricsRegistry::new();
        registry
            .histogram_with(approxdd_telemetry::PHASE_METRIC, &[("phase", "dd.apply")])
            .observe(2_000_000_000);
        registry.counter("approxdd_dd_gc_runs_total").add(4);
        registry
            .counter_with("labelled_total", &[("kind", "run")])
            .inc();
        let json = telemetry_json_from(&registry.snapshot()).to_string();
        assert!(json.contains("\"phases\""));
        assert!(json.contains("\"dd.apply\""));
        assert!(json.contains("\"seconds\":2"));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"approxdd_dd_gc_runs_total\":4"));
        assert!(json.contains("\"labelled_total{kind=run}\":1"));
    }

    #[test]
    fn trace_roundtrip_shape() {
        let events = [
            TraceEvent::RunStarted {
                circuit: "ghz".to_string(),
                n_qubits: 3,
                total_ops: 3,
                policy: "exact".to_string(),
            },
            TraceEvent::RunFinished {
                gates_applied: 3,
                rounds: 0,
                fidelity: 1.0,
                fidelity_lower_bound: 1.0,
            },
        ];
        let ndjson = trace_to_ndjson(&events);
        assert_eq!(ndjson.lines().count(), 2);
        assert!(ndjson.ends_with('\n'));
        assert!(ndjson.contains("\"circuit\":\"ghz\""));
    }
}

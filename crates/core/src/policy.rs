//! The composable approximation-policy and run-trace observer API.
//!
//! The reproduced paper's contribution is *when and how hard to
//! approximate* during DD simulation. This module makes that decision a
//! first-class, user-extensible seam instead of a closed enum: after
//! every circuit operation the [`crate::Simulator`] hands the run's
//! [`ApproxPolicy`] a [`PolicyCtx`] snapshot and receives a
//! [`PolicyAction`] back; a companion [`SimObserver`] hook receives
//! structured [`TraceEvent`]s so callers can audit every approximation
//! decision without touching simulator internals.
//!
//! The closed [`Strategy`] enum survives as a thin preset layer: it
//! implements [`PolicyFactory`], so every existing call site
//! (`builder.strategy(…)`, per-job pool overrides, the benches) keeps
//! working and now merely *constructs* the matching policy.
//!
//! # Writing a policy
//!
//! Policies are plain trait objects — stateful, built fresh for every
//! run by a [`PolicyFactory`] (which is what makes pooled execution
//! deterministic under any worker count: no run observes another run's
//! policy state).
//!
//! ```
//! use approxdd_sim::{ApproxPolicy, PolicyAction, PolicyCtx, Simulator};
//!
//! /// Truncates whenever the DD grows beyond 1000 nodes, but never
//! /// spends more than half the fidelity budget.
//! #[derive(Debug, Default)]
//! struct Cautious;
//!
//! impl ApproxPolicy for Cautious {
//!     fn name(&self) -> &str {
//!         "cautious"
//!     }
//!     fn decide(&mut self, ctx: &PolicyCtx) -> PolicyAction {
//!         if ctx.applied_gate && ctx.live_nodes > 1000 && ctx.fidelity_lower_bound > 0.5 {
//!             PolicyAction::Truncate {
//!                 round_fidelity: 0.95,
//!             }
//!         } else {
//!             PolicyAction::Continue
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::builder().policy(|| Cautious).build();
//! let run = sim.run(&approxdd_circuit::generators::ghz(8)).unwrap();
//! assert_eq!(run.stats.policy, "cautious");
//! ```
//!
//! # Observing a run
//!
//! ```
//! use approxdd_sim::{Simulator, Strategy, TraceEvent, TraceRecorder};
//!
//! let trace = TraceRecorder::shared();
//! let mut sim = Simulator::builder()
//!     .strategy(Strategy::memory_driven(8, 0.9))
//!     .observe(trace.clone())
//!     .build();
//! sim.run(&approxdd_circuit::generators::qft(6)).unwrap();
//! let events = trace.lock().unwrap().take();
//! assert!(matches!(events.last(), Some(TraceEvent::RunFinished { .. })));
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use approxdd_circuit::Circuit;

use crate::error::SimError;
use crate::options::Strategy;
use crate::schedule::plan_rounds;

/// The per-operation snapshot the simulator hands its [`ApproxPolicy`]
/// after every circuit operation (gates *and* markers — check
/// [`PolicyCtx::applied_gate`] / [`PolicyCtx::at_marker`] to tell them
/// apart).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyCtx {
    /// Index of the current operation in `circuit.ops()`.
    pub op_index: usize,
    /// Total number of operations in the circuit.
    pub total_ops: usize,
    /// Whether the current operation applied a gate to the state (false
    /// for markers and barriers).
    pub applied_gate: bool,
    /// Whether the current operation is an
    /// [`approxdd_circuit::Operation::ApproxPoint`] block marker — the
    /// scheduled round positions of the paper's Sec. IV-C.
    pub at_marker: bool,
    /// Gates applied so far (including the current one).
    pub gates_applied: usize,
    /// Node count of the state DD right now.
    pub live_nodes: usize,
    /// Maximum state-DD node count observed so far this run.
    pub peak_nodes: usize,
    /// Approximation rounds performed so far this run.
    pub rounds_taken: usize,
    /// Product of the *target* fidelities of every round fired so far
    /// that actually removed nodes — the guaranteed floor on the final
    /// fidelity (1.0 before any round; no-op rounds provably keep
    /// fidelity 1 and charge nothing). Budget-style policies spend
    /// against this.
    pub fidelity_lower_bound: f64,
    /// Product of the *measured* per-round fidelities so far — the
    /// exact estimate [`crate::SimStats::fidelity`] reports (always ≥
    /// [`PolicyCtx::fidelity_lower_bound`]).
    pub fidelity_estimate: f64,
}

/// What a policy wants the simulator to do at the current operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyAction {
    /// Keep simulating exactly.
    Continue,
    /// Run one truncation round targeting the given per-round fidelity
    /// (the round removes up to `1 − round_fidelity` of contribution
    /// mass). Must lie in `(0, 1]`; the simulator rejects anything else
    /// with [`SimError::InvalidStrategy`].
    Truncate {
        /// Per-round target fidelity in `(0, 1]`.
        round_fidelity: f64,
    },
    /// Stop the run immediately; [`crate::Simulator::run`] returns
    /// [`SimError::PolicyAbort`]. For hard resource caps.
    Abort,
}

/// A pluggable approximation policy: decides, after every circuit
/// operation, whether to keep simulating, truncate, or abort.
///
/// Object-safe by design — simulators hold `Box<dyn ApproxPolicy>`
/// built fresh for each run by a [`PolicyFactory`], so policies may
/// carry arbitrary per-run state (thresholds, round plans, spent
/// budgets) without threading it through the simulator.
///
/// ```
/// use approxdd_sim::{ApproxPolicy, PolicyAction, PolicyCtx};
///
/// /// Truncate every 100 gates, gently.
/// struct EveryN;
/// impl ApproxPolicy for EveryN {
///     fn name(&self) -> &str {
///         "every-100-gates"
///     }
///     fn decide(&mut self, ctx: &PolicyCtx) -> PolicyAction {
///         if ctx.applied_gate && ctx.gates_applied % 100 == 0 {
///             PolicyAction::Truncate {
///                 round_fidelity: 0.99,
///             }
///         } else {
///             PolicyAction::Continue
///         }
///     }
/// }
/// let boxed: Box<dyn ApproxPolicy> = Box::new(EveryN); // object safe
/// assert_eq!(boxed.name(), "every-100-gates");
/// ```
pub trait ApproxPolicy {
    /// Short policy name, reported in [`crate::SimStats::policy`] and
    /// trace events. Deliberately excluded from
    /// pooled-outcome fingerprints so differently-named policies with
    /// identical decisions produce identical fingerprints.
    fn name(&self) -> &str;

    /// Called once before the run starts, with the circuit about to be
    /// simulated. Validate parameters and plan schedules here; errors
    /// abort the run before any gate is applied. The default accepts
    /// everything.
    ///
    /// A policy instance is built fresh per run, so `begin` does not
    /// need to reset state — but resetting here keeps hand-constructed
    /// instances reusable too.
    ///
    /// # Errors
    ///
    /// Typically [`SimError::InvalidStrategy`] for out-of-range
    /// parameters.
    fn begin(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        let _ = circuit;
        Ok(())
    }

    /// The per-operation decision. Called after every operation of the
    /// circuit, in order; see [`PolicyCtx`] for what the snapshot
    /// carries.
    fn decide(&mut self, ctx: &PolicyCtx) -> PolicyAction;

    /// The policy's current node threshold, if it has one — reported as
    /// [`crate::SimStats::final_threshold`] after the run (memory-style
    /// policies grow it per round). `None` for schedule-driven
    /// policies.
    fn node_threshold(&self) -> Option<usize> {
        None
    }
}

/// Builds a fresh [`ApproxPolicy`] instance for each run.
///
/// The factory — not a policy instance — is what configuration carries
/// around: [`crate::SimulatorBuilder::policy`] stores one, and pooled
/// execution clones it into every worker so each job instantiates its
/// own policy. That per-job instantiation is a determinism requirement:
/// results stay bit-identical and worker-count-invariant because no run
/// can observe another run's policy state.
///
/// Implemented by every policy-returning `Fn` closure (`|| MyPolicy {
/// … }` and `|| Box::new(…) as Box<dyn ApproxPolicy>` both work) and
/// by [`Strategy`] itself (the preset layer).
pub trait PolicyFactory: Send + Sync {
    /// A fresh policy instance for one run.
    fn build(&self) -> Box<dyn ApproxPolicy>;
}

impl<P, F> PolicyFactory for F
where
    P: ApproxPolicy + 'static,
    F: Fn() -> P + Send + Sync,
{
    fn build(&self) -> Box<dyn ApproxPolicy> {
        Box::new(self())
    }
}

/// Boxes forward, so `Box<dyn ApproxPolicy>`-returning closures are
/// factories too.
impl<T: ApproxPolicy + ?Sized> ApproxPolicy for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn begin(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        (**self).begin(circuit)
    }

    fn decide(&mut self, ctx: &PolicyCtx) -> PolicyAction {
        (**self).decide(ctx)
    }

    fn node_threshold(&self) -> Option<usize> {
        (**self).node_threshold()
    }
}

/// The preset layer: every [`Strategy`] variant constructs its matching
/// policy, so enum-configured call sites run through the same seam as
/// custom policies.
impl PolicyFactory for Strategy {
    fn build(&self) -> Box<dyn ApproxPolicy> {
        match *self {
            Strategy::Exact => Box::new(ExactPolicy),
            Strategy::MemoryDriven {
                node_threshold,
                round_fidelity,
                threshold_growth,
            } => Box::new(MemoryDrivenPolicy::with_growth(
                node_threshold,
                round_fidelity,
                threshold_growth,
            )),
            Strategy::FidelityDriven {
                final_fidelity,
                round_fidelity,
            } => Box::new(FidelityDrivenPolicy::new(final_fidelity, round_fidelity)),
        }
    }
}

/// The non-approximating policy ([`Strategy::Exact`] preset): always
/// [`PolicyAction::Continue`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactPolicy;

impl ApproxPolicy for ExactPolicy {
    fn name(&self) -> &str {
        "exact"
    }

    fn decide(&mut self, _ctx: &PolicyCtx) -> PolicyAction {
        PolicyAction::Continue
    }
}

/// The paper's Sec. IV-B reactive policy ([`Strategy::MemoryDriven`]
/// preset): after each gate, if the state DD exceeds the current node
/// threshold, truncate targeting `round_fidelity` and grow the
/// threshold by `threshold_growth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryDrivenPolicy {
    node_threshold: usize,
    round_fidelity: f64,
    threshold_growth: f64,
    current: usize,
    threshold_unreachable: bool,
}

/// Whether a memory threshold can ever fire on an `n_qubits`-wide run:
/// a width-`n` state DD holds at most `2^n − 1` nodes (a complete
/// binary tree of `n` levels), so a threshold at or above that ceiling
/// is dead weight — the run silently executes exactly, which is easy
/// to misread as "the policy held memory down". Widths where `2^n`
/// overflows `usize` can always exceed any representable threshold.
#[must_use]
pub fn memory_threshold_unreachable(node_threshold: usize, n_qubits: usize) -> bool {
    u32::try_from(n_qubits)
        .ok()
        .and_then(|n| 1usize.checked_shl(n))
        .is_some_and(|cap| node_threshold >= cap - 1)
}

impl MemoryDrivenPolicy {
    /// The paper-text configuration: doubling threshold growth.
    #[must_use]
    pub fn new(node_threshold: usize, round_fidelity: f64) -> Self {
        Self::with_growth(node_threshold, round_fidelity, 2.0)
    }

    /// The regime the paper's Table I actually reports: a fixed
    /// threshold (`threshold_growth = 1.0`); see
    /// [`Strategy::memory_driven_table1`].
    #[must_use]
    pub fn table1(node_threshold: usize, round_fidelity: f64) -> Self {
        Self::with_growth(node_threshold, round_fidelity, 1.0)
    }

    /// Fully parameterized construction (growth ≥ 1.0).
    #[must_use]
    pub fn with_growth(node_threshold: usize, round_fidelity: f64, threshold_growth: f64) -> Self {
        Self {
            node_threshold,
            round_fidelity,
            threshold_growth,
            current: node_threshold,
            threshold_unreachable: false,
        }
    }

    /// Whether [`ApproxPolicy::begin`] found the threshold unreachable
    /// for the run's register width (see
    /// [`memory_threshold_unreachable`]) — `false` before `begin`.
    #[must_use]
    pub fn threshold_unreachable(&self) -> bool {
        self.threshold_unreachable
    }

    fn as_strategy(&self) -> Strategy {
        Strategy::MemoryDriven {
            node_threshold: self.node_threshold,
            round_fidelity: self.round_fidelity,
            threshold_growth: self.threshold_growth,
        }
    }
}

impl ApproxPolicy for MemoryDrivenPolicy {
    fn name(&self) -> &str {
        "memory-driven"
    }

    fn begin(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        self.as_strategy().validate()?;
        self.current = self.node_threshold;
        // Non-fatal: an unreachable threshold means an exact run, which
        // is a valid configuration — but usually an accidental one
        // (e.g. a sweep's fixed threshold outgrowing its narrowest
        // circuits), so flag it loudly instead of silently never
        // approximating.
        self.threshold_unreachable =
            memory_threshold_unreachable(self.node_threshold, circuit.n_qubits());
        if self.threshold_unreachable {
            eprintln!(
                "warning: memory threshold {} can never fire on {} ({} qubits): \
                 a width-n state DD holds at most 2^n - 1 nodes, so this run is exact",
                self.node_threshold,
                circuit.name(),
                circuit.n_qubits()
            );
        }
        Ok(())
    }

    fn decide(&mut self, ctx: &PolicyCtx) -> PolicyAction {
        if ctx.applied_gate && ctx.live_nodes > self.current {
            let grown = (self.current as f64 * self.threshold_growth).ceil();
            self.current = if grown >= usize::MAX as f64 {
                usize::MAX
            } else {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                {
                    grown as usize
                }
            };
            PolicyAction::Truncate {
                round_fidelity: self.round_fidelity,
            }
        } else {
            PolicyAction::Continue
        }
    }

    fn node_threshold(&self) -> Option<usize> {
        Some(self.current)
    }
}

/// The paper's Sec. IV-C proactive policy ([`Strategy::FidelityDriven`]
/// preset): `⌊log_{f_round} f_final⌋` rounds planned before the run via
/// [`plan_rounds`] (block markers when present, evenly spaced
/// otherwise), guaranteeing the final fidelity stays above
/// `final_fidelity`.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityDrivenPolicy {
    final_fidelity: f64,
    round_fidelity: f64,
    plan: Vec<usize>,
    next: usize,
}

impl FidelityDrivenPolicy {
    /// A policy targeting `final_fidelity` with per-round target
    /// `round_fidelity` (the round plan is laid out in
    /// [`ApproxPolicy::begin`]).
    #[must_use]
    pub fn new(final_fidelity: f64, round_fidelity: f64) -> Self {
        Self {
            final_fidelity,
            round_fidelity,
            plan: Vec::new(),
            next: 0,
        }
    }

    fn as_strategy(&self) -> Strategy {
        Strategy::FidelityDriven {
            final_fidelity: self.final_fidelity,
            round_fidelity: self.round_fidelity,
        }
    }

    /// The operation indices after which rounds are scheduled (empty
    /// before [`ApproxPolicy::begin`]).
    #[must_use]
    pub fn plan(&self) -> &[usize] {
        &self.plan
    }
}

impl ApproxPolicy for FidelityDrivenPolicy {
    fn name(&self) -> &str {
        "fidelity-driven"
    }

    fn begin(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        let strategy = self.as_strategy();
        strategy.validate()?;
        self.plan = plan_rounds(circuit, strategy.max_rounds());
        self.next = 0;
        Ok(())
    }

    fn decide(&mut self, ctx: &PolicyCtx) -> PolicyAction {
        if self.plan.get(self.next) == Some(&ctx.op_index) {
            self.next += 1;
            PolicyAction::Truncate {
                round_fidelity: self.round_fidelity,
            }
        } else {
            PolicyAction::Continue
        }
    }
}

/// The natural hybrid of the paper's Sec. IV-B and IV-C (new in this
/// workspace): memory-triggered rounds that **stop approximating once a
/// final-fidelity budget is spent**. A round fires only when the state
/// DD exceeds `node_threshold` *and* spending another `round_fidelity`
/// would keep the guaranteed floor at or above `final_fidelity` — so
/// memory stays bounded while it can, and accuracy wins once the budget
/// runs out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetPolicy {
    node_threshold: usize,
    round_fidelity: f64,
    final_fidelity: f64,
}

impl BudgetPolicy {
    /// Memory trigger at `node_threshold` (fixed, like the Table I
    /// regime), per-round target `round_fidelity`, total budget
    /// `final_fidelity`.
    #[must_use]
    pub fn new(node_threshold: usize, round_fidelity: f64, final_fidelity: f64) -> Self {
        Self {
            node_threshold,
            round_fidelity,
            final_fidelity,
        }
    }
}

impl ApproxPolicy for BudgetPolicy {
    fn name(&self) -> &str {
        "budget"
    }

    fn begin(&mut self, _circuit: &Circuit) -> Result<(), SimError> {
        if self.node_threshold == 0 {
            return Err(SimError::InvalidStrategy {
                reason: "budget node threshold must be positive",
            });
        }
        if !(self.round_fidelity > 0.0 && self.round_fidelity < 1.0) {
            return Err(SimError::InvalidStrategy {
                reason: "budget round fidelity must lie in (0, 1)",
            });
        }
        if !(self.final_fidelity > 0.0 && self.final_fidelity <= 1.0) {
            return Err(SimError::InvalidStrategy {
                reason: "budget final fidelity must lie in (0, 1]",
            });
        }
        Ok(())
    }

    fn decide(&mut self, ctx: &PolicyCtx) -> PolicyAction {
        let affordable = ctx.fidelity_lower_bound * self.round_fidelity >= self.final_fidelity;
        if ctx.applied_gate && ctx.live_nodes > self.node_threshold && affordable {
            PolicyAction::Truncate {
                round_fidelity: self.round_fidelity,
            }
        } else {
            PolicyAction::Continue
        }
    }

    fn node_threshold(&self) -> Option<usize> {
        Some(self.node_threshold)
    }
}

/// A wall-clock deadline wrapped around any other policy: past the
/// budget, every decision becomes [`PolicyAction::Abort`] — the
/// cooperative enforcement seam the pool layer uses for per-job
/// deadlines (the paper's whole premise is that unapproximated DD
/// simulation can blow up, so a runaway job must not occupy a worker
/// forever).
///
/// The clock anchors at [`ApproxPolicy::begin`], so setup work before
/// the run does not count against the budget. Enforcement is
/// *cooperative*: the simulator consults its policy after every
/// operation, so a single enormous gate application can overshoot the
/// cutoff — the guarantee is "aborts at the first op past the
/// deadline", not a hard preemption.
///
/// The policy is transparent: [`ApproxPolicy::name`] and
/// [`ApproxPolicy::node_threshold`] delegate to the wrapped policy,
/// and before the cutoff every decision is the inner policy's — a
/// deadline that never fires changes no byte of the result.
///
/// A shared `fired` flag records whether the deadline (rather than the
/// inner policy) caused an abort; the pool layer reads it to convert
/// the generic `PolicyAbort` error into a typed
/// `ExecError::DeadlineExceeded`.
pub struct DeadlinePolicy {
    inner: Box<dyn ApproxPolicy>,
    budget: Duration,
    started: Option<Instant>,
    fired: Arc<AtomicBool>,
}

impl DeadlinePolicy {
    /// Wraps `inner` with a wall-clock `budget`, creating a fresh
    /// fired flag (retrieve it with [`DeadlinePolicy::fired_flag`]).
    #[must_use]
    pub fn new(inner: Box<dyn ApproxPolicy>, budget: Duration) -> Self {
        Self::with_flag(inner, budget, Arc::new(AtomicBool::new(false)))
    }

    /// Wraps `inner`, reporting deadline hits through a caller-supplied
    /// flag — how [`DeadlineFactory`] shares one flag across the
    /// policies it builds.
    #[must_use]
    pub fn with_flag(
        inner: Box<dyn ApproxPolicy>,
        budget: Duration,
        fired: Arc<AtomicBool>,
    ) -> Self {
        Self {
            inner,
            budget,
            started: None,
            fired,
        }
    }

    /// The shared flag set to `true` the moment the deadline forces an
    /// abort.
    #[must_use]
    pub fn fired_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.fired)
    }
}

impl std::fmt::Debug for DeadlinePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeadlinePolicy")
            .field("inner", &self.inner.name())
            .field("budget", &self.budget)
            .field("fired", &self.fired.load(Ordering::Relaxed))
            .finish()
    }
}

impl ApproxPolicy for DeadlinePolicy {
    /// Transparent: the wrapped policy's name, so wrapping a preset in
    /// a deadline changes no reported label (and fingerprints exclude
    /// names anyway).
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn begin(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        self.started = Some(Instant::now());
        self.inner.begin(circuit)
    }

    fn decide(&mut self, ctx: &PolicyCtx) -> PolicyAction {
        let expired = self
            .started
            .is_some_and(|started| started.elapsed() >= self.budget);
        if expired {
            self.fired.store(true, Ordering::Relaxed);
            return PolicyAction::Abort;
        }
        self.inner.decide(ctx)
    }

    fn node_threshold(&self) -> Option<usize> {
        self.inner.node_threshold()
    }
}

/// A [`PolicyFactory`] producing [`DeadlinePolicy`]-wrapped instances
/// of an inner factory's policies, all reporting through one shared
/// fired flag.
///
/// This is what the pool layer installs per job: the worker builds the
/// policy through this factory, runs the job, and on a `PolicyAbort`
/// error checks [`DeadlineFactory::fired`] to tell a deadline abort
/// from an ordinary policy abort.
pub struct DeadlineFactory {
    inner: Arc<dyn PolicyFactory>,
    budget: Duration,
    fired: Arc<AtomicBool>,
}

impl DeadlineFactory {
    /// A factory wrapping `inner`'s policies with `budget`.
    #[must_use]
    pub fn new(inner: Arc<dyn PolicyFactory>, budget: Duration) -> Self {
        Self {
            inner,
            budget,
            fired: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Whether any policy built by this factory has hit its deadline.
    #[must_use]
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// The shared flag behind [`DeadlineFactory::fired`].
    #[must_use]
    pub fn fired_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.fired)
    }
}

impl std::fmt::Debug for DeadlineFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeadlineFactory")
            .field("budget", &self.budget)
            .field("fired", &self.fired())
            .finish()
    }
}

impl PolicyFactory for DeadlineFactory {
    fn build(&self) -> Box<dyn ApproxPolicy> {
        Box::new(DeadlinePolicy::with_flag(
            self.inner.build(),
            self.budget,
            Arc::clone(&self.fired),
        ))
    }
}

/// One structured event in a run's trace, delivered to every attached
/// [`SimObserver`] in order. Everything in an event is deterministic
/// (no wall-clock times), so traces of identical jobs are identical —
/// including across pool worker counts.
///
/// ```
/// use approxdd_sim::TraceEvent;
///
/// fn describe(event: &TraceEvent) -> String {
///     match event {
///         TraceEvent::Truncated {
///             nodes_before,
///             nodes_after,
///             removed_mass,
///             ..
///         } => format!("{nodes_before} -> {nodes_after} nodes (-{removed_mass:.3} mass)"),
///         other => format!("{other:?}"),
///     }
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A run began.
    RunStarted {
        /// Circuit name.
        circuit: String,
        /// Register width.
        n_qubits: usize,
        /// Operation count (gates + markers).
        total_ops: usize,
        /// Name of the policy steering the run.
        policy: String,
    },
    /// A gate was applied to the state.
    GateApplied {
        /// Operation index in `circuit.ops()`.
        op_index: usize,
        /// Gates applied so far (including this one).
        gates_applied: usize,
        /// State-DD node count after the gate.
        live_nodes: usize,
    },
    /// The policy requested a truncation round (emitted before the
    /// truncation runs).
    RoundStarted {
        /// Operation index the round fires after.
        op_index: usize,
        /// 1-based round number.
        round: usize,
        /// The round's target fidelity.
        target_fidelity: f64,
        /// State-DD node count going in.
        live_nodes: usize,
    },
    /// A truncation round finished.
    Truncated {
        /// Operation index the round fired after.
        op_index: usize,
        /// 1-based round number.
        round: usize,
        /// State-DD node count before the round.
        nodes_before: usize,
        /// State-DD node count after the round.
        nodes_after: usize,
        /// Nodes the round removed (0 for a no-op round — exactly the
        /// rounds that charge nothing to the fidelity floor).
        removed_nodes: usize,
        /// Contribution mass removed: `1 −` the round's measured
        /// fidelity (0.0 for a no-op round).
        removed_mass: f64,
    },
    /// The run completed successfully.
    RunFinished {
        /// Gates applied in total.
        gates_applied: usize,
        /// Rounds performed in total.
        rounds: usize,
        /// Measured end-to-end fidelity estimate.
        fidelity: f64,
        /// Guaranteed end-to-end fidelity floor.
        fidelity_lower_bound: f64,
    },
}

/// An observer of simulation [`TraceEvent`]s.
///
/// Attach one through [`crate::SimulatorBuilder::observe`] (or
/// [`crate::Simulator::attach_observer`]); keep your own clone of the
/// shared handle to read results back after the run:
///
/// ```
/// use approxdd_sim::{SimObserver, Simulator, TraceEvent};
/// use std::sync::{Arc, Mutex};
///
/// /// Counts truncation rounds.
/// #[derive(Default)]
/// struct RoundCounter(usize);
/// impl SimObserver for RoundCounter {
///     fn on_event(&mut self, event: &TraceEvent) {
///         if matches!(event, TraceEvent::Truncated { .. }) {
///             self.0 += 1;
///         }
///     }
/// }
///
/// let counter = Arc::new(Mutex::new(RoundCounter::default()));
/// let mut sim = Simulator::builder()
///     .memory_driven(8, 0.9)
///     .observe(counter.clone())
///     .build();
/// let run = sim.run(&approxdd_circuit::generators::qft(6)).unwrap();
/// assert_eq!(counter.lock().unwrap().0, run.stats.approx_rounds);
/// ```
pub trait SimObserver {
    /// Receives one trace event. Called synchronously on the simulating
    /// thread — keep it cheap (record, count, forward).
    fn on_event(&mut self, event: &TraceEvent);
}

/// A shareable observer handle: the simulator holds one clone, the
/// caller keeps another to read results back after the run.
pub type SharedObserver = Arc<Mutex<dyn SimObserver + Send>>;

/// The built-in observer: records every event into a vector.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty recorder behind a shared handle, ready for
    /// [`crate::SimulatorBuilder::observe`].
    #[must_use]
    pub fn shared() -> Arc<Mutex<TraceRecorder>> {
        Arc::new(Mutex::new(Self::new()))
    }

    /// The events recorded so far.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Takes the recorded events, leaving the recorder empty.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl SimObserver for TraceRecorder {
    fn on_event(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_circuit::generators;

    fn ctx(applied_gate: bool, live_nodes: usize, fidelity_lower_bound: f64) -> PolicyCtx {
        PolicyCtx {
            op_index: 0,
            total_ops: 1,
            applied_gate,
            at_marker: false,
            gates_applied: 1,
            live_nodes,
            peak_nodes: live_nodes,
            rounds_taken: 0,
            fidelity_lower_bound,
            fidelity_estimate: fidelity_lower_bound,
        }
    }

    #[test]
    fn exact_policy_never_truncates() {
        let mut p = ExactPolicy;
        p.begin(&generators::ghz(3)).unwrap();
        assert_eq!(
            p.decide(&ctx(true, usize::MAX, 1.0)),
            PolicyAction::Continue
        );
        assert_eq!(p.node_threshold(), None);
    }

    #[test]
    fn memory_policy_fires_above_threshold_and_grows() {
        let mut p = MemoryDrivenPolicy::new(10, 0.9);
        p.begin(&generators::ghz(3)).unwrap();
        assert_eq!(p.decide(&ctx(true, 10, 1.0)), PolicyAction::Continue);
        assert_eq!(
            p.decide(&ctx(true, 11, 1.0)),
            PolicyAction::Truncate {
                round_fidelity: 0.9
            }
        );
        // Doubled: 11 nodes no longer trigger.
        assert_eq!(p.node_threshold(), Some(20));
        assert_eq!(p.decide(&ctx(true, 11, 1.0)), PolicyAction::Continue);
        // Never fires on non-gate operations.
        assert_eq!(p.decide(&ctx(false, 1000, 1.0)), PolicyAction::Continue);
        // begin() resets the grown threshold.
        p.begin(&generators::ghz(3)).unwrap();
        assert_eq!(p.node_threshold(), Some(10));
    }

    #[test]
    fn memory_policy_flags_unreachable_thresholds() {
        // A width-n state DD caps at 2^n − 1 nodes, so a 4-qubit run
        // can never exceed a threshold of 15: the policy must flag it
        // (non-fatally — the run proceeds, exactly).
        assert!(memory_threshold_unreachable(15, 4));
        assert!(!memory_threshold_unreachable(14, 4));
        // Wide registers overflow usize long before the ceiling: every
        // representable threshold is reachable.
        assert!(!memory_threshold_unreachable(usize::MAX, 64));
        assert!(!memory_threshold_unreachable(usize::MAX, 200));

        let mut p = MemoryDrivenPolicy::table1(1 << 4, 0.97);
        assert!(!p.threshold_unreachable(), "unset before begin");
        p.begin(&generators::ghz(4)).unwrap();
        assert!(p.threshold_unreachable());
        assert_eq!(p.decide(&ctx(true, 15, 1.0)), PolicyAction::Continue);
        // The same policy on a wider circuit is fine again.
        p.begin(&generators::ghz(8)).unwrap();
        assert!(!p.threshold_unreachable());
    }

    #[test]
    fn memory_policy_table1_keeps_threshold_fixed() {
        let mut p = MemoryDrivenPolicy::table1(10, 0.9);
        p.begin(&generators::ghz(3)).unwrap();
        for _ in 0..3 {
            assert!(matches!(
                p.decide(&ctx(true, 11, 1.0)),
                PolicyAction::Truncate { .. }
            ));
            assert_eq!(p.node_threshold(), Some(10));
        }
    }

    #[test]
    fn fidelity_policy_follows_the_round_plan() {
        let circuit = generators::ghz(10);
        let mut p = FidelityDrivenPolicy::new(0.5, 0.9);
        p.begin(&circuit).unwrap();
        let plan = p.plan().to_vec();
        assert!(!plan.is_empty());
        for i in 0..circuit.ops().len() {
            let mut c = ctx(true, 100, 1.0);
            c.op_index = i;
            let action = p.decide(&c);
            if plan.contains(&i) {
                assert_eq!(
                    action,
                    PolicyAction::Truncate {
                        round_fidelity: 0.9
                    },
                    "op {i}"
                );
            } else {
                assert_eq!(action, PolicyAction::Continue, "op {i}");
            }
        }
    }

    #[test]
    fn budget_policy_stops_when_budget_is_spent() {
        let mut p = BudgetPolicy::new(10, 0.9, 0.8);
        p.begin(&generators::ghz(3)).unwrap();
        // Budget available: 1.0 * 0.9 >= 0.8.
        assert!(matches!(
            p.decide(&ctx(true, 11, 1.0)),
            PolicyAction::Truncate { .. }
        ));
        // Budget spent: 0.85 * 0.9 < 0.8 — memory pressure is ignored.
        assert_eq!(
            p.decide(&ctx(true, 1_000_000, 0.85)),
            PolicyAction::Continue
        );
    }

    #[test]
    fn policies_validate_their_parameters_in_begin() {
        let c = generators::ghz(3);
        assert!(MemoryDrivenPolicy::new(0, 0.9).begin(&c).is_err());
        assert!(MemoryDrivenPolicy::new(10, f64::NAN).begin(&c).is_err());
        assert!(MemoryDrivenPolicy::with_growth(10, 0.9, f64::NAN)
            .begin(&c)
            .is_err());
        assert!(FidelityDrivenPolicy::new(f64::NAN, 0.9).begin(&c).is_err());
        assert!(FidelityDrivenPolicy::new(0.5, 1.5).begin(&c).is_err());
        assert!(BudgetPolicy::new(0, 0.9, 0.5).begin(&c).is_err());
        assert!(BudgetPolicy::new(10, f64::NAN, 0.5).begin(&c).is_err());
        assert!(BudgetPolicy::new(10, 0.9, 0.0).begin(&c).is_err());
    }

    #[test]
    fn strategy_presets_build_matching_policies() {
        assert_eq!(Strategy::Exact.build().name(), "exact");
        assert_eq!(
            Strategy::memory_driven(10, 0.9).build().name(),
            "memory-driven"
        );
        assert_eq!(
            Strategy::fidelity_driven(0.5, 0.9).build().name(),
            "fidelity-driven"
        );
        // Closures are factories too.
        let factory = || Box::new(ExactPolicy) as Box<dyn ApproxPolicy>;
        assert_eq!(PolicyFactory::build(&factory).name(), "exact");
    }

    #[test]
    fn deadline_policy_aborts_past_the_budget() {
        // A zero budget expires at the first decision — deterministic,
        // which is what the pool's deadline tests rely on.
        let mut p = DeadlinePolicy::new(Box::new(ExactPolicy), Duration::ZERO);
        let flag = p.fired_flag();
        p.begin(&generators::ghz(3)).unwrap();
        assert_eq!(p.decide(&ctx(true, 5, 1.0)), PolicyAction::Abort);
        assert!(flag.load(Ordering::Relaxed));
    }

    #[test]
    fn deadline_policy_is_transparent_before_the_cutoff() {
        let mut p = DeadlinePolicy::new(
            Box::new(MemoryDrivenPolicy::table1(10, 0.9)),
            Duration::from_secs(3600),
        );
        let flag = p.fired_flag();
        p.begin(&generators::ghz(8)).unwrap();
        assert_eq!(p.name(), "memory-driven");
        assert_eq!(p.node_threshold(), Some(10));
        assert_eq!(
            p.decide(&ctx(true, 11, 1.0)),
            PolicyAction::Truncate {
                round_fidelity: 0.9
            }
        );
        assert!(!flag.load(Ordering::Relaxed));
    }

    #[test]
    fn deadline_factory_shares_one_fired_flag() {
        let factory = DeadlineFactory::new(Arc::new(Strategy::Exact), Duration::ZERO);
        assert!(!factory.fired());
        let mut p = factory.build();
        p.begin(&generators::ghz(3)).unwrap();
        assert_eq!(p.decide(&ctx(true, 1, 1.0)), PolicyAction::Abort);
        assert!(factory.fired(), "flag visible through the factory");
        // A second build reports through the same flag.
        let p2 = factory.build();
        assert_eq!(p2.name(), "exact");
    }

    #[test]
    fn trace_recorder_records_and_takes() {
        let mut rec = TraceRecorder::new();
        rec.on_event(&TraceEvent::GateApplied {
            op_index: 0,
            gates_applied: 1,
            live_nodes: 2,
        });
        assert_eq!(rec.events().len(), 1);
        let taken = rec.take();
        assert_eq!(taken.len(), 1);
        assert!(rec.events().is_empty());
    }
}

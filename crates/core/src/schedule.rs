//! Scheduling of fidelity-driven approximation rounds (Sec. IV-C).
//!
//! Given the maximum round count `⌊log_{f_round} f_final⌋`, rounds are
//! placed at circuit locations:
//!
//! * if the circuit contains [`Operation::ApproxPoint`] markers (block
//!   boundaries, Example 10), rounds are assigned to markers — all of
//!   them when there are at most `rounds` markers, otherwise `rounds`
//!   markers chosen evenly across the marker sequence;
//! * otherwise rounds are spaced evenly across the gate sequence.

use approxdd_circuit::{Circuit, Operation};

/// Computes the set of operation indices *after which* an approximation
/// round runs. Indices refer to positions in `circuit.ops()`.
///
/// Returns an empty set when `rounds == 0` or the circuit has no gates.
#[must_use]
pub fn plan_rounds(circuit: &Circuit, rounds: usize) -> Vec<usize> {
    if rounds == 0 {
        return Vec::new();
    }
    let markers: Vec<usize> = circuit
        .ops()
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op, Operation::ApproxPoint))
        .map(|(i, _)| i)
        .collect();

    if !markers.is_empty() {
        return pick_evenly(&markers, rounds);
    }

    // No markers: space rounds evenly over the gate positions.
    let gate_positions: Vec<usize> = circuit
        .ops()
        .iter()
        .enumerate()
        .filter(|(_, op)| op.is_gate())
        .map(|(i, _)| i)
        .collect();
    if gate_positions.is_empty() {
        return Vec::new();
    }
    let n = gate_positions.len();
    let rounds = rounds.min(n);
    // Place round r after gate floor((r+1) * n / (rounds+1)) - adjusted so
    // rounds sit strictly inside the circuit, not after the last gate
    // (approximating the final state buys no simulation time).
    let mut out: Vec<usize> = (1..=rounds)
        .map(|r| gate_positions[(r * n / (rounds + 1)).min(n - 1)])
        .collect();
    out.dedup();
    out
}

/// Picks `count` elements of `items` evenly (keeping order); returns all
/// of them when `count >= items.len()`.
fn pick_evenly(items: &[usize], count: usize) -> Vec<usize> {
    if count >= items.len() {
        return items.to_vec();
    }
    let n = items.len();
    let mut out = Vec::with_capacity(count);
    for r in 0..count {
        // Spread indices across [0, n): element floor((r+1)*n/(count+1)).
        let idx = ((r + 1) * n / (count + 1)).min(n - 1);
        out.push(items[idx]);
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_circuit::generators;

    #[test]
    fn zero_rounds_is_empty() {
        let c = generators::ghz(4);
        assert!(plan_rounds(&c, 0).is_empty());
    }

    #[test]
    fn markers_take_precedence() {
        let c = generators::inverse_qft(6, true); // 6 markers
        let plan = plan_rounds(&c, 3);
        assert_eq!(plan.len(), 3);
        for idx in &plan {
            assert!(matches!(c.ops()[*idx], Operation::ApproxPoint));
        }
    }

    #[test]
    fn few_markers_are_all_used() {
        let c = generators::inverse_qft(4, true); // 4 markers
        let plan = plan_rounds(&c, 10);
        assert_eq!(plan.len(), 4);
    }

    #[test]
    fn unmarked_circuits_get_even_spacing() {
        let c = generators::ghz(10); // 10 gates, no markers
        let plan = plan_rounds(&c, 3);
        assert_eq!(plan.len(), 3);
        // Positions are strictly increasing and inside the circuit.
        for w in plan.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*plan.last().unwrap() < c.ops().len());
    }

    #[test]
    fn more_rounds_than_gates_saturates() {
        let c = generators::ghz(3); // 3 gates
        let plan = plan_rounds(&c, 100);
        assert!(plan.len() <= 3);
    }

    #[test]
    fn empty_circuit_plans_nothing() {
        let c = approxdd_circuit::Circuit::new(2, "empty");
        assert!(plan_rounds(&c, 5).is_empty());
    }

    use approxdd_circuit::Operation;
}

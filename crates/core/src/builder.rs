//! Fluent construction of [`Simulator`]s.
//!
//! [`SimulatorBuilder`] replaces ad-hoc [`SimOptions`] struct mutation
//! at call sites: every knob is a chainable method, and the built
//! simulator carries a deterministic sampling RNG seeded through
//! [`SimulatorBuilder::seed`].

use crate::options::{ApproxPrimitive, SimOptions, Strategy};
use crate::simulator::Simulator;

/// Builder for [`Simulator`] — the canonical way to configure a run.
///
/// # Examples
///
/// ```
/// use approxdd_sim::{Simulator, Strategy};
///
/// let mut sim = Simulator::builder()
///     .strategy(Strategy::memory_driven(1 << 12, 0.95))
///     .seed(42)
///     .record_size_series(true)
///     .build();
/// let run = sim.run(&approxdd_circuit::generators::ghz(8)).unwrap();
/// assert_eq!(run.stats.size_series.len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[must_use = "builders do nothing until .build() is called"]
pub struct SimulatorBuilder {
    options: SimOptions,
    seed: Option<u64>,
}

impl SimulatorBuilder {
    /// Starts from the default options (exact simulation).
    pub fn new() -> Self {
        Self {
            options: SimOptions::default(),
            seed: None,
        }
    }

    /// Sets the approximation strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.options.strategy = strategy;
        self
    }

    /// Shortcut for [`Strategy::Exact`] (the default).
    pub fn exact(self) -> Self {
        self.strategy(Strategy::Exact)
    }

    /// Shortcut for the paper-text memory-driven strategy
    /// ([`Strategy::memory_driven`], doubling threshold).
    pub fn memory_driven(self, node_threshold: usize, round_fidelity: f64) -> Self {
        self.strategy(Strategy::memory_driven(node_threshold, round_fidelity))
    }

    /// Shortcut for the Table-I memory-driven regime
    /// ([`Strategy::memory_driven_table1`], fixed threshold).
    pub fn memory_driven_table1(self, node_threshold: usize, round_fidelity: f64) -> Self {
        self.strategy(Strategy::memory_driven_table1(
            node_threshold,
            round_fidelity,
        ))
    }

    /// Shortcut for the fidelity-driven strategy
    /// ([`Strategy::fidelity_driven`]).
    pub fn fidelity_driven(self, final_fidelity: f64, round_fidelity: f64) -> Self {
        self.strategy(Strategy::fidelity_driven(final_fidelity, round_fidelity))
    }

    /// Sets the truncation primitive (nodes vs. edges).
    pub fn primitive(mut self, primitive: ApproxPrimitive) -> Self {
        self.options.primitive = primitive;
        self
    }

    /// Sets the package garbage-collection threshold (alive nodes).
    pub fn gc_node_threshold(mut self, nodes: usize) -> Self {
        self.options.gc_node_threshold = nodes;
        self
    }

    /// Records the DD size after every gate into
    /// [`crate::SimStats::size_series`].
    pub fn record_size_series(mut self, record: bool) -> Self {
        self.options.record_size_series = record;
        self
    }

    /// Seeds the simulator's owned sampling RNG (used by
    /// [`Simulator::draw`] / [`Simulator::draw_counts`] and the
    /// `Backend` trait of `approxdd-backend`). Unseeded builders use a
    /// fixed default seed, so runs are deterministic either way.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// The options accumulated so far.
    #[must_use]
    pub fn options(&self) -> &SimOptions {
        &self.options
    }

    /// Builds the simulator. Strategy parameters are validated at
    /// [`Simulator::run`] time, as before.
    #[must_use = "building a simulator has no side effects"]
    pub fn build(self) -> Simulator {
        match self.seed {
            Some(seed) => Simulator::seeded(self.options, seed),
            None => Simulator::new(self.options),
        }
    }
}

impl Default for SimulatorBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_circuit::generators;

    #[test]
    fn builder_sets_every_knob() {
        let b = Simulator::builder()
            .fidelity_driven(0.5, 0.9)
            .primitive(ApproxPrimitive::Edges)
            .gc_node_threshold(1234)
            .record_size_series(true)
            .seed(7);
        let o = b.options();
        assert_eq!(
            o.strategy,
            Strategy::FidelityDriven {
                final_fidelity: 0.5,
                round_fidelity: 0.9
            }
        );
        assert_eq!(o.primitive, ApproxPrimitive::Edges);
        assert_eq!(o.gc_node_threshold, 1234);
        assert!(o.record_size_series);
    }

    #[test]
    fn seeded_builds_draw_reproducibly() {
        let circuit = generators::ghz(6);
        let mut a = Simulator::builder().seed(99).build();
        let mut b = Simulator::builder().seed(99).build();
        let run_a = a.run(&circuit).unwrap();
        let run_b = b.run(&circuit).unwrap();
        for _ in 0..16 {
            assert_eq!(a.draw(&run_a), b.draw(&run_b));
        }
    }

    #[test]
    fn presets_match_strategy_constructors() {
        assert_eq!(
            Simulator::builder()
                .memory_driven(64, 0.9)
                .options()
                .strategy,
            Strategy::memory_driven(64, 0.9)
        );
        assert_eq!(
            Simulator::builder()
                .memory_driven_table1(64, 0.9)
                .options()
                .strategy,
            Strategy::memory_driven_table1(64, 0.9)
        );
        assert_eq!(
            Simulator::builder().exact().options().strategy,
            Strategy::Exact
        );
    }
}

//! Fluent construction of [`Simulator`]s.
//!
//! [`SimulatorBuilder`] replaces ad-hoc [`SimOptions`] struct mutation
//! at call sites: every knob is a chainable method, and the built
//! simulator carries a deterministic sampling RNG seeded through
//! [`SimulatorBuilder::seed`].

use std::sync::Arc;
use std::time::Duration;

use approxdd_circuit::noise::NoiseModel;
use approxdd_circuit::Circuit;

use crate::options::{ApproxPrimitive, Engine, RetryPolicy, SimOptions, Strategy};
use crate::policy::{PolicyFactory, SharedObserver, SimObserver};
use crate::simulator::{SimSnapshot, Simulator, DEFAULT_SAMPLE_SEED};

/// Builder for [`Simulator`] — the canonical way to configure a run.
///
/// # Examples
///
/// ```
/// use approxdd_sim::{Simulator, Strategy};
///
/// let mut sim = Simulator::builder()
///     .strategy(Strategy::memory_driven(1 << 12, 0.95))
///     .seed(42)
///     .record_size_series(true)
///     .build();
/// let run = sim.run(&approxdd_circuit::generators::ghz(8)).unwrap();
/// assert_eq!(run.stats.size_series.len(), 8);
/// ```
///
/// Beyond the [`Strategy`] presets, [`SimulatorBuilder::policy`]
/// installs any custom [`crate::ApproxPolicy`] and
/// [`SimulatorBuilder::observe`] attaches run-trace observers — see
/// the [`crate::policy`] module docs.
#[derive(Clone)]
#[must_use = "builders do nothing until .build() is called"]
pub struct SimulatorBuilder {
    options: SimOptions,
    seed: Option<u64>,
    workers: Option<usize>,
    policy: Option<Arc<dyn PolicyFactory>>,
    observers: Vec<SharedObserver>,
    noise: Option<NoiseModel>,
    engine: Engine,
    share_snapshot: bool,
    retry: RetryPolicy,
    job_deadline: Option<Duration>,
    queue_capacity: Option<usize>,
}

impl std::fmt::Debug for SimulatorBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatorBuilder")
            .field("options", &self.options)
            .field("seed", &self.seed)
            .field("workers", &self.workers)
            .field("policy", &self.policy.is_some())
            .field("observers", &self.observers.len())
            .field("noise", &self.noise.is_some())
            .field("engine", &self.engine)
            .field("share_snapshot", &self.share_snapshot)
            .field("retry", &self.retry)
            .field("job_deadline", &self.job_deadline)
            .field("queue_capacity", &self.queue_capacity)
            .finish()
    }
}

impl SimulatorBuilder {
    /// Starts from the default options (exact simulation).
    pub fn new() -> Self {
        Self {
            options: SimOptions::default(),
            seed: None,
            workers: None,
            policy: None,
            observers: Vec::new(),
            noise: None,
            engine: Engine::Dd,
            share_snapshot: false,
            retry: RetryPolicy::default(),
            job_deadline: None,
            queue_capacity: None,
        }
    }

    /// Sets the approximation strategy (a preset that constructs the
    /// matching [`crate::ApproxPolicy`]). Clears any custom policy set
    /// through [`SimulatorBuilder::policy`] — the last of the two calls
    /// wins, which is what lets per-job strategy overrides in pooled
    /// execution replace a template's policy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.options.strategy = strategy;
        self.policy = None;
        self
    }

    /// Installs a custom approximation policy via its factory — every
    /// run (and, in pooled execution, every job) builds a fresh policy
    /// instance from it. Closures work directly:
    ///
    /// ```
    /// use approxdd_sim::{ExactPolicy, Simulator};
    ///
    /// let sim = Simulator::builder()
    ///     .policy(|| ExactPolicy)
    ///     .build();
    /// assert_eq!(sim.policy_name(), "exact");
    /// ```
    ///
    /// Overrides any [`SimulatorBuilder::strategy`] preset set earlier;
    /// a later `strategy(…)` call clears it again (last call wins).
    pub fn policy<P: PolicyFactory + 'static>(self, factory: P) -> Self {
        self.policy_factory(Arc::new(factory))
    }

    /// [`SimulatorBuilder::policy`] taking an already-shared factory
    /// (what pooled per-job overrides pass through).
    pub fn policy_factory(mut self, factory: Arc<dyn PolicyFactory>) -> Self {
        self.policy = Some(factory);
        self
    }

    /// The policy factory the built simulator will use: the custom one,
    /// or the [`SimulatorBuilder::strategy`] preset.
    #[must_use]
    pub fn policy_factory_or_preset(&self) -> Arc<dyn PolicyFactory> {
        self.policy
            .clone()
            .unwrap_or_else(|| Arc::new(self.options.strategy))
    }

    /// Attaches a run-trace observer; the built simulator reports every
    /// [`crate::TraceEvent`] to it. Repeatable — each call adds another
    /// observer. Keep your own clone of the handle to read results
    /// back.
    ///
    /// When this builder serves as a **pool template**, every worker's
    /// per-job simulator shares these same observer handles, so events
    /// from concurrently executing jobs interleave in scheduling
    /// (worker-count-dependent) order — fine for aggregate observers
    /// (counters, histograms), wrong for per-run trace consumption.
    /// For a deterministic per-job trace in pooled execution, use the
    /// pool's per-job capture (`PoolJob::trace` in `approxdd-exec`)
    /// instead.
    ///
    /// ```
    /// use approxdd_sim::{Simulator, TraceRecorder};
    ///
    /// let trace = TraceRecorder::shared();
    /// let mut sim = Simulator::builder().observe(trace.clone()).build();
    /// sim.run(&approxdd_circuit::generators::ghz(4)).unwrap();
    /// assert!(!trace.lock().unwrap().events().is_empty());
    /// ```
    pub fn observe<O: SimObserver + Send + 'static>(
        mut self,
        observer: Arc<std::sync::Mutex<O>>,
    ) -> Self {
        self.observers.push(observer);
        self
    }

    /// Shortcut for [`Strategy::Exact`] (the default).
    pub fn exact(self) -> Self {
        self.strategy(Strategy::Exact)
    }

    /// Shortcut for the paper-text memory-driven strategy
    /// ([`Strategy::memory_driven`], doubling threshold).
    pub fn memory_driven(self, node_threshold: usize, round_fidelity: f64) -> Self {
        self.strategy(Strategy::memory_driven(node_threshold, round_fidelity))
    }

    /// Shortcut for the Table-I memory-driven regime
    /// ([`Strategy::memory_driven_table1`], fixed threshold).
    pub fn memory_driven_table1(self, node_threshold: usize, round_fidelity: f64) -> Self {
        self.strategy(Strategy::memory_driven_table1(
            node_threshold,
            round_fidelity,
        ))
    }

    /// Shortcut for the fidelity-driven strategy
    /// ([`Strategy::fidelity_driven`]).
    pub fn fidelity_driven(self, final_fidelity: f64, round_fidelity: f64) -> Self {
        self.strategy(Strategy::fidelity_driven(final_fidelity, round_fidelity))
    }

    /// Sets the truncation primitive (nodes vs. edges).
    pub fn primitive(mut self, primitive: ApproxPrimitive) -> Self {
        self.options.primitive = primitive;
        self
    }

    /// Sets the package garbage-collection threshold (alive nodes).
    pub fn gc_node_threshold(mut self, nodes: usize) -> Self {
        self.options.gc_node_threshold = nodes;
        self
    }

    /// Sets the `log2` slot count of each of the DD package's four
    /// lossy compute caches (clamped to `[2, 26]`; unset → the engine
    /// default of 2^16 slots per table). Cache size is a pure
    /// time/memory trade — results are bit-identical for every size,
    /// an undersized cache only recomputes more. See the
    /// "Performance" section of the workspace README for tuning notes.
    pub fn compute_cache_bits(mut self, bits: u32) -> Self {
        self.options.compute_cache_bits = Some(bits);
        self
    }

    /// Records the DD size after every gate into
    /// [`crate::SimStats::size_series`].
    pub fn record_size_series(mut self, record: bool) -> Self {
        self.options.record_size_series = record;
        self
    }

    /// Seeds the simulator's owned sampling RNG (used by
    /// [`Simulator::draw`] / [`Simulator::draw_counts`] and the
    /// `Backend` trait of `approxdd-backend`). Unseeded builders use a
    /// fixed default seed, so runs are deterministic either way.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Requests `n` worker threads for pooled execution (the
    /// `build_pool()` extension of `approxdd-exec`). Plain
    /// [`SimulatorBuilder::build`] ignores this knob.
    ///
    /// `n == 0` is clamped to 1: a pool with zero workers could never
    /// make progress, and silently accepting it would deadlock every
    /// submission. When the knob is never set, pools fall back to
    /// [`std::thread::available_parallelism`] (see
    /// [`SimulatorBuilder::worker_count`]).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n.max(1));
        self
    }

    /// Attaches a [`NoiseModel`] to the configuration. The simulator
    /// itself always evolves pure states — the model is consumed by the
    /// stochastic trajectory layer (`approxdd-noise`'s `NoisePool` /
    /// `build_noise_pool()`), which reads it back through
    /// [`SimulatorBuilder::noise_model`] and Monte-Carlo-samples
    /// channel insertions around the configured simulation. Keeping the
    /// knob here means one template describes the whole noisy
    /// experiment: engine options, approximation policy, seed, worker
    /// count, and noise.
    pub fn noise(mut self, model: NoiseModel) -> Self {
        self.noise = Some(model);
        self
    }

    /// The attached noise model, if any.
    #[must_use]
    pub fn noise_model(&self) -> Option<&NoiseModel> {
        self.noise.as_ref()
    }

    /// Selects the simulation engine for backends built from this
    /// configuration ([`Engine::Dd`] by default). Plain
    /// [`SimulatorBuilder::build`] always constructs the DD simulator —
    /// the knob is read by `build_engine_backend()` in
    /// `approxdd-backend` and by pooled/noisy execution templates.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The engine selected via [`SimulatorBuilder::engine`].
    #[must_use]
    pub fn engine_kind(&self) -> Engine {
        self.engine
    }

    /// Enables copy-on-write package snapshots for pooled execution
    /// (off by default). When on, a pool built from this template
    /// freezes the batch's gate DDs **once** into a [`SimSnapshot`] and
    /// every worker job layers a private delta package over that shared
    /// frozen prefix instead of rebuilding the gates from scratch.
    ///
    /// Results are byte-identical either way — the snapshot pins the
    /// canonicalization history the jobs would have built themselves —
    /// so this is a pure amortization knob for batches that repeat a
    /// circuit family. Plain [`SimulatorBuilder::build`] ignores it
    /// (a single simulator has nothing to share); the stabilizer
    /// engine, which has no DD package, ignores it too.
    pub fn share_snapshot(mut self, share: bool) -> Self {
        self.share_snapshot = share;
        self
    }

    /// Whether pooled execution should share a frozen package snapshot
    /// across worker jobs (see [`SimulatorBuilder::share_snapshot`]).
    #[must_use]
    pub fn share_snapshot_enabled(&self) -> bool {
        self.share_snapshot
    }

    /// Sets the pool-wide [`RetryPolicy`]: how many attempts a pooled
    /// job may consume when it fails with a *retryable* error (a lost
    /// worker, or an injected test fault), and how long to back off
    /// between them. The default never retries. Plain
    /// [`SimulatorBuilder::build`] ignores this knob; the pool layer
    /// (`approxdd-exec`) reads it from the template, and individual
    /// jobs may override it.
    ///
    /// Retrying is deterministic: job seeds are pure functions of the
    /// job index (never the attempt number), so a retried success is
    /// byte-identical to a first-try success.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// The pool-wide retry policy (see [`SimulatorBuilder::retry`]).
    #[must_use]
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Sets a default wall-clock deadline for every pooled job built
    /// from this template. Enforced cooperatively: the pool wraps each
    /// job's policy in a [`crate::DeadlinePolicy`], which aborts the
    /// run at the first operation past the cutoff, surfacing a typed
    /// `DeadlineExceeded` error. Individual jobs may override this with
    /// their own deadline. Plain [`SimulatorBuilder::build`] ignores
    /// the knob.
    ///
    /// Nonzero deadlines are inherently wall-clock-dependent — use them
    /// for resource protection, not for anything a fingerprint
    /// comparison depends on.
    pub fn job_deadline(mut self, budget: Duration) -> Self {
        self.job_deadline = Some(budget);
        self
    }

    /// The template-wide job deadline, if any (see
    /// [`SimulatorBuilder::job_deadline`]).
    #[must_use]
    pub fn job_deadline_budget(&self) -> Option<Duration> {
        self.job_deadline
    }

    /// Bounds the pool work queue for admission-checked submissions
    /// (`BackendPool::run_jobs_admitted` in `approxdd-exec`): a
    /// submission that would push the number of queued tasks past
    /// `capacity` is rejected with a typed `QueueFull` error instead of
    /// growing the queue without bound — the backpressure seam a
    /// serving layer needs. Unset (the default) means unbounded, and
    /// the plain `run_jobs`/`sample_counts` paths never consult the
    /// bound (library batch callers keep their fire-and-collect
    /// semantics). `capacity == 0` is clamped to 1 so an
    /// admission-checked pool can always accept at least one task.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity.max(1));
        self
    }

    /// The admission bound set via [`SimulatorBuilder::queue_capacity`]
    /// (`None` = unbounded).
    #[must_use]
    pub fn queue_capacity_bound(&self) -> Option<usize> {
        self.queue_capacity
    }

    /// Builds a frozen [`SimSnapshot`] warming every gate of the given
    /// circuits with this builder's options — what pools call once per
    /// submission when [`SimulatorBuilder::share_snapshot`] is on.
    ///
    /// # Errors
    ///
    /// Propagates gate-construction errors from the first offending
    /// operation.
    pub fn build_snapshot<'a>(
        &self,
        circuits: impl IntoIterator<Item = &'a Circuit>,
    ) -> crate::Result<SimSnapshot> {
        SimSnapshot::build(&self.options, circuits)
    }

    /// The worker-thread count a pool built from this builder will use:
    /// the clamped [`SimulatorBuilder::workers`] value, or
    /// [`std::thread::available_parallelism`] (minimum 1) when the knob
    /// was never set.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
    }

    /// The sampling seed the built simulator will start from: the value
    /// given to [`SimulatorBuilder::seed`], or [`DEFAULT_SAMPLE_SEED`].
    /// Pooled execution uses this as the root of its per-job seed
    /// stream.
    #[must_use]
    pub fn sample_seed(&self) -> u64 {
        self.seed.unwrap_or(DEFAULT_SAMPLE_SEED)
    }

    /// The options accumulated so far.
    #[must_use]
    pub fn options(&self) -> &SimOptions {
        &self.options
    }

    /// Builds the simulator. Policy parameters are validated at
    /// [`Simulator::run`] time (when the policy sees the circuit); use
    /// [`SimulatorBuilder::try_build`] to reject bad strategy presets
    /// eagerly.
    #[must_use = "building a simulator has no side effects"]
    pub fn build(self) -> Simulator {
        let factory = self.policy_factory_or_preset();
        let mut sim = match self.seed {
            Some(seed) => Simulator::seeded(self.options, seed),
            None => Simulator::new(self.options),
        };
        sim.set_policy_factory(factory);
        for observer in self.observers {
            sim.attach_observer(observer);
        }
        sim
    }

    /// Like [`SimulatorBuilder::build`], but layers the simulator over
    /// a shared frozen snapshot: warmed gate DDs resolve from the
    /// snapshot's cache and the package allocates only above the frozen
    /// watermark. Used by pool workers when
    /// [`SimulatorBuilder::share_snapshot`] is enabled.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use approxdd_sim::Simulator;
    ///
    /// let circuit = approxdd_circuit::generators::ghz(4);
    /// let builder = Simulator::builder().seed(11);
    /// let snapshot = Arc::new(builder.build_snapshot([&circuit]).unwrap());
    /// let mut sim = builder.build_with_snapshot(snapshot);
    /// let run = sim.run(&circuit).unwrap();
    /// assert!(sim.snapshot_gate_hits() > 0);
    /// assert!((run.stats.fidelity - 1.0).abs() < 1e-12);
    /// ```
    #[must_use = "building a simulator has no side effects"]
    pub fn build_with_snapshot(self, snapshot: Arc<SimSnapshot>) -> Simulator {
        let factory = self.policy_factory_or_preset();
        let seed = self.seed.unwrap_or(DEFAULT_SAMPLE_SEED);
        let mut sim = Simulator::with_snapshot(self.options, seed, snapshot);
        sim.set_policy_factory(factory);
        for observer in self.observers {
            sim.attach_observer(observer);
        }
        sim
    }

    /// Like [`SimulatorBuilder::build`], but validates the
    /// [`SimulatorBuilder::strategy`] preset eagerly — NaN, zero or
    /// out-of-range fidelities and a zero node threshold are rejected
    /// here with a typed [`crate::SimError`] instead of at run time.
    /// (A custom [`SimulatorBuilder::policy`] validates itself when a
    /// run begins, since validation may depend on the circuit.)
    ///
    /// # Errors
    ///
    /// [`crate::SimError::InvalidStrategy`] for out-of-range preset
    /// parameters.
    pub fn try_build(self) -> crate::Result<Simulator> {
        if self.policy.is_none() {
            self.options.validate()?;
        }
        Ok(self.build())
    }
}

impl Default for SimulatorBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_circuit::generators;

    #[test]
    fn builder_sets_every_knob() {
        let b = Simulator::builder()
            .fidelity_driven(0.5, 0.9)
            .primitive(ApproxPrimitive::Edges)
            .gc_node_threshold(1234)
            .record_size_series(true)
            .seed(7);
        let o = b.options();
        assert_eq!(
            o.strategy,
            Strategy::FidelityDriven {
                final_fidelity: 0.5,
                round_fidelity: 0.9
            }
        );
        assert_eq!(o.primitive, ApproxPrimitive::Edges);
        assert_eq!(o.gc_node_threshold, 1234);
        assert!(o.record_size_series);
    }

    #[test]
    fn seeded_builds_draw_reproducibly() {
        let circuit = generators::ghz(6);
        let mut a = Simulator::builder().seed(99).build();
        let mut b = Simulator::builder().seed(99).build();
        let run_a = a.run(&circuit).unwrap();
        let run_b = b.run(&circuit).unwrap();
        for _ in 0..16 {
            assert_eq!(a.draw(&run_a), b.draw(&run_b));
        }
    }

    #[test]
    fn workers_zero_is_clamped_to_one() {
        assert_eq!(Simulator::builder().workers(0).worker_count(), 1);
        assert_eq!(Simulator::builder().workers(1).worker_count(), 1);
        assert_eq!(Simulator::builder().workers(8).worker_count(), 8);
        // Unset: falls back to the machine's parallelism, never zero.
        assert!(Simulator::builder().worker_count() >= 1);
    }

    #[test]
    fn noise_model_knob_round_trips() {
        use approxdd_circuit::noise::{NoiseChannel, NoiseModel};
        assert!(Simulator::builder().noise_model().is_none());
        let model = NoiseModel::new().with_global(NoiseChannel::bit_flip(0.1).unwrap());
        let b = Simulator::builder().noise(model.clone());
        assert_eq!(b.noise_model(), Some(&model));
        // The knob survives cloning into pool templates.
        assert_eq!(b.clone().noise_model(), Some(&model));
    }

    #[test]
    fn sample_seed_reports_explicit_or_default() {
        assert_eq!(Simulator::builder().seed(42).sample_seed(), 42);
        assert_eq!(
            Simulator::builder().sample_seed(),
            crate::DEFAULT_SAMPLE_SEED
        );
    }

    #[test]
    fn share_snapshot_knob_round_trips() {
        assert!(!Simulator::builder().share_snapshot_enabled());
        let b = Simulator::builder().share_snapshot(true);
        assert!(b.share_snapshot_enabled());
        // The knob survives cloning into pool templates.
        assert!(b.clone().share_snapshot_enabled());
        assert!(!b.share_snapshot(false).share_snapshot_enabled());
    }

    #[test]
    fn snapshot_build_matches_plain_build() {
        let circuit = generators::qft(5);
        let builder = Simulator::builder().seed(3);
        let snapshot = Arc::new(builder.build_snapshot([&circuit]).unwrap());
        assert!(snapshot.frozen_nodes() > 0);

        let mut plain = builder.clone().build();
        let mut layered = builder.build_with_snapshot(snapshot);
        let run_p = plain.run(&circuit).unwrap();
        let run_l = layered.run(&circuit).unwrap();
        assert_eq!(run_p.stats.max_dd_size, run_l.stats.max_dd_size);
        assert!(layered.snapshot_gate_hits() > 0);
        // Same seed, same state: sampling draws stay aligned.
        for _ in 0..8 {
            assert_eq!(plain.draw(&run_p), layered.draw(&run_l));
        }
    }

    #[test]
    fn retry_and_deadline_knobs_round_trip() {
        use std::time::Duration;
        let b = Simulator::builder();
        assert_eq!(b.retry_policy(), RetryPolicy::default());
        assert!(b.job_deadline_budget().is_none());

        let b = Simulator::builder()
            .retry(RetryPolicy::new(3).with_backoff(Duration::from_millis(5)))
            .job_deadline(Duration::from_secs(2));
        assert_eq!(b.retry_policy().max_attempts, 3);
        assert_eq!(b.retry_policy().backoff, Duration::from_millis(5));
        assert_eq!(b.job_deadline_budget(), Some(Duration::from_secs(2)));
        // Both survive cloning into pool templates.
        let c = b.clone();
        assert_eq!(c.retry_policy(), b.retry_policy());
        assert_eq!(c.job_deadline_budget(), b.job_deadline_budget());
    }

    #[test]
    fn presets_match_strategy_constructors() {
        assert_eq!(
            Simulator::builder()
                .memory_driven(64, 0.9)
                .options()
                .strategy,
            Strategy::memory_driven(64, 0.9)
        );
        assert_eq!(
            Simulator::builder()
                .memory_driven_table1(64, 0.9)
                .options()
                .strategy,
            Strategy::memory_driven_table1(64, 0.9)
        );
        assert_eq!(
            Simulator::builder().exact().options().strategy,
            Strategy::Exact
        );
    }
}

//! End-to-end simulation benchmarks: DD-based exact simulation vs. the
//! dense state-vector baseline on the workload families, quantifying
//! where decision diagrams win (structured states) and where they
//! struggle (supremacy circuits) — the landscape the paper's Section
//! III motivates.

use criterion::{criterion_group, criterion_main, Criterion};

use approxdd_backend::{BuildBackend, StatevectorBackend};
use approxdd_bench::run_stats;
use approxdd_circuit::generators;
use approxdd_sim::Simulator;

fn bench_structured_circuits(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_structured");
    for (label, circuit) in [
        ("ghz_16", generators::ghz(16)),
        ("qft_12", generators::qft(12)),
        ("grover_10", generators::grover(10, 0b1011011011, Some(4))),
        ("bv_16", generators::bernstein_vazirani(16, 0xBEEF)),
    ] {
        group.bench_function(format!("dd_{label}"), |b| {
            b.iter(|| {
                let mut backend = Simulator::builder().exact().build_backend();
                std::hint::black_box(run_stats(&mut backend, &circuit).expect("run"));
            });
        });
        group.bench_function(format!("statevector_{label}"), |b| {
            b.iter(|| {
                let mut backend = StatevectorBackend::new();
                std::hint::black_box(run_stats(&mut backend, &circuit).expect("run"));
            });
        });
    }
    group.finish();
}

fn bench_supremacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_supremacy");
    group.sample_size(10);
    let circuit = generators::supremacy(3, 4, 10, 0);
    group.bench_function("dd_qsup_3x4_10", |b| {
        b.iter(|| {
            let mut backend = Simulator::builder().exact().build_backend();
            std::hint::black_box(run_stats(&mut backend, &circuit).expect("run"));
        });
    });
    group.bench_function("statevector_qsup_3x4_10", |b| {
        b.iter(|| {
            let mut backend = StatevectorBackend::new();
            std::hint::black_box(run_stats(&mut backend, &circuit).expect("run"));
        });
    });
    group.finish();
}

fn bench_shor(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_shor");
    group.sample_size(10);
    let circuit = approxdd_shor::shor_circuit(15, 7).expect("shor_15_7");
    group.bench_function("dd_shor_15_7", |b| {
        b.iter(|| {
            let mut backend = Simulator::builder().exact().build_backend();
            std::hint::black_box(run_stats(&mut backend, &circuit).expect("run"));
        });
    });
    group.bench_function("statevector_shor_15_7", |b| {
        b.iter(|| {
            let mut backend = StatevectorBackend::new();
            std::hint::black_box(run_stats(&mut backend, &circuit).expect("run"));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_structured_circuits,
    bench_supremacy,
    bench_shor
);
criterion_main!(benches);

//! Micro-benchmarks of the DD primitives the approximation strategies
//! trade against state size: addition, matrix–vector multiplication,
//! inner products, contribution analysis, and truncation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use approxdd_circuit::generators;
use approxdd_dd::{Package, RemovalStrategy, VEdge};
use approxdd_sim::Simulator;

/// Builds a structured (supremacy) state inside a fresh package.
fn supremacy_state(n_rows: usize, n_cols: usize, depth: usize) -> (Simulator, VEdge) {
    let mut sim = Simulator::builder().exact().build();
    let run = sim
        .run(&generators::supremacy(n_rows, n_cols, depth, 1))
        .expect("supremacy run");
    let state = run.state();
    (sim, state)
}

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd_apply");
    group.bench_function("hadamard_on_supremacy_12q", |b| {
        let (mut sim, state) = supremacy_state(3, 4, 8);
        let h = {
            let p = sim.package_mut();
            p.single_gate(12, 5, approxdd_dd::GateKind::H.matrix())
                .expect("gate")
        };
        sim.package_mut().inc_ref_m(h);
        b.iter(|| {
            let p = sim.package_mut();
            std::hint::black_box(p.apply(h, state));
        });
    });
    group.bench_function("cz_on_supremacy_12q", |b| {
        let (mut sim, state) = supremacy_state(3, 4, 8);
        let cz = {
            let p = sim.package_mut();
            p.controlled_gate(12, &[3], 8, approxdd_dd::GateKind::Z.matrix())
                .expect("gate")
        };
        sim.package_mut().inc_ref_m(cz);
        b.iter(|| {
            let p = sim.package_mut();
            std::hint::black_box(p.apply(cz, state));
        });
    });
    group.finish();
}

fn bench_add_and_inner(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd_linear_ops");
    group.bench_function("add_two_supremacy_states", |b| {
        let (mut sim, s1) = supremacy_state(3, 4, 8);
        let c2 = generators::supremacy(3, 4, 8, 2);
        let run2 = sim.run(&c2).expect("second run");
        let s2 = run2.state();
        b.iter(|| {
            let p = sim.package_mut();
            std::hint::black_box(p.add(s1, s2));
        });
    });
    group.bench_function("inner_product_supremacy", |b| {
        let (mut sim, s1) = supremacy_state(3, 4, 8);
        let run2 = sim
            .run(&generators::supremacy(3, 4, 8, 2))
            .expect("second run");
        let s2 = run2.state();
        b.iter(|| {
            let p = sim.package_mut();
            std::hint::black_box(p.inner_product(s1, s2));
        });
    });
    group.finish();
}

fn bench_contribution_and_truncate(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd_approximation_primitives");
    group.bench_function("contributions_supremacy_12q", |b| {
        let (sim, state) = supremacy_state(3, 4, 10);
        b.iter(|| {
            std::hint::black_box(sim.package().contributions(state));
        });
    });
    group.bench_function("truncate_budget_0.05", |b| {
        let (mut sim, state) = supremacy_state(3, 4, 10);
        b.iter_batched(
            || state,
            |s| {
                let p = sim.package_mut();
                std::hint::black_box(
                    p.truncate(s, RemovalStrategy::Budget(0.05))
                        .expect("truncate"),
                );
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("truncate_edges_budget_0.05", |b| {
        let (mut sim, state) = supremacy_state(3, 4, 10);
        b.iter_batched(
            || state,
            |s| {
                let p = sim.package_mut();
                std::hint::black_box(p.truncate_edges(s, 0.05).expect("truncate_edges"));
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_gate_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd_gate_construction");
    group.bench_function("modmul_permutation_18q", |b| {
        // The shor_33_5 work-register multiplication: 6-qubit permutation
        // controlled from the counting register, embedded in 18 qubits.
        let perm: Vec<usize> = (0..64)
            .map(|x| if x < 33 { (5 * x) % 33 } else { x })
            .collect();
        b.iter_batched(
            Package::new,
            |mut p| {
                std::hint::black_box(
                    p.permutation_gate(18, 0, 6, &perm, &[(10, true)])
                        .expect("permutation gate"),
                );
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("controlled_phase_20q", |b| {
        b.iter_batched(
            Package::new,
            |mut p| {
                std::hint::black_box(
                    p.controlled_gate(20, &[3], 17, approxdd_dd::GateKind::Phase(0.3).matrix())
                        .expect("cp gate"),
                );
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_apply,
    bench_add_and_inner,
    bench_contribution_and_truncate,
    bench_gate_construction
);
criterion_main!(benches);

//! Benchmarks of the paper's headline comparison: exact vs. memory-
//! driven vs. fidelity-driven simulation on the Table-I workload
//! families (scaled to bench-friendly sizes).

use criterion::{criterion_group, criterion_main, Criterion};

use approxdd_backend::BuildBackend;
use approxdd_bench::run_stats;
use approxdd_circuit::generators;
use approxdd_sim::Simulator;

fn bench_supremacy_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("supremacy_strategies");
    group.sample_size(10);
    let circuit = generators::supremacy(3, 4, 12, 0);

    group.bench_function("exact", |b| {
        b.iter(|| {
            let mut backend = Simulator::builder().exact().build_backend();
            std::hint::black_box(run_stats(&mut backend, &circuit).expect("run"));
        });
    });
    for f_round in [0.99, 0.95] {
        group.bench_function(format!("memory_driven_f{f_round}"), |b| {
            b.iter(|| {
                let mut backend = Simulator::builder()
                    .memory_driven_table1(1 << 9, f_round)
                    .build_backend();
                std::hint::black_box(run_stats(&mut backend, &circuit).expect("run"));
            });
        });
    }
    group.finish();
}

fn bench_shor_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("shor_strategies");
    group.sample_size(10);
    let circuit = approxdd_shor::shor_circuit(33, 5).expect("shor_33_5");

    group.bench_function("exact_shor_33_5", |b| {
        b.iter(|| {
            let mut backend = Simulator::builder().exact().build_backend();
            std::hint::black_box(run_stats(&mut backend, &circuit).expect("run"));
        });
    });
    group.bench_function("fidelity_driven_shor_33_5", |b| {
        b.iter(|| {
            let mut backend = Simulator::builder()
                .fidelity_driven(0.5, 0.9)
                .build_backend();
            std::hint::black_box(run_stats(&mut backend, &circuit).expect("run"));
        });
    });
    group.finish();
}

fn bench_approximation_overhead(c: &mut Criterion) {
    // Overhead of rounds on a circuit where approximation cannot remove
    // anything (GHZ is already maximally compact): measures the pure
    // cost of contribution analysis + rebuild.
    let mut group = c.benchmark_group("approximation_overhead");
    let circuit = generators::ghz(20);
    group.bench_function("ghz20_exact", |b| {
        b.iter(|| {
            let mut backend = Simulator::builder().exact().build_backend();
            std::hint::black_box(run_stats(&mut backend, &circuit).expect("run"));
        });
    });
    group.bench_function("ghz20_with_useless_rounds", |b| {
        b.iter(|| {
            let mut backend = Simulator::builder()
                .fidelity_driven(0.5, 0.9)
                .build_backend();
            std::hint::black_box(run_stats(&mut backend, &circuit).expect("run"));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_supremacy_strategies,
    bench_shor_strategies,
    bench_approximation_overhead
);
criterion_main!(benches);

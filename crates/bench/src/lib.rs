//! Shared harness for regenerating the paper's evaluation artifacts.
//!
//! The paper's evaluation (Section VI, Table I) has two halves:
//!
//! * **memory-driven** on quantum-supremacy grid circuits
//!   (`qsup_AxB_C`), comparing exact simulation against the reactive
//!   threshold strategy at `f_round ∈ {0.99, 0.975, 0.95}`;
//! * **fidelity-driven** on Shor instances (`shor_N_a`) targeting
//!   `f_final = 0.5` at `f_round = 0.9`.
//!
//! [`memory_driven_row`] and [`fidelity_driven_row`] produce one table
//! row each; [`workloads`] defines the benchmark instances (laptop-scale
//! defaults plus the paper-scale `--large` set); [`format_rows`] renders
//! the rows in the layout of Table I.

use std::time::Duration;

use approxdd_backend::{Backend, BackendStats, BuildBackend, ExecError};
use approxdd_circuit::{generators, Circuit};
use approxdd_shor::{factor, shor_circuit, FactorOptions};
use approxdd_sim::{Simulator, Strategy};

pub mod sweeps;

/// Runs `circuit` on any [`Backend`] and returns its unified run
/// statistics, releasing the outcome — the one generic primitive every
/// benchmark row (and equivalence check) is built from.
///
/// # Errors
///
/// Preparation or execution errors.
pub fn run_stats<B: Backend>(
    backend: &mut B,
    circuit: &Circuit,
) -> Result<BackendStats, ExecError> {
    let outcome = approxdd_backend::run_circuit(backend, circuit)?;
    let stats = outcome.stats.clone();
    backend.release(outcome);
    Ok(stats)
}

/// One row of the regenerated Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// Benchmark name (`qsup_4x4_12_0`, `shor_33_5`, …).
    pub name: String,
    /// Register width.
    pub qubits: usize,
    /// Exact run: maximum DD node count (`None` when skipped/timeout).
    pub exact_max_dd: Option<usize>,
    /// Exact run: wall-clock runtime.
    pub exact_runtime: Option<Duration>,
    /// Approximate run: maximum DD node count.
    pub approx_max_dd: usize,
    /// Approximation rounds performed.
    pub rounds: usize,
    /// Per-round target fidelity.
    pub f_round: f64,
    /// Approximate run: wall-clock runtime.
    pub approx_runtime: Duration,
    /// Measured final fidelity (product of round fidelities; exact by
    /// Lemma 1).
    pub f_final: f64,
    /// For Shor rows: whether classical post-processing recovered the
    /// factors from the approximate state.
    pub factored: Option<bool>,
}

/// Runs one memory-driven benchmark row: an exact reference run (unless
/// `skip_exact`) and an approximate run with the given threshold, round
/// fidelity and threshold growth factor (the paper's text prescribes
/// growth 2.0; growth 1.0 reproduces the many-rounds regime its Table I
/// actually reports — see `Strategy::MemoryDriven`).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn memory_driven_row(
    circuit: &Circuit,
    node_threshold: usize,
    f_round: f64,
    threshold_growth: f64,
    skip_exact: bool,
) -> Result<TableRow, ExecError> {
    let (exact_max_dd, exact_runtime) = if skip_exact {
        (None, None)
    } else {
        let mut exact = Simulator::builder().exact().build_backend();
        let stats = run_stats(&mut exact, circuit)?;
        (Some(stats.peak_size), Some(stats.runtime))
    };

    let mut approx = Simulator::builder()
        .strategy(Strategy::MemoryDriven {
            node_threshold,
            round_fidelity: f_round,
            threshold_growth,
        })
        .build_backend();
    let stats = run_stats(&mut approx, circuit)?;

    Ok(TableRow {
        name: circuit.name().to_string(),
        qubits: circuit.n_qubits(),
        exact_max_dd,
        exact_runtime,
        approx_max_dd: stats.peak_size,
        rounds: stats.approx_rounds,
        f_round,
        approx_runtime: stats.runtime,
        f_final: stats.fidelity,
        factored: None,
    })
}

/// Runs one fidelity-driven Shor benchmark row: an exact reference run
/// (unless `skip_exact`), then the approximate run with
/// `f_final = 0.5`, `f_round = 0.9` (the paper's configuration),
/// finishing with classical post-processing to check that the factors
/// are still recovered.
///
/// # Errors
///
/// Propagates circuit construction and simulator errors.
pub fn fidelity_driven_row(
    n: u64,
    a: u64,
    final_fidelity: f64,
    f_round: f64,
    skip_exact: bool,
) -> Result<TableRow, Box<dyn std::error::Error>> {
    let circuit = shor_circuit(n, a)?;

    let (exact_max_dd, exact_runtime) = if skip_exact {
        (None, None)
    } else {
        let mut exact = Simulator::builder().exact().build_backend();
        let stats = run_stats(&mut exact, &circuit)?;
        (Some(stats.peak_size), Some(stats.runtime))
    };

    let opts = FactorOptions {
        strategy: Strategy::FidelityDriven {
            final_fidelity,
            round_fidelity: f_round,
        },
        base: Some(a),
        ..FactorOptions::default()
    };
    let outcome = factor(n, &opts);
    let (factored, stats) = match &outcome {
        Ok(out) => (
            out.factors.0 * out.factors.1 == n,
            out.sim_stats.clone().map(BackendStats::from),
        ),
        Err(_) => (false, None),
    };
    // If factoring took a classical shortcut we still want the quantum
    // stats; rerun the simulation alone in that case.
    let stats = match stats {
        Some(s) => s,
        None => {
            let mut approx = Simulator::builder().strategy(opts.strategy).build_backend();
            run_stats(&mut approx, &circuit)?
        }
    };

    Ok(TableRow {
        name: circuit.name().to_string(),
        qubits: circuit.n_qubits(),
        exact_max_dd,
        exact_runtime,
        approx_max_dd: stats.peak_size,
        rounds: stats.approx_rounds,
        f_round,
        approx_runtime: stats.runtime,
        f_final: stats.fidelity,
        factored: Some(factored),
    })
}

/// Benchmark instance definitions.
pub mod workloads {
    use super::{generators, Circuit};

    /// Laptop-scale supremacy instances: 4×4 grid, depth 12, three
    /// seeds (the paper uses 4×5 depth 15, ~1 h per exact run on a
    /// server; the 4×4 instances keep the same structure at minutes of
    /// total runtime).
    #[must_use]
    pub fn supremacy_default() -> Vec<Circuit> {
        (0..3)
            .map(|seed| generators::supremacy(4, 4, 12, seed))
            .collect()
    }

    /// Paper-scale supremacy instances (`qsup_4x5_15_{0,1,2}`, 20
    /// qubits, depth 15). Expect long exact runtimes.
    #[must_use]
    pub fn supremacy_large() -> Vec<Circuit> {
        (0..3)
            .map(|seed| generators::supremacy(4, 5, 15, seed))
            .collect()
    }

    /// Default node threshold for the memory-driven strategy on the
    /// laptop-scale instances (the paper used thresholds sized to its
    /// 20-qubit instances).
    pub const SUPREMACY_THRESHOLD: usize = 1 << 12;

    /// The `f_round` values of the memory-driven half of Table I
    /// (the paper's three values plus two lower ones: at laptop scale
    /// the 16-qubit instances saturate at 2^16 nodes, so the runtime
    /// crossover sits at lower per-round fidelity than on the paper's
    /// 20-qubit instances — the extended sweep makes it visible).
    pub const SUPREMACY_ROUND_FIDELITIES: [f64; 5] = [0.99, 0.975, 0.95, 0.9, 0.8];

    /// Laptop-scale Shor instances `(n, a)` from Table I (exact
    /// simulation finishes in seconds to minutes).
    pub const SHOR_DEFAULT: [(u64, u64); 4] = [(33, 5), (55, 2), (69, 2), (221, 4)];

    /// Paper-scale Shor instances; the last two timed out (3 h) even on
    /// the paper's server when simulated exactly.
    pub const SHOR_LARGE: [(u64, u64); 3] = [(323, 8), (629, 8), (1157, 8)];
}

/// Formats rows in the layout of Table I.
#[must_use]
pub fn format_rows(rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>6} | {:>12} {:>11} | {:>12} {:>6} {:>7} {:>11} {:>8} {:>8}\n",
        "Benchmark",
        "Qubits",
        "ExactMaxDD",
        "Exact[s]",
        "ApproxMaxDD",
        "Rounds",
        "fround",
        "Approx[s]",
        "ffinal",
        "Factored"
    ));
    out.push_str(&"-".repeat(118));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>6} | {:>12} {:>11} | {:>12} {:>6} {:>7.3} {:>11.3} {:>8.3} {:>8}\n",
            r.name,
            r.qubits,
            r.exact_max_dd
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
            r.exact_runtime
                .map_or_else(|| "-".to_string(), |d| format!("{:.3}", d.as_secs_f64())),
            r.approx_max_dd,
            r.rounds,
            r.f_round,
            r.approx_runtime.as_secs_f64(),
            r.f_final,
            r.factored.map_or_else(
                || "-".to_string(),
                |b| if b { "yes" } else { "NO" }.to_string()
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_driven_row_on_small_instance() {
        let c = generators::supremacy(2, 3, 10, 0);
        let row = memory_driven_row(&c, 8, 0.95, 1.0, false).unwrap();
        assert_eq!(row.qubits, 6);
        assert!(row.exact_max_dd.is_some());
        assert!(row.f_final > 0.0 && row.f_final <= 1.0);
        assert!(row.approx_max_dd <= row.exact_max_dd.unwrap());
    }

    #[test]
    fn fidelity_driven_row_factors_15() {
        let row = fidelity_driven_row(15, 7, 0.5, 0.9, false).unwrap();
        assert_eq!(row.qubits, 12);
        assert_eq!(row.factored, Some(true));
        assert!(row.f_final >= 0.5 - 1e-9);
    }

    #[test]
    fn formatting_contains_all_rows() {
        let c = generators::supremacy(2, 2, 6, 0);
        let row = memory_driven_row(&c, 4, 0.9, 1.0, false).unwrap();
        let text = format_rows(&[row]);
        assert!(text.contains("qsup_2x2_6_0"));
        assert!(text.contains("Benchmark"));
    }
}

//! Shared harness for regenerating the paper's evaluation artifacts.
//!
//! The paper's evaluation (Section VI, Table I) has two halves:
//!
//! * **memory-driven** on quantum-supremacy grid circuits
//!   (`qsup_AxB_C`), comparing exact simulation against the reactive
//!   threshold strategy at `f_round ∈ {0.99, 0.975, 0.95}`;
//! * **fidelity-driven** on Shor instances (`shor_N_a`) targeting
//!   `f_final = 0.5` at `f_round = 0.9`.
//!
//! [`memory_driven_row`] and [`fidelity_driven_row`] produce one table
//! row each; [`workloads`] defines the benchmark instances (laptop-scale
//! defaults plus the paper-scale `--large` set); [`format_rows`] renders
//! the rows in the layout of Table I.

use std::time::{Duration, Instant};

use approxdd_backend::{Backend, BackendStats, BuildBackend, ExecError};
use approxdd_circuit::{generators, Circuit};
use approxdd_exec::{BackendPool, PoolJob, PoolOutcome};
use approxdd_shor::{factor, shor_circuit, FactorOptions};
use approxdd_sim::{Simulator, SimulatorBuilder, Strategy};

pub mod sweeps;

/// Re-export of the shared JSON writer (promoted to `approxdd_sim`, so
/// the job server and the bench binaries emit artifacts through one
/// serializer); kept under the historical `approxdd_bench::json` path.
pub use approxdd_sim::json;

use json::Json;

/// Runs `circuit` on any [`Backend`] and returns its unified run
/// statistics, releasing the outcome — the one generic primitive every
/// benchmark row (and equivalence check) is built from.
///
/// # Errors
///
/// Preparation or execution errors.
pub fn run_stats<B: Backend>(
    backend: &mut B,
    circuit: &Circuit,
) -> Result<BackendStats, ExecError> {
    let outcome = approxdd_backend::run_circuit(backend, circuit)?;
    let stats = outcome.stats.clone();
    backend.release(outcome);
    Ok(stats)
}

/// One row of the regenerated Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// Benchmark name (`qsup_4x4_12_0`, `shor_33_5`, …).
    pub name: String,
    /// Register width.
    pub qubits: usize,
    /// Exact run: maximum DD node count (`None` when skipped/timeout).
    pub exact_max_dd: Option<usize>,
    /// Exact run: wall-clock runtime.
    pub exact_runtime: Option<Duration>,
    /// Approximate run: maximum DD node count.
    pub approx_max_dd: usize,
    /// Approximation rounds performed.
    pub rounds: usize,
    /// Per-round target fidelity.
    pub f_round: f64,
    /// Approximate run: wall-clock runtime.
    pub approx_runtime: Duration,
    /// Measured final fidelity (product of round fidelities; exact by
    /// Lemma 1).
    pub f_final: f64,
    /// Guaranteed final-fidelity floor: product of the per-round
    /// *target* fidelities of the rounds that removed nodes
    /// (≤ `f_final`).
    pub fidelity_lower_bound: f64,
    /// Name of the approximation policy that produced the approximate
    /// run (`"memory-driven"`, `"fidelity-driven"`, `"budget"`, or a
    /// custom policy's name).
    pub policy: String,
    /// For Shor rows: whether classical post-processing recovered the
    /// factors from the approximate state.
    pub factored: Option<bool>,
    /// Approximate run: aggregate compute-cache hit rate of the DD
    /// package (all four lossy tables combined).
    pub ct_hit_rate: Option<f64>,
    /// Approximate run: unique-table occupancy (live entries over
    /// buckets) of the DD package.
    pub unique_occupancy: Option<f64>,
    /// Approximate run: peak simultaneously-alive DD nodes (vector +
    /// matrix).
    pub peak_nodes: Option<usize>,
}

/// Copies the DD-package cache columns out of a run's unified stats.
fn cache_columns(stats: &BackendStats) -> (Option<f64>, Option<f64>, Option<usize>) {
    (
        stats.ct_hit_rate(),
        stats.unique_occupancy(),
        stats.peak_nodes(),
    )
}

/// Runs one memory-driven benchmark row: an exact reference run (unless
/// `skip_exact`) and an approximate run with the given threshold, round
/// fidelity and threshold growth factor (the paper's text prescribes
/// growth 2.0; growth 1.0 reproduces the many-rounds regime its Table I
/// actually reports — see `Strategy::MemoryDriven`).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn memory_driven_row(
    circuit: &Circuit,
    node_threshold: usize,
    f_round: f64,
    threshold_growth: f64,
    skip_exact: bool,
) -> Result<TableRow, ExecError> {
    let (exact_max_dd, exact_runtime) = if skip_exact {
        (None, None)
    } else {
        let mut exact = Simulator::builder().exact().build_backend();
        let stats = run_stats(&mut exact, circuit)?;
        (Some(stats.peak_size), Some(stats.runtime))
    };

    let mut approx = Simulator::builder()
        .strategy(Strategy::MemoryDriven {
            node_threshold,
            round_fidelity: f_round,
            threshold_growth,
        })
        .build_backend();
    let stats = run_stats(&mut approx, circuit)?;
    let (ct_hit_rate, unique_occupancy, peak_nodes) = cache_columns(&stats);

    Ok(TableRow {
        name: circuit.name().to_string(),
        qubits: circuit.n_qubits(),
        exact_max_dd,
        exact_runtime,
        approx_max_dd: stats.peak_size,
        rounds: stats.approx_rounds,
        f_round,
        approx_runtime: stats.runtime,
        f_final: stats.fidelity,
        fidelity_lower_bound: stats.fidelity_lower_bound,
        policy: stats.policy,
        factored: None,
        ct_hit_rate,
        unique_occupancy,
        peak_nodes,
    })
}

/// Runs one fidelity-driven Shor benchmark row: an exact reference run
/// (unless `skip_exact`), then the approximate run with
/// `f_final = 0.5`, `f_round = 0.9` (the paper's configuration),
/// finishing with classical post-processing to check that the factors
/// are still recovered.
///
/// # Errors
///
/// Propagates circuit construction and simulator errors.
pub fn fidelity_driven_row(
    n: u64,
    a: u64,
    final_fidelity: f64,
    f_round: f64,
    skip_exact: bool,
) -> Result<TableRow, Box<dyn std::error::Error>> {
    let circuit = shor_circuit(n, a)?;

    let (exact_max_dd, exact_runtime) = if skip_exact {
        (None, None)
    } else {
        let mut exact = Simulator::builder().exact().build_backend();
        let stats = run_stats(&mut exact, &circuit)?;
        (Some(stats.peak_size), Some(stats.runtime))
    };

    let opts = FactorOptions {
        strategy: Strategy::FidelityDriven {
            final_fidelity,
            round_fidelity: f_round,
        },
        base: Some(a),
        ..FactorOptions::default()
    };
    let outcome = factor(n, &opts);
    let (factored, stats) = match &outcome {
        Ok(out) => (
            out.factors.0 * out.factors.1 == n,
            out.sim_stats.clone().map(BackendStats::from),
        ),
        Err(_) => (false, None),
    };
    // If factoring took a classical shortcut we still want the quantum
    // stats; rerun the simulation alone in that case.
    let stats = match stats {
        Some(s) => s,
        None => {
            let mut approx = Simulator::builder().strategy(opts.strategy).build_backend();
            run_stats(&mut approx, &circuit)?
        }
    };

    let (ct_hit_rate, unique_occupancy, peak_nodes) = cache_columns(&stats);
    Ok(TableRow {
        name: circuit.name().to_string(),
        qubits: circuit.n_qubits(),
        exact_max_dd,
        exact_runtime,
        approx_max_dd: stats.peak_size,
        rounds: stats.approx_rounds,
        f_round,
        approx_runtime: stats.runtime,
        f_final: stats.fidelity,
        fidelity_lower_bound: stats.fidelity_lower_bound,
        policy: stats.policy,
        factored: Some(factored),
        ct_hit_rate,
        unique_occupancy,
        peak_nodes,
    })
}

/// Max-DD-size and runtime of an exact reference run, both `None` when
/// the reference was skipped.
type ExactRef = (Option<usize>, Option<Duration>);

/// Builds one [`TableRow`] from a pooled approximate outcome plus the
/// (optional) exact reference numbers.
fn row_from_outcome(outcome: &PoolOutcome, f_round: f64, exact: ExactRef) -> TableRow {
    let (ct_hit_rate, unique_occupancy, peak_nodes) = cache_columns(&outcome.stats);
    TableRow {
        name: outcome.name.clone(),
        qubits: outcome.n_qubits,
        exact_max_dd: exact.0,
        exact_runtime: exact.1,
        approx_max_dd: outcome.stats.peak_size,
        rounds: outcome.stats.approx_rounds,
        f_round,
        approx_runtime: outcome.stats.runtime,
        f_final: outcome.stats.fidelity,
        fidelity_lower_bound: outcome.stats.fidelity_lower_bound,
        policy: outcome.stats.policy.clone(),
        factored: None,
        ct_hit_rate,
        unique_occupancy,
        peak_nodes,
    }
}

/// The memory-driven half of Table I as one pooled submission: exact
/// reference runs (unless `skip_exact`) and every `circuit × f_round`
/// combination execute concurrently across the pool's workers, then
/// assemble into rows in the serial function's order (circuit-major,
/// `f_round`-minor). Per-row failures stay confined to their slot.
pub fn memory_driven_rows_pooled(
    pool: &BackendPool,
    circuits: &[Circuit],
    node_threshold: usize,
    f_rounds: &[f64],
    threshold_growth: f64,
    skip_exact: bool,
) -> Vec<Result<TableRow, ExecError>> {
    let mut jobs: Vec<PoolJob> = Vec::new();
    if !skip_exact {
        jobs.extend(
            circuits
                .iter()
                .map(|c| PoolJob::new(c.clone()).strategy(Strategy::Exact)),
        );
    }
    for circuit in circuits {
        for &f_round in f_rounds {
            jobs.push(
                PoolJob::new(circuit.clone()).strategy(Strategy::MemoryDriven {
                    node_threshold,
                    round_fidelity: f_round,
                    threshold_growth,
                }),
            );
        }
    }
    let mut results = pool.run_jobs(jobs);
    let approx = results.split_off(if skip_exact { 0 } else { circuits.len() });
    let exact: Vec<Result<ExactRef, ExecError>> = if skip_exact {
        vec![Ok((None, None)); circuits.len()]
    } else {
        results
            .iter()
            .map(|r| match r {
                Ok(o) => Ok((Some(o.stats.peak_size), Some(o.stats.runtime))),
                Err(e) => Err(e.clone()),
            })
            .collect()
    };

    let mut rows = Vec::with_capacity(circuits.len() * f_rounds.len());
    for (ci, _) in circuits.iter().enumerate() {
        for (fi, &f_round) in f_rounds.iter().enumerate() {
            let row = match (&exact[ci], &approx[ci * f_rounds.len() + fi]) {
                (_, Err(e)) | (Err(e), _) => Err(e.clone()),
                (Ok(exact), Ok(outcome)) => Ok(row_from_outcome(outcome, f_round, *exact)),
            };
            rows.push(row);
        }
    }
    rows
}

/// Parses the `--workers N` flag the same way for every benchmark
/// binary: `Ok(None)` when absent (callers fall back to the builder's
/// default, the machine's available parallelism), an error for a
/// missing or malformed value.
///
/// # Errors
///
/// A human-readable message when the flag has no or a non-numeric
/// value.
pub fn workers_flag(args: &[String]) -> Result<Option<usize>, String> {
    match args.iter().position(|a| a == "--workers") {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| "missing value after --workers".to_string())?
            .parse()
            .map(Some)
            .map_err(|_| "bad --workers value".to_string()),
    }
}

/// Builds the [`BackendPool`] a benchmark binary runs on: `template`
/// with [`workers_flag`] applied (absent flag → the template's default,
/// the machine's available parallelism), and copy-on-write package
/// snapshots enabled — pooled benchmark batches repeat circuit
/// families, exactly the workload snapshots amortize, and results are
/// byte-identical either way (the pool's determinism contract). One
/// wiring for every binary.
///
/// # Errors
///
/// See [`workers_flag`].
pub fn pool_from_args(args: &[String], template: SimulatorBuilder) -> Result<BackendPool, String> {
    let template = match workers_flag(args)? {
        Some(n) => template.workers(n),
        None => template,
    };
    Ok(BackendPool::new(template.share_snapshot(true)))
}

/// The bench-smoke snapshot probe: runs the same repeated-circuit
/// batch with copy-on-write package snapshots off and then on (same
/// worker count, same seed), asserting byte-identical fingerprints and
/// reporting the amortization metrics CI archives in the `snapshot`
/// object of `table1_smoke.json` — the one-time gate-DD build cost,
/// the snapshot hit rate across the batch, frozen-vs-delta node
/// counts, and both wall times.
///
/// The workload repeats one QFT circuit: its state DDs stay tiny while
/// its many distinct controlled-phase gate DDs are expensive to build,
/// so per-job gate rebuilding dominates the snapshot-off baseline —
/// the regime the snapshot exists for.
///
/// # Errors
///
/// Snapshot construction or batch execution errors.
pub fn snapshot_probe(workers: usize) -> Result<Json, ExecError> {
    let copies = 24;
    let circuits = vec![generators::qft(14); copies];
    let template = || Simulator::builder().seed(29).workers(workers);

    // The one-time cost a snapshot front-loads: building every gate DD
    // of the batch's circuit family once.
    let build_start = Instant::now();
    let snapshot = template()
        .build_snapshot(circuits.iter())
        .map_err(ExecError::Sim)?;
    let gate_build_seconds = build_start.elapsed().as_secs_f64();
    let frozen_nodes = snapshot.frozen_nodes();
    drop(snapshot);

    let run = |share: bool| -> Result<(Vec<u64>, f64, approxdd_exec::PoolStats), ExecError> {
        let pool = BackendPool::new(template().share_snapshot(share));
        let start = Instant::now();
        let outcomes = pool.run_batch(&circuits)?;
        let wall = start.elapsed().as_secs_f64();
        let fingerprints = outcomes.iter().map(PoolOutcome::fingerprint).collect();
        Ok((fingerprints, wall, pool.stats()))
    };
    let (fp_off, baseline_seconds, _) = run(false)?;
    let (fp_on, snapshot_seconds, on_stats) = run(true)?;

    let gate_hits = on_stats.snapshot_gate_hits();
    let total_gates: usize = circuits.iter().map(Circuit::gate_count).sum();
    #[allow(clippy::cast_precision_loss)]
    let hit_rate = if total_gates == 0 {
        0.0
    } else {
        gate_hits as f64 / total_gates as f64
    };
    Ok(Json::obj([
        ("circuits", Json::int(copies)),
        ("workers", Json::int(workers)),
        ("gate_build_seconds", Json::Num(gate_build_seconds)),
        ("frozen_nodes", Json::int(frozen_nodes)),
        (
            "delta_nodes",
            Json::int(on_stats.peak_nodes().saturating_sub(frozen_nodes)),
        ),
        ("snapshot_gate_hits", Json::int(gate_hits as usize)),
        ("hit_rate", Json::Num(hit_rate)),
        ("baseline_seconds", Json::Num(baseline_seconds)),
        ("snapshot_seconds", Json::Num(snapshot_seconds)),
        (
            "speedup_ratio",
            Json::Num(snapshot_seconds / baseline_seconds),
        ),
        ("fingerprints_identical", Json::Bool(fp_off == fp_on)),
    ]))
}

/// Wall-clock time for one pooled batch run over `circuits` with the
/// given worker count — the speedup probe the bench-smoke CI job
/// reports (and the ignored release-mode contract test asserts on).
///
/// # Errors
///
/// The first failing job's error.
pub fn pool_batch_walltime(
    template: SimulatorBuilder,
    workers: usize,
    circuits: &[Circuit],
) -> Result<Duration, ExecError> {
    let pool = BackendPool::with_workers(template, workers);
    let start = Instant::now();
    pool.run_batch(circuits)?;
    Ok(start.elapsed())
}

impl TableRow {
    /// The row as a JSON object (runtimes in seconds; missing exact
    /// references serialize as `null`, like the paper's Timeout cells).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(self.name.as_str())),
            ("qubits", Json::int(self.qubits)),
            ("exact_max_dd", Json::opt_int(self.exact_max_dd)),
            (
                "exact_seconds",
                self.exact_runtime
                    .map_or(Json::Null, |d| Json::Num(d.as_secs_f64())),
            ),
            ("approx_max_dd", Json::int(self.approx_max_dd)),
            ("rounds", Json::int(self.rounds)),
            ("f_round", Json::Num(self.f_round)),
            (
                "approx_seconds",
                Json::Num(self.approx_runtime.as_secs_f64()),
            ),
            ("f_final", Json::Num(self.f_final)),
            ("fidelity_lower_bound", Json::Num(self.fidelity_lower_bound)),
            ("policy", Json::str(self.policy.as_str())),
            ("factored", self.factored.map_or(Json::Null, Json::Bool)),
            (
                "ct_hit_rate",
                self.ct_hit_rate.map_or(Json::Null, Json::Num),
            ),
            (
                "unique_occupancy",
                self.unique_occupancy.map_or(Json::Null, Json::Num),
            ),
            ("peak_nodes", Json::opt_int(self.peak_nodes)),
        ])
    }
}

/// Benchmark instance definitions.
pub mod workloads {
    use super::{generators, Circuit};

    /// Laptop-scale supremacy instances: 4×4 grid, depth 12, three
    /// seeds (the paper uses 4×5 depth 15, ~1 h per exact run on a
    /// server; the 4×4 instances keep the same structure at minutes of
    /// total runtime).
    #[must_use]
    pub fn supremacy_default() -> Vec<Circuit> {
        (0..3)
            .map(|seed| generators::supremacy(4, 4, 12, seed))
            .collect()
    }

    /// Paper-scale supremacy instances (`qsup_4x5_15_{0,1,2}`, 20
    /// qubits, depth 15). Expect long exact runtimes.
    #[must_use]
    pub fn supremacy_large() -> Vec<Circuit> {
        (0..3)
            .map(|seed| generators::supremacy(4, 5, 15, seed))
            .collect()
    }

    /// CI-sized smoke instances (`table1 --smoke`): 3×3 grids, depth
    /// 10, two seeds — same structure as the laptop set at seconds of
    /// total runtime, so the bench-smoke job stays under its budget.
    #[must_use]
    pub fn supremacy_smoke() -> Vec<Circuit> {
        (0..2)
            .map(|seed| generators::supremacy(3, 3, 10, seed))
            .collect()
    }

    /// CI-sized Shor smoke instances `(n, a)`.
    pub const SHOR_SMOKE: [(u64, u64); 2] = [(15, 7), (21, 2)];

    /// Default node threshold for the memory-driven strategy on the
    /// laptop-scale instances (the paper used thresholds sized to its
    /// 20-qubit instances).
    pub const SUPREMACY_THRESHOLD: usize = 1 << 12;

    /// The `f_round` values of the memory-driven half of Table I
    /// (the paper's three values plus two lower ones: at laptop scale
    /// the 16-qubit instances saturate at 2^16 nodes, so the runtime
    /// crossover sits at lower per-round fidelity than on the paper's
    /// 20-qubit instances — the extended sweep makes it visible).
    pub const SUPREMACY_ROUND_FIDELITIES: [f64; 5] = [0.99, 0.975, 0.95, 0.9, 0.8];

    /// Laptop-scale Shor instances `(n, a)` from Table I (exact
    /// simulation finishes in seconds to minutes).
    pub const SHOR_DEFAULT: [(u64, u64); 4] = [(33, 5), (55, 2), (69, 2), (221, 4)];

    /// Paper-scale Shor instances; the last two timed out (3 h) even on
    /// the paper's server when simulated exactly.
    pub const SHOR_LARGE: [(u64, u64); 3] = [(323, 8), (629, 8), (1157, 8)];
}

/// Formats rows in the layout of Table I.
#[must_use]
pub fn format_rows(rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>6} | {:>12} {:>11} | {:>12} {:>6} {:>7} {:>11} {:>8} {:>8}\n",
        "Benchmark",
        "Qubits",
        "ExactMaxDD",
        "Exact[s]",
        "ApproxMaxDD",
        "Rounds",
        "fround",
        "Approx[s]",
        "ffinal",
        "Factored"
    ));
    out.push_str(&"-".repeat(118));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>6} | {:>12} {:>11} | {:>12} {:>6} {:>7.3} {:>11.3} {:>8.3} {:>8}\n",
            r.name,
            r.qubits,
            r.exact_max_dd
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
            r.exact_runtime
                .map_or_else(|| "-".to_string(), |d| format!("{:.3}", d.as_secs_f64())),
            r.approx_max_dd,
            r.rounds,
            r.f_round,
            r.approx_runtime.as_secs_f64(),
            r.f_final,
            r.factored.map_or_else(
                || "-".to_string(),
                |b| if b { "yes" } else { "NO" }.to_string()
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_driven_row_on_small_instance() {
        let c = generators::supremacy(2, 3, 10, 0);
        let row = memory_driven_row(&c, 8, 0.95, 1.0, false).unwrap();
        assert_eq!(row.qubits, 6);
        assert!(row.exact_max_dd.is_some());
        assert!(row.f_final > 0.0 && row.f_final <= 1.0);
        assert!(row.approx_max_dd <= row.exact_max_dd.unwrap());
    }

    #[test]
    fn fidelity_driven_row_factors_15() {
        let row = fidelity_driven_row(15, 7, 0.5, 0.9, false).unwrap();
        assert_eq!(row.qubits, 12);
        assert_eq!(row.factored, Some(true));
        assert!(row.f_final >= 0.5 - 1e-9);
    }

    #[test]
    fn pooled_rows_match_serial_up_to_runtime() {
        use approxdd_exec::BuildPool;
        let circuits = [
            generators::supremacy(2, 3, 10, 0),
            generators::supremacy(2, 3, 10, 1),
        ];
        let f_rounds = [0.99, 0.95];
        let pool = Simulator::builder().workers(3).build_pool();
        let pooled = memory_driven_rows_pooled(&pool, &circuits, 8, &f_rounds, 1.0, false);
        assert_eq!(pooled.len(), 4);
        for (i, result) in pooled.iter().enumerate() {
            let p = result.as_ref().expect("pooled row");
            let c = &circuits[i / f_rounds.len()];
            let s = memory_driven_row(c, 8, f_rounds[i % f_rounds.len()], 1.0, false).unwrap();
            assert_eq!(p.name, s.name);
            assert_eq!(p.qubits, s.qubits);
            assert_eq!(p.exact_max_dd, s.exact_max_dd);
            assert_eq!(p.approx_max_dd, s.approx_max_dd);
            assert_eq!(p.rounds, s.rounds);
            assert_eq!(p.f_final.to_bits(), s.f_final.to_bits());
        }
    }

    #[test]
    fn table_rows_serialize_to_json() {
        let c = generators::supremacy(2, 2, 6, 0);
        let row = memory_driven_row(&c, 4, 0.9, 1.0, true).unwrap();
        let text = row.to_json().to_string();
        assert!(text.contains("\"name\":\"qsup_2x2_6_0\""));
        assert!(text.contains("\"exact_max_dd\":null"));
        assert!(text.contains("\"f_round\":0.9"));
        // The policy columns CI asserts on in the smoke artifact.
        assert!(text.contains("\"policy\":\"memory-driven\""));
        assert!(text.contains("\"fidelity_lower_bound\":"));
        assert!(text.contains("\"rounds\":"));
    }

    #[test]
    fn formatting_contains_all_rows() {
        let c = generators::supremacy(2, 2, 6, 0);
        let row = memory_driven_row(&c, 4, 0.9, 1.0, false).unwrap();
        let text = format_rows(&[row]);
        assert!(text.contains("qsup_2x2_6_0"));
        assert!(text.contains("Benchmark"));
    }
}

//! Clifford randomized-benchmarking scaling: stabilizer vs hybrid vs
//! DD wall time and peak state size on random Clifford circuits.
//!
//! ```text
//! clifford_rb [--smoke] [--json PATH] [--depth N] [--shots N]
//! ```
//!
//! Each row runs one `(width, engine)` cell: a random Clifford circuit
//! of `depth` layers through a single-threaded backend built via the
//! `engine` knob, reporting wall time, peak state size (DD nodes or
//! tableau words — the column that shows the polynomial/exponential
//! split), gate count and a histogram fingerprint over sampled shots.
//!
//! The tableau engines run every width; the DD engine is capped
//! (random Clifford states drive the DD to its `2^n − 1` node ceiling,
//! which is the comparison the paper's approximation story starts
//! from).
//!
//! * `--smoke` caps the workload for CI (< 30 s), emits JSON (default
//!   `clifford_rb.json`), and exits non-zero if any cell fails.
//! * `--json PATH` writes the rows as JSON.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::process::ExitCode;
use std::time::Instant;

use approxdd_backend::{AnyBackend, Backend, BuildBackend};
use approxdd_circuit::generators;
use approxdd_sim::json::Json;
use approxdd_sim::{Engine, Simulator};

/// Widths exercised by the sweep (the ISSUE's RB ladder).
const WIDTHS: [usize; 4] = [8, 16, 24, 32];

/// Widest register the DD engine is asked to handle: beyond this a
/// random Clifford state's node count is exponential and the cell
/// would dominate the whole sweep.
const DD_CAP_SMOKE: usize = 16;
const DD_CAP_FULL: usize = 20;

struct Row {
    engine: Engine,
    width: usize,
}

fn counts_fingerprint(counts: &HashMap<u64, usize>) -> u64 {
    let mut entries: Vec<(u64, usize)> = counts.iter().map(|(k, v)| (*k, *v)).collect();
    entries.sort_unstable();
    let mut h = std::collections::hash_map::DefaultHasher::new();
    entries.hash(&mut h);
    h.finish()
}

fn run_cell(row: &Row, depth: usize, shots: usize) -> Result<Json, String> {
    let circuit = generators::random_clifford(row.width, depth, 42);
    let mut backend: AnyBackend = Simulator::builder()
        .engine(row.engine)
        .seed(7)
        .build_engine_backend();
    let start = Instant::now();
    let exe = backend.prepare(&circuit).map_err(|e| e.to_string())?;
    let outcome = backend.run(&exe).map_err(|e| e.to_string())?;
    let run_secs = start.elapsed().as_secs_f64();
    let counts = backend.sample_counts(&outcome, shots);
    let stats = outcome.stats.clone();
    let final_size = backend.final_size(&outcome);
    backend.release(outcome);
    Ok(Json::obj([
        ("engine", Json::str(row.engine.name())),
        ("width", Json::int(row.width)),
        ("depth", Json::int(depth)),
        ("circuit", Json::str(circuit.name())),
        ("gates", Json::int(stats.gates_applied)),
        ("clifford_prefix_len", Json::int(stats.clifford_prefix_len)),
        ("peak_size", Json::int(stats.peak_size)),
        ("final_size", Json::int(final_size)),
        ("shots", Json::int(shots)),
        (
            "counts_fingerprint",
            Json::str(format!("{:016x}", counts_fingerprint(&counts))),
        ),
        ("wall_seconds", Json::Num(run_secs)),
    ]))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path =
        arg_value(&args, "--json").or_else(|| smoke.then(|| "clifford_rb.json".to_string()));
    let depth: usize = arg_value(&args, "--depth")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 16 } else { 48 });
    let shots: usize = arg_value(&args, "--shots")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 256 } else { 1024 });
    let dd_cap = if smoke { DD_CAP_SMOKE } else { DD_CAP_FULL };

    let mut cells = Vec::new();
    for &width in &WIDTHS {
        cells.push(Row {
            engine: Engine::Stabilizer,
            width,
        });
        cells.push(Row {
            engine: Engine::Hybrid,
            width,
        });
        if width <= dd_cap {
            cells.push(Row {
                engine: Engine::Dd,
                width,
            });
        }
    }

    println!(
        "{:<12} {:>6} {:>6} {:>7} {:>10} {:>10} {:>12}",
        "engine", "width", "depth", "gates", "peak", "final", "wall_s"
    );
    let start = Instant::now();
    let mut rows = Vec::new();
    let mut failures = 0usize;
    for cell in &cells {
        match run_cell(cell, depth, shots) {
            Ok(row) => {
                if let Json::Obj(pairs) = &row {
                    let get = |key: &str| {
                        pairs
                            .iter()
                            .find(|(k, _)| k == key)
                            .map_or(String::from("?"), |(_, v)| v.to_string())
                    };
                    println!(
                        "{:<12} {:>6} {:>6} {:>7} {:>10} {:>10} {:>12}",
                        cell.engine.name(),
                        cell.width,
                        depth,
                        get("gates"),
                        get("peak_size"),
                        get("final_size"),
                        get("wall_seconds"),
                    );
                }
                rows.push(row);
            }
            Err(e) => {
                failures += 1;
                eprintln!(
                    "  FAILED engine={} width={}: {e}",
                    cell.engine.name(),
                    cell.width
                );
            }
        }
    }

    if let Some(path) = json_path {
        let report = Json::obj([
            ("mode", Json::str(if smoke { "smoke" } else { "full" })),
            ("depth", Json::int(depth)),
            ("shots", Json::int(shots)),
            ("dd_width_cap", Json::int(dd_cap)),
            ("wall_seconds", Json::Num(start.elapsed().as_secs_f64())),
            ("failures", Json::int(failures)),
            ("rows", Json::Arr(rows)),
        ]);
        match std::fs::write(&path, report.to_string()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                failures += 1;
                eprintln!("FAILED writing {path}: {e}");
            }
        }
    }

    if failures > 0 {
        eprintln!("sweep had {failures} failure(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

//! Noisy-trajectory sweep: error rate × approximation strategy ×
//! trajectory budget, pooled.
//!
//! ```text
//! noise_sweep [--smoke] [--json PATH] [--workers N]
//!             [--trajectories N] [--shots N]
//! ```
//!
//! Each row runs one `(circuit, rate, strategy)` cell through a
//! [`NoisePool`] (global 1q+2q depolarizing at the given rate, plus
//! amplitude damping on qubit 0 at a tenth of it) and reports the
//! merged histogram's spread, the trajectory-fidelity mean/σ, inserted
//! noise ops, and the outcome fingerprint (worker-count-invariant, so
//! archived JSONs diff cleanly across machines).
//!
//! * `--smoke` caps the workload for CI (< 30 s), emits JSON (default
//!   `noise_sweep.json`), and exits non-zero if any cell fails.
//! * `--json PATH` writes the rows as JSON.

use std::process::ExitCode;
use std::time::Instant;

use approxdd_circuit::{generators, Circuit};
use approxdd_noise::{NoiseChannel, NoiseModel, NoisePool, TrajectoryConfig, TrajectoryOutcome};
use approxdd_sim::json::Json;
use approxdd_sim::{Simulator, Strategy};

struct Cell {
    circuit: Circuit,
    rate: f64,
    policy: &'static str,
    strategy: Option<Strategy>,
}

fn model_for(rate: f64) -> NoiseModel {
    let mut model = NoiseModel::new();
    if rate > 0.0 {
        model = model
            .with_global(NoiseChannel::depolarizing(rate).expect("rate"))
            .with_global(NoiseChannel::depolarizing2(rate).expect("rate"))
            .with_qubit(
                0,
                NoiseChannel::amplitude_damping(rate / 10.0).expect("rate"),
            );
    }
    model
}

fn row_json(cell: &Cell, cfg: &TrajectoryConfig, outcome: &TrajectoryOutcome, secs: f64) -> Json {
    Json::obj([
        ("circuit", Json::str(cell.circuit.name())),
        ("qubits", Json::int(outcome.n_qubits)),
        ("channel", Json::str("depolarizing+amplitude_damping")),
        ("rate", Json::Num(cell.rate)),
        ("policy", Json::str(cell.policy)),
        ("trajectories", Json::int(outcome.trajectories)),
        ("shots", Json::int(cfg.shots_per_trajectory())),
        ("fidelity_mean", Json::Num(outcome.fidelity_mean)),
        ("fidelity_std", Json::Num(outcome.fidelity_std)),
        ("noise_ops_total", Json::int(outcome.noise_ops_total)),
        ("distinct_outcomes", Json::int(outcome.counts.len())),
        (
            "fingerprint",
            Json::str(format!("{:016x}", outcome.fingerprint())),
        ),
        ("wall_seconds", Json::Num(secs)),
    ])
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path =
        arg_value(&args, "--json").or_else(|| smoke.then(|| "noise_sweep.json".to_string()));
    let workers: usize = arg_value(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 2 } else { 4 });
    let trajectories: usize = arg_value(&args, "--trajectories")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 8 } else { 64 });
    let shots: usize = arg_value(&args, "--shots")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 128 } else { 1024 });

    let circuits: Vec<Circuit> = if smoke {
        vec![generators::ghz(8), generators::supremacy(2, 3, 8, 1)]
    } else {
        vec![
            generators::ghz(12),
            generators::qft(10),
            generators::supremacy(3, 3, 10, 1),
            generators::supremacy(3, 4, 12, 2),
        ]
    };
    let rates: &[f64] = if smoke {
        &[0.0, 0.02]
    } else {
        &[0.0, 0.005, 0.01, 0.05]
    };
    let strategies: [(&'static str, Option<Strategy>); 2] = [
        ("exact", None),
        (
            "memory-driven",
            Some(Strategy::memory_driven_table1(1 << 4, 0.97)),
        ),
    ];

    let mut cells = Vec::new();
    for circuit in &circuits {
        for &rate in rates {
            for (policy, strategy) in &strategies {
                cells.push(Cell {
                    circuit: circuit.clone(),
                    rate,
                    policy,
                    strategy: *strategy,
                });
            }
        }
    }

    println!(
        "{:<16} {:>7} {:>14} {:>6} {:>10} {:>10} {:>9} {:>9}",
        "circuit", "rate", "policy", "traj", "fid_mean", "fid_std", "noise_ops", "outcomes"
    );
    let start = Instant::now();
    let mut rows = Vec::new();
    let mut failures = 0usize;
    for cell in &cells {
        let pool = NoisePool::with_model(
            Simulator::builder().seed(17).workers(workers),
            model_for(cell.rate),
        );
        let mut cfg = TrajectoryConfig::new(trajectories).shots(shots);
        if let Some(strategy) = cell.strategy {
            cfg = cfg.strategy(strategy);
        }
        let cell_start = Instant::now();
        match pool.run_trajectories(&cell.circuit, &cfg) {
            Ok(outcome) => {
                println!(
                    "{:<16} {:>7.3} {:>14} {:>6} {:>10.5} {:>10.5} {:>9} {:>9}",
                    outcome.name,
                    cell.rate,
                    cell.policy,
                    outcome.trajectories,
                    outcome.fidelity_mean,
                    outcome.fidelity_std,
                    outcome.noise_ops_total,
                    outcome.counts.len()
                );
                rows.push(row_json(
                    cell,
                    &cfg,
                    &outcome,
                    cell_start.elapsed().as_secs_f64(),
                ));
            }
            Err(e) => {
                failures += 1;
                eprintln!(
                    "  FAILED {} rate={} policy={}: {e}",
                    cell.circuit.name(),
                    cell.rate,
                    cell.policy
                );
            }
        }
    }

    if let Some(path) = json_path {
        let report = Json::obj([
            ("mode", Json::str(if smoke { "smoke" } else { "full" })),
            ("workers", Json::int(workers)),
            ("trajectories", Json::int(trajectories)),
            ("shots", Json::int(shots)),
            ("wall_seconds", Json::Num(start.elapsed().as_secs_f64())),
            ("failures", Json::int(failures)),
            ("rows", Json::Arr(rows)),
            // Phase-time breakdown and top counters from the process
            // telemetry registry (same series as `GET /metrics`).
            ("telemetry", approxdd_sim::ndjson::telemetry_json()),
        ]);
        match std::fs::write(&path, report.to_string()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                failures += 1;
                eprintln!("FAILED writing {path}: {e}");
            }
        }
    }

    if failures > 0 {
        eprintln!("sweep had {failures} failure(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

//! Command-line simulator: run an OpenQASM 2 file (or a named generator)
//! under a chosen approximation strategy and report statistics and
//! measurement samples.
//!
//! ```text
//! simulate --qasm circuit.qasm [options]
//! simulate --generate ghz:20 [options]
//! simulate --generate supremacy:4x4x12 [options]
//!
//! options:
//!   --strategy exact | memory:<threshold>,<fround>[,<growth>]
//!              | fidelity:<ffinal>,<fround>
//!   --shots N          measurement samples to draw (default 16)
//!   --seed S           RNG seed (default 1)
//!   --workers N        shard sampling across a pool of N workers
//!                      (deterministic: same counts for any N)
//!   --dot              print the final state as Graphviz DOT
//!                      (single-threaded mode only)
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use approxdd_circuit::{generators, qasm, Circuit};
use approxdd_exec::{BuildPool, PoolJob};
use approxdd_sim::{Simulator, Strategy};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let circuit = load_circuit(&args)?;
    let strategy = parse_strategy(value(&args, "--strategy").as_deref().unwrap_or("exact"))?;
    let shots: usize = value(&args, "--shots")
        .map(|v| v.parse().map_err(|_| "bad --shots"))
        .transpose()?
        .unwrap_or(16);
    let seed: u64 = value(&args, "--seed")
        .map(|v| v.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(1);
    let workers = approxdd_bench::workers_flag(&args)?;
    let dot = args.iter().any(|a| a == "--dot");
    if dot && workers.is_some() {
        return Err("--dot needs the single-threaded mode (drop --workers)".into());
    }

    println!(
        "circuit: {} ({} qubits, {} gates)",
        circuit.name(),
        circuit.n_qubits(),
        circuit.gate_count()
    );

    if let Some(workers) = workers {
        return run_pooled(&circuit, strategy, shots, seed, workers);
    }

    let mut sim = Simulator::builder().strategy(strategy).seed(seed).build();
    let run = sim.run(&circuit).map_err(|e| e.to_string())?;

    println!("runtime        : {:?}", run.stats.runtime);
    println!("max DD size    : {} nodes", run.stats.max_dd_size);
    println!(
        "final DD size  : {} nodes",
        sim.package().vsize(run.state())
    );
    println!("policy         : {}", run.stats.policy);
    println!("approx rounds  : {}", run.stats.approx_rounds);
    println!("f_final        : {:.6}", run.stats.fidelity);
    println!("f_lower_bound  : {:.6}", run.stats.fidelity_lower_bound);

    if shots > 0 {
        print_counts(&circuit, shots, sim.draw_counts(&run, shots));
    }

    if dot {
        println!("\n{}", sim.package().to_dot(run.state()));
    }
    Ok(())
}

/// The pooled path: the run itself executes as one pool job and the
/// shot budget is sharded across the workers in deterministic chunks
/// (same counts for any worker count, by the pool's seed-stream
/// contract).
fn run_pooled(
    circuit: &Circuit,
    strategy: Strategy,
    shots: usize,
    seed: u64,
    workers: usize,
) -> Result<(), String> {
    let pool = Simulator::builder()
        .seed(seed)
        .workers(workers)
        .build_pool();
    println!("pool           : {} workers", pool.workers());

    // A shot budget that fits one sampling chunk rides along with the
    // run job (one simulation total); larger budgets shard across the
    // workers, which re-run the circuit once per worker to amortize.
    let job_shots = if shots <= approxdd_exec::SHOT_CHUNK {
        shots
    } else {
        0
    };
    let outcome = pool
        .run_jobs(vec![PoolJob::new(circuit.clone())
            .strategy(strategy)
            .shots(job_shots)])
        .pop()
        .expect("one job in, one result out")
        .map_err(|e| e.to_string())?;

    println!("runtime        : {:?}", outcome.stats.runtime);
    println!("max DD size    : {} nodes", outcome.stats.peak_size);
    println!("final DD size  : {} nodes", outcome.final_size);
    println!("policy         : {}", outcome.stats.policy);
    println!("approx rounds  : {}", outcome.stats.approx_rounds);
    println!("f_final        : {:.6}", outcome.stats.fidelity);
    println!("f_lower_bound  : {:.6}", outcome.stats.fidelity_lower_bound);

    if let Some(counts) = outcome.counts {
        print_counts(circuit, shots, counts);
    } else if shots > 0 {
        let counts = pool
            .sample_counts_with(circuit, Some(strategy), shots)
            .map_err(|e| e.to_string())?;
        print_counts(circuit, shots, counts);
    }
    Ok(())
}

fn print_counts(circuit: &Circuit, shots: usize, counts: HashMap<u64, usize>) {
    let mut entries: Vec<(u64, usize)> = counts.into_iter().collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("\ntop samples ({shots} shots):");
    let n = circuit.n_qubits();
    for (outcome, count) in entries.iter().take(10) {
        println!("  |{outcome:0n$b}> : {count}");
    }
}

fn load_circuit(args: &[String]) -> Result<Circuit, String> {
    if let Some(path) = value(args, "--qasm") {
        let src = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
        return qasm::from_qasm(&src).map_err(|e| e.to_string());
    }
    if let Some(spec) = value(args, "--generate") {
        return generate(&spec);
    }
    Err("pass --qasm <file> or --generate <spec> (e.g. ghz:12, qft:10, grover:8, supremacy:4x4x12, random:8x20)".into())
}

fn generate(spec: &str) -> Result<Circuit, String> {
    let (kind, param) = spec.split_once(':').unwrap_or((spec, ""));
    let nums: Vec<usize> = param
        .split(['x', ','])
        .filter_map(|t| t.parse().ok())
        .collect();
    match (kind, nums.as_slice()) {
        ("ghz", [n]) => Ok(generators::ghz(*n)),
        ("w", [n]) => Ok(generators::w_state(*n)),
        ("qft", [n]) => Ok(generators::qft(*n)),
        ("grover", [n]) => Ok(generators::grover(*n, (1 << (n - 1)) | 1, None)),
        ("bv", [n]) => Ok(generators::bernstein_vazirani(*n, 0xB & ((1 << n) - 1))),
        ("supremacy", [r, c, d]) => Ok(generators::supremacy(*r, *c, *d, 0)),
        ("random", [n, d]) => Ok(generators::random_circuit(*n, *d, 0)),
        ("shor", [n, a]) => {
            approxdd_shor::shor_circuit(*n as u64, *a as u64).map_err(|e| e.to_string())
        }
        _ => Err(format!("unknown generator spec '{spec}'")),
    }
}

fn parse_strategy(s: &str) -> Result<Strategy, String> {
    if s == "exact" {
        return Ok(Strategy::Exact);
    }
    let (kind, params) = s
        .split_once(':')
        .ok_or_else(|| format!("bad strategy '{s}'"))?;
    let nums: Vec<f64> = params
        .split(',')
        .map(|t| t.parse().map_err(|_| format!("bad number in '{s}'")))
        .collect::<Result<_, _>>()?;
    match (kind, nums.as_slice()) {
        ("memory", [t, f]) => Ok(Strategy::MemoryDriven {
            node_threshold: *t as usize,
            round_fidelity: *f,
            threshold_growth: 2.0,
        }),
        ("memory", [t, f, g]) => Ok(Strategy::MemoryDriven {
            node_threshold: *t as usize,
            round_fidelity: *f,
            threshold_growth: *g,
        }),
        ("fidelity", [ff, fr]) => Ok(Strategy::FidelityDriven {
            final_fidelity: *ff,
            round_fidelity: *fr,
        }),
        _ => Err(format!("bad strategy '{s}'")),
    }
}

fn value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

//! Ablation: per-round fidelity sweep of the memory-driven strategy
//! (extends the three Table-I points per instance into a full series).
//! All points of the sweep run concurrently on a `BackendPool`.
//!
//! ```text
//! fidelity_sweep [--rows R] [--cols C] [--depth D] [--seed S]
//!                [--threshold T] [--workers N]
//! ```

use approxdd_bench::sweeps::{format_sweep, round_fidelity_sweep_pooled};
use approxdd_circuit::generators;
use approxdd_sim::Simulator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows = num_arg(&args, "--rows", 4);
    let cols = num_arg(&args, "--cols", 4);
    let depth = num_arg(&args, "--depth", 10);
    let seed = num_arg(&args, "--seed", 0) as u64;
    let threshold = num_arg(&args, "--threshold", 1 << 11);

    let pool = approxdd_bench::pool_from_args(&args, Simulator::builder()).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    let circuit = generators::supremacy(rows, cols, depth, seed);
    println!(
        "f_round sweep on {} (threshold {threshold} nodes, {} workers)",
        circuit.name(),
        pool.workers()
    );
    let f_rounds = [0.995, 0.99, 0.975, 0.95, 0.925, 0.90];
    match round_fidelity_sweep_pooled(&pool, &circuit, threshold, &f_rounds) {
        Ok(points) => print!("{}", format_sweep(&points)),
        Err(e) => eprintln!("sweep failed: {e}"),
    }
}

fn num_arg(args: &[String], key: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

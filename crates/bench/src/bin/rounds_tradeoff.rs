//! Ablation: the Section IV-C tradeoff between few aggressive and many
//! gentle approximation rounds at a fixed total fidelity budget.
//!
//! ```text
//! rounds_tradeoff [--workload supremacy|shor] [--ffinal F]
//! ```

use approxdd_bench::sweeps::{format_tradeoff, rounds_tradeoff};
use approxdd_circuit::generators;
use approxdd_shor::shor_circuit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args
        .iter()
        .position(|a| a == "--workload")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "supremacy".to_string());
    let f_final = args
        .iter()
        .position(|a| a == "--ffinal")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.5);

    let circuit = match workload.as_str() {
        "shor" => shor_circuit(33, 5).expect("shor_33_5 builds"),
        _ => generators::supremacy(4, 4, 10, 0),
    };
    println!(
        "rounds tradeoff on {} (total budget f_final = {f_final})",
        circuit.name()
    );
    let counts = [1usize, 2, 4, 6, 8, 12];
    match rounds_tradeoff(&circuit, f_final, &counts) {
        Ok(points) => print!("{}", format_tradeoff(&points)),
        Err(e) => eprintln!("tradeoff failed: {e}"),
    }
}

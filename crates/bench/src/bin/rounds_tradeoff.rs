//! Ablation: the Section IV-C tradeoff between few aggressive and many
//! gentle approximation rounds at a fixed total fidelity budget. All
//! round-count configurations run concurrently on a `BackendPool`.
//!
//! ```text
//! rounds_tradeoff [--workload supremacy|shor] [--ffinal F] [--workers N]
//! ```

use approxdd_bench::sweeps::{format_tradeoff, rounds_tradeoff_pooled};
use approxdd_circuit::generators;
use approxdd_shor::shor_circuit;
use approxdd_sim::Simulator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args
        .iter()
        .position(|a| a == "--workload")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "supremacy".to_string());
    let f_final = args
        .iter()
        .position(|a| a == "--ffinal")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.5);

    let pool = approxdd_bench::pool_from_args(&args, Simulator::builder()).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    let circuit = match workload.as_str() {
        "shor" => shor_circuit(33, 5).expect("shor_33_5 builds"),
        _ => generators::supremacy(4, 4, 10, 0),
    };
    println!(
        "rounds tradeoff on {} (total budget f_final = {f_final}, {} workers)",
        circuit.name(),
        pool.workers()
    );
    let counts = [1usize, 2, 4, 6, 8, 12];
    match rounds_tradeoff_pooled(&pool, &circuit, f_final, &counts) {
        Ok(points) => print!("{}", format_tradeoff(&points)),
        Err(e) => eprintln!("tradeoff failed: {e}"),
    }
}

//! Regenerates Table I of the paper.
//!
//! ```text
//! table1 [--part memory|fidelity|all] [--large] [--skip-exact]
//!        [--workers N] [--smoke] [--json PATH]
//! ```
//!
//! * `--part` selects the memory-driven (supremacy) or fidelity-driven
//!   (Shor) half; default `all`.
//! * `--large` switches to the paper-scale instances (4×5 depth-15
//!   supremacy grids; shor_323_8 / shor_629_8 / shor_1157_8). Expect
//!   long exact runtimes — combine with `--skip-exact` to reproduce
//!   the paper's "Timeout" rows.
//! * `--skip-exact` omits the non-approximating reference runs.
//! * `--workers N` sizes the `BackendPool` the rows run on (default:
//!   the machine's available parallelism). Both halves use it: the
//!   memory-driven rows run entirely on the pool; the Shor half pools
//!   its exact reference runs (factoring itself stays serial).
//! * `--smoke` caps instances to a CI-sized workload (<60 s), adds a
//!   pool-speedup probe (the same batch on 1 worker vs. 4), and emits
//!   JSON (to `--json`, default `table1_smoke.json`). Exits non-zero
//!   if any row fails — CI runs exactly this.
//! * `--json PATH` writes the rows (and smoke probe, if any) as JSON.
//!
//! The memory-driven rows run with a fixed threshold
//! (`threshold_growth = 1.0`): the paper's text prescribes doubling,
//! but its reported round counts (~50–90) require the fixed-threshold
//! regime — see DESIGN.md §5a and EXPERIMENTS.md.

use std::process::ExitCode;
use std::time::Instant;

use approxdd_bench::{
    fidelity_driven_row, format_rows, memory_driven_rows_pooled, pool_batch_walltime, workloads,
    TableRow,
};
use approxdd_circuit::generators;
use approxdd_exec::PoolJob;
use approxdd_sim::json::Json;
use approxdd_sim::{Simulator, Strategy};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let part = arg_value(&args, "--part").unwrap_or_else(|| "all".to_string());
    let large = args.iter().any(|a| a == "--large");
    let smoke = args.iter().any(|a| a == "--smoke");
    let skip_exact = args.iter().any(|a| a == "--skip-exact");
    let json_path =
        arg_value(&args, "--json").or_else(|| smoke.then(|| "table1_smoke.json".to_string()));

    let pool = match approxdd_bench::pool_from_args(&args, Simulator::builder()) {
        Ok(pool) => pool,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("pool: {} workers", pool.workers());

    let mut rows: Vec<TableRow> = Vec::new();
    let mut failures = 0usize;
    let start = Instant::now();

    if part == "memory" || part == "all" {
        println!("== Memory-driven approximation (quantum-supremacy circuits) ==");
        let circuits = if smoke {
            workloads::supremacy_smoke()
        } else if large {
            workloads::supremacy_large()
        } else {
            workloads::supremacy_default()
        };
        let threshold = if smoke {
            1 << 8
        } else if large {
            1 << 15
        } else {
            workloads::SUPREMACY_THRESHOLD
        };
        let f_rounds: &[f64] = if smoke {
            &[0.99, 0.95]
        } else {
            &workloads::SUPREMACY_ROUND_FIDELITIES
        };
        let results =
            memory_driven_rows_pooled(&pool, &circuits, threshold, f_rounds, 1.0, skip_exact);
        for (i, result) in results.into_iter().enumerate() {
            let (circuit, f_round) = (&circuits[i / f_rounds.len()], f_rounds[i % f_rounds.len()]);
            match result {
                Ok(row) => {
                    eprintln!(
                        "  done: {} fround={f_round} ({} rounds, ffinal {:.3})",
                        row.name, row.rounds, row.f_final
                    );
                    rows.push(row);
                }
                Err(e) => {
                    failures += 1;
                    eprintln!("  FAILED {} fround={f_round}: {e}", circuit.name());
                }
            }
        }
    }

    if part == "fidelity" || part == "all" {
        println!("== Fidelity-driven approximation (Shor, target ffinal = 0.5) ==");
        let instances: Vec<(u64, u64)> = if smoke {
            workloads::SHOR_SMOKE.to_vec()
        } else {
            let mut v = workloads::SHOR_DEFAULT.to_vec();
            if large {
                v.extend_from_slice(&workloads::SHOR_LARGE);
            }
            v
        };
        // The exact reference runs — the expensive part of this half —
        // execute on the pool; the approximate run plus classical
        // post-processing stays serial per row (factor() owns its own
        // simulation). The paper's exact runs of the two largest
        // instances timed out; skip exact there unless the user insists.
        let mut jobs = Vec::new();
        let mut job_instance = Vec::new();
        for (i, &(n, a)) in instances.iter().enumerate() {
            if skip_exact || (large && n >= 629) {
                continue;
            }
            match approxdd_shor::shor_circuit(n, a) {
                Ok(circuit) => {
                    jobs.push(PoolJob::new(circuit).strategy(Strategy::Exact));
                    job_instance.push(i);
                }
                Err(e) => eprintln!("  exact ref skipped for shor_{n}_{a}: {e}"),
            }
        }
        let mut exact_refs: Vec<Option<(usize, std::time::Duration)>> = vec![None; instances.len()];
        for (j, result) in pool.run_jobs(jobs).into_iter().enumerate() {
            let (n, a) = instances[job_instance[j]];
            match result {
                Ok(o) => exact_refs[job_instance[j]] = Some((o.stats.peak_size, o.stats.runtime)),
                Err(e) => {
                    failures += 1;
                    eprintln!("  FAILED exact ref shor_{n}_{a}: {e}");
                }
            }
        }
        for (i, &(n, a)) in instances.iter().enumerate() {
            match fidelity_driven_row(n, a, 0.5, 0.9, true) {
                Ok(mut row) => {
                    if let Some((max_dd, runtime)) = exact_refs[i] {
                        row.exact_max_dd = Some(max_dd);
                        row.exact_runtime = Some(runtime);
                    }
                    eprintln!(
                        "  done: {} ({} rounds, ffinal {:.3}, factored: {:?})",
                        row.name, row.rounds, row.f_final, row.factored
                    );
                    rows.push(row);
                }
                Err(e) => {
                    failures += 1;
                    eprintln!("  FAILED shor_{n}_{a}: {e}");
                }
            }
        }
    }

    println!();
    println!("{}", format_rows(&rows));
    println!("(Exact columns '-' reproduce the paper's Timeout entries / --skip-exact.)");

    let speedup = smoke.then(|| measure_pool_speedup(&mut failures));
    let snapshot = smoke.then(|| measure_snapshot_probe(pool.workers(), &mut failures));

    if let Some(path) = json_path {
        // Pool-level cache aggregate: hit rate and node high-water mark
        // across the workers' DD packages — the per-PR cache-behavior
        // trajectory CI archives alongside the per-row columns.
        let pool_stats = pool.stats();
        let mut report = vec![
            (
                "mode".to_string(),
                Json::str(if smoke { "smoke" } else { "full" }),
            ),
            ("workers".to_string(), Json::int(pool.workers())),
            (
                "wall_seconds".to_string(),
                Json::Num(start.elapsed().as_secs_f64()),
            ),
            ("failures".to_string(), Json::int(failures)),
            (
                "cache".to_string(),
                Json::obj([
                    ("ct_hit_rate", Json::Num(pool_stats.ct_hit_rate())),
                    ("peak_nodes", Json::int(pool_stats.peak_nodes())),
                ]),
            ),
            // Resilience counters: all zero on a happy-path run (CI
            // asserts exactly that) — a nonzero respawn count here
            // means a worker died on a real bench workload.
            (
                "resilience".to_string(),
                Json::obj([
                    ("respawns", Json::int(pool_stats.respawns)),
                    ("retries", Json::int(pool_stats.retries)),
                    ("deadline_exceeded", Json::int(pool_stats.deadline_exceeded)),
                ]),
            ),
            (
                "rows".to_string(),
                Json::Arr(rows.iter().map(TableRow::to_json).collect()),
            ),
            // Phase-time breakdown and top counters from the process
            // telemetry registry — the same series `GET /metrics`
            // exposes, here as JSON for CI archiving.
            (
                "telemetry".to_string(),
                approxdd_sim::ndjson::telemetry_json(),
            ),
        ];
        if let Some(probe) = speedup.flatten() {
            report.push(("pool_speedup".to_string(), probe));
        }
        if let Some(probe) = snapshot.flatten() {
            report.push(("snapshot".to_string(), probe));
        }
        let text = Json::Obj(report).to_string();
        match std::fs::write(&path, text) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                failures += 1;
                eprintln!("FAILED writing {path}: {e}");
            }
        }
    }

    if smoke && failures > 0 {
        eprintln!("smoke run had {failures} failure(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The bench-smoke speedup probe: the same 16-circuit batch on a
/// 1-worker and a 4-worker pool. CI archives the ratio per PR; the
/// (ignored-by-default) contract test asserts it stays ≤ 0.6.
fn measure_pool_speedup(failures: &mut usize) -> Option<Json> {
    let circuits: Vec<_> = (0..16)
        .map(|seed| generators::supremacy(4, 4, 8, seed))
        .collect();
    let template = || Simulator::builder().strategy(Strategy::memory_driven_table1(1 << 11, 0.97));
    let serial = match pool_batch_walltime(template(), 1, &circuits) {
        Ok(d) => d,
        Err(e) => {
            *failures += 1;
            eprintln!("speedup probe FAILED (1 worker): {e}");
            return None;
        }
    };
    let parallel = match pool_batch_walltime(template(), 4, &circuits) {
        Ok(d) => d,
        Err(e) => {
            *failures += 1;
            eprintln!("speedup probe FAILED (4 workers): {e}");
            return None;
        }
    };
    let ratio = parallel.as_secs_f64() / serial.as_secs_f64();
    eprintln!(
        "pool speedup probe: 16 circuits, 1 worker {:.3}s vs 4 workers {:.3}s (ratio {ratio:.3})",
        serial.as_secs_f64(),
        parallel.as_secs_f64()
    );
    Some(Json::obj([
        ("circuits", Json::int(16)),
        ("baseline_workers", Json::int(1)),
        ("parallel_workers", Json::int(4)),
        ("baseline_seconds", Json::Num(serial.as_secs_f64())),
        ("parallel_seconds", Json::Num(parallel.as_secs_f64())),
        ("ratio", Json::Num(ratio)),
    ]))
}

/// The bench-smoke copy-on-write snapshot probe (see
/// `approxdd_bench::snapshot_probe`): a repeated-circuit batch with
/// snapshots off vs. on. Fails the smoke run if fingerprints diverge
/// — wall-time is archived for trending, never asserted (CI machines
/// are too noisy for that).
fn measure_snapshot_probe(workers: usize, failures: &mut usize) -> Option<Json> {
    match approxdd_bench::snapshot_probe(workers) {
        Ok(probe) => {
            let identical = matches!(probe.get("fingerprints_identical"), Some(&Json::Bool(true)));
            if !identical {
                *failures += 1;
                eprintln!("snapshot probe FAILED: fingerprints diverge between on and off");
            }
            eprintln!("snapshot probe: {probe}");
            Some(probe)
        }
        Err(e) => {
            *failures += 1;
            eprintln!("snapshot probe FAILED: {e}");
            None
        }
    }
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

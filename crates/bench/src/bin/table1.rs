//! Regenerates Table I of the paper.
//!
//! ```text
//! table1 [--part memory|fidelity|all] [--large] [--skip-exact]
//! ```
//!
//! * `--part` selects the memory-driven (supremacy) or fidelity-driven
//!   (Shor) half; default `all`.
//! * `--large` switches to the paper-scale instances (4×5 depth-15
//!   supremacy grids; shor_323_8 / shor_629_8 / shor_1157_8). Expect
//!   long exact runtimes — combine with `--skip-exact` to reproduce
//!   the paper's "Timeout" rows.
//! * `--skip-exact` omits the non-approximating reference runs.
//!
//! The memory-driven rows run with a fixed threshold
//! (`threshold_growth = 1.0`): the paper's text prescribes doubling,
//! but its reported round counts (~50–90) require the fixed-threshold
//! regime — see DESIGN.md §5a and EXPERIMENTS.md.

use approxdd_bench::{fidelity_driven_row, format_rows, memory_driven_row, workloads, TableRow};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let part = arg_value(&args, "--part").unwrap_or_else(|| "all".to_string());
    let large = args.iter().any(|a| a == "--large");
    let skip_exact = args.iter().any(|a| a == "--skip-exact");

    let mut rows: Vec<TableRow> = Vec::new();

    if part == "memory" || part == "all" {
        println!("== Memory-driven approximation (quantum-supremacy circuits) ==");
        let circuits = if large {
            workloads::supremacy_large()
        } else {
            workloads::supremacy_default()
        };
        let threshold = if large {
            1 << 15
        } else {
            workloads::SUPREMACY_THRESHOLD
        };
        for circuit in &circuits {
            for f_round in workloads::SUPREMACY_ROUND_FIDELITIES {
                match memory_driven_row(circuit, threshold, f_round, 1.0, skip_exact) {
                    Ok(row) => {
                        eprintln!(
                            "  done: {} fround={f_round} ({} rounds, ffinal {:.3})",
                            row.name, row.rounds, row.f_final
                        );
                        rows.push(row);
                    }
                    Err(e) => eprintln!("  FAILED {} fround={f_round}: {e}", circuit.name()),
                }
            }
        }
    }

    if part == "fidelity" || part == "all" {
        println!("== Fidelity-driven approximation (Shor, target ffinal = 0.5) ==");
        let mut instances: Vec<(u64, u64)> = workloads::SHOR_DEFAULT.to_vec();
        if large {
            instances.extend_from_slice(&workloads::SHOR_LARGE);
        }
        for (n, a) in instances {
            // The paper's exact runs of the two largest instances timed
            // out; skip exact there unless the user insists.
            let skip = skip_exact || (large && n >= 629);
            match fidelity_driven_row(n, a, 0.5, 0.9, skip) {
                Ok(row) => {
                    eprintln!(
                        "  done: {} ({} rounds, ffinal {:.3}, factored: {:?})",
                        row.name, row.rounds, row.f_final, row.factored
                    );
                    rows.push(row);
                }
                Err(e) => eprintln!("  FAILED shor_{n}_{a}: {e}"),
            }
        }
    }

    println!();
    println!("{}", format_rows(&rows));
    println!("(Exact columns '-' reproduce the paper's Timeout entries / --skip-exact.)");
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

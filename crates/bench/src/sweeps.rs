//! Parameter sweeps backing the ablation figures: the per-round
//! fidelity sweep (extending the memory-driven rows of Table I into a
//! series) and the rounds-vs-fidelity tradeoff of Section IV-C.

use std::time::Duration;

use approxdd_backend::{BuildBackend, ExecError};
use approxdd_circuit::Circuit;
use approxdd_exec::{BackendPool, PoolJob};
use approxdd_sim::{Simulator, Strategy};

use crate::run_stats;

/// One point of the `f_round` sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Per-round target fidelity.
    pub f_round: f64,
    /// Maximum DD node count during the run.
    pub max_dd_size: usize,
    /// Rounds performed.
    pub rounds: usize,
    /// Final measured fidelity.
    pub f_final: f64,
    /// Wall-clock runtime.
    pub runtime: Duration,
}

/// Sweeps the memory-driven strategy over per-round fidelities on one
/// circuit, holding the node threshold fixed. The paper's Table I shows
/// three such points per instance; this produces the full series.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn round_fidelity_sweep(
    circuit: &Circuit,
    node_threshold: usize,
    f_rounds: &[f64],
) -> Result<Vec<SweepPoint>, ExecError> {
    let mut out = Vec::with_capacity(f_rounds.len());
    for &f_round in f_rounds {
        let mut backend = Simulator::builder()
            .memory_driven_table1(node_threshold, f_round)
            .build_backend();
        let stats = run_stats(&mut backend, circuit)?;
        out.push(SweepPoint {
            f_round,
            max_dd_size: stats.peak_size,
            rounds: stats.approx_rounds,
            f_final: stats.fidelity,
            runtime: stats.runtime,
        });
    }
    Ok(out)
}

/// [`round_fidelity_sweep`] with every point running concurrently on a
/// [`BackendPool`] (per-job strategy overrides over the shared
/// template). Point order, and all statistics except wall-clock
/// runtimes, are identical to the serial sweep.
///
/// # Errors
///
/// The first failing point's error.
pub fn round_fidelity_sweep_pooled(
    pool: &BackendPool,
    circuit: &Circuit,
    node_threshold: usize,
    f_rounds: &[f64],
) -> Result<Vec<SweepPoint>, ExecError> {
    let jobs = f_rounds
        .iter()
        .map(|&f_round| {
            PoolJob::new(circuit.clone())
                .strategy(Strategy::memory_driven_table1(node_threshold, f_round))
        })
        .collect();
    f_rounds
        .iter()
        .zip(pool.run_jobs(jobs))
        .map(|(&f_round, result)| {
            result.map(|o| SweepPoint {
                f_round,
                max_dd_size: o.stats.peak_size,
                rounds: o.stats.approx_rounds,
                f_final: o.stats.fidelity,
                runtime: o.stats.runtime,
            })
        })
        .collect()
}

/// One point of the rounds-tradeoff ablation: the same total fidelity
/// budget split across `k` rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffPoint {
    /// Number of scheduled rounds.
    pub rounds_requested: usize,
    /// Per-round fidelity used (`f_final^(1/k)`).
    pub f_round: f64,
    /// Rounds actually performed.
    pub rounds_performed: usize,
    /// Maximum DD node count.
    pub max_dd_size: usize,
    /// Final measured fidelity.
    pub f_final: f64,
    /// Wall-clock runtime.
    pub runtime: Duration,
}

/// The Section IV-C tradeoff: few aggressive rounds vs. many gentle
/// rounds at (approximately) the same total budget. For each `k` in
/// `round_counts`, runs fidelity-driven with `f_round = f_final^(1/k)`
/// — so the scheduled round count is exactly `k` and the guaranteed
/// floor is `f_final` in every configuration.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn rounds_tradeoff(
    circuit: &Circuit,
    final_fidelity: f64,
    round_counts: &[usize],
) -> Result<Vec<TradeoffPoint>, ExecError> {
    let mut out = Vec::with_capacity(round_counts.len());
    for &k in round_counts {
        assert!(k > 0, "round counts must be positive");
        let f_round = final_fidelity.powf(1.0 / k as f64);
        let mut backend = Simulator::builder()
            .fidelity_driven(final_fidelity, f_round)
            .build_backend();
        let stats = run_stats(&mut backend, circuit)?;
        out.push(TradeoffPoint {
            rounds_requested: k,
            f_round,
            rounds_performed: stats.approx_rounds,
            max_dd_size: stats.peak_size,
            f_final: stats.fidelity,
            runtime: stats.runtime,
        });
    }
    Ok(out)
}

/// [`rounds_tradeoff`] with every `k` running concurrently on a
/// [`BackendPool`]. Point order, and all statistics except wall-clock
/// runtimes, are identical to the serial tradeoff.
///
/// # Errors
///
/// The first failing point's error.
pub fn rounds_tradeoff_pooled(
    pool: &BackendPool,
    circuit: &Circuit,
    final_fidelity: f64,
    round_counts: &[usize],
) -> Result<Vec<TradeoffPoint>, ExecError> {
    let jobs = round_counts
        .iter()
        .map(|&k| {
            assert!(k > 0, "round counts must be positive");
            let f_round = final_fidelity.powf(1.0 / k as f64);
            PoolJob::new(circuit.clone())
                .strategy(Strategy::fidelity_driven(final_fidelity, f_round))
        })
        .collect();
    round_counts
        .iter()
        .zip(pool.run_jobs(jobs))
        .map(|(&k, result)| {
            result.map(|o| TradeoffPoint {
                rounds_requested: k,
                f_round: final_fidelity.powf(1.0 / k as f64),
                rounds_performed: o.stats.approx_rounds,
                max_dd_size: o.stats.peak_size,
                f_final: o.stats.fidelity,
                runtime: o.stats.runtime,
            })
        })
        .collect()
}

/// Renders sweep points as an aligned text table.
#[must_use]
pub fn format_sweep(points: &[SweepPoint]) -> String {
    let mut out = format!(
        "{:>8} {:>12} {:>8} {:>10} {:>12}\n",
        "fround", "MaxDDSize", "Rounds", "ffinal", "Runtime[s]"
    );
    for p in points {
        out.push_str(&format!(
            "{:>8.4} {:>12} {:>8} {:>10.4} {:>12.4}\n",
            p.f_round,
            p.max_dd_size,
            p.rounds,
            p.f_final,
            p.runtime.as_secs_f64()
        ));
    }
    out
}

/// Renders tradeoff points as an aligned text table.
#[must_use]
pub fn format_tradeoff(points: &[TradeoffPoint]) -> String {
    let mut out = format!(
        "{:>8} {:>10} {:>10} {:>12} {:>10} {:>12}\n",
        "k", "fround", "performed", "MaxDDSize", "ffinal", "Runtime[s]"
    );
    for p in points {
        out.push_str(&format!(
            "{:>8} {:>10.4} {:>10} {:>12} {:>10.4} {:>12.4}\n",
            p.rounds_requested,
            p.f_round,
            p.rounds_performed,
            p.max_dd_size,
            p.f_final,
            p.runtime.as_secs_f64()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_circuit::generators;

    #[test]
    fn sweep_lower_fidelity_never_grows_dd() {
        let c = generators::supremacy(2, 3, 10, 0);
        let pts = round_fidelity_sweep(&c, 8, &[0.99, 0.95, 0.90]).unwrap();
        assert_eq!(pts.len(), 3);
        // Lower per-round fidelity ⇒ (weakly) smaller max DD and lower
        // final fidelity — the monotonicity visible in Table I.
        for w in pts.windows(2) {
            assert!(w[1].max_dd_size <= w[0].max_dd_size + 2);
            assert!(w[1].f_final <= w[0].f_final + 1e-9);
        }
    }

    #[test]
    fn tradeoff_respects_floor_in_all_configs() {
        let c = generators::supremacy(2, 3, 12, 1);
        let pts = rounds_tradeoff(&c, 0.6, &[1, 2, 4]).unwrap();
        for p in &pts {
            assert!(
                p.f_final >= 0.6 - 1e-9,
                "k={} fidelity {}",
                p.rounds_requested,
                p.f_final
            );
            assert!(p.rounds_performed <= p.rounds_requested);
        }
    }

    #[test]
    fn pooled_sweeps_match_serial_up_to_runtime() {
        use approxdd_exec::BuildPool;
        let c = generators::supremacy(2, 3, 10, 0);
        let pool = Simulator::builder().workers(4).build_pool();

        let serial = round_fidelity_sweep(&c, 8, &[0.99, 0.95]).unwrap();
        let pooled = round_fidelity_sweep_pooled(&pool, &c, 8, &[0.99, 0.95]).unwrap();
        assert_eq!(serial.len(), pooled.len());
        for (s, p) in serial.iter().zip(&pooled) {
            assert_eq!(s.f_round, p.f_round);
            assert_eq!(s.max_dd_size, p.max_dd_size);
            assert_eq!(s.rounds, p.rounds);
            assert_eq!(s.f_final.to_bits(), p.f_final.to_bits());
        }

        let serial = rounds_tradeoff(&c, 0.7, &[1, 2]).unwrap();
        let pooled = rounds_tradeoff_pooled(&pool, &c, 0.7, &[1, 2]).unwrap();
        for (s, p) in serial.iter().zip(&pooled) {
            assert_eq!(s.rounds_requested, p.rounds_requested);
            assert_eq!(s.rounds_performed, p.rounds_performed);
            assert_eq!(s.max_dd_size, p.max_dd_size);
            assert_eq!(s.f_final.to_bits(), p.f_final.to_bits());
        }
    }

    #[test]
    fn formatting_smoke() {
        let c = generators::supremacy(2, 2, 6, 0);
        let pts = round_fidelity_sweep(&c, 4, &[0.95]).unwrap();
        assert!(format_sweep(&pts).contains("fround"));
        let pts = rounds_tradeoff(&c, 0.8, &[2]).unwrap();
        assert!(format_tradeoff(&pts).contains("performed"));
    }
}

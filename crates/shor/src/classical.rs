//! Classical number theory: the non-quantum parts of Shor's algorithm.

/// Greatest common divisor (Euclid).
#[must_use]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Modular multiplication without overflow (via `u128`).
///
/// # Panics
///
/// Panics if `m == 0`.
#[must_use]
pub fn modmul(a: u64, b: u64, m: u64) -> u64 {
    assert!(m != 0, "modulus must be nonzero");
    ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64
}

/// Modular exponentiation `base^exp mod m`.
///
/// # Panics
///
/// Panics if `m == 0`.
#[must_use]
pub fn modpow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    assert!(m != 0, "modulus must be nonzero");
    if m == 1 {
        return 0;
    }
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = modmul(acc, base, m);
        }
        base = modmul(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller–Rabin primality test for `u64` (uses the known
/// complete witness set for 64-bit integers).
#[must_use]
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = modpow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = modmul(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// If `n = b^k` for some integers `b >= 2`, `k >= 2`, returns `(b, k)`.
#[must_use]
pub fn perfect_power(n: u64) -> Option<(u64, u32)> {
    if n < 4 {
        return None;
    }
    for k in (2..=n.ilog2()).rev() {
        let b = nth_root(n, k);
        for cand in [b.saturating_sub(1), b, b + 1] {
            if cand >= 2 && (cand.checked_pow(k) == Some(n)) {
                return Some((cand, k));
            }
        }
    }
    None
}

/// Integer `k`-th root (floor).
fn nth_root(n: u64, k: u32) -> u64 {
    let mut r = (n as f64).powf(1.0 / f64::from(k)).round() as u64;
    // Fix up floating error.
    while r.checked_pow(k).is_none_or(|p| p > n) {
        r -= 1;
    }
    while (r + 1).checked_pow(k).is_some_and(|p| p <= n) {
        r += 1;
    }
    r
}

/// Number of bits needed to represent `n` (`bits(0) == 0`).
#[must_use]
pub fn bit_length(n: u64) -> usize {
    (64 - n.leading_zeros()) as usize
}

/// The continued-fraction convergents of `num / den`, returned as
/// `(numerator, denominator)` pairs in increasing accuracy.
///
/// # Panics
///
/// Panics if `den == 0`.
#[must_use]
pub fn convergents(mut num: u64, mut den: u64) -> Vec<(u64, u64)> {
    assert!(den != 0, "denominator must be nonzero");
    let mut result = Vec::new();
    // h/k convergent recurrences.
    let (mut h0, mut h1) = (0u64, 1u64);
    let (mut k0, mut k1) = (1u64, 0u64);
    while den != 0 {
        let a = num / den;
        (num, den) = (den, num % den);
        let h2 = a.saturating_mul(h1).saturating_add(h0);
        let k2 = a.saturating_mul(k1).saturating_add(k0);
        (h0, h1) = (h1, h2);
        (k0, k1) = (k1, k2);
        result.push((h1, k1));
    }
    result
}

/// Extracts candidate orders from a phase-estimation sample `y` measured
/// on an `m`-bit counting register: denominators of the convergents of
/// `y / 2^m`, bounded by `max_order`, plus their small multiples (which
/// recover the order when `gcd(s, r) > 1` shortened the fraction).
#[must_use]
pub fn order_candidates(y: u64, m: u32, max_order: u64) -> Vec<u64> {
    if y == 0 {
        return Vec::new();
    }
    let den = 1u64 << m;
    let mut out = Vec::new();
    for (_, k) in convergents(y, den) {
        if k == 0 || k > max_order {
            continue;
        }
        for mult in 1..=4u64 {
            let cand = k.saturating_mul(mult);
            if cand <= max_order && !out.contains(&cand) {
                out.push(cand);
            }
        }
    }
    out.sort_unstable();
    out
}

/// The multiplicative order of `a` modulo `n` computed classically by
/// brute force — the test oracle for the quantum order finder. Returns
/// `None` if `gcd(a, n) != 1`.
#[must_use]
pub fn multiplicative_order(a: u64, n: u64) -> Option<u64> {
    if n == 0 || gcd(a, n) != 1 {
        return None;
    }
    let mut x = a % n;
    let mut r = 1u64;
    while x != 1 {
        x = modmul(x, a, n);
        r += 1;
        if r > n {
            return None; // unreachable for valid inputs
        }
    }
    Some(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
    }

    #[test]
    fn modpow_matches_naive() {
        for (b, e, m) in [
            (3u64, 7u64, 11u64),
            (2, 10, 1000),
            (5, 0, 7),
            (123, 45, 997),
        ] {
            let mut naive = 1u64 % m;
            for _ in 0..e {
                naive = naive * b % m;
            }
            assert_eq!(modpow(b, e, m), naive, "{b}^{e} mod {m}");
        }
    }

    #[test]
    fn modmul_survives_large_operands() {
        let big = u64::MAX - 1;
        // (2^64-2)^2 mod (2^64-1) = 1
        assert_eq!(modmul(big, big, u64::MAX), 1);
    }

    #[test]
    fn primality_known_values() {
        let primes = [2u64, 3, 5, 7, 97, 7919, 1_000_000_007, 2_147_483_647];
        for p in primes {
            assert!(is_prime(p), "{p} is prime");
        }
        let composites = [1u64, 4, 15, 33, 55, 221, 323, 629, 1157, 1_000_000_008];
        for c in composites {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn perfect_power_detection() {
        assert_eq!(perfect_power(8), Some((2, 3)));
        assert_eq!(perfect_power(81), Some((3, 4)));
        assert_eq!(perfect_power(49), Some((7, 2)));
        assert_eq!(perfect_power(15), None);
        assert_eq!(perfect_power(2), None);
    }

    #[test]
    fn bit_lengths() {
        assert_eq!(bit_length(0), 0);
        assert_eq!(bit_length(1), 1);
        assert_eq!(bit_length(33), 6);
        assert_eq!(bit_length(1157), 11);
    }

    #[test]
    fn convergents_of_pi_ish() {
        // 355/113 is a famous convergent of pi; check with 314159/100000.
        let conv = convergents(314_159, 100_000);
        assert!(conv.contains(&(355, 113)), "{conv:?}");
    }

    #[test]
    fn order_candidates_recover_period() {
        // Simulate an ideal phase-estimation sample: r = 4, s = 1,
        // m = 8 bits -> y = 64.
        let cands = order_candidates(64, 8, 100);
        assert!(cands.contains(&4), "{cands:?}");
        // s/r = 3/4 -> y = 192 gives denominator 4 directly.
        let cands = order_candidates(192, 8, 100);
        assert!(cands.contains(&4), "{cands:?}");
        // s/r = 2/4 = 1/2: denominator 2; the multiple 4 must appear.
        let cands = order_candidates(128, 8, 100);
        assert!(cands.contains(&4), "{cands:?}");
    }

    #[test]
    fn multiplicative_orders() {
        assert_eq!(multiplicative_order(7, 15), Some(4));
        assert_eq!(multiplicative_order(2, 15), Some(4));
        assert_eq!(multiplicative_order(5, 33), Some(10));
        assert_eq!(multiplicative_order(2, 33), Some(10));
        assert_eq!(multiplicative_order(3, 15), None, "not coprime");
        for a in [2u64, 5, 7, 8] {
            let r = multiplicative_order(a, 33).unwrap();
            assert_eq!(modpow(a, r, 33), 1);
        }
    }
}

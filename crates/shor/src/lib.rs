//! Shor's factoring algorithm on the approximate DD simulator.
//!
//! This crate reproduces the paper's fidelity-driven benchmark family
//! (`shor_N_a` in Table I): the 3n-qubit textbook phase-estimation
//! construction — 2n counting qubits, an n-qubit work register, one
//! controlled modular multiplication per counting qubit, and a final
//! inverse QFT (Fig. 2 of the paper) — simulated with approximation
//! rounds during the inverse QFT, followed by the classical
//! post-processing (continued fractions, order verification, factor
//! extraction) that turns measurement samples into factors.
//!
//! The paper's headline observation holds here: Shor's algorithm
//! tolerates final-state fidelities around 50 % because the classical
//! post-processing only needs *some* samples to land near multiples of
//! `2^{2n}/r`.
//!
//! # Examples
//!
//! ```
//! use approxdd_shor::{factor, FactorOptions};
//!
//! # fn main() -> Result<(), approxdd_shor::ShorError> {
//! let outcome = factor(15, &FactorOptions::default())?;
//! let (p, q) = outcome.factors;
//! assert_eq!(p * q, 15);
//! # Ok(())
//! # }
//! ```

pub mod classical;
mod error;
mod factoring;
mod shor_circuit;

pub use error::ShorError;
pub use factoring::{
    classical_order_check, factor, find_order, FactorOptions, FactorOutcome, OrderFinding,
};
pub use shor_circuit::{counting_qubits, shor_circuit, work_qubits};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ShorError>;

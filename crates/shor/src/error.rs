//! Error type for the Shor pipeline.

use std::error::Error;
use std::fmt;

use approxdd_sim::SimError;

/// Errors from circuit construction, simulation, or factoring.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ShorError {
    /// The number is trivially non-factorable this way (0, 1, or prime).
    NotComposite {
        /// The offending number.
        n: u64,
    },
    /// The chosen base shares a factor with `n` — not an error for
    /// factoring (the gcd *is* a factor) but invalid for order finding.
    BaseNotCoprime {
        /// The base.
        a: u64,
        /// The modulus.
        n: u64,
    },
    /// The instance needs more qubits than the engine supports.
    TooLarge {
        /// The number to factor.
        n: u64,
        /// Qubits required.
        qubits: usize,
    },
    /// Order finding exhausted its sample budget without a verified
    /// order.
    OrderNotFound {
        /// The base used.
        a: u64,
        /// The modulus.
        n: u64,
    },
    /// All factoring attempts failed (unlucky bases / odd orders).
    AttemptsExhausted {
        /// The number to factor.
        n: u64,
        /// Attempts made.
        attempts: usize,
    },
    /// An underlying simulator error.
    Sim(SimError),
}

impl fmt::Display for ShorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShorError::NotComposite { n } => write!(f, "{n} is not an odd composite"),
            ShorError::BaseNotCoprime { a, n } => {
                write!(f, "base {a} is not coprime to {n}")
            }
            ShorError::TooLarge { n, qubits } => {
                write!(
                    f,
                    "factoring {n} needs {qubits} qubits, beyond engine limits"
                )
            }
            ShorError::OrderNotFound { a, n } => {
                write!(
                    f,
                    "no verified order of {a} mod {n} within the sample budget"
                )
            }
            ShorError::AttemptsExhausted { n, attempts } => {
                write!(f, "failed to factor {n} after {attempts} attempts")
            }
            ShorError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl Error for ShorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ShorError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ShorError {
    fn from(e: SimError) -> Self {
        ShorError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ShorError::NotComposite { n: 17 }.to_string().contains("17"));
        assert!(ShorError::BaseNotCoprime { a: 6, n: 15 }
            .to_string()
            .contains("coprime"));
    }
}

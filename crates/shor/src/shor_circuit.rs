//! Shor circuit construction (Fig. 2 of the paper).
//!
//! Layout for factoring an `n_bits`-bit number `N`:
//!
//! * **work register**: qubits `[0, n_bits)`, initialized to `|1⟩`;
//! * **counting register**: qubits `[n_bits, 3·n_bits)`, `2·n_bits`
//!   qubits wide (the paper's benchmarks use exactly `3n` qubits:
//!   `shor_33_5` → 18, `shor_1157_8` → 33).
//!
//! The circuit: H on all counting qubits; for each counting qubit `j` a
//! controlled modular multiplication by `a^{2^j} mod N` on the work
//! register (an [`Operation::Permutation`] block — multiplication by a
//! unit of Z_N permutes basis states); then the inverse QFT on the
//! counting register. Approximation markers sit after every modular
//! multiplication and inside the inverse QFT, the block boundaries of
//! Example 10.

use approxdd_circuit::{generators, Circuit, Control};

use crate::classical::{bit_length, gcd, modmul};
use crate::error::ShorError;
use crate::Result;

/// The work-register qubit range for factoring `n`.
#[must_use]
pub fn work_qubits(n: u64) -> std::ops::Range<usize> {
    0..bit_length(n)
}

/// The counting-register qubit range for factoring `n`.
#[must_use]
pub fn counting_qubits(n: u64) -> std::ops::Range<usize> {
    let b = bit_length(n);
    b..3 * b
}

/// Builds the Shor circuit for factoring `n` with base `a`
/// (benchmark name `shor_<n>_<a>`).
///
/// # Errors
///
/// * [`ShorError::NotComposite`] for `n < 3` or even `n`;
/// * [`ShorError::BaseNotCoprime`] if `gcd(a, n) != 1`;
/// * [`ShorError::TooLarge`] if the 3n-qubit register exceeds engine
///   limits (work register ≤ 26 qubits).
pub fn shor_circuit(n: u64, a: u64) -> Result<Circuit> {
    if n < 3 || n.is_multiple_of(2) {
        return Err(ShorError::NotComposite { n });
    }
    if a < 2 || gcd(a, n) != 1 {
        return Err(ShorError::BaseNotCoprime { a, n });
    }
    let n_work = bit_length(n);
    let n_count = 2 * n_work;
    let total = n_work + n_count;
    if n_work > 26 || total > 255 {
        return Err(ShorError::TooLarge { n, qubits: total });
    }

    let mut c = Circuit::new(total, format!("shor_{n}_{a}"));

    // Work register to |1>.
    c.x(0);
    // Counting register into uniform superposition.
    for j in 0..n_count {
        c.h(n_work + j);
    }

    // Controlled modular multiplications: counting qubit j controls
    // multiplication by a^(2^j) mod n.
    let dim = 1usize << n_work;
    let mut a_pow = a % n;
    for j in 0..n_count {
        let perm = multiplication_permutation(a_pow, n, dim);
        c.permutation(
            0,
            n_work,
            perm,
            &[Control::positive(n_work + j)],
            format!("*{a}^(2^{j}) mod {n}"),
        );
        c.approx_point();
        a_pow = modmul(a_pow, a_pow, n);
    }

    // Inverse QFT on the counting register, with approximation markers
    // after each qubit block (Example 10).
    let iqft = generators::inverse_qft(n_count, true);
    c.append(&iqft, n_work);
    Ok(c)
}

/// The basis permutation of multiplication by `m` modulo `n` on a
/// `dim`-element register: `x → m·x mod n` for `x < n`, identity above.
/// A bijection because `m` is a unit of Z_n.
fn multiplication_permutation(m: u64, n: u64, dim: usize) -> Vec<usize> {
    (0..dim)
        .map(|x| {
            if (x as u64) < n {
                modmul(m, x as u64, n) as usize
            } else {
                x
            }
        })
        .collect()
}

/// The classically-known modular exponent `a^(2^j) mod n` — used by
/// tests that validate gate construction.
#[cfg(test)]
pub(crate) fn power_of_base(a: u64, j: u32, n: u64) -> u64 {
    crate::classical::modpow(a, 1u64 << j, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_circuit::Operation;

    #[test]
    fn shor_33_5_matches_paper_width() {
        let c = shor_circuit(33, 5).unwrap();
        assert_eq!(c.n_qubits(), 18, "paper lists shor_33_5 at 18 qubits");
        c.validate().unwrap();
    }

    #[test]
    fn paper_benchmark_widths() {
        for (n, a, qubits) in [
            (33u64, 5u64, 18usize),
            (55, 2, 18),
            (69, 2, 21),
            (221, 4, 24),
            (323, 8, 27),
            (629, 8, 30),
            (1157, 8, 33),
        ] {
            let c = shor_circuit(n, a).unwrap();
            assert_eq!(c.n_qubits(), qubits, "shor_{n}_{a}");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            shor_circuit(16, 3),
            Err(ShorError::NotComposite { .. })
        ));
        assert!(matches!(
            shor_circuit(15, 6),
            Err(ShorError::BaseNotCoprime { .. })
        ));
        assert!(matches!(
            shor_circuit(2, 3),
            Err(ShorError::NotComposite { .. })
        ));
    }

    #[test]
    fn multiplication_permutation_is_bijective() {
        let perm = multiplication_permutation(7, 15, 16);
        let mut seen = [false; 16];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        // x >= n untouched.
        assert_eq!(perm[15], 15);
        // 7*2 mod 15 = 14.
        assert_eq!(perm[2], 14);
    }

    #[test]
    fn controlled_multiplications_use_successive_squares() {
        let c = shor_circuit(15, 7).unwrap();
        let perms: Vec<&Operation> = c
            .ops()
            .iter()
            .filter(|op| matches!(op, Operation::Permutation { .. }))
            .collect();
        assert_eq!(perms.len(), 8, "2n controlled multiplications");
        // First multiplication is by 7, second by 7^2 = 4 mod 15.
        if let Operation::Permutation { perm, .. } = perms[0] {
            assert_eq!(perm[1], 7);
        }
        if let Operation::Permutation { perm, .. } = perms[1] {
            assert_eq!(perm[1], 4);
        }
        assert_eq!(power_of_base(7, 1, 15), 4);
    }

    #[test]
    fn counting_register_controls_are_ascending() {
        let c = shor_circuit(15, 7).unwrap();
        let mut controls = Vec::new();
        for op in c.ops() {
            if let Operation::Permutation { controls: ctl, .. } = op {
                controls.push(ctl[0].qubit);
            }
        }
        let expect: Vec<usize> = (4..12).collect();
        assert_eq!(controls, expect);
    }

    #[test]
    fn register_helpers() {
        assert_eq!(work_qubits(33), 0..6);
        assert_eq!(counting_qubits(33), 6..18);
    }
}

//! Quantum order finding and the classical factoring loop.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use approxdd_sim::{SimStats, Simulator, Strategy};

use crate::classical::{
    bit_length, gcd, is_prime, modpow, multiplicative_order, order_candidates, perfect_power,
};
use crate::error::ShorError;
use crate::shor_circuit::shor_circuit;
use crate::Result;

/// Options for the factoring pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorOptions {
    /// Simulation strategy. The paper's configuration is fidelity-driven
    /// with `f_final = 0.5`, `f_round = 0.9`; the default here matches.
    pub strategy: Strategy,
    /// Measurement samples drawn per simulation (one simulation serves
    /// many samples — sampling a DD is `O(qubits)` per shot).
    pub shots: usize,
    /// Bases to try before giving up.
    pub max_attempts: usize,
    /// RNG seed for base selection and sampling (deterministic runs).
    pub seed: u64,
    /// Optional fixed base (the benchmark instances fix `a`).
    pub base: Option<u64>,
}

impl Default for FactorOptions {
    fn default() -> Self {
        Self {
            strategy: Strategy::FidelityDriven {
                final_fidelity: 0.5,
                round_fidelity: 0.9,
            },
            shots: 64,
            max_attempts: 8,
            seed: 0xD1CE,
            base: None,
        }
    }
}

/// The result of one quantum order-finding run.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderFinding {
    /// The verified multiplicative order of `a` mod `n`.
    pub order: u64,
    /// Samples drawn from the counting register.
    pub samples: usize,
    /// Simulation statistics (DD sizes, rounds, fidelity, runtime).
    pub sim_stats: SimStats,
}

/// The result of a successful factorization.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorOutcome {
    /// The two non-trivial factors, `factors.0 * factors.1 == n`.
    pub factors: (u64, u64),
    /// The base that succeeded.
    pub base: u64,
    /// The order used (None when the factor came from a lucky gcd or
    /// classical shortcut).
    pub order: Option<u64>,
    /// Statistics of the successful quantum run, if one happened.
    pub sim_stats: Option<SimStats>,
}

/// Finds the multiplicative order of `a` modulo `n` by simulating
/// Shor's phase-estimation circuit and post-processing measurement
/// samples with continued fractions.
///
/// # Errors
///
/// Construction errors from [`shor_circuit`], simulation errors, or
/// [`ShorError::OrderNotFound`] when no sample verifies within the
/// budget.
pub fn find_order(n: u64, a: u64, options: &FactorOptions) -> Result<OrderFinding> {
    let circuit = shor_circuit(n, a)?;
    let mut sim = Simulator::builder().strategy(options.strategy).build();
    let run = sim.run(&circuit)?;

    let n_work = bit_length(n);
    let m = 2 * n_work as u32;
    let mut rng = StdRng::seed_from_u64(options.seed ^ a ^ n);

    let mut best: Option<u64> = None;
    let mut samples = 0usize;
    for _ in 0..options.shots {
        samples += 1;
        let outcome = sim.sample(&run, &mut rng);
        let y = outcome >> n_work; // counting register (qubits n_work..3n)
        for r in order_candidates(y, m, n) {
            if modpow(a, r, n) == 1 {
                best = Some(best.map_or(r, |b| b.min(r)));
            }
        }
        if best.is_some() && samples >= 8 {
            break;
        }
    }

    match best {
        Some(order) => Ok(OrderFinding {
            order,
            samples,
            sim_stats: run.stats,
        }),
        None => Err(ShorError::OrderNotFound { a, n }),
    }
}

/// Factors `n` with Shor's algorithm (quantum order finding on the
/// approximate DD simulator plus classical post-processing).
///
/// Classical shortcuts are taken where Shor's algorithm prescribes
/// them: even `n`, perfect powers, and lucky `gcd(a, n) > 1` draws.
///
/// # Errors
///
/// * [`ShorError::NotComposite`] for primes, 0 and 1;
/// * [`ShorError::AttemptsExhausted`] if every base fails;
/// * construction/simulation errors for oversized instances.
pub fn factor(n: u64, options: &FactorOptions) -> Result<FactorOutcome> {
    if n < 4 || is_prime(n) {
        return Err(ShorError::NotComposite { n });
    }
    if n.is_multiple_of(2) {
        return Ok(FactorOutcome {
            factors: (2, n / 2),
            base: 2,
            order: None,
            sim_stats: None,
        });
    }
    if let Some((b, k)) = perfect_power(n) {
        return Ok(FactorOutcome {
            factors: (b, n / b),
            base: b,
            order: Some(u64::from(k)),
            sim_stats: None,
        });
    }

    let mut rng = StdRng::seed_from_u64(options.seed ^ n);
    let mut attempts = 0usize;
    while attempts < options.max_attempts {
        attempts += 1;
        let a = match options.base {
            Some(a) if attempts == 1 => a,
            _ => rng.gen_range(2..n - 1),
        };
        let g = gcd(a, n);
        if g > 1 {
            // Lucky draw: a shares a factor with n.
            return Ok(FactorOutcome {
                factors: (g, n / g),
                base: a,
                order: None,
                sim_stats: None,
            });
        }
        let found = match find_order(n, a, options) {
            Ok(f) => f,
            Err(ShorError::OrderNotFound { .. }) => continue,
            Err(e) => return Err(e),
        };
        let r = found.order;
        if r % 2 != 0 {
            continue; // odd order: try another base
        }
        let half = modpow(a, r / 2, n);
        if half == n - 1 {
            continue; // a^(r/2) = -1 mod n: no factor from this base
        }
        let p = gcd(half + 1, n);
        let q = gcd(half + n - 1, n);
        for f in [p, q] {
            if f > 1 && f < n && n.is_multiple_of(f) {
                return Ok(FactorOutcome {
                    factors: (f, n / f),
                    base: a,
                    order: Some(r),
                    sim_stats: Some(found.sim_stats),
                });
            }
        }
    }
    Err(ShorError::AttemptsExhausted { n, attempts })
}

/// Sanity helper for tests and benches: verifies that the simulated
/// order finder agrees with brute force.
#[must_use]
pub fn classical_order_check(n: u64, a: u64, found: u64) -> bool {
    multiplicative_order(a, n) == Some(found)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_15_exact() {
        let opts = FactorOptions {
            strategy: Strategy::Exact,
            base: Some(7),
            ..FactorOptions::default()
        };
        let out = factor(15, &opts).unwrap();
        let (p, q) = out.factors;
        assert_eq!(p * q, 15);
        assert!(p > 1 && q > 1);
    }

    #[test]
    fn factor_15_with_approximation() {
        let opts = FactorOptions {
            base: Some(7),
            ..FactorOptions::default()
        };
        let out = factor(15, &opts).unwrap();
        let (p, q) = out.factors;
        assert_eq!(p * q, 15);
        if let Some(stats) = &out.sim_stats {
            assert!(stats.fidelity >= 0.5 - 1e-9, "fidelity {}", stats.fidelity);
        }
    }

    #[test]
    fn find_order_7_mod_15() {
        let opts = FactorOptions {
            strategy: Strategy::Exact,
            ..FactorOptions::default()
        };
        let found = find_order(15, 7, &opts).unwrap();
        assert_eq!(found.order, 4);
        assert!(classical_order_check(15, 7, found.order));
    }

    #[test]
    fn find_order_2_mod_21() {
        let opts = FactorOptions {
            strategy: Strategy::Exact,
            ..FactorOptions::default()
        };
        let found = find_order(21, 2, &opts).unwrap();
        assert_eq!(found.order, 6);
    }

    #[test]
    fn trivial_cases() {
        assert!(matches!(
            factor(17, &FactorOptions::default()),
            Err(ShorError::NotComposite { .. })
        ));
        let out = factor(22, &FactorOptions::default()).unwrap();
        assert_eq!(out.factors.0 * out.factors.1, 22);
        let out = factor(49, &FactorOptions::default()).unwrap();
        assert_eq!(out.factors, (7, 7));
    }

    #[test]
    fn factor_21_approximate() {
        let opts = FactorOptions {
            base: Some(2),
            ..FactorOptions::default()
        };
        let out = factor(21, &opts).unwrap();
        let (p, q) = out.factors;
        assert_eq!(p * q, 21);
        assert!(p == 3 || p == 7);
    }
}

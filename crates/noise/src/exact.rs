//! The exact density-matrix baseline: applies every channel as a full
//! Kraus superoperator instead of sampling it, so trajectory means can
//! be validated statistically on small registers.

use approxdd_backend::ExecError;
use approxdd_circuit::noise::{ChannelTables, KrausBranch, NoiseModel};
use approxdd_circuit::Circuit;
use approxdd_complex::Cplx;
use approxdd_statevector::{DensityMatrix, KrausOperator, StateError, MAX_DENSITY_QUBITS};

/// Per-slot scaled Kraus factors (`√q·F` folded into slot 0) of every
/// branch of one channel — resolved once per distinct channel, then
/// mapped onto each site's qubits.
type ScaledBranches = Vec<Vec<[[Cplx; 2]; 2]>>;

fn scaled_branches(branches: &[KrausBranch]) -> ScaledBranches {
    branches
        .iter()
        .map(|branch| {
            // Kᵢ = √qᵢ · ∏ factors: fold the selection weight into the
            // first factor.
            let scale = branch.probability.sqrt();
            branch
                .factors
                .iter()
                .enumerate()
                .map(|(slot, factor)| {
                    let mut m = factor.matrix();
                    if slot == 0 {
                        for row in &mut m {
                            for entry in row.iter_mut() {
                                *entry = entry.scale(scale);
                            }
                        }
                    }
                    m
                })
                .collect()
        })
        .collect()
}

/// Runs `circuit` under `model` exactly: gates by conjugation, every
/// channel application site as the full Kraus sum, interleaved in the
/// same deterministic site order the trajectory sampler uses.
///
/// # Errors
///
/// [`ExecError::Noise`] for an invalid model,
/// [`ExecError::State`] for registers beyond [`MAX_DENSITY_QUBITS`]
/// or malformed operations.
pub fn exact_density(circuit: &Circuit, model: &NoiseModel) -> Result<DensityMatrix, ExecError> {
    model.validate()?;
    if circuit.n_qubits() > MAX_DENSITY_QUBITS {
        return Err(ExecError::State(StateError::TooManyQubits {
            n_qubits: circuit.n_qubits(),
            max: MAX_DENSITY_QUBITS,
        }));
    }
    let mut rho = DensityMatrix::zero(circuit.n_qubits());
    // Scaled branch matrices depend only on the channel: resolve each
    // distinct channel once through the same ChannelTables the
    // trajectory sampler uses (so both sides agree on table identity),
    // then map slots onto each site's qubits.
    let mut tables = ChannelTables::new();
    let mut scaled: Vec<ScaledBranches> = Vec::new();
    for op in circuit.ops() {
        rho.apply_op(op).map_err(ExecError::State)?;
        for site in model.applications(op) {
            let table = tables.index_of(site.channel);
            if table == scaled.len() {
                scaled.push(scaled_branches(tables.table(table)));
            }
            let operators: Vec<KrausOperator> = scaled[table]
                .iter()
                .map(|factors| {
                    factors
                        .iter()
                        .enumerate()
                        .map(|(slot, m)| (site.qubits[slot], *m))
                        .collect()
                })
                .collect();
            rho.apply_kraus(&operators);
        }
    }
    Ok(rho)
}

/// The exact measurement distribution `⟨i|ρ|i⟩` of the noisy circuit.
///
/// # Errors
///
/// See [`exact_density`].
pub fn exact_diagonal(circuit: &Circuit, model: &NoiseModel) -> Result<Vec<f64>, ExecError> {
    Ok(exact_density(circuit, model)?.diagonal())
}

/// The exact expectation `tr(ρ · Σ f(i)|i⟩⟨i|)` of a diagonal
/// observable under the noisy evolution — the quantity the stochastic
/// trajectory estimator converges to.
///
/// # Errors
///
/// See [`exact_density`].
pub fn exact_expectation(
    circuit: &Circuit,
    model: &NoiseModel,
    f: &dyn Fn(u64) -> f64,
) -> Result<f64, ExecError> {
    Ok(exact_density(circuit, model)?.expectation_diagonal(f))
}

/// The exact fidelity `⟨ψ|ρ|ψ⟩` of the noisy state against the ideal
/// (noiseless) pure state of the same circuit.
///
/// # Errors
///
/// See [`exact_density`].
pub fn exact_fidelity_vs_ideal(circuit: &Circuit, model: &NoiseModel) -> Result<f64, ExecError> {
    let rho = exact_density(circuit, model)?;
    let ideal = approxdd_statevector::run_circuit(circuit).map_err(ExecError::State)?;
    Ok(rho.fidelity_pure(&ideal))
}

/// Helper used by tests: total variation distance between a sampled
/// histogram and an exact distribution.
#[must_use]
#[allow(clippy::cast_precision_loss, clippy::implicit_hasher)]
pub fn total_variation(counts: &std::collections::HashMap<u64, usize>, exact: &[f64]) -> f64 {
    let shots: usize = counts.values().sum();
    if shots == 0 {
        return 1.0;
    }
    let mut tv = 0.0;
    for (i, p) in exact.iter().enumerate() {
        let observed = *counts.get(&(i as u64)).unwrap_or(&0) as f64 / shots as f64;
        tv += (observed - p).abs();
    }
    tv / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_circuit::generators;
    use approxdd_circuit::noise::NoiseChannel;

    #[test]
    fn ideal_model_reproduces_the_pure_state() {
        let circuit = generators::ghz(4);
        let rho = exact_density(&circuit, &NoiseModel::new()).unwrap();
        assert!((rho.purity() - 1.0).abs() < 1e-10);
        assert!(
            (exact_fidelity_vs_ideal(&circuit, &NoiseModel::new()).unwrap() - 1.0).abs() < 1e-10
        );
    }

    #[test]
    fn depolarizing_ghz_mixes_towards_uniform() {
        let circuit = generators::ghz(3);
        let model = NoiseModel::depolarizing(0.1).unwrap();
        let rho = exact_density(&circuit, &model).unwrap();
        assert!((rho.trace() - 1.0).abs() < 1e-9, "trace preserved");
        assert!(rho.purity() < 1.0, "noise must mix");
        let diag = rho.diagonal();
        // The two GHZ branches still dominate, but every outcome now
        // has nonzero probability.
        assert!(diag.iter().all(|&p| p > 0.0));
        assert!(diag[0] > 0.25 && diag[7] > 0.25);
    }

    #[test]
    fn full_bit_flip_after_x_restores_ground_state() {
        let mut circuit = Circuit::new(1, "x");
        circuit.x(0);
        let model = NoiseModel::new().with_global(NoiseChannel::bit_flip(1.0).unwrap());
        let diag = exact_diagonal(&circuit, &model).unwrap();
        assert!((diag[0] - 1.0).abs() < 1e-12, "{diag:?}");
    }

    #[test]
    fn amplitude_damping_decays_excited_population() {
        let mut circuit = Circuit::new(1, "x");
        circuit.x(0);
        let gamma = 0.3;
        let model = NoiseModel::new().with_global(NoiseChannel::amplitude_damping(gamma).unwrap());
        let diag = exact_diagonal(&circuit, &model).unwrap();
        assert!((diag[1] - (1.0 - gamma)).abs() < 1e-12, "{diag:?}");
        assert!((diag[0] - gamma).abs() < 1e-12);
    }

    #[test]
    fn full_amplitude_damping_preserves_the_ground_state() {
        // Regression: γ = 1 must not annihilate |0⟩ (the old
        // decomposition dropped the nonzero K₀ because its naive
        // selection probability 1 − γ was 0, leaving a trace-0 state).
        let model = NoiseModel::new().with_global(NoiseChannel::amplitude_damping(1.0).unwrap());
        let mut ground = Circuit::new(1, "z");
        ground.z(0); // any gate, so the channel fires on |0⟩
        let diag = exact_diagonal(&ground, &model).unwrap();
        assert!((diag[0] - 1.0).abs() < 1e-12, "{diag:?}");
        assert!(diag[1].abs() < 1e-12);
        // And |1⟩ decays fully to |0⟩.
        let mut excited = Circuit::new(1, "x");
        excited.x(0);
        let diag = exact_diagonal(&excited, &model).unwrap();
        assert!((diag[0] - 1.0).abs() < 1e-12, "{diag:?}");
        let rho = exact_density(&excited, &model).unwrap();
        assert!((rho.trace() - 1.0).abs() < 1e-12, "trace preserved");
    }

    #[test]
    fn too_wide_registers_are_rejected() {
        let circuit = generators::ghz(MAX_DENSITY_QUBITS + 1);
        assert!(matches!(
            exact_density(&circuit, &NoiseModel::new()),
            Err(ExecError::State(StateError::TooManyQubits { .. }))
        ));
    }

    #[test]
    fn invalid_models_are_rejected() {
        let model = NoiseModel::new().with_qubit(0, NoiseChannel::depolarizing2(0.1).unwrap());
        assert!(matches!(
            exact_density(&generators::ghz(2), &model),
            Err(ExecError::Noise(_))
        ));
    }

    #[test]
    fn total_variation_of_exact_counts_is_zero() {
        let exact = vec![0.5, 0.5];
        let counts = std::collections::HashMap::from([(0u64, 500usize), (1, 500)]);
        assert!(total_variation(&counts, &exact) < 1e-12);
        let skewed = std::collections::HashMap::from([(0u64, 1000usize)]);
        assert!((total_variation(&skewed, &exact) - 0.5).abs() < 1e-12);
    }
}

//! Monte-Carlo trajectory sampling: turning a circuit plus a
//! [`NoiseModel`] into one concrete noisy circuit per trajectory.
//!
//! For every state-transforming operation the sampler visits the
//! model's channel application sites in deterministic order
//! ([`NoiseModel::applications`]), draws one uniform variate per site
//! from a trajectory-local RNG, and inserts the selected Kraus branch
//! into the op stream: Pauli branches as plain gates (every one of
//! them Clifford, so Pauli-noise trajectories of a Clifford circuit
//! stay Clifford and run at tableau cost on the stabilizer and hybrid
//! engines), general branches
//! (amplitude damping) as width-1 dense blocks carrying the rescaled
//! operator `K/√q` (see [`approxdd_circuit::noise`] for why that makes
//! the trajectory mean reproduce the channel exactly).
//!
//! Because the site list and every channel's branch table depend only
//! on `(circuit, model)`, they are resolved **once** into a
//! [`TrajectoryPlan`]; sampling a trajectory then only draws variates
//! and clones ops — the pooled driver samples all trajectories on the
//! submitting thread before the parallel fan-out, so this serial
//! prefix stays cheap.
//!
//! Determinism: the inserted ops are a pure function of
//! `(circuit, model, seed)`. The pooled driver derives the seed of
//! trajectory `t` from the shared [`SeedStream`] under
//! [`DOMAIN_NOISE`], so sampled trajectories are byte-identical across
//! worker counts.
//!
//! [`SeedStream`]: approxdd_exec::SeedStream
//! [`DOMAIN_NOISE`]: approxdd_exec::DOMAIN_NOISE

use approxdd_circuit::noise::{select_branch, ChannelTables, KrausFactor, NoiseModel};
use approxdd_circuit::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One sampled noisy realization of a circuit.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// The circuit with the sampled noise operations inserted.
    pub circuit: Circuit,
    /// Channel application sites visited (identical for every
    /// trajectory of one `(circuit, model)` pair).
    pub sites: usize,
    /// Non-identity noise operations actually inserted.
    pub noise_ops: usize,
}

/// One resolved channel application site: an index into the plan's
/// branch tables plus the target qubits.
#[derive(Debug, Clone)]
struct PlannedSite {
    table: usize,
    qubits: Vec<usize>,
    label: &'static str,
}

/// A circuit's noise sites and branch tables, resolved once so that
/// sampling many trajectories of the same `(circuit, model)` pair does
/// no per-trajectory model walking or branch-table rebuilding.
#[derive(Debug, Clone)]
pub struct TrajectoryPlan {
    circuit: Circuit,
    /// Per-op site lists, aligned with `circuit.ops()`.
    sites_per_op: Vec<Vec<PlannedSite>>,
    /// One branch table per distinct channel in the model.
    tables: ChannelTables,
    site_count: usize,
}

impl TrajectoryPlan {
    /// Resolves the site list and branch tables of
    /// `(circuit, model)`.
    #[must_use]
    pub fn new(circuit: &Circuit, model: &NoiseModel) -> Self {
        let mut tables = ChannelTables::new();
        let mut site_count = 0usize;
        let sites_per_op = circuit
            .ops()
            .iter()
            .map(|op| {
                model
                    .applications(op)
                    .into_iter()
                    .map(|site| {
                        site_count += 1;
                        PlannedSite {
                            table: tables.index_of(site.channel),
                            qubits: site.qubits,
                            label: site.channel.name(),
                        }
                    })
                    .collect()
            })
            .collect();
        Self {
            circuit: circuit.clone(),
            sites_per_op,
            tables,
            site_count,
        }
    }

    /// Channel application sites per trajectory.
    #[must_use]
    pub fn sites(&self) -> usize {
        self.site_count
    }

    /// Samples one trajectory, seeded by `seed` (deterministic: same
    /// plan and seed, same trajectory).
    #[must_use]
    pub fn sample(&self, seed: u64) -> Trajectory {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Circuit::new(self.circuit.n_qubits(), self.circuit.name());
        let mut noise_ops = 0usize;
        for (op, sites) in self.circuit.ops().iter().zip(&self.sites_per_op) {
            out.push(op.clone());
            for site in sites {
                // Exactly one draw per site, fired or not, so the RNG
                // stream position depends only on the site index.
                let branch = select_branch(self.tables.table(site.table), rng.gen::<f64>());
                for (slot, factor) in branch.factors.iter().enumerate() {
                    if factor.is_identity() {
                        continue;
                    }
                    let qubit = site.qubits[slot];
                    match factor {
                        KrausFactor::Gate(gate) => {
                            // Pauli branches are Clifford by
                            // construction, so inserting them preserves
                            // a circuit's Clifford prefix — the hybrid
                            // engine absorbs Pauli noise on Clifford
                            // circuits at tableau cost.
                            debug_assert!(
                                gate.clifford_kind().is_some(),
                                "Kraus gate branches are Pauli (Clifford): {gate:?}"
                            );
                            out.gate(*gate, qubit);
                        }
                        KrausFactor::Matrix(m) => {
                            out.dense_block(
                                qubit,
                                1,
                                vec![m[0][0], m[0][1], m[1][0], m[1][1]],
                                &[],
                                site.label,
                            );
                        }
                    }
                    noise_ops += 1;
                }
            }
        }
        Trajectory {
            circuit: out,
            sites: self.site_count,
            noise_ops,
        }
    }
}

/// Samples one noise trajectory of `circuit` under `model`, seeded by
/// `seed`. One-shot convenience over [`TrajectoryPlan`] — callers
/// sampling many trajectories should build the plan once.
#[must_use]
pub fn sample_trajectory(circuit: &Circuit, model: &NoiseModel, seed: u64) -> Trajectory {
    TrajectoryPlan::new(circuit, model).sample(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_circuit::generators;
    use approxdd_circuit::noise::NoiseChannel;
    use approxdd_circuit::Operation;

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        let circuit = generators::supremacy(2, 2, 8, 1);
        let model = NoiseModel::depolarizing(0.2).unwrap();
        let a = sample_trajectory(&circuit, &model, 99);
        let b = sample_trajectory(&circuit, &model, 99);
        assert_eq!(a.circuit, b.circuit);
        assert_eq!(a.noise_ops, b.noise_ops);
        let c = sample_trajectory(&circuit, &model, 100);
        assert_ne!(a.circuit, c.circuit, "distinct seeds should diverge");
    }

    #[test]
    fn plan_reuse_matches_one_shot_sampling() {
        let circuit = generators::qft(4);
        let model = NoiseModel::new()
            .with_global(NoiseChannel::depolarizing(0.1).unwrap())
            .with_global(NoiseChannel::depolarizing2(0.1).unwrap())
            .with_qubit(0, NoiseChannel::amplitude_damping(0.2).unwrap());
        let plan = TrajectoryPlan::new(&circuit, &model);
        for seed in 0..20 {
            let planned = plan.sample(seed);
            let direct = sample_trajectory(&circuit, &model, seed);
            assert_eq!(planned.circuit, direct.circuit, "seed {seed}");
            assert_eq!(planned.noise_ops, direct.noise_ops);
            assert_eq!(planned.sites, plan.sites());
        }
    }

    #[test]
    fn ideal_model_inserts_nothing() {
        let circuit = generators::ghz(5);
        let t = sample_trajectory(&circuit, &NoiseModel::new(), 7);
        assert_eq!(t.circuit.ops(), circuit.ops());
        assert_eq!((t.sites, t.noise_ops), (0, 0));
    }

    #[test]
    fn certain_bit_flip_inserts_one_x_per_site() {
        let mut circuit = Circuit::new(2, "xx");
        circuit.x(0).x(1);
        let model = NoiseModel::new().with_global(NoiseChannel::bit_flip(1.0).unwrap());
        let t = sample_trajectory(&circuit, &model, 1);
        assert_eq!(t.sites, 2);
        assert_eq!(t.noise_ops, 2);
        assert_eq!(t.circuit.gate_count(), 4);
    }

    #[test]
    fn amplitude_damping_inserts_dense_blocks() {
        let mut circuit = Circuit::new(1, "x");
        circuit.x(0);
        let model = NoiseModel::new().with_global(NoiseChannel::amplitude_damping(1.0).unwrap());
        let t = sample_trajectory(&circuit, &model, 5);
        assert_eq!(t.noise_ops, 1);
        let inserted = &t.circuit.ops()[1];
        assert!(
            matches!(inserted, Operation::DenseBlock { k: 1, .. }),
            "{inserted:?}"
        );
        t.circuit.validate().unwrap();
    }

    #[test]
    fn pauli_noise_preserves_clifford_circuits() {
        let circuit = generators::random_clifford(5, 6, 11);
        assert!(circuit.is_clifford());
        let model = NoiseModel::new()
            .with_global(NoiseChannel::depolarizing(0.4).unwrap())
            .with_global(NoiseChannel::depolarizing2(0.4).unwrap());
        let plan = TrajectoryPlan::new(&circuit, &model);
        for seed in 0..50 {
            let t = plan.sample(seed);
            assert!(
                t.circuit.is_clifford(),
                "Pauli branches must keep the trajectory Clifford (seed {seed})"
            );
        }
    }

    #[test]
    fn insertion_rate_tracks_the_channel_rate() {
        let circuit = generators::qft(4);
        let p = 0.3;
        let model = NoiseModel::new().with_global(NoiseChannel::depolarizing(p).unwrap());
        let plan = TrajectoryPlan::new(&circuit, &model);
        let mut fired = 0usize;
        let mut sites = 0usize;
        for seed in 0..200 {
            let t = plan.sample(seed);
            fired += t.noise_ops;
            sites += t.sites;
        }
        #[allow(clippy::cast_precision_loss)]
        let rate = fired as f64 / sites as f64;
        assert!((rate - p).abs() < 0.05, "empirical rate {rate} vs {p}");
    }
}

//! The pooled trajectory driver: Monte-Carlo noise trajectories
//! executed across a [`BackendPool`], aggregated into a
//! [`TrajectoryOutcome`].
//!
//! Trajectories are embarrassingly parallel, and the driver inherits
//! the pool's determinism contract wholesale: trajectory `t`'s noise
//! insertions are sampled (on the submitting thread) from
//! `SeedStream::seed(DOMAIN_NOISE, t)`, its measurement shots from the
//! pool's own `DOMAIN_RUN` stream, and `run_jobs` preserves input
//! order — so [`TrajectoryOutcome::fingerprint`] is byte-identical
//! across 1/2/8 workers for the same `(seed, model, circuit)`.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use approxdd_backend::{BackendStats, ExecError};
use approxdd_circuit::noise::NoiseModel;
use approxdd_circuit::Circuit;
use approxdd_exec::{BackendPool, PoolJob, PoolStats, SeedStream, SharedDiagonal, DOMAIN_NOISE};
use approxdd_sim::{SimulatorBuilder, Strategy};

use crate::sampler::TrajectoryPlan;

/// Configuration of one trajectory run.
#[derive(Clone, Default)]
pub struct TrajectoryConfig {
    trajectories: usize,
    shots: usize,
    strategy: Option<Strategy>,
    observable: Option<SharedDiagonal>,
}

impl std::fmt::Debug for TrajectoryConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrajectoryConfig")
            .field("trajectories", &self.trajectories)
            .field("shots", &self.shots)
            .field("strategy", &self.strategy)
            .field("observable", &self.observable.is_some())
            .finish()
    }
}

impl TrajectoryConfig {
    /// `trajectories` Monte-Carlo samples, no shots, no observable.
    #[must_use]
    pub fn new(trajectories: usize) -> Self {
        Self {
            trajectories,
            ..Self::default()
        }
    }

    /// Draws `shots` measurement samples per trajectory into the merged
    /// histogram.
    #[must_use]
    pub fn shots(mut self, shots: usize) -> Self {
        self.shots = shots;
        self
    }

    /// Runs every trajectory under an approximation strategy override
    /// (instead of the pool template's policy) — noisy trajectories
    /// compose directly with the paper's truncation strategies.
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Evaluates the diagonal observable `Σ f(i)|i⟩⟨i|` on every
    /// trajectory's raw final state, worker-side. The trajectory mean
    /// of this value is an unbiased estimator of `tr(ρ O)` under the
    /// exact noisy evolution (see the crate docs), which is what
    /// `exact::exact_expectation` computes — the pair forms the
    /// statistical validation story. Dense-width-limited.
    #[must_use]
    pub fn observable(mut self, f: SharedDiagonal) -> Self {
        self.observable = Some(f);
        self
    }

    /// Number of trajectories.
    #[must_use]
    pub fn trajectory_count(&self) -> usize {
        self.trajectories
    }

    /// Shots per trajectory.
    #[must_use]
    pub fn shots_per_trajectory(&self) -> usize {
        self.shots
    }
}

/// Per-trajectory results (one entry per trajectory, in index order).
#[derive(Debug, Clone)]
pub struct TrajectoryRecord {
    /// Trajectory index (also its seed-stream index).
    pub index: usize,
    /// Non-identity noise operations inserted.
    pub noise_ops: usize,
    /// Measured fidelity of the trajectory's run (the DD engine's
    /// end-to-end approximation fidelity — 1.0 when the trajectory ran
    /// exactly).
    pub fidelity: f64,
    /// DD node count of the trajectory's final state.
    pub final_size: usize,
    /// The requested observable's value on this trajectory, if any.
    pub observable: Option<f64>,
    /// Full unified run statistics, including the per-trajectory DD
    /// package counters in [`BackendStats::dd`].
    pub stats: BackendStats,
}

/// The aggregated result of a pooled trajectory run.
#[derive(Debug, Clone)]
pub struct TrajectoryOutcome {
    /// Name of the base (noiseless) circuit.
    pub name: String,
    /// Register width.
    pub n_qubits: usize,
    /// Trajectories executed.
    pub trajectories: usize,
    /// Measurement shots drawn per trajectory.
    pub shots_per_trajectory: usize,
    /// Merged measurement histogram over all trajectories (empty when
    /// no shots were requested).
    pub counts: HashMap<u64, usize>,
    /// Mean of the per-trajectory measured fidelities.
    pub fidelity_mean: f64,
    /// Sample standard deviation (σ, n−1 denominator) of the measured
    /// fidelities.
    pub fidelity_std: f64,
    /// Mean of the per-trajectory observable values, when requested.
    pub observable_mean: Option<f64>,
    /// Sample standard deviation of the observable values.
    pub observable_std: Option<f64>,
    /// Total noise operations inserted across all trajectories.
    pub noise_ops_total: usize,
    /// Per-trajectory records, in trajectory order.
    pub records: Vec<TrajectoryRecord>,
}

fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    #[allow(clippy::cast_precision_loss)]
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

impl TrajectoryOutcome {
    /// The standard error of the observable mean (`σ/√T`), if an
    /// observable was requested — the scale the statistical validation
    /// tolerance is stated in.
    #[must_use]
    pub fn observable_standard_error(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        self.observable_std
            .map(|s| s / (self.trajectories.max(1) as f64).sqrt())
    }

    /// A hash over every deterministic result field: the aggregate
    /// identity plus each trajectory's inserted-op count, measured
    /// fidelity, observable value and final DD size, and the merged
    /// histogram. Byte-identical across worker counts for the same
    /// `(seed, model, circuit)` — asserted by the workspace's
    /// `tests/noise_api.rs`.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name.hash(&mut h);
        self.n_qubits.hash(&mut h);
        self.trajectories.hash(&mut h);
        self.shots_per_trajectory.hash(&mut h);
        let mut entries: Vec<(u64, usize)> = self.counts.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_unstable();
        entries.hash(&mut h);
        for record in &self.records {
            record.index.hash(&mut h);
            record.noise_ops.hash(&mut h);
            record.fidelity.to_bits().hash(&mut h);
            record.final_size.hash(&mut h);
            record.observable.map(f64::to_bits).hash(&mut h);
            record.stats.gates_applied.hash(&mut h);
            record.stats.peak_size.hash(&mut h);
            record.stats.approx_rounds.hash(&mut h);
        }
        h.finish()
    }
}

/// A [`BackendPool`] paired with a [`NoiseModel`] and the noise seed
/// stream: the front door of stochastic noisy simulation.
///
/// Build one from a simulator template —
/// `Simulator::builder().noise(model).workers(4).build_noise_pool()`
/// (see [`BuildNoisePool`]) — and call [`NoisePool::run_trajectories`].
///
/// Templates with `share_snapshot(true)` apply here unchanged:
/// trajectory batches go through [`BackendPool::run_jobs`], which
/// freezes the batch's gate DDs once and layers every trajectory's
/// package over the shared prefix. Trajectories of one circuit share
/// most of their gates (noise only inserts channel operations), so the
/// amortization is usually even better than for plain batches, and the
/// determinism contract is identical — trajectory outcomes are
/// byte-identical with snapshots on or off.
///
/// The fault-tolerance layer is inherited the same way: a template's
/// `retry(...)` / `job_deadline(...)` knobs apply to every trajectory
/// job (trajectory batches are ordinary [`BackendPool::run_jobs`]
/// submissions), worker deaths self-heal mid-batch, and because
/// trajectory seeds are keyed on the trajectory index alone, a retried
/// trajectory reproduces its original channel insertions and samples
/// exactly.
///
/// # Examples
///
/// ```
/// use approxdd_circuit::generators;
/// use approxdd_circuit::noise::NoiseModel;
/// use approxdd_noise::{BuildNoisePool, TrajectoryConfig};
/// use approxdd_sim::Simulator;
///
/// # fn main() -> Result<(), approxdd_backend::ExecError> {
/// let pool = Simulator::builder()
///     .noise(NoiseModel::depolarizing(0.02)?)
///     .seed(7)
///     .workers(2)
///     .build_noise_pool();
/// let outcome = pool.run_trajectories(
///     &generators::ghz(6),
///     &TrajectoryConfig::new(8).shots(256),
/// )?;
/// assert_eq!(outcome.trajectories, 8);
/// assert_eq!(outcome.counts.values().sum::<usize>(), 8 * 256);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NoisePool {
    pool: BackendPool,
    model: NoiseModel,
    seeds: SeedStream,
}

impl NoisePool {
    /// Builds from a simulator template, taking the noise model from
    /// [`SimulatorBuilder::noise`] (ideal when unset), the root seed
    /// from the builder seed, and the worker count from the `workers`
    /// knob.
    #[must_use]
    pub fn new(template: SimulatorBuilder) -> Self {
        let model = template.noise_model().cloned().unwrap_or_default();
        Self::with_model(template, model)
    }

    /// Builds with an explicit model, ignoring the template's.
    #[must_use]
    pub fn with_model(template: SimulatorBuilder, model: NoiseModel) -> Self {
        let seeds = SeedStream::new(template.sample_seed());
        Self {
            pool: BackendPool::new(template),
            model,
            seeds,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Root seed of the noise/job seed streams.
    #[must_use]
    pub fn root_seed(&self) -> u64 {
        self.seeds.root()
    }

    /// The noise model.
    #[must_use]
    pub fn model(&self) -> &NoiseModel {
        &self.model
    }

    /// The underlying backend pool (also usable for noiseless batches:
    /// trajectory work and plain `run_batch`/`sample_counts` draw from
    /// disjoint seed domains, so neither perturbs the other).
    #[must_use]
    pub fn pool(&self) -> &BackendPool {
        &self.pool
    }

    /// Pool execution statistics.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Samples `cfg.trajectory_count()` noise trajectories of
    /// `circuit`, runs them across the pool, and aggregates counts,
    /// fidelity mean/σ, observable mean/σ and per-trajectory records.
    ///
    /// # Errors
    ///
    /// [`ExecError::Noise`] for an invalid model; the lowest-indexed
    /// failing trajectory's error otherwise (all trajectories still
    /// execute).
    pub fn run_trajectories(
        &self,
        circuit: &Circuit,
        cfg: &TrajectoryConfig,
    ) -> Result<TrajectoryOutcome, ExecError> {
        self.model.validate()?;
        let span = approxdd_telemetry::Span::enter("noise.trajectories");
        // Sites and branch tables depend only on (circuit, model):
        // resolve them once, not per trajectory.
        let plan = TrajectoryPlan::new(circuit, &self.model);
        let mut jobs = Vec::with_capacity(cfg.trajectories);
        let mut inserted = Vec::with_capacity(cfg.trajectories);
        for t in 0..cfg.trajectories {
            let seed = self.seeds.seed(DOMAIN_NOISE, t as u64);
            let trajectory = plan.sample(seed);
            inserted.push(trajectory.noise_ops);
            let mut job = PoolJob::new(trajectory.circuit).shots(cfg.shots);
            if let Some(strategy) = cfg.strategy {
                job = job.strategy(strategy);
            }
            if let Some(observable) = &cfg.observable {
                job = job.expectation(observable.clone());
            }
            jobs.push(job);
        }

        let mut counts: HashMap<u64, usize> = HashMap::new();
        let mut fidelities = Vec::with_capacity(cfg.trajectories);
        let mut observables = Vec::with_capacity(cfg.trajectories);
        let mut records = Vec::with_capacity(cfg.trajectories);
        for (index, result) in self.pool.run_jobs(jobs).into_iter().enumerate() {
            let outcome = result?;
            if let Some(job_counts) = &outcome.counts {
                for (k, v) in job_counts {
                    *counts.entry(*k).or_insert(0) += v;
                }
            }
            fidelities.push(outcome.stats.fidelity);
            if let Some(value) = outcome.expectation {
                observables.push(value);
            }
            records.push(TrajectoryRecord {
                index,
                noise_ops: inserted[index],
                fidelity: outcome.stats.fidelity,
                final_size: outcome.final_size,
                observable: outcome.expectation,
                stats: outcome.stats,
            });
        }
        let (fidelity_mean, fidelity_std) = mean_std(&fidelities);
        let (observable_mean, observable_std) = if observables.is_empty() {
            (None, None)
        } else {
            let (m, s) = mean_std(&observables);
            (Some(m), Some(s))
        };
        let _ = span.finish();
        approxdd_telemetry::count("approxdd_noise_trajectories_total", cfg.trajectories as u64);
        approxdd_telemetry::count(
            "approxdd_noise_insertions_total",
            inserted.iter().map(|&n| n as u64).sum(),
        );
        Ok(TrajectoryOutcome {
            name: circuit.name().to_string(),
            n_qubits: circuit.n_qubits(),
            trajectories: cfg.trajectories,
            shots_per_trajectory: cfg.shots,
            counts,
            fidelity_mean,
            fidelity_std,
            observable_mean,
            observable_std,
            noise_ops_total: inserted.iter().sum(),
            records,
        })
    }
}

/// Extension hook giving [`SimulatorBuilder`] a direct path into the
/// noisy-trajectory layer:
/// `Simulator::builder().noise(model).build_noise_pool()`.
pub trait BuildNoisePool {
    /// Builds a [`NoisePool`] from this template.
    fn build_noise_pool(self) -> NoisePool;
}

impl BuildNoisePool for SimulatorBuilder {
    fn build_noise_pool(self) -> NoisePool {
        NoisePool::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_circuit::generators;
    use approxdd_circuit::noise::NoiseChannel;
    use approxdd_sim::Simulator;
    use std::sync::Arc;

    fn small_model() -> NoiseModel {
        NoiseModel::new()
            .with_global(NoiseChannel::depolarizing(0.05).unwrap())
            .with_global(NoiseChannel::depolarizing2(0.05).unwrap())
    }

    #[test]
    fn trajectories_aggregate_counts_and_records() {
        let pool = Simulator::builder()
            .noise(small_model())
            .seed(3)
            .workers(2)
            .build_noise_pool();
        let cfg = TrajectoryConfig::new(6).shots(128);
        let outcome = pool
            .run_trajectories(&generators::ghz(5), &cfg)
            .expect("trajectories");
        assert_eq!(outcome.trajectories, 6);
        assert_eq!(outcome.records.len(), 6);
        assert_eq!(outcome.counts.values().sum::<usize>(), 6 * 128);
        assert!((outcome.fidelity_mean - 1.0).abs() < 1e-12, "exact runs");
        assert_eq!(outcome.fidelity_std, 0.0);
        for (i, record) in outcome.records.iter().enumerate() {
            assert_eq!(record.index, i);
            assert!(record.stats.dd.is_some(), "per-trajectory package stats");
        }
    }

    #[test]
    fn ideal_model_reproduces_noiseless_sampling() {
        // With no channels every trajectory is the base circuit, so the
        // merged histogram only contains GHZ branches.
        let pool = Simulator::builder().seed(11).workers(3).build_noise_pool();
        assert!(pool.model().is_ideal());
        let outcome = pool
            .run_trajectories(&generators::ghz(6), &TrajectoryConfig::new(4).shots(512))
            .expect("trajectories");
        assert_eq!(outcome.noise_ops_total, 0);
        assert!(outcome.counts.keys().all(|&k| k == 0 || k == 0x3F));
    }

    #[test]
    fn observable_means_are_populated_when_requested() {
        let observable: SharedDiagonal = Arc::new(|i: u64| f64::from(i.count_ones()));
        let pool = Simulator::builder()
            .noise(small_model())
            .seed(5)
            .workers(2)
            .build_noise_pool();
        let cfg = TrajectoryConfig::new(5).observable(observable);
        let outcome = pool
            .run_trajectories(&generators::ghz(4), &cfg)
            .expect("trajectories");
        let mean = outcome.observable_mean.expect("requested");
        assert!(outcome.observable_std.is_some());
        assert!(outcome.observable_standard_error().is_some());
        assert!((0.0..=4.0).contains(&mean), "{mean}");
        assert!(outcome.records.iter().all(|r| r.observable.is_some()));
    }

    /// Trajectory batches ride through `BackendPool::run_jobs`, so the
    /// snapshot determinism contract extends to noisy simulation:
    /// byte-identical trajectory outcomes with snapshots on or off.
    #[test]
    fn snapshot_sharing_preserves_trajectory_fingerprints() {
        let circuit = generators::ghz(5);
        let cfg = TrajectoryConfig::new(6).shots(128);
        let run = |share: bool, workers: usize| {
            let pool = Simulator::builder()
                .noise(small_model())
                .seed(13)
                .workers(workers)
                .share_snapshot(share)
                .build_noise_pool();
            let outcome = pool.run_trajectories(&circuit, &cfg).expect("trajectories");
            (outcome.fingerprint(), pool.stats().snapshot_gate_hits())
        };
        let (off, off_hits) = run(false, 2);
        assert_eq!(off_hits, 0);
        for workers in [1, 2, 8] {
            let (on, on_hits) = run(true, workers);
            assert_eq!(off, on, "fingerprints diverge at {workers} workers");
            assert!(on_hits > 0, "snapshot unused");
        }
    }

    #[test]
    fn stabilizer_engine_runs_pauli_trajectories_deterministically() {
        // Pauli branches keep Clifford circuits Clifford (see the
        // sampler docs), so the tableau engine can execute every
        // trajectory — and the merged outcome must stay byte-identical
        // across worker counts, exactly like the DD engine.
        use approxdd_sim::Engine;
        let circuit = generators::random_clifford(6, 4, 21);
        let fingerprints: Vec<u64> = [1, 2, 8]
            .into_iter()
            .map(|workers| {
                let pool = Simulator::builder()
                    .engine(Engine::Stabilizer)
                    .noise(small_model())
                    .seed(13)
                    .workers(workers)
                    .build_noise_pool();
                let outcome = pool
                    .run_trajectories(&circuit, &TrajectoryConfig::new(6).shots(64))
                    .expect("stabilizer trajectories");
                assert_eq!(outcome.counts.values().sum::<usize>(), 6 * 64);
                assert!(outcome
                    .records
                    .iter()
                    .all(|r| r.stats.engine == "stabilizer" && r.stats.dd.is_none()));
                outcome.fingerprint()
            })
            .collect();
        assert_eq!(fingerprints[0], fingerprints[1]);
        assert_eq!(fingerprints[0], fingerprints[2]);
    }

    #[test]
    fn invalid_models_fail_fast() {
        let bad = NoiseModel::new().with_qubit(0, NoiseChannel::depolarizing2(0.5).unwrap());
        let pool = NoisePool::with_model(Simulator::builder().workers(1), bad);
        assert!(matches!(
            pool.run_trajectories(&generators::ghz(3), &TrajectoryConfig::new(2)),
            Err(ExecError::Noise(_))
        ));
    }

    #[test]
    fn builder_template_feeds_model_and_seed() {
        let pool = Simulator::builder()
            .noise(small_model())
            .seed(77)
            .workers(2)
            .build_noise_pool();
        assert_eq!(pool.root_seed(), 77);
        assert_eq!(pool.workers(), 2);
        assert!(!pool.model().is_ideal());
        assert_eq!(pool.stats().workers, 2);
    }

    #[test]
    fn mean_std_handles_degenerate_inputs() {
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[2.5]), (2.5, 0.0));
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}

//! Stochastic noise-trajectory simulation over the DD backend.
//!
//! The reproduced paper trades controlled fidelity loss for simulation
//! efficiency on *ideal* circuits; real NISQ workloads are noisy, and
//! stochastic trajectory sampling is itself an approximation whose
//! error is statistically controlled — the two compose naturally. This
//! crate is the noisy half of that story:
//!
//! * [`NoiseChannel`] / [`NoiseModel`] (defined in
//!   [`approxdd_circuit::noise`], re-exported here) describe channels
//!   in Kraus form and where they attach to a circuit;
//! * [`sample_trajectory`] Monte-Carlo-samples one concrete noisy
//!   realization, inserting Pauli gates and Kraus dense blocks into the
//!   op stream;
//! * [`NoisePool`] fans trajectories out across an
//!   [`approxdd_exec::BackendPool`] and aggregates a
//!   [`TrajectoryOutcome`] — merged counts, fidelity mean/σ, optional
//!   diagonal-observable mean/σ, and per-trajectory records with full
//!   run statistics;
//! * [`exact`] runs the same `(circuit, model)` pair as a density
//!   matrix with full Kraus superoperators (small registers only), the
//!   ground truth trajectory means are validated against.
//!
//! # The estimator
//!
//! Every channel is decomposed into branches with **fixed** selection
//! probabilities `qᵢ`, and a selected branch inserts the rescaled
//! operator `Kᵢ/√qᵢ`. The expected outer product of a trajectory's
//! (raw, possibly unnormalized) final state is then exactly the noisy
//! density matrix:
//!
//! ```text
//! E[|φ⟩⟨φ|] = Σᵢ qᵢ (Kᵢ/√qᵢ) ρ (Kᵢ/√qᵢ)† = Σᵢ Kᵢ ρ Kᵢ†
//! ```
//!
//! so the trajectory mean of any *raw-state* diagonal observable
//! `⟨φ|O|φ⟩` is an unbiased estimator of `tr(Oρ)`, with statistical
//! error `σ/√T`. Pauli branches are unitary, so for the Pauli channels
//! (bit/phase flip, depolarizing) every trajectory stays normalized
//! and sampled histograms are exact mixtures too; amplitude-damping
//! branches carry an importance weight in the state norm, making the
//! weighted observable estimator exact while sampled histograms become
//! self-normalized (ratio) estimates.
//!
//! # Determinism
//!
//! Noise insertions for trajectory `t` are drawn from the workspace
//! seed stream under [`approxdd_exec::DOMAIN_NOISE`]; execution rides
//! the pool's per-job seed streams. Results — including
//! [`TrajectoryOutcome::fingerprint`] — are byte-identical across
//! worker counts.
//!
//! # Examples
//!
//! ```
//! use approxdd_circuit::generators;
//! use approxdd_noise::{BuildNoisePool, NoiseModel, TrajectoryConfig};
//! use approxdd_sim::Simulator;
//!
//! # fn main() -> Result<(), approxdd_backend::ExecError> {
//! let pool = Simulator::builder()
//!     .noise(NoiseModel::depolarizing(0.05)?)
//!     .seed(1)
//!     .workers(2)
//!     .build_noise_pool();
//! let outcome = pool.run_trajectories(
//!     &generators::ghz(5),
//!     &TrajectoryConfig::new(16).shots(64),
//! )?;
//! // Noise leaks probability mass outside the two GHZ branches.
//! assert_eq!(outcome.counts.values().sum::<usize>(), 16 * 64);
//! assert!(outcome.noise_ops_total > 0);
//! # Ok(())
//! # }
//! ```

pub mod exact;
mod pool;
mod sampler;

pub use approxdd_circuit::noise::{
    KrausBranch, KrausFactor, NoiseApplication, NoiseChannel, NoiseError, NoiseModel,
};
pub use pool::{BuildNoisePool, NoisePool, TrajectoryConfig, TrajectoryOutcome, TrajectoryRecord};
pub use sampler::{sample_trajectory, Trajectory, TrajectoryPlan};

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_backend::{amplitudes_of, BuildBackend, StatevectorBackend};
    use approxdd_circuit::generators;
    use approxdd_sim::Simulator;

    /// The DD engine and the dense baseline must agree on sampled noisy
    /// trajectories — including the non-unitary amplitude-damping
    /// blocks, which exercise dense blocks outside the unitary group.
    #[test]
    fn engines_agree_on_sampled_trajectories() {
        let model = NoiseModel::new()
            .with_global(NoiseChannel::depolarizing(0.2).unwrap())
            .with_global(NoiseChannel::amplitude_damping(0.3).unwrap());
        let circuit = generators::qft(4);
        for seed in 0..5 {
            let trajectory = sample_trajectory(&circuit, &model, seed);
            let mut dd = Simulator::builder().build_backend();
            let mut sv = StatevectorBackend::new();
            let a = amplitudes_of(&mut dd, &trajectory.circuit).expect("dd");
            let b = amplitudes_of(&mut sv, &trajectory.circuit).expect("sv");
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert!(
                    (*x - *y).mag() < 1e-9,
                    "seed {seed} amplitude {i}: {x} vs {y}"
                );
            }
        }
    }
}

//! Worker-thread supervision: detecting dead pool workers and healing
//! the pool back to full capacity.
//!
//! A [`crate::BackendPool`] worker dies when a job panics on it —
//! whether from a real bug or an injected [`crate::FaultPlan`] fault.
//! Without supervision each death permanently shrinks the pool; with
//! it, the [`Supervisor`] notices finished worker threads during the
//! pool's collection loops and respawns a replacement into the same
//! worker slot (same index, same [`crate::WorkerStats`] cell), so a
//! follow-up batch always runs at full width.
//!
//! Supervision is *pull-based*: there is no background monitor thread.
//! The pool calls [`Supervisor::heal`] on a timer tick while waiting
//! for results (and once per submission round), which is exactly when
//! a dead worker matters — a pool nobody is submitting to has nothing
//! to supervise.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::thread::JoinHandle;

/// Owns the pool's worker [`JoinHandle`]s and the respawn count.
#[derive(Debug)]
pub(crate) struct Supervisor {
    handles: Mutex<Vec<JoinHandle<()>>>,
    respawns: AtomicUsize,
}

impl Supervisor {
    /// Adopts the initially spawned worker handles (slot = index).
    pub(crate) fn new(handles: Vec<JoinHandle<()>>) -> Self {
        Self {
            handles: Mutex::new(handles),
            respawns: AtomicUsize::new(0),
        }
    }

    /// Number of worker slots (fixed for the pool's lifetime).
    pub(crate) fn worker_count(&self) -> usize {
        self.handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Number of worker threads currently running (a dead-but-unhealed
    /// worker counts as not alive).
    pub(crate) fn alive(&self) -> usize {
        self.handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .filter(|h| !h.is_finished())
            .count()
    }

    /// Respawns every finished worker thread via `respawn(slot)`,
    /// joining the dead handle (which collects and discards its panic
    /// payload — `is_finished()` guarantees the join cannot block).
    /// Returns how many slots were healed. Concurrent callers
    /// serialize on the handle table, so a death is healed exactly
    /// once.
    pub(crate) fn heal<F: FnMut(usize) -> JoinHandle<()>>(&self, mut respawn: F) -> usize {
        let mut handles = self.handles.lock().unwrap_or_else(PoisonError::into_inner);
        let mut healed = 0;
        for slot in 0..handles.len() {
            if handles[slot].is_finished() {
                let dead = std::mem::replace(&mut handles[slot], respawn(slot));
                let _ = dead.join();
                self.respawns.fetch_add(1, Ordering::Relaxed);
                healed += 1;
            }
        }
        healed
    }

    /// Total workers respawned over the pool's lifetime.
    pub(crate) fn respawns(&self) -> usize {
        self.respawns.load(Ordering::Relaxed)
    }

    /// Joins every worker (orderly shutdown; the pool closes the task
    /// channel first so the joins terminate).
    pub(crate) fn join_all(&self) {
        let mut handles = self.handles.lock().unwrap_or_else(PoisonError::into_inner);
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
    }
}

//! Deterministic per-job seed derivation.
//!
//! The pool's determinism contract — identical results for the same
//! root seed regardless of worker count — requires that the seed a job
//! samples with depends only on *which job it is*, never on which
//! worker picks it up or in which order workers drain the queue.
//! [`SeedStream`] provides that: a SplitMix64-style mixing of
//! `(root seed, domain, job index)` into one 64-bit seed per job.

/// One SplitMix64 step: advances `state` by the golden-gamma increment
/// and returns the mixed output. The finalizer is bijective, so
/// distinct inputs can never silently collapse onto one seed.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A keyed stream of per-job seeds: `seed(domain, index)` is a pure
/// function of the root seed, the domain and the index.
///
/// Domains keep unrelated seed consumers apart — a run job and a
/// sampling chunk with the same index must not share an RNG stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    root: u64,
}

/// Seed domain of batch-run jobs (per-job measurement sampling).
pub const DOMAIN_RUN: u64 = 0x1;
/// Seed domain of sharded `sample_counts` shot chunks.
pub const DOMAIN_SAMPLE: u64 = 0x2;

impl SeedStream {
    /// A stream rooted at `root` (a pool's builder seed).
    #[must_use]
    pub fn new(root: u64) -> Self {
        Self { root }
    }

    /// The root seed.
    #[must_use]
    pub fn root(&self) -> u64 {
        self.root
    }

    /// The seed of job `index` in `domain`: three chained SplitMix64
    /// steps over root, domain and index, so near-identical inputs
    /// (adjacent indices, adjacent roots) still produce statistically
    /// independent seeds.
    #[must_use]
    pub fn seed(&self, domain: u64, index: u64) -> u64 {
        let mut state = self.root;
        let a = splitmix64(&mut state);
        let mut state = a ^ domain;
        let b = splitmix64(&mut state);
        let mut state = b ^ index;
        splitmix64(&mut state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_a_pure_function_of_its_inputs() {
        let s = SeedStream::new(42);
        assert_eq!(s.seed(DOMAIN_RUN, 3), s.seed(DOMAIN_RUN, 3));
        assert_eq!(
            SeedStream::new(42).seed(DOMAIN_SAMPLE, 0),
            s.seed(DOMAIN_SAMPLE, 0)
        );
    }

    #[test]
    fn domains_indices_and_roots_separate_streams() {
        let s = SeedStream::new(7);
        assert_ne!(s.seed(DOMAIN_RUN, 0), s.seed(DOMAIN_RUN, 1));
        assert_ne!(s.seed(DOMAIN_RUN, 0), s.seed(DOMAIN_SAMPLE, 0));
        assert_ne!(
            s.seed(DOMAIN_RUN, 0),
            SeedStream::new(8).seed(DOMAIN_RUN, 0)
        );
    }

    #[test]
    fn seeds_have_no_trivial_collisions() {
        let s = SeedStream::new(0);
        let mut seen = std::collections::HashSet::new();
        for domain in [DOMAIN_RUN, DOMAIN_SAMPLE] {
            for index in 0..4096 {
                assert!(
                    seen.insert(s.seed(domain, index)),
                    "collision at {domain}/{index}"
                );
            }
        }
    }
}

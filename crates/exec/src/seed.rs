//! Deterministic per-job seed derivation.
//!
//! The pool's determinism contract — identical results for the same
//! root seed regardless of worker count — requires that the seed a job
//! samples with depends only on *which job it is*, never on which
//! worker picks it up or in which order workers drain the queue.
//! [`SeedStream`] provides that: a SplitMix64-style mixing of
//! `(root seed, domain, job index)` into one 64-bit seed per job.

/// One SplitMix64 step: advances `state` by the golden-gamma increment
/// and returns the mixed output. The finalizer is bijective, so
/// distinct inputs can never silently collapse onto one seed.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A keyed stream of per-job seeds: `seed(domain, index)` is a pure
/// function of the root seed, the domain and the index.
///
/// Domains keep unrelated seed consumers apart — a run job and a
/// sampling chunk with the same index must not share an RNG stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    root: u64,
}

/// Seed domain of batch-run jobs (per-job measurement sampling).
pub const DOMAIN_RUN: u64 = 0x1;
/// Seed domain of sharded `sample_counts` shot chunks.
pub const DOMAIN_SAMPLE: u64 = 0x2;
/// Seed domain of stochastic noise-trajectory sampling (the
/// `approxdd-noise` crate derives trajectory `t`'s channel-selection
/// RNG from `seed(DOMAIN_NOISE, t)` at submission time, so inserted
/// noise ops are a pure function of the trajectory index — never of
/// worker count or scheduling).
pub const DOMAIN_NOISE: u64 = 0x3;
/// Seed domain of the fault-injection harness: a seeded
/// [`crate::FaultPlan`] derives job `j`'s fault decision from
/// `seed(DOMAIN_FAULT, j)`, so injected panics/delays/aborts land on
/// the same job indices at every worker count — which is what makes
/// the recovery paths (supervision, retry, deadlines) reproducibly
/// testable. Test/bench only; no production path consumes this domain.
pub const DOMAIN_FAULT: u64 = 0x4;

impl SeedStream {
    /// A stream rooted at `root` (a pool's builder seed).
    #[must_use]
    pub fn new(root: u64) -> Self {
        Self { root }
    }

    /// The root seed.
    #[must_use]
    pub fn root(&self) -> u64 {
        self.root
    }

    /// The seed of job `index` in `domain`: three chained SplitMix64
    /// steps over root, domain and index, so near-identical inputs
    /// (adjacent indices, adjacent roots) still produce statistically
    /// independent seeds.
    #[must_use]
    pub fn seed(&self, domain: u64, index: u64) -> u64 {
        let mut state = self.root;
        let a = splitmix64(&mut state);
        let mut state = a ^ domain;
        let b = splitmix64(&mut state);
        let mut state = b ^ index;
        splitmix64(&mut state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_a_pure_function_of_its_inputs() {
        let s = SeedStream::new(42);
        assert_eq!(s.seed(DOMAIN_RUN, 3), s.seed(DOMAIN_RUN, 3));
        assert_eq!(
            SeedStream::new(42).seed(DOMAIN_SAMPLE, 0),
            s.seed(DOMAIN_SAMPLE, 0)
        );
    }

    #[test]
    fn domains_indices_and_roots_separate_streams() {
        let s = SeedStream::new(7);
        assert_ne!(s.seed(DOMAIN_RUN, 0), s.seed(DOMAIN_RUN, 1));
        assert_ne!(s.seed(DOMAIN_RUN, 0), s.seed(DOMAIN_SAMPLE, 0));
        assert_ne!(
            s.seed(DOMAIN_RUN, 0),
            SeedStream::new(8).seed(DOMAIN_RUN, 0)
        );
    }

    #[test]
    fn seeds_have_no_trivial_collisions() {
        let s = SeedStream::new(0);
        let mut seen = std::collections::HashSet::new();
        for domain in [DOMAIN_RUN, DOMAIN_SAMPLE, DOMAIN_NOISE, DOMAIN_FAULT] {
            for index in 0..4096 {
                assert!(
                    seen.insert(s.seed(domain, index)),
                    "collision at {domain}/{index}"
                );
            }
        }
    }

    /// Golden values pin the existing streams: adding the noise domain
    /// (or any future refactor of the mixing) must not move a single
    /// seed of `DOMAIN_RUN`/`DOMAIN_SAMPLE`, or every archived
    /// `run_batch`/`sample_counts` fingerprint would silently change.
    /// The noise stream is pinned alongside them so trajectory results
    /// stay reproducible across releases too.
    #[test]
    fn existing_streams_are_frozen() {
        let s = SeedStream::new(42);
        for (domain, index, want) in [
            (DOMAIN_RUN, 0, 0x93BE_8420_BB55_B94C),
            (DOMAIN_RUN, 1, 0x56F8_06FA_1C91_F122),
            (DOMAIN_RUN, 7, 0x1B18_6314_9F17_26FA),
            (DOMAIN_SAMPLE, 0, 0x0684_A9E5_6565_7C2E),
            (DOMAIN_SAMPLE, 1, 0xCB3F_6068_39EE_90D6),
            (DOMAIN_SAMPLE, 7, 0xEF5E_260B_C49C_3C6F),
            (DOMAIN_NOISE, 0, 0x2CE0_2C4E_E4D2_EA09),
            (DOMAIN_NOISE, 1, 0x5D39_6F90_8F79_BB0B),
            (DOMAIN_NOISE, 7, 0xAB2F_9774_6E2E_A953),
            (DOMAIN_FAULT, 0, 0xE8DA_A970_75F9_D9E8),
            (DOMAIN_FAULT, 1, 0xBEE2_E244_4F09_461F),
            (DOMAIN_FAULT, 7, 0x5B5F_AB66_E103_2DC8),
        ] {
            assert_eq!(
                s.seed(domain, index),
                want,
                "domain {domain:#x} index {index}"
            );
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Domain separation: over a sampled window, streams for
            // distinct (domain, job index) pairs share no 64-bit
            // outputs — the PR 2 determinism contract extended to the
            // noise domain.
            #[test]
            fn distinct_domain_index_pairs_share_no_outputs(root in any::<u64>()) {
                let s = SeedStream::new(root);
                let mut seen = std::collections::HashMap::new();
                for domain in [DOMAIN_RUN, DOMAIN_SAMPLE, DOMAIN_NOISE, DOMAIN_FAULT] {
                    for index in 0..512u64 {
                        let seed = s.seed(domain, index);
                        if let Some(prev) = seen.insert(seed, (domain, index)) {
                            prop_assert!(
                                false,
                                "seed {seed:#x} shared by {prev:?} and {:?}",
                                (domain, index)
                            );
                        }
                    }
                }
            }

            // Neighbouring roots never collide within a window either
            // (pools with adjacent builder seeds stay independent).
            #[test]
            fn adjacent_roots_stay_separated(root in any::<u64>()) {
                let a = SeedStream::new(root);
                let b = SeedStream::new(root.wrapping_add(1));
                for index in 0..256u64 {
                    let (x, y) = (a.seed(DOMAIN_NOISE, index), b.seed(DOMAIN_NOISE, index));
                    prop_assert!(x != y, "roots {root} and +1 collide at index {index}");
                }
            }
        }
    }
}

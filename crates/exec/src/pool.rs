//! The [`BackendPool`]: N worker threads executing backend jobs from a
//! shared channel-based work queue.
//!
//! # Determinism
//!
//! The pool guarantees that the same root seed produces byte-identical
//! results regardless of worker count. Two properties make that hold:
//!
//! * **Seed streams, not shared RNGs.** Every job derives its sampling
//!   seed from the pool's [`SeedStream`] as a pure function of
//!   `(root seed, domain, job index)` — never from which worker runs it
//!   or in which order the queue drains.
//! * **Per-job state isolation.** The DD package's unique table
//!   canonicalizes near-equal edge weights first-write-wins (within
//!   tolerance), so a run's low-order float bits can depend on what ran
//!   earlier in the same package. Workers therefore rebuild their
//!   backend from the shared [`SimulatorBuilder`] template for every
//!   run job, making each outcome a pure function of the job itself.
//!   (The serial benchmarks build a fresh backend per row for the same
//!   reason, so nothing is lost relative to the status quo.)
//!
//! Copy-on-write snapshots (`SimulatorBuilder::share_snapshot`)
//! preserve both properties while amortizing the per-job rebuild: the
//! batch's gate DDs are frozen **once, on the submitting thread, in
//! input order** into a [`SimSnapshot`], and every worker job layers a
//! private delta package over that shared immutable prefix. The frozen
//! tier pins the canonicalization history a job would have built
//! itself, so [`PoolOutcome::fingerprint`] stays byte-identical between
//! snapshot-on and snapshot-off at any worker count — the contract
//! suite asserts exactly that.
//!
//! Sharded sampling ([`BackendPool::sample_counts`]) splits the shot
//! budget into fixed-size chunks of [`SHOT_CHUNK`] shots. Chunk `i`
//! always draws with seed `stream(DOMAIN_SAMPLE, i)` and histogram
//! merging is commutative, so the merged counts are invariant under
//! both worker count and completion order.
//!
//! # Fault tolerance
//!
//! The pool self-heals and retries (see `docs/ARCHITECTURE.md` for the
//! lifecycle):
//!
//! * **Supervision.** A worker that dies (a panicking job) is detected
//!   during result collection and respawned into the same slot, so the
//!   pool always returns to full capacity; respawn counts surface in
//!   [`PoolStats::respawns`].
//! * **Deterministic retry.** A [`RetryPolicy`] on the template (or
//!   per job via [`PoolJob::retry`]) re-dispatches jobs that failed
//!   with a retryable error — [`ExecError::WorkerLost`],
//!   [`ExecError::FaultInjected`], [`ExecError::DeadlineExceeded`].
//!   Seeds are keyed on the job index, never the attempt, so a retried
//!   success is byte-identical to a first-try success.
//! * **Deadlines & degradation.** [`PoolJob::deadline`] (or the
//!   template's `job_deadline`) wraps the job's policy in a
//!   `DeadlinePolicy` that aborts cooperatively past the cutoff,
//!   surfacing [`ExecError::DeadlineExceeded`]; an optional
//!   [`PoolJob::degrade_with`] fallback policy reruns aborted jobs
//!   coarser (once, without the deadline), marking
//!   [`PoolOutcome::degraded`].
//! * **Fault injection.** [`BackendPool::inject_faults`] installs a
//!   seeded [`FaultPlan`] (test/bench only) that panics workers,
//!   delays jobs, or forces aborts at deterministic job indices.
//!
//! The resilience counters ([`PoolStats::respawns`] /
//! [`PoolStats::retries`] / [`PoolStats::deadline_exceeded`], and
//! [`PoolOutcome::attempts`] / [`PoolOutcome::degraded`]) are
//! diagnostics: all are excluded from [`PoolOutcome::fingerprint`].

use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use approxdd_backend::{
    AnyBackend, AnyHandle, Backend, BackendStats, BuildBackend, ExecError, RunOutcome,
};
use approxdd_circuit::Circuit;
use approxdd_sim::{
    DeadlineFactory, Engine, PolicyFactory, RetryPolicy, SharedObserver, SimError, SimSnapshot,
    SimulatorBuilder, Strategy, TraceEvent, TraceRecorder,
};
use approxdd_telemetry as telemetry;

use crate::fault::{FaultKind, FaultPlan, InjectedPanic};
use crate::seed::{SeedStream, DOMAIN_RUN, DOMAIN_SAMPLE};
use crate::supervise::Supervisor;

/// How long collection loops block on the reply channel before taking
/// a supervision tick ([`BackendPool::heal`]). The tick is what breaks
/// the all-workers-dead deadlock: queued tasks hold reply senders, so
/// the channel never disconnects on its own — healing respawns workers
/// that then drain the queue.
const SUPERVISE_TICK: Duration = Duration::from_millis(25);

/// A diagonal observable `Σ f(i) |i⟩⟨i|` evaluated worker-side on a
/// job's final state (shared so heterogeneous job lists clone cheaply).
pub type SharedDiagonal = Arc<dyn Fn(u64) -> f64 + Send + Sync>;

/// Shots per sharded-sampling chunk. Fixed (never derived from the
/// worker count) so the chunk decomposition — and with it every chunk
/// seed — is identical no matter how many workers drain the queue.
pub const SHOT_CHUNK: usize = 2048;

/// One unit of pooled work: a circuit, an optional per-job policy or
/// strategy override (sweeps run many configurations over one pool),
/// an optional number of measurement shots to draw after the run, and
/// an optional request to capture the run's trace.
#[derive(Clone)]
pub struct PoolJob {
    circuit: Circuit,
    strategy: Option<Strategy>,
    policy: Option<Arc<dyn PolicyFactory>>,
    shots: usize,
    trace: bool,
    expectation: Option<SharedDiagonal>,
    deadline: Option<Duration>,
    retry: Option<RetryPolicy>,
    fallback: Option<Arc<dyn PolicyFactory>>,
}

impl std::fmt::Debug for PoolJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolJob")
            .field("circuit", &self.circuit.name())
            .field("strategy", &self.strategy)
            .field("policy", &self.policy.is_some())
            .field("shots", &self.shots)
            .field("trace", &self.trace)
            .field("expectation", &self.expectation.is_some())
            .field("deadline", &self.deadline)
            .field("retry", &self.retry)
            .field("fallback", &self.fallback.is_some())
            .finish()
    }
}

impl PoolJob {
    /// A plain run of `circuit` under the pool template's policy.
    #[must_use]
    pub fn new(circuit: Circuit) -> Self {
        Self {
            circuit,
            strategy: None,
            policy: None,
            shots: 0,
            trace: false,
            expectation: None,
            deadline: None,
            retry: None,
            fallback: None,
        }
    }

    /// Overrides the approximation strategy for this job only.
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Overrides the approximation policy for this job only — the
    /// worker builds a fresh policy instance from the factory for this
    /// job (per-job instantiation is what keeps results bit-identical
    /// and worker-count-invariant). Takes precedence over
    /// [`PoolJob::strategy`].
    #[must_use]
    pub fn policy<P: PolicyFactory + 'static>(mut self, factory: P) -> Self {
        self.policy = Some(Arc::new(factory));
        self
    }

    /// Draws `shots` measurement samples after the run (seeded from the
    /// pool's per-job seed stream; reported in
    /// [`PoolOutcome::counts`]).
    #[must_use]
    pub fn shots(mut self, shots: usize) -> Self {
        self.shots = shots;
        self
    }

    /// Captures the run's [`TraceEvent`] stream into
    /// [`PoolOutcome::trace`]. Traces contain no wall-clock data, so
    /// the captured stream of a job is identical regardless of worker
    /// count or scheduling.
    #[must_use]
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Evaluates the diagonal observable `Σ f(i) |i⟩⟨i|` on the job's
    /// final state, worker-side, into [`PoolOutcome::expectation`].
    /// The value is computed on the **raw** (possibly unnormalized)
    /// state — exactly `Σᵢ |aᵢ|² f(i)` — which is what the stochastic
    /// noise-trajectory estimator needs (amplitude-damping trajectories
    /// carry their importance weight in the state norm). Shares the
    /// engine's dense-amplitude width limits.
    #[must_use]
    pub fn expectation(mut self, f: SharedDiagonal) -> Self {
        self.expectation = Some(f);
        self
    }

    /// Sets a wall-clock deadline for this job, overriding the
    /// template's `job_deadline`. Enforced cooperatively: the worker
    /// wraps the job's policy in a `DeadlinePolicy` that aborts at the
    /// first operation past the cutoff, surfacing
    /// [`ExecError::DeadlineExceeded`]. Retried attempts keep the
    /// deadline; a degraded attempt ([`PoolJob::degrade_with`]) drops
    /// it.
    #[must_use]
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Overrides the pool template's [`RetryPolicy`] for this job only.
    #[must_use]
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Installs a degradation fallback: when this job aborts — its
    /// deadline fires, or its policy returns `Abort` — the pool reruns
    /// it **once** under this (presumably coarser) policy instead of
    /// giving up, with no deadline attached (last-resort semantics: the
    /// degraded attempt must be allowed to finish), and marks the
    /// outcome [`PoolOutcome::degraded`]. Degradation takes precedence
    /// over blind retry for abort-style failures and does not consume
    /// a retry attempt beyond the one it spends.
    #[must_use]
    pub fn degrade_with<P: PolicyFactory + 'static>(mut self, factory: P) -> Self {
        self.fallback = Some(Arc::new(factory));
        self
    }

    /// The job's circuit.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }
}

/// The detached result of one pooled job: unified run statistics plus
/// (optionally) a measurement histogram. Unlike a single-threaded
/// [`RunOutcome`], it holds no engine handle — the worker extracts
/// everything and releases the run before replying, so outcomes are
/// plain data that cross threads freely.
#[derive(Debug, Clone)]
pub struct PoolOutcome {
    /// Name of the executed circuit.
    pub name: String,
    /// Register width.
    pub n_qubits: usize,
    /// Unified run statistics (identical to what a single-threaded
    /// backend run of the same job reports).
    pub stats: BackendStats,
    /// Size of the final state representation: DD node count, or
    /// tableau storage words for stabilizer-engine runs.
    pub final_size: usize,
    /// Measurement histogram when the job requested shots.
    pub counts: Option<HashMap<u64, usize>>,
    /// Worker-side diagonal-observable value when the job requested one
    /// ([`PoolJob::expectation`]).
    pub expectation: Option<f64>,
    /// The run's trace when the job requested it ([`PoolJob::trace`]).
    pub trace: Option<Vec<TraceEvent>>,
    /// Index of the worker that executed the job (diagnostic only —
    /// excluded from [`PoolOutcome::fingerprint`]).
    pub worker: usize,
    /// Total attempts this job consumed (1 = succeeded first try; > 1
    /// means retries happened). Resilience diagnostic — excluded from
    /// [`PoolOutcome::fingerprint`], because a retried success must be
    /// byte-identical to a first-try success.
    pub attempts: u32,
    /// Whether this outcome came from a degraded attempt (the
    /// [`PoolJob::degrade_with`] fallback policy, after an abort).
    /// Excluded from [`PoolOutcome::fingerprint`] like every other
    /// resilience counter — though a degraded run's *result fields*
    /// naturally differ from an undisturbed run's, since a different
    /// policy steered it.
    pub degraded: bool,
}

impl PoolOutcome {
    /// A hash over every deterministic *result* field — everything
    /// except the wall-clock runtime, the executing worker, the trace
    /// (itself deterministic, but an audit artifact rather than a
    /// result), the policy *name* (so a custom policy replicating a
    /// preset's decisions fingerprints identically to the preset), and
    /// the resilience diagnostics ([`PoolOutcome::attempts`] /
    /// [`PoolOutcome::degraded`] — a retried success must fingerprint
    /// identically to a first-try success). Two runs of the same job
    /// under the same root seed produce equal fingerprints regardless
    /// of pool size; the contract suite asserts exactly that.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name.hash(&mut h);
        self.n_qubits.hash(&mut h);
        self.stats.gates_applied.hash(&mut h);
        self.stats.peak_size.hash(&mut h);
        self.stats.approx_rounds.hash(&mut h);
        self.stats.fidelity.to_bits().hash(&mut h);
        self.stats.fidelity_lower_bound.to_bits().hash(&mut h);
        self.stats.nodes_removed.hash(&mut h);
        self.stats.size_series.hash(&mut h);
        self.final_size.hash(&mut h);
        if let Some(counts) = &self.counts {
            let mut entries: Vec<(u64, usize)> = counts.iter().map(|(k, v)| (*k, *v)).collect();
            entries.sort_unstable();
            entries.hash(&mut h);
        }
        if let Some(expectation) = self.expectation {
            expectation.to_bits().hash(&mut h);
        }
        h.finish()
    }
}

/// Per-worker execution statistics (one entry per thread in
/// [`PoolStats::per_worker`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Times this worker slot was respawned after a thread death
    /// (supervision; see [`PoolStats::respawns`] for the pool total).
    pub respawns: usize,
    /// Run jobs executed.
    pub jobs: usize,
    /// Sampling chunks executed.
    pub sample_chunks: usize,
    /// Total measurement shots drawn.
    pub shots_drawn: usize,
    /// Run jobs (not sampling chunks) that returned an error.
    pub failed_jobs: usize,
    /// Time this worker spent executing tasks.
    pub busy: Duration,
    /// Alive DD nodes in this worker's package after its last task.
    pub alive_nodes: usize,
    /// Peak simultaneously-alive DD nodes (both node kinds) over every
    /// backend this worker has owned — the worker's node-memory
    /// high-water mark, accumulated like [`WorkerStats::ct_hits`].
    pub peak_nodes: usize,
    /// Gate DDs cached in this worker's backend after its last task.
    pub cached_gates: usize,
    /// Compute-cache hits summed over every backend this worker has
    /// owned (all four lossy tables combined). Run jobs rebuild the
    /// backend per job (see the module docs); retiring a backend
    /// harvests its counters into this running total, so summing the
    /// field across workers covers every executed run job — a
    /// deterministic quantity, independent of which worker ran what.
    /// Sharded sampling ([`BackendPool::sample_counts`]) is the one
    /// exception: each worker that serves an epoch re-runs the circuit
    /// once, so sampling adds up to one run's counters *per
    /// participating worker* and the cross-worker sum is then
    /// scheduling-dependent (the sampled *histograms* stay exactly
    /// deterministic).
    pub ct_hits: u64,
    /// Compute-cache misses, accumulated like [`WorkerStats::ct_hits`].
    pub ct_misses: u64,
    /// Live unique-table entries in this worker's package after its
    /// last task.
    pub unique_len: usize,
    /// Unique-table buckets in this worker's package after its last
    /// task.
    pub unique_capacity: usize,
    /// Unique-table lookups served by a shared snapshot's frozen tier,
    /// accumulated like [`WorkerStats::ct_hits`] (0 when the pool runs
    /// without snapshots).
    pub snapshot_hits: u64,
    /// Gate-DD lookups served by a shared snapshot's frozen gate cache,
    /// accumulated like [`WorkerStats::ct_hits`] (0 without snapshots).
    pub snapshot_gate_hits: u64,
    /// Alive nodes in the shared frozen prefix this worker's package
    /// layers over (0 without a snapshot).
    pub frozen_nodes: usize,
}

/// Aggregated pool statistics: wall time, queue pressure and the
/// per-worker node/cache breakdown.
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Number of worker threads.
    pub workers: usize,
    /// Wall-clock time since the pool was built.
    pub uptime: Duration,
    /// Tasks submitted over the pool's lifetime (run jobs + chunks).
    pub tasks_submitted: usize,
    /// Tasks waiting in the queue (not yet picked up by a worker;
    /// tasks currently executing are not counted).
    pub queue_depth: usize,
    /// High-water mark of [`PoolStats::queue_depth`].
    pub max_queue_depth: usize,
    /// Worker threads respawned after a death over the pool's lifetime
    /// (0 on a healthy run). A resilience diagnostic, like
    /// [`PoolStats::retries`] — never part of any result fingerprint.
    pub respawns: usize,
    /// Job dispatches beyond each job's first attempt: every retry and
    /// every degraded rerun counts, whether or not it succeeded.
    pub retries: usize,
    /// [`ExecError::DeadlineExceeded`] failures observed, counted
    /// before any retry/degradation decision (a job that blows its
    /// deadline twice counts twice).
    pub deadline_exceeded: usize,
    /// Per-worker breakdown.
    pub per_worker: Vec<WorkerStats>,
}

impl PoolStats {
    /// Total busy time summed over workers (≥ uptime means the pool ran
    /// with real parallelism).
    #[must_use]
    pub fn total_busy(&self) -> Duration {
        self.per_worker.iter().map(|w| w.busy).sum()
    }

    /// Run jobs completed across all workers.
    #[must_use]
    pub fn jobs_completed(&self) -> usize {
        self.per_worker.iter().map(|w| w.jobs).sum()
    }

    /// Measurement shots drawn across all workers.
    #[must_use]
    pub fn shots_drawn(&self) -> usize {
        self.per_worker.iter().map(|w| w.shots_drawn).sum()
    }

    /// Aggregate compute-cache hit rate over every job the pool has
    /// executed (workers accumulate retired-backend counters, so this
    /// is deterministic regardless of scheduling; 0 when nothing was
    /// looked up).
    #[must_use]
    pub fn ct_hit_rate(&self) -> f64 {
        let hits: u64 = self.per_worker.iter().map(|w| w.ct_hits).sum();
        let misses: u64 = self.per_worker.iter().map(|w| w.ct_misses).sum();
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                hits as f64 / total as f64
            }
        }
    }

    /// Highest peak node count over every package any worker has
    /// owned — the pool's per-package node-memory high-water mark.
    #[must_use]
    pub fn peak_nodes(&self) -> usize {
        self.per_worker
            .iter()
            .map(|w| w.peak_nodes)
            .max()
            .unwrap_or(0)
    }

    /// Unique-table lookups served by shared snapshots' frozen tiers,
    /// summed over workers (0 when the pool runs without snapshots).
    #[must_use]
    pub fn snapshot_hits(&self) -> u64 {
        self.per_worker.iter().map(|w| w.snapshot_hits).sum()
    }

    /// Gate-DD lookups served by shared snapshots' frozen gate caches,
    /// summed over workers (0 without snapshots).
    #[must_use]
    pub fn snapshot_gate_hits(&self) -> u64 {
        self.per_worker.iter().map(|w| w.snapshot_gate_hits).sum()
    }

    /// Alive nodes in the shared frozen prefix worker packages layer
    /// over (the per-worker maximum; 0 without snapshots).
    #[must_use]
    pub fn frozen_nodes(&self) -> usize {
        self.per_worker
            .iter()
            .map(|w| w.frozen_nodes)
            .max()
            .unwrap_or(0)
    }
}

/// A settled sharded-sampling chunk, as seen by the
/// [`BackendPool::sample_counts_streamed`] callback: which chunk just
/// merged, how far the request has progressed, and a borrowed view of
/// the running merged histogram.
#[derive(Debug)]
pub struct ChunkSettled<'a> {
    /// Index of the chunk that just settled (its seed key).
    pub chunk: usize,
    /// Total chunks in this request's decomposition.
    pub chunks: usize,
    /// Chunks settled so far, including this one.
    pub settled: usize,
    /// Shots merged so far, including this chunk's.
    pub shots_settled: usize,
    /// The merged histogram after this chunk. Intermediate views are
    /// scheduling-dependent; only the final one (at `settled ==
    /// chunks`) is deterministic.
    pub merged: &'a HashMap<u64, usize>,
}

/// Reply channel of a run job: `(job index, attempt, degraded,
/// outcome)` — the attempt/degraded echo lets the collector match a
/// reply to the exact dispatch it answers.
type RunReply = mpsc::Sender<(usize, u32, bool, Result<PoolOutcome, ExecError>)>;
/// Reply channel of a sampling chunk: `(chunk index, histogram)`.
type ChunkReply = mpsc::Sender<(usize, Result<HashMap<u64, usize>, ExecError>)>;

/// One dispatch of a run job: the job plus everything attempt-specific
/// (which try this is, whether it runs degraded, the effective
/// deadline, the installed fault plan).
struct RunSpec {
    index: usize,
    /// Zero-based attempt number of this dispatch.
    attempt: u32,
    /// Whether this dispatch runs under the job's degradation fallback.
    degraded: bool,
    job: PoolJob,
    seed: u64,
    /// Shared frozen prefix for this job's backend, built once per
    /// submission when the template enables `share_snapshot`.
    snapshot: Option<Arc<SimSnapshot>>,
    /// Effective wall-clock budget (per-job override, else the
    /// template's `job_deadline`; `None` on degraded attempts).
    deadline: Option<Duration>,
    fault: Option<Arc<FaultPlan>>,
}

enum Task {
    Run {
        spec: RunSpec,
        reply: RunReply,
    },
    Sample {
        epoch: u64,
        chunk: usize,
        circuit: Arc<Circuit>,
        strategy: Option<Strategy>,
        shots: usize,
        seed: u64,
        reply: ChunkReply,
    },
}

/// A task plus its submission timestamp — what actually travels the
/// queue, so workers can report queue-wait latency. Telemetry only:
/// the timestamp never influences scheduling or results.
struct QueuedTask {
    enqueued: Instant,
    task: Task,
}

/// A fixed-size pool of worker threads, each owning an [`AnyBackend`]
/// built from a shared [`SimulatorBuilder`] template (the template's
/// `engine` knob selects DD, stabilizer or hybrid execution), running
/// batch and sampling jobs from one channel-based work queue.
///
/// Build one through the builder —
/// `Simulator::builder().workers(4).build_pool()` (see [`BuildPool`])
/// — and submit work with [`BackendPool::run_batch`],
/// [`BackendPool::run_jobs`] or [`BackendPool::sample_counts`]. All
/// submission methods take `&self` and may be called from multiple
/// threads; results are invariant under worker count (see the module
/// docs for the determinism contract).
///
/// ```
/// use approxdd_exec::BuildPool;
/// use approxdd_circuit::generators;
/// use approxdd_sim::Simulator;
///
/// # fn main() -> Result<(), approxdd_backend::ExecError> {
/// // share_snapshot(true): gate DDs for the batch are frozen once and
/// // shared across workers — same bits, less per-job rebuild work.
/// let pool = Simulator::builder()
///     .workers(2)
///     .seed(7)
///     .share_snapshot(true)
///     .build_pool();
/// let circuits = vec![generators::qft(6); 4];
/// let outcomes = pool.run_batch(&circuits)?;
/// assert_eq!(outcomes.len(), 4);
/// assert!(pool.stats().snapshot_gate_hits() > 0);
/// # Ok(())
/// # }
/// ```
///
/// Dropping the pool closes the queue and joins every worker.
#[derive(Debug)]
pub struct BackendPool {
    sender: Option<mpsc::Sender<QueuedTask>>,
    template: SimulatorBuilder,
    supervisor: Supervisor,
    worker_stats: Vec<Arc<Mutex<WorkerStats>>>,
    /// Kept so [`BackendPool::heal`] can hand the shared queue to
    /// respawned workers (and so the send side never observes a
    /// disconnected channel while the pool is alive).
    receiver: Arc<Mutex<mpsc::Receiver<QueuedTask>>>,
    queue_depth: Arc<AtomicUsize>,
    max_queue_depth: AtomicUsize,
    tasks_submitted: AtomicUsize,
    epoch: AtomicU64,
    seeds: SeedStream,
    fault_plan: Mutex<Option<Arc<FaultPlan>>>,
    retries: AtomicUsize,
    deadline_exceeded: AtomicUsize,
    created: Instant,
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Task::Run { spec, .. } => write!(f, "Task::Run({})", spec.index),
            Task::Sample { epoch, .. } => write!(f, "Task::Sample(epoch {epoch})"),
        }
    }
}

impl BackendPool {
    /// Builds a pool from a simulator template, taking the worker count
    /// from [`SimulatorBuilder::worker_count`] (the `workers(n)` knob,
    /// clamped to ≥ 1; default: the machine's available parallelism).
    #[must_use]
    pub fn new(template: SimulatorBuilder) -> Self {
        let workers = template.worker_count();
        Self::with_workers(template, workers)
    }

    /// Builds a pool with an explicit worker count (clamped to ≥ 1),
    /// ignoring the template's `workers` knob.
    #[must_use]
    pub fn with_workers(template: SimulatorBuilder, workers: usize) -> Self {
        let workers = workers.max(1);
        let seeds = SeedStream::new(template.sample_seed());
        let (sender, receiver) = mpsc::channel::<QueuedTask>();
        let receiver = Arc::new(Mutex::new(receiver));
        let queue_depth = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::with_capacity(workers);
        let mut worker_stats = Vec::with_capacity(workers);
        for id in 0..workers {
            let cell = Arc::new(Mutex::new(WorkerStats {
                worker: id,
                ..WorkerStats::default()
            }));
            worker_stats.push(Arc::clone(&cell));
            let template = template.clone();
            let receiver = Arc::clone(&receiver);
            let depth = Arc::clone(&queue_depth);
            let handle = thread::Builder::new()
                .name(format!("approxdd-pool-{id}"))
                .spawn(move || worker_loop(id, &template, &receiver, &depth, &cell))
                .expect("spawn pool worker");
            handles.push(handle);
        }
        Self {
            sender: Some(sender),
            template,
            supervisor: Supervisor::new(handles),
            worker_stats,
            receiver,
            queue_depth,
            max_queue_depth: AtomicUsize::new(0),
            tasks_submitted: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            seeds,
            fault_plan: Mutex::new(None),
            retries: AtomicUsize::new(0),
            deadline_exceeded: AtomicUsize::new(0),
            created: Instant::now(),
        }
    }

    /// Number of worker slots (fixed for the pool's lifetime; a dead
    /// worker's slot is respawned, never removed — see
    /// [`BackendPool::alive_workers`]).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.supervisor.worker_count()
    }

    /// Worker threads currently running. Less than
    /// [`BackendPool::workers`] only between a worker death and the
    /// next supervision tick; [`BackendPool::heal`] restores full
    /// capacity.
    #[must_use]
    pub fn alive_workers(&self) -> usize {
        self.supervisor.alive()
    }

    /// Respawns every dead worker thread into its original slot (same
    /// index, same [`WorkerStats`] cell, accumulated counters
    /// preserved), returning how many were healed. Collection loops
    /// call this automatically on a timer tick, so user code rarely
    /// needs to — it is public for servers that want to heal eagerly
    /// between batches. Totals surface in [`PoolStats::respawns`] and
    /// per slot in [`WorkerStats::respawns`].
    pub fn heal(&self) -> usize {
        self.supervisor.heal(|slot| {
            let cell = Arc::clone(&self.worker_stats[slot]);
            cell.lock().unwrap_or_else(PoisonError::into_inner).respawns += 1;
            telemetry::count("approxdd_pool_respawns_total", 1);
            let template = self.template.clone();
            let receiver = Arc::clone(&self.receiver);
            let depth = Arc::clone(&self.queue_depth);
            thread::Builder::new()
                .name(format!("approxdd-pool-{slot}"))
                .spawn(move || worker_loop(slot, &template, &receiver, &depth, &cell))
                .expect("respawn pool worker")
        })
    }

    /// Installs (or, with `None`, clears) a fault-injection plan for
    /// subsequent [`BackendPool::run_jobs`] submissions. Test/bench
    /// only: injected faults exercise the supervision, retry and
    /// deadline machinery at deterministic job indices (the
    /// `DOMAIN_FAULT` seed stream — see [`FaultPlan`]). No production
    /// path installs one.
    pub fn inject_faults(&self, plan: Option<FaultPlan>) {
        *self
            .fault_plan
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = plan.map(Arc::new);
    }

    /// The root seed of the pool's per-job seed stream.
    #[must_use]
    pub fn root_seed(&self) -> u64 {
        self.seeds.root()
    }

    /// Runs every circuit under the pool template's strategy, in input
    /// order, failing on the first per-job error (all jobs still
    /// execute; use [`BackendPool::try_run_batch`] to keep partial
    /// results).
    ///
    /// # Errors
    ///
    /// The lowest-indexed failing job's error.
    pub fn run_batch(&self, circuits: &[Circuit]) -> Result<Vec<PoolOutcome>, ExecError> {
        self.try_run_batch(circuits).into_iter().collect()
    }

    /// Runs every circuit, returning one result per circuit in input
    /// order. A failing job never disturbs the others: each failure is
    /// confined to its own slot.
    #[must_use]
    pub fn try_run_batch(&self, circuits: &[Circuit]) -> Vec<Result<PoolOutcome, ExecError>> {
        self.run_jobs(circuits.iter().cloned().map(PoolJob::new).collect())
    }

    /// Runs every circuit and draws `shots` measurement samples per
    /// run, with per-job seeds from the pool's seed stream.
    #[must_use]
    pub fn run_batch_sampled(
        &self,
        circuits: &[Circuit],
        shots: usize,
    ) -> Vec<Result<PoolOutcome, ExecError>> {
        self.run_jobs(
            circuits
                .iter()
                .map(|c| PoolJob::new(c.clone()).shots(shots))
                .collect(),
        )
    }

    /// The general submission path: runs heterogeneous jobs (per-job
    /// strategies and shot counts) across the workers, returning one
    /// result per job in input order.
    ///
    /// Job `i` samples with seed `stream(DOMAIN_RUN, i)` — keyed on the
    /// job index alone, never the attempt, so a retried success is
    /// byte-identical to a first-try success. A job whose worker
    /// disappears mid-flight is re-dispatched when its [`RetryPolicy`]
    /// allows, and otherwise reports [`ExecError::WorkerLost`] in its
    /// slot instead of hanging the collection; dead workers are healed
    /// along the way (see the module docs, *Fault tolerance*).
    #[must_use]
    pub fn run_jobs(&self, jobs: Vec<PoolJob>) -> Vec<Result<PoolOutcome, ExecError>> {
        let snapshot = self.batch_snapshot(&jobs);
        self.run_jobs_inner(jobs, snapshot)
    }

    /// Checks the admission seam: would submitting `tasks` more tasks
    /// right now stay within the template's
    /// [`queue_capacity`](SimulatorBuilder::queue_capacity) bound?
    /// Returns immediately either way — admission never blocks, and a
    /// rejection enqueues nothing, so already-admitted work (and its
    /// fingerprints) is untouched. Pools without a configured bound
    /// admit everything.
    ///
    /// # Errors
    ///
    /// [`ExecError::QueueFull`] when the submission would exceed the
    /// bound.
    pub fn try_admit(&self, tasks: usize) -> Result<(), ExecError> {
        if let Some(capacity) = self.template.queue_capacity_bound() {
            let queued = self.queue_depth.load(Ordering::Relaxed);
            if queued + tasks > capacity {
                return Err(ExecError::QueueFull {
                    queued,
                    submitted: tasks,
                    capacity,
                });
            }
        }
        Ok(())
    }

    /// [`BackendPool::run_jobs`] behind the admission seam: the whole
    /// submission is accepted or rejected atomically **before**
    /// anything is enqueued. Serving layers use this as their
    /// backpressure primitive (HTTP 429); plain `run_jobs` stays
    /// unbounded for library batch callers.
    ///
    /// # Errors
    ///
    /// [`ExecError::QueueFull`] when the template has a
    /// [`queue_capacity`](SimulatorBuilder::queue_capacity) bound and
    /// this submission would exceed it. Per-job failures still settle
    /// inside the returned vector, exactly as with `run_jobs`.
    pub fn run_jobs_admitted(
        &self,
        jobs: Vec<PoolJob>,
    ) -> Result<Vec<Result<PoolOutcome, ExecError>>, ExecError> {
        self.try_admit(jobs.len())?;
        Ok(self.run_jobs(jobs))
    }

    /// [`BackendPool::run_jobs`] with an externally supplied frozen
    /// snapshot instead of the per-batch one: the cross-batch reuse
    /// seam behind warm serving sessions. The caller freezes a circuit
    /// family once (e.g. [`SimulatorBuilder::build_snapshot`]) and
    /// passes the same `Arc` to every subsequent batch of that family —
    /// gate DDs are never rebuilt, and because a snapshot is a pure
    /// function of (options, circuit list) the outcomes stay
    /// byte-identical to a cold `run_jobs` call (the snapshot
    /// equivalence contract of `tests/snapshot_equivalence.rs`).
    ///
    /// `None` runs the batch snapshot-free (no per-batch snapshot is
    /// built, regardless of the template's `share_snapshot` knob). The
    /// pure-tableau engine has no DD package: a supplied snapshot is
    /// ignored there, exactly as in `run_jobs`.
    #[must_use]
    pub fn run_jobs_with_snapshot(
        &self,
        jobs: Vec<PoolJob>,
        snapshot: Option<Arc<SimSnapshot>>,
    ) -> Vec<Result<PoolOutcome, ExecError>> {
        let snapshot = snapshot.filter(|_| self.template.engine_kind() != Engine::Stabilizer);
        self.run_jobs_inner(jobs, snapshot)
    }

    fn run_jobs_inner(
        &self,
        jobs: Vec<PoolJob>,
        snapshot: Option<Arc<SimSnapshot>>,
    ) -> Vec<Result<PoolOutcome, ExecError>> {
        let n = jobs.len();
        let fault = self
            .fault_plan
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let template_retry = self.template.retry_policy();
        let template_deadline = self.template.job_deadline_budget();
        let mut results: Vec<Option<Result<PoolOutcome, ExecError>>> =
            (0..n).map(|_| None).collect();
        // Dispatches awaiting submission, as (job index, attempt,
        // degraded) triples; retries/degradations feed back into the
        // next round.
        let mut pending: Vec<(usize, u32, bool)> = (0..n).map(|i| (i, 0, false)).collect();
        while !pending.is_empty() {
            pending.sort_unstable();
            let round = std::mem::take(&mut pending);
            let (reply, results_rx) = mpsc::channel();
            let mut outstanding: BTreeMap<usize, (u32, bool)> = BTreeMap::new();
            for (index, attempt, degraded) in round {
                let job = jobs[index].clone();
                let retry = job.retry.unwrap_or(template_retry);
                let delay = retry.delay_for(attempt);
                if !delay.is_zero() {
                    thread::sleep(delay);
                }
                // A degraded attempt drops the deadline: the coarser
                // fallback is the last resort and must be allowed to
                // finish.
                let deadline = if degraded {
                    None
                } else {
                    job.deadline.or(template_deadline)
                };
                let seed = self.seeds.seed(DOMAIN_RUN, index as u64);
                outstanding.insert(index, (attempt, degraded));
                self.submit(Task::Run {
                    spec: RunSpec {
                        index,
                        attempt,
                        degraded,
                        job,
                        seed,
                        snapshot: snapshot.clone(),
                        deadline,
                        fault: fault.clone(),
                    },
                    reply: reply.clone(),
                });
            }
            drop(reply);
            while !outstanding.is_empty() {
                match results_rx.recv_timeout(SUPERVISE_TICK) {
                    Ok((index, attempt, degraded, result)) => {
                        outstanding.remove(&index);
                        self.settle(
                            &jobs,
                            template_retry,
                            (index, attempt, degraded),
                            result,
                            &mut results,
                            &mut pending,
                        );
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // Dead workers strand queued tasks (every queued
                        // task holds a reply sender clone, so the
                        // channel never disconnects by itself): heal so
                        // replacements drain the queue.
                        self.heal();
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
            // Whatever never replied rode a dying worker down with it.
            for (index, (attempt, degraded)) in outstanding {
                self.settle(
                    &jobs,
                    template_retry,
                    (index, attempt, degraded),
                    Err(ExecError::WorkerLost {
                        job: index,
                        attempt,
                    }),
                    &mut results,
                    &mut pending,
                );
            }
            self.heal();
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every job settles exactly once"))
            .collect()
    }

    /// Routes one dispatch's result: a success lands in its slot; a
    /// failure consults the degradation ladder, then the retry policy,
    /// before becoming final. Resilience counters are bumped here —
    /// once per observation, before any retry decision — which is what
    /// makes their totals worker-count-invariant.
    fn settle(
        &self,
        jobs: &[PoolJob],
        template_retry: RetryPolicy,
        dispatch: (usize, u32, bool),
        result: Result<PoolOutcome, ExecError>,
        results: &mut [Option<Result<PoolOutcome, ExecError>>],
        pending: &mut Vec<(usize, u32, bool)>,
    ) {
        let (index, attempt, degraded) = dispatch;
        let err = match result {
            Ok(outcome) => {
                results[index] = Some(Ok(outcome));
                return;
            }
            Err(err) => err,
        };
        if matches!(err, ExecError::DeadlineExceeded { .. }) {
            self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            telemetry::count("approxdd_pool_deadline_exceeded_total", 1);
        }
        let job = &jobs[index];
        let abortish = matches!(
            err,
            ExecError::DeadlineExceeded { .. } | ExecError::Sim(SimError::PolicyAbort { .. })
        );
        if abortish && !degraded && job.fallback.is_some() {
            // Degrade before (instead of) blindly retrying an abort:
            // rerunning the identical policy would just abort again.
            self.retries.fetch_add(1, Ordering::Relaxed);
            telemetry::count("approxdd_pool_retries_total", 1);
            pending.push((index, attempt + 1, true));
            return;
        }
        let retryable = matches!(
            err,
            ExecError::WorkerLost { .. }
                | ExecError::FaultInjected { .. }
                | ExecError::DeadlineExceeded { .. }
        );
        let retry = job.retry.unwrap_or(template_retry);
        if retryable && attempt + 1 < retry.max_attempts {
            self.retries.fetch_add(1, Ordering::Relaxed);
            telemetry::count("approxdd_pool_retries_total", 1);
            pending.push((index, attempt + 1, degraded));
            return;
        }
        results[index] = Some(Err(err));
    }

    /// Draws `shots` measurement outcomes of `circuit` as a histogram,
    /// sharding the shot budget across the workers in chunks of
    /// [`SHOT_CHUNK`].
    ///
    /// Each worker runs the circuit once (deterministically, on fresh
    /// state) and then serves chunks from its cached final state, so
    /// large shot counts amortize the simulation cost across the pool.
    /// The merged histogram is a pure function of (root seed, circuit,
    /// shots) — calling this twice, or with a different worker count,
    /// yields identical counts.
    ///
    /// # Errors
    ///
    /// Preparation/execution errors, or [`ExecError::WorkerLost`] if
    /// workers died before serving every chunk.
    pub fn sample_counts(
        &self,
        circuit: &Circuit,
        shots: usize,
    ) -> Result<HashMap<u64, usize>, ExecError> {
        self.sample_counts_with(circuit, None, shots)
    }

    /// [`BackendPool::sample_counts`] with a per-call strategy override
    /// (e.g. sampling an approximate run's distribution).
    ///
    /// # Errors
    ///
    /// See [`BackendPool::sample_counts`].
    pub fn sample_counts_with(
        &self,
        circuit: &Circuit,
        strategy: Option<Strategy>,
        shots: usize,
    ) -> Result<HashMap<u64, usize>, ExecError> {
        self.sample_counts_inner(circuit, strategy, shots, None)
    }

    /// [`BackendPool::sample_counts_with`] with a chunk-settlement
    /// callback: `on_chunk` is invoked once per sampling chunk, right
    /// after its histogram merges, with a [`ChunkSettled`] view of the
    /// running totals — the streaming seam serving layers use to push
    /// partial histograms to clients while the shot budget drains.
    ///
    /// Determinism caveat: the **final** merged histogram is exactly
    /// the `sample_counts` result (chunk seeds are keyed on the chunk
    /// index; merging is commutative), but the *settlement order* — and
    /// with it every intermediate partial view — depends on scheduling,
    /// so partials are progress reports, not reproducible results. A
    /// retried chunk ([`RetryPolicy`]) settles (and reports) once, with
    /// its original seed.
    ///
    /// # Errors
    ///
    /// See [`BackendPool::sample_counts`].
    pub fn sample_counts_streamed(
        &self,
        circuit: &Circuit,
        strategy: Option<Strategy>,
        shots: usize,
        on_chunk: &mut dyn FnMut(&ChunkSettled),
    ) -> Result<HashMap<u64, usize>, ExecError> {
        self.sample_counts_inner(circuit, strategy, shots, Some(on_chunk))
    }

    fn sample_counts_inner(
        &self,
        circuit: &Circuit,
        strategy: Option<Strategy>,
        shots: usize,
        mut on_chunk: Option<&mut dyn FnMut(&ChunkSettled)>,
    ) -> Result<HashMap<u64, usize>, ExecError> {
        if shots == 0 {
            return Ok(HashMap::new());
        }
        // The epoch invalidates the workers' cached run state; chunk
        // *seeds* are keyed on the chunk index alone so repeated calls
        // (and retried chunks) stay reproducible.
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed);
        let circuit = Arc::new(circuit.clone());
        let chunks = shots.div_ceil(SHOT_CHUNK);
        let template_retry = self.template.retry_policy();
        let max_attempts = template_retry.max_attempts.max(1);
        let mut merged: HashMap<u64, usize> = HashMap::new();
        let mut arrived = vec![false; chunks];
        let mut settled = 0usize;
        let mut shots_settled = 0usize;
        for attempt in 0..max_attempts {
            let missing: Vec<usize> = (0..chunks).filter(|&c| !arrived[c]).collect();
            if missing.is_empty() {
                break;
            }
            if attempt > 0 {
                // Re-dispatching lost chunks with their original seeds:
                // a retried chunk redraws the exact same shots.
                self.retries.fetch_add(missing.len(), Ordering::Relaxed);
                telemetry::count("approxdd_pool_retries_total", missing.len() as u64);
                let delay = template_retry.delay_for(attempt);
                if !delay.is_zero() {
                    thread::sleep(delay);
                }
            }
            let (reply, results_rx) = mpsc::channel();
            let mut outstanding = missing.len();
            for &chunk in &missing {
                let size = SHOT_CHUNK.min(shots - chunk * SHOT_CHUNK);
                let seed = self.seeds.seed(DOMAIN_SAMPLE, chunk as u64);
                self.submit(Task::Sample {
                    epoch,
                    chunk,
                    circuit: Arc::clone(&circuit),
                    strategy,
                    shots: size,
                    seed,
                    reply: reply.clone(),
                });
            }
            drop(reply);
            while outstanding > 0 {
                match results_rx.recv_timeout(SUPERVISE_TICK) {
                    Ok((chunk, result)) => {
                        outstanding -= 1;
                        for (outcome, count) in result? {
                            *merged.entry(outcome).or_insert(0) += count;
                        }
                        arrived[chunk] = true;
                        settled += 1;
                        shots_settled += SHOT_CHUNK.min(shots - chunk * SHOT_CHUNK);
                        if let Some(callback) = on_chunk.as_deref_mut() {
                            callback(&ChunkSettled {
                                chunk,
                                chunks,
                                settled,
                                shots_settled,
                                merged: &merged,
                            });
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        self.heal();
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
            self.heal();
        }
        if let Some(lost) = arrived.iter().position(|&done| !done) {
            return Err(ExecError::WorkerLost {
                job: lost,
                attempt: max_attempts - 1,
            });
        }
        Ok(merged)
    }

    /// A statistics snapshot: wall time, queue pressure, per-worker
    /// node/cache state.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers(),
            uptime: self.created.elapsed(),
            tasks_submitted: self.tasks_submitted.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            respawns: self.supervisor.respawns(),
            retries: self.retries.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            per_worker: self
                .worker_stats
                .iter()
                .map(|cell| cell.lock().unwrap_or_else(PoisonError::into_inner).clone())
                .collect(),
        }
    }

    /// Builds the batch's shared frozen snapshot, when the template
    /// asks for one: every gate of every job circuit is warmed **on
    /// this (submitting) thread, in input order**, so the frozen prefix
    /// is a pure function of the job list — never of worker count or
    /// scheduling. Returns `None` when snapshots are off, for the
    /// pure-tableau engine (no DD package to share), or when warming
    /// fails (the per-job run then reports the error in its own slot,
    /// exactly as without snapshots).
    fn batch_snapshot(&self, jobs: &[PoolJob]) -> Option<Arc<SimSnapshot>> {
        if !self.template.share_snapshot_enabled()
            || self.template.engine_kind() == Engine::Stabilizer
        {
            return None;
        }
        self.template
            .build_snapshot(jobs.iter().map(PoolJob::circuit))
            .ok()
            .map(Arc::new)
    }

    fn submit(&self, task: Task) {
        self.tasks_submitted.fetch_add(1, Ordering::Relaxed);
        let kind = match &task {
            Task::Run { .. } => "run",
            Task::Sample { .. } => "sample",
        };
        telemetry::count_with("approxdd_pool_tasks_total", &[("kind", kind)], 1);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
        let task = QueuedTask {
            enqueued: Instant::now(),
            task,
        };
        let sent = self.sender.as_ref().is_some_and(|tx| tx.send(task).is_ok());
        if !sent {
            // Every worker is gone; dropping the task drops its reply
            // sender, which surfaces as WorkerLost at the collector.
            self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl Drop for BackendPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        self.supervisor.join_all();
    }
}

/// Extension hook giving [`SimulatorBuilder`] a direct path into the
/// pooled execution layer:
/// `Simulator::builder().workers(4).build_pool()`.
pub trait BuildPool {
    /// Builds a [`BackendPool`] from this template (worker count and
    /// root seed from the builder; see
    /// [`SimulatorBuilder::worker_count`] and
    /// [`SimulatorBuilder::sample_seed`]).
    fn build_pool(self) -> BackendPool;
}

impl BuildPool for SimulatorBuilder {
    fn build_pool(self) -> BackendPool {
        BackendPool::new(self)
    }
}

struct Worker {
    id: usize,
    template: SimulatorBuilder,
    backend: AnyBackend,
    epoch: Option<(u64, RunOutcome<AnyHandle>)>,
    /// Cache counters harvested from retired backends (each run job
    /// rebuilds the backend, so the live package only covers the
    /// current job). Summed across workers these cover every executed
    /// job — deterministic regardless of scheduling. The pure-tableau
    /// engine owns no DD package, so its jobs contribute zeros.
    harvested_ct_hits: u64,
    harvested_ct_misses: u64,
    harvested_peak_nodes: usize,
    harvested_snapshot_hits: u64,
    harvested_snapshot_gate_hits: u64,
}

impl Worker {
    /// Replaces the backend with a fresh instance built from the
    /// template (plus an optional policy or strategy override — the
    /// policy factory wins), layered over the batch's shared frozen
    /// snapshot when one was built. Job isolation is the pool's
    /// determinism linchpin — see the module docs.
    ///
    /// When the job carries a `deadline`, whatever policy it ended up
    /// with is wrapped in a [`DeadlineFactory`] — per-job overrides and
    /// degradation fallbacks stay deadline-enforced alike. Returns the
    /// deadline's fired flag so the caller can tell a deadline abort
    /// from a policy's own abort.
    fn fresh_backend(
        &mut self,
        strategy: Option<Strategy>,
        policy: Option<&Arc<dyn PolicyFactory>>,
        snapshot: Option<Arc<SimSnapshot>>,
        deadline: Option<Duration>,
    ) -> Option<Arc<AtomicBool>> {
        if let Some(pkg) = self.backend.package_stats() {
            self.harvested_ct_hits += pkg.ct_hits;
            self.harvested_ct_misses += pkg.ct_misses;
            self.harvested_peak_nodes = self.harvested_peak_nodes.max(pkg.peak_nodes());
            self.harvested_snapshot_hits += pkg.snapshot_hits;
        }
        self.harvested_snapshot_gate_hits += self.backend.snapshot_gate_hits();
        self.epoch = None; // handle dies with the old package
        let mut template = self.template.clone();
        if let Some(factory) = policy {
            template = template.policy_factory(Arc::clone(factory));
        } else if let Some(strategy) = strategy {
            template = template.strategy(strategy);
        }
        let mut fired = None;
        if let Some(budget) = deadline {
            let factory = DeadlineFactory::new(template.policy_factory_or_preset(), budget);
            fired = Some(factory.fired_flag());
            template = template.policy_factory(Arc::new(factory));
        }
        self.backend = template.build_engine_backend_with_snapshot(snapshot);
        fired
    }

    /// Executes one dispatch: fires any injected fault first (before
    /// touching the backend, so a panic can never lose harvested
    /// counters or leave a half-built package), selects the degraded
    /// fallback policy when asked, and maps a deadline-triggered abort
    /// to the typed [`ExecError::DeadlineExceeded`].
    fn run_job(&mut self, spec: &RunSpec) -> Result<PoolOutcome, ExecError> {
        if let Some(kind) = spec
            .fault
            .as_deref()
            .and_then(|plan| plan.decide(spec.index, spec.attempt))
        {
            match kind {
                FaultKind::Panic => std::panic::panic_any(InjectedPanic {
                    job: spec.index,
                    attempt: spec.attempt,
                }),
                FaultKind::Delay(delay) => thread::sleep(delay),
                FaultKind::Abort => {
                    return Err(ExecError::FaultInjected {
                        job: spec.index,
                        attempt: spec.attempt,
                    })
                }
            }
        }
        let job = &spec.job;
        let policy = if spec.degraded {
            job.fallback.as_ref().or(job.policy.as_ref())
        } else {
            job.policy.as_ref()
        };
        let fired = self.fresh_backend(job.strategy, policy, spec.snapshot.clone(), spec.deadline);
        match self.execute(job, spec.seed) {
            Err(e)
                if matches!(e, ExecError::Sim(SimError::PolicyAbort { .. }))
                    && fired.as_ref().is_some_and(|f| f.load(Ordering::Relaxed)) =>
            {
                Err(ExecError::DeadlineExceeded {
                    job: spec.index,
                    attempt: spec.attempt,
                    budget: spec.deadline.unwrap_or_default(),
                })
            }
            Err(e) => Err(e),
            Ok(mut outcome) => {
                outcome.attempts = spec.attempt + 1;
                outcome.degraded = spec.degraded;
                Ok(outcome)
            }
        }
    }

    /// The dispatch-agnostic run body (backend already fresh).
    fn execute(&mut self, job: &PoolJob, seed: u64) -> Result<PoolOutcome, ExecError> {
        let recorder = job.trace.then(|| {
            let recorder = TraceRecorder::shared();
            self.backend
                .attach_observer(recorder.clone() as SharedObserver);
            recorder
        });
        let exe = self.backend.prepare(&job.circuit)?;
        let outcome = self.backend.run(&exe)?;
        let counts = if job.shots > 0 {
            self.backend.reseed(seed);
            Some(self.backend.sample_counts(&outcome, job.shots))
        } else {
            None
        };
        // Capture the (fallible) observable value but release the
        // outcome before propagating any error: an early return here
        // would otherwise pin the run's GC roots until this worker's
        // next job rebuilds its backend.
        let expectation = job
            .expectation
            .as_ref()
            .map(|f| self.backend.expectation(&outcome, &**f));
        let final_size = self.backend.final_size(&outcome);
        let stats = outcome.stats.clone();
        let n_qubits = outcome.n_qubits();
        self.backend.release(outcome);
        let expectation = expectation.transpose()?;
        let trace = recorder.map(|recorder| {
            recorder
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
        });
        Ok(PoolOutcome {
            name: job.circuit.name().to_string(),
            n_qubits,
            stats,
            final_size,
            counts,
            expectation,
            trace,
            worker: self.id,
            // The dispatch wrapper (`run_job`) overwrites these with
            // the attempt's actual coordinates.
            attempts: 1,
            degraded: false,
        })
    }

    fn sample_chunk(
        &mut self,
        epoch: u64,
        circuit: &Circuit,
        strategy: Option<Strategy>,
        shots: usize,
        seed: u64,
    ) -> Result<HashMap<u64, usize>, ExecError> {
        if self.epoch.as_ref().map(|(e, _)| *e) != Some(epoch) {
            self.fresh_backend(strategy, None, None, None);
            let exe = self.backend.prepare(circuit)?;
            let outcome = self.backend.run(&exe)?;
            self.epoch = Some((epoch, outcome));
        }
        let (_, outcome) = self.epoch.as_ref().expect("epoch state just ensured");
        self.backend.reseed(seed);
        Ok(self.backend.sample_counts(outcome, shots))
    }

    fn note_task(
        &self,
        cell: &Mutex<WorkerStats>,
        busy: Duration,
        shots: usize,
        is_run: bool,
        failed: bool,
    ) {
        let mut stats = cell.lock().unwrap_or_else(PoisonError::into_inner);
        if is_run {
            stats.jobs += 1;
            stats.failed_jobs += usize::from(failed);
        } else {
            stats.sample_chunks += 1;
        }
        stats.shots_drawn += shots;
        stats.busy += busy;
        stats.cached_gates = self.backend.gate_cache_len();
        // Harvested totals plus the live package (when the engine owns
        // one): covers every job this worker has executed.
        if let Some(pkg) = self.backend.package_stats() {
            stats.alive_nodes = pkg.vnodes_alive + pkg.mnodes_alive;
            stats.peak_nodes = self.harvested_peak_nodes.max(pkg.peak_nodes());
            stats.ct_hits = self.harvested_ct_hits + pkg.ct_hits;
            stats.ct_misses = self.harvested_ct_misses + pkg.ct_misses;
            stats.unique_len = pkg.unique_len;
            stats.unique_capacity = pkg.unique_capacity;
            stats.snapshot_hits = self.harvested_snapshot_hits + pkg.snapshot_hits;
            stats.frozen_nodes = pkg.frozen_nodes();
        } else {
            stats.alive_nodes = 0;
            stats.peak_nodes = self.harvested_peak_nodes;
            stats.ct_hits = self.harvested_ct_hits;
            stats.ct_misses = self.harvested_ct_misses;
            stats.unique_len = 0;
            stats.unique_capacity = 0;
            stats.snapshot_hits = self.harvested_snapshot_hits;
            stats.frozen_nodes = 0;
        }
        stats.snapshot_gate_hits =
            self.harvested_snapshot_gate_hits + self.backend.snapshot_gate_hits();
    }
}

fn worker_loop(
    id: usize,
    template: &SimulatorBuilder,
    queue: &Mutex<mpsc::Receiver<QueuedTask>>,
    depth: &AtomicUsize,
    stats: &Mutex<WorkerStats>,
) {
    // Histogram handles resolved once per worker thread: recording on
    // the task path is a few relaxed atomic adds, no registry lock.
    let queue_wait = telemetry::PhaseTimer::new("pool.queue_wait");
    let run_timer = telemetry::PhaseTimer::new("pool.run_job");
    let sample_timer = telemetry::PhaseTimer::new("pool.sample_chunk");
    // A respawned worker adopts its slot's accumulated counters, so
    // the harvest-on-retire totals survive a predecessor's death (all
    // zeros on a first spawn — same code path). Injected panics fire
    // before any backend work, so the dying worker's live package was
    // already reflected in the cell by its last `note_task`.
    let resume = stats.lock().unwrap_or_else(PoisonError::into_inner).clone();
    let mut worker = Worker {
        id,
        template: template.clone(),
        backend: template.clone().build_engine_backend(),
        epoch: None,
        harvested_ct_hits: resume.ct_hits,
        harvested_ct_misses: resume.ct_misses,
        harvested_peak_nodes: resume.peak_nodes,
        harvested_snapshot_hits: resume.snapshot_hits,
        harvested_snapshot_gate_hits: resume.snapshot_gate_hits,
    };
    loop {
        // Hold the queue lock only for the dequeue, never while
        // executing: a long job must not serialize the other workers.
        let task = {
            let receiver = queue.lock().unwrap_or_else(PoisonError::into_inner);
            receiver.recv()
        };
        let Ok(task) = task else {
            break; // pool dropped its sender: orderly shutdown
        };
        depth.fetch_sub(1, Ordering::Relaxed);
        queue_wait.observe(task.enqueued.elapsed());
        let start = Instant::now();
        match task.task {
            Task::Run { spec, reply } => {
                let shots = spec.job.shots;
                let result = run_timer.time(|| worker.run_job(&spec));
                worker.note_task(
                    stats,
                    start.elapsed(),
                    if result.is_ok() { shots } else { 0 },
                    true,
                    result.is_err(),
                );
                let _ = reply.send((spec.index, spec.attempt, spec.degraded, result));
            }
            Task::Sample {
                epoch,
                chunk,
                circuit,
                strategy,
                shots,
                seed,
                reply,
            } => {
                let result = sample_timer
                    .time(|| worker.sample_chunk(epoch, &circuit, strategy, shots, seed));
                worker.note_task(
                    stats,
                    start.elapsed(),
                    if result.is_ok() { shots } else { 0 },
                    false,
                    result.is_err(),
                );
                let _ = reply.send((chunk, result));
            }
        }
    }
}

//! The [`BackendPool`]: N worker threads executing backend jobs from a
//! shared channel-based work queue.
//!
//! # Determinism
//!
//! The pool guarantees that the same root seed produces byte-identical
//! results regardless of worker count. Two properties make that hold:
//!
//! * **Seed streams, not shared RNGs.** Every job derives its sampling
//!   seed from the pool's [`SeedStream`] as a pure function of
//!   `(root seed, domain, job index)` — never from which worker runs it
//!   or in which order the queue drains.
//! * **Per-job state isolation.** The DD package's unique table
//!   canonicalizes near-equal edge weights first-write-wins (within
//!   tolerance), so a run's low-order float bits can depend on what ran
//!   earlier in the same package. Workers therefore rebuild their
//!   backend from the shared [`SimulatorBuilder`] template for every
//!   run job, making each outcome a pure function of the job itself.
//!   (The serial benchmarks build a fresh backend per row for the same
//!   reason, so nothing is lost relative to the status quo.)
//!
//! Copy-on-write snapshots (`SimulatorBuilder::share_snapshot`)
//! preserve both properties while amortizing the per-job rebuild: the
//! batch's gate DDs are frozen **once, on the submitting thread, in
//! input order** into a [`SimSnapshot`], and every worker job layers a
//! private delta package over that shared immutable prefix. The frozen
//! tier pins the canonicalization history a job would have built
//! itself, so [`PoolOutcome::fingerprint`] stays byte-identical between
//! snapshot-on and snapshot-off at any worker count — the contract
//! suite asserts exactly that.
//!
//! Sharded sampling ([`BackendPool::sample_counts`]) splits the shot
//! budget into fixed-size chunks of [`SHOT_CHUNK`] shots. Chunk `i`
//! always draws with seed `stream(DOMAIN_SAMPLE, i)` and histogram
//! merging is commutative, so the merged counts are invariant under
//! both worker count and completion order.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use approxdd_backend::{
    AnyBackend, AnyHandle, Backend, BackendStats, BuildBackend, ExecError, RunOutcome,
};
use approxdd_circuit::Circuit;
use approxdd_sim::{
    Engine, PolicyFactory, SharedObserver, SimSnapshot, SimulatorBuilder, Strategy, TraceEvent,
    TraceRecorder,
};

use crate::seed::{SeedStream, DOMAIN_RUN, DOMAIN_SAMPLE};

/// A diagonal observable `Σ f(i) |i⟩⟨i|` evaluated worker-side on a
/// job's final state (shared so heterogeneous job lists clone cheaply).
pub type SharedDiagonal = Arc<dyn Fn(u64) -> f64 + Send + Sync>;

/// Shots per sharded-sampling chunk. Fixed (never derived from the
/// worker count) so the chunk decomposition — and with it every chunk
/// seed — is identical no matter how many workers drain the queue.
pub const SHOT_CHUNK: usize = 2048;

/// One unit of pooled work: a circuit, an optional per-job policy or
/// strategy override (sweeps run many configurations over one pool),
/// an optional number of measurement shots to draw after the run, and
/// an optional request to capture the run's trace.
#[derive(Clone)]
pub struct PoolJob {
    circuit: Circuit,
    strategy: Option<Strategy>,
    policy: Option<Arc<dyn PolicyFactory>>,
    shots: usize,
    trace: bool,
    expectation: Option<SharedDiagonal>,
}

impl std::fmt::Debug for PoolJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolJob")
            .field("circuit", &self.circuit.name())
            .field("strategy", &self.strategy)
            .field("policy", &self.policy.is_some())
            .field("shots", &self.shots)
            .field("trace", &self.trace)
            .field("expectation", &self.expectation.is_some())
            .finish()
    }
}

impl PoolJob {
    /// A plain run of `circuit` under the pool template's policy.
    #[must_use]
    pub fn new(circuit: Circuit) -> Self {
        Self {
            circuit,
            strategy: None,
            policy: None,
            shots: 0,
            trace: false,
            expectation: None,
        }
    }

    /// Overrides the approximation strategy for this job only.
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Overrides the approximation policy for this job only — the
    /// worker builds a fresh policy instance from the factory for this
    /// job (per-job instantiation is what keeps results bit-identical
    /// and worker-count-invariant). Takes precedence over
    /// [`PoolJob::strategy`].
    #[must_use]
    pub fn policy<P: PolicyFactory + 'static>(mut self, factory: P) -> Self {
        self.policy = Some(Arc::new(factory));
        self
    }

    /// Draws `shots` measurement samples after the run (seeded from the
    /// pool's per-job seed stream; reported in
    /// [`PoolOutcome::counts`]).
    #[must_use]
    pub fn shots(mut self, shots: usize) -> Self {
        self.shots = shots;
        self
    }

    /// Captures the run's [`TraceEvent`] stream into
    /// [`PoolOutcome::trace`]. Traces contain no wall-clock data, so
    /// the captured stream of a job is identical regardless of worker
    /// count or scheduling.
    #[must_use]
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Evaluates the diagonal observable `Σ f(i) |i⟩⟨i|` on the job's
    /// final state, worker-side, into [`PoolOutcome::expectation`].
    /// The value is computed on the **raw** (possibly unnormalized)
    /// state — exactly `Σᵢ |aᵢ|² f(i)` — which is what the stochastic
    /// noise-trajectory estimator needs (amplitude-damping trajectories
    /// carry their importance weight in the state norm). Shares the
    /// engine's dense-amplitude width limits.
    #[must_use]
    pub fn expectation(mut self, f: SharedDiagonal) -> Self {
        self.expectation = Some(f);
        self
    }

    /// The job's circuit.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }
}

/// The detached result of one pooled job: unified run statistics plus
/// (optionally) a measurement histogram. Unlike a single-threaded
/// [`RunOutcome`], it holds no engine handle — the worker extracts
/// everything and releases the run before replying, so outcomes are
/// plain data that cross threads freely.
#[derive(Debug, Clone)]
pub struct PoolOutcome {
    /// Name of the executed circuit.
    pub name: String,
    /// Register width.
    pub n_qubits: usize,
    /// Unified run statistics (identical to what a single-threaded
    /// backend run of the same job reports).
    pub stats: BackendStats,
    /// Size of the final state representation: DD node count, or
    /// tableau storage words for stabilizer-engine runs.
    pub final_size: usize,
    /// Measurement histogram when the job requested shots.
    pub counts: Option<HashMap<u64, usize>>,
    /// Worker-side diagonal-observable value when the job requested one
    /// ([`PoolJob::expectation`]).
    pub expectation: Option<f64>,
    /// The run's trace when the job requested it ([`PoolJob::trace`]).
    pub trace: Option<Vec<TraceEvent>>,
    /// Index of the worker that executed the job (diagnostic only —
    /// excluded from [`PoolOutcome::fingerprint`]).
    pub worker: usize,
}

impl PoolOutcome {
    /// A hash over every deterministic *result* field — everything
    /// except the wall-clock runtime, the executing worker, the trace
    /// (itself deterministic, but an audit artifact rather than a
    /// result) and the policy *name* (so a custom policy replicating a
    /// preset's decisions fingerprints identically to the preset). Two
    /// runs of the same job under the same root seed produce equal
    /// fingerprints regardless of pool size; the contract suite asserts
    /// exactly that.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name.hash(&mut h);
        self.n_qubits.hash(&mut h);
        self.stats.gates_applied.hash(&mut h);
        self.stats.peak_size.hash(&mut h);
        self.stats.approx_rounds.hash(&mut h);
        self.stats.fidelity.to_bits().hash(&mut h);
        self.stats.fidelity_lower_bound.to_bits().hash(&mut h);
        self.stats.nodes_removed.hash(&mut h);
        self.stats.size_series.hash(&mut h);
        self.final_size.hash(&mut h);
        if let Some(counts) = &self.counts {
            let mut entries: Vec<(u64, usize)> = counts.iter().map(|(k, v)| (*k, *v)).collect();
            entries.sort_unstable();
            entries.hash(&mut h);
        }
        if let Some(expectation) = self.expectation {
            expectation.to_bits().hash(&mut h);
        }
        h.finish()
    }
}

/// Per-worker execution statistics (one entry per thread in
/// [`PoolStats::per_worker`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Run jobs executed.
    pub jobs: usize,
    /// Sampling chunks executed.
    pub sample_chunks: usize,
    /// Total measurement shots drawn.
    pub shots_drawn: usize,
    /// Run jobs (not sampling chunks) that returned an error.
    pub failed_jobs: usize,
    /// Time this worker spent executing tasks.
    pub busy: Duration,
    /// Alive DD nodes in this worker's package after its last task.
    pub alive_nodes: usize,
    /// Peak simultaneously-alive DD nodes (both node kinds) over every
    /// backend this worker has owned — the worker's node-memory
    /// high-water mark, accumulated like [`WorkerStats::ct_hits`].
    pub peak_nodes: usize,
    /// Gate DDs cached in this worker's backend after its last task.
    pub cached_gates: usize,
    /// Compute-cache hits summed over every backend this worker has
    /// owned (all four lossy tables combined). Run jobs rebuild the
    /// backend per job (see the module docs); retiring a backend
    /// harvests its counters into this running total, so summing the
    /// field across workers covers every executed run job — a
    /// deterministic quantity, independent of which worker ran what.
    /// Sharded sampling ([`BackendPool::sample_counts`]) is the one
    /// exception: each worker that serves an epoch re-runs the circuit
    /// once, so sampling adds up to one run's counters *per
    /// participating worker* and the cross-worker sum is then
    /// scheduling-dependent (the sampled *histograms* stay exactly
    /// deterministic).
    pub ct_hits: u64,
    /// Compute-cache misses, accumulated like [`WorkerStats::ct_hits`].
    pub ct_misses: u64,
    /// Live unique-table entries in this worker's package after its
    /// last task.
    pub unique_len: usize,
    /// Unique-table buckets in this worker's package after its last
    /// task.
    pub unique_capacity: usize,
    /// Unique-table lookups served by a shared snapshot's frozen tier,
    /// accumulated like [`WorkerStats::ct_hits`] (0 when the pool runs
    /// without snapshots).
    pub snapshot_hits: u64,
    /// Gate-DD lookups served by a shared snapshot's frozen gate cache,
    /// accumulated like [`WorkerStats::ct_hits`] (0 without snapshots).
    pub snapshot_gate_hits: u64,
    /// Alive nodes in the shared frozen prefix this worker's package
    /// layers over (0 without a snapshot).
    pub frozen_nodes: usize,
}

/// Aggregated pool statistics: wall time, queue pressure and the
/// per-worker node/cache breakdown.
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Number of worker threads.
    pub workers: usize,
    /// Wall-clock time since the pool was built.
    pub uptime: Duration,
    /// Tasks submitted over the pool's lifetime (run jobs + chunks).
    pub tasks_submitted: usize,
    /// Tasks waiting in the queue (not yet picked up by a worker;
    /// tasks currently executing are not counted).
    pub queue_depth: usize,
    /// High-water mark of [`PoolStats::queue_depth`].
    pub max_queue_depth: usize,
    /// Per-worker breakdown.
    pub per_worker: Vec<WorkerStats>,
}

impl PoolStats {
    /// Total busy time summed over workers (≥ uptime means the pool ran
    /// with real parallelism).
    #[must_use]
    pub fn total_busy(&self) -> Duration {
        self.per_worker.iter().map(|w| w.busy).sum()
    }

    /// Run jobs completed across all workers.
    #[must_use]
    pub fn jobs_completed(&self) -> usize {
        self.per_worker.iter().map(|w| w.jobs).sum()
    }

    /// Measurement shots drawn across all workers.
    #[must_use]
    pub fn shots_drawn(&self) -> usize {
        self.per_worker.iter().map(|w| w.shots_drawn).sum()
    }

    /// Aggregate compute-cache hit rate over every job the pool has
    /// executed (workers accumulate retired-backend counters, so this
    /// is deterministic regardless of scheduling; 0 when nothing was
    /// looked up).
    #[must_use]
    pub fn ct_hit_rate(&self) -> f64 {
        let hits: u64 = self.per_worker.iter().map(|w| w.ct_hits).sum();
        let misses: u64 = self.per_worker.iter().map(|w| w.ct_misses).sum();
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                hits as f64 / total as f64
            }
        }
    }

    /// Highest peak node count over every package any worker has
    /// owned — the pool's per-package node-memory high-water mark.
    #[must_use]
    pub fn peak_nodes(&self) -> usize {
        self.per_worker
            .iter()
            .map(|w| w.peak_nodes)
            .max()
            .unwrap_or(0)
    }

    /// Unique-table lookups served by shared snapshots' frozen tiers,
    /// summed over workers (0 when the pool runs without snapshots).
    #[must_use]
    pub fn snapshot_hits(&self) -> u64 {
        self.per_worker.iter().map(|w| w.snapshot_hits).sum()
    }

    /// Gate-DD lookups served by shared snapshots' frozen gate caches,
    /// summed over workers (0 without snapshots).
    #[must_use]
    pub fn snapshot_gate_hits(&self) -> u64 {
        self.per_worker.iter().map(|w| w.snapshot_gate_hits).sum()
    }

    /// Alive nodes in the shared frozen prefix worker packages layer
    /// over (the per-worker maximum; 0 without snapshots).
    #[must_use]
    pub fn frozen_nodes(&self) -> usize {
        self.per_worker
            .iter()
            .map(|w| w.frozen_nodes)
            .max()
            .unwrap_or(0)
    }
}

/// Reply channel of a run job: `(job index, outcome)`.
type RunReply = mpsc::Sender<(usize, Result<PoolOutcome, ExecError>)>;
/// Reply channel of a sampling chunk: `(chunk index, histogram)`.
type ChunkReply = mpsc::Sender<(usize, Result<HashMap<u64, usize>, ExecError>)>;

enum Task {
    Run {
        index: usize,
        job: PoolJob,
        seed: u64,
        /// Shared frozen prefix for this job's backend, built once per
        /// submission when the template enables `share_snapshot`.
        snapshot: Option<Arc<SimSnapshot>>,
        reply: RunReply,
    },
    Sample {
        epoch: u64,
        chunk: usize,
        circuit: Arc<Circuit>,
        strategy: Option<Strategy>,
        shots: usize,
        seed: u64,
        reply: ChunkReply,
    },
}

/// A fixed-size pool of worker threads, each owning an [`AnyBackend`]
/// built from a shared [`SimulatorBuilder`] template (the template's
/// `engine` knob selects DD, stabilizer or hybrid execution), running
/// batch and sampling jobs from one channel-based work queue.
///
/// Build one through the builder —
/// `Simulator::builder().workers(4).build_pool()` (see [`BuildPool`])
/// — and submit work with [`BackendPool::run_batch`],
/// [`BackendPool::run_jobs`] or [`BackendPool::sample_counts`]. All
/// submission methods take `&self` and may be called from multiple
/// threads; results are invariant under worker count (see the module
/// docs for the determinism contract).
///
/// ```
/// use approxdd_exec::BuildPool;
/// use approxdd_circuit::generators;
/// use approxdd_sim::Simulator;
///
/// # fn main() -> Result<(), approxdd_backend::ExecError> {
/// // share_snapshot(true): gate DDs for the batch are frozen once and
/// // shared across workers — same bits, less per-job rebuild work.
/// let pool = Simulator::builder()
///     .workers(2)
///     .seed(7)
///     .share_snapshot(true)
///     .build_pool();
/// let circuits = vec![generators::qft(6); 4];
/// let outcomes = pool.run_batch(&circuits)?;
/// assert_eq!(outcomes.len(), 4);
/// assert!(pool.stats().snapshot_gate_hits() > 0);
/// # Ok(())
/// # }
/// ```
///
/// Dropping the pool closes the queue and joins every worker.
#[derive(Debug)]
pub struct BackendPool {
    sender: Option<mpsc::Sender<Task>>,
    template: SimulatorBuilder,
    handles: Vec<thread::JoinHandle<()>>,
    worker_stats: Vec<Arc<Mutex<WorkerStats>>>,
    queue_depth: Arc<AtomicUsize>,
    max_queue_depth: AtomicUsize,
    tasks_submitted: AtomicUsize,
    epoch: AtomicU64,
    seeds: SeedStream,
    created: Instant,
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Task::Run { index, .. } => write!(f, "Task::Run({index})"),
            Task::Sample { epoch, .. } => write!(f, "Task::Sample(epoch {epoch})"),
        }
    }
}

impl BackendPool {
    /// Builds a pool from a simulator template, taking the worker count
    /// from [`SimulatorBuilder::worker_count`] (the `workers(n)` knob,
    /// clamped to ≥ 1; default: the machine's available parallelism).
    #[must_use]
    pub fn new(template: SimulatorBuilder) -> Self {
        let workers = template.worker_count();
        Self::with_workers(template, workers)
    }

    /// Builds a pool with an explicit worker count (clamped to ≥ 1),
    /// ignoring the template's `workers` knob.
    #[must_use]
    pub fn with_workers(template: SimulatorBuilder, workers: usize) -> Self {
        let workers = workers.max(1);
        let seeds = SeedStream::new(template.sample_seed());
        let (sender, receiver) = mpsc::channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        let queue_depth = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::with_capacity(workers);
        let mut worker_stats = Vec::with_capacity(workers);
        for id in 0..workers {
            let cell = Arc::new(Mutex::new(WorkerStats {
                worker: id,
                ..WorkerStats::default()
            }));
            worker_stats.push(Arc::clone(&cell));
            let template = template.clone();
            let receiver = Arc::clone(&receiver);
            let depth = Arc::clone(&queue_depth);
            let handle = thread::Builder::new()
                .name(format!("approxdd-pool-{id}"))
                .spawn(move || worker_loop(id, &template, &receiver, &depth, &cell))
                .expect("spawn pool worker");
            handles.push(handle);
        }
        Self {
            sender: Some(sender),
            template,
            handles,
            worker_stats,
            queue_depth,
            max_queue_depth: AtomicUsize::new(0),
            tasks_submitted: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            seeds,
            created: Instant::now(),
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The root seed of the pool's per-job seed stream.
    #[must_use]
    pub fn root_seed(&self) -> u64 {
        self.seeds.root()
    }

    /// Runs every circuit under the pool template's strategy, in input
    /// order, failing on the first per-job error (all jobs still
    /// execute; use [`BackendPool::try_run_batch`] to keep partial
    /// results).
    ///
    /// # Errors
    ///
    /// The lowest-indexed failing job's error.
    pub fn run_batch(&self, circuits: &[Circuit]) -> Result<Vec<PoolOutcome>, ExecError> {
        self.try_run_batch(circuits).into_iter().collect()
    }

    /// Runs every circuit, returning one result per circuit in input
    /// order. A failing job never disturbs the others: each failure is
    /// confined to its own slot.
    #[must_use]
    pub fn try_run_batch(&self, circuits: &[Circuit]) -> Vec<Result<PoolOutcome, ExecError>> {
        self.run_jobs(circuits.iter().cloned().map(PoolJob::new).collect())
    }

    /// Runs every circuit and draws `shots` measurement samples per
    /// run, with per-job seeds from the pool's seed stream.
    #[must_use]
    pub fn run_batch_sampled(
        &self,
        circuits: &[Circuit],
        shots: usize,
    ) -> Vec<Result<PoolOutcome, ExecError>> {
        self.run_jobs(
            circuits
                .iter()
                .map(|c| PoolJob::new(c.clone()).shots(shots))
                .collect(),
        )
    }

    /// The general submission path: runs heterogeneous jobs (per-job
    /// strategies and shot counts) across the workers, returning one
    /// result per job in input order.
    ///
    /// Job `i` samples with seed `stream(DOMAIN_RUN, i)`; a job whose
    /// worker disappears mid-flight reports
    /// [`ExecError::WorkerLost`] in its slot instead of hanging the
    /// collection.
    #[must_use]
    pub fn run_jobs(&self, jobs: Vec<PoolJob>) -> Vec<Result<PoolOutcome, ExecError>> {
        let n = jobs.len();
        let snapshot = self.batch_snapshot(&jobs);
        let (reply, results_rx) = mpsc::channel();
        for (index, job) in jobs.into_iter().enumerate() {
            let seed = self.seeds.seed(DOMAIN_RUN, index as u64);
            self.submit(Task::Run {
                index,
                job,
                seed,
                snapshot: snapshot.clone(),
                reply: reply.clone(),
            });
        }
        drop(reply);
        let mut results: Vec<Result<PoolOutcome, ExecError>> = (0..n)
            .map(|job| Err(ExecError::WorkerLost { job }))
            .collect();
        while let Ok((index, result)) = results_rx.recv() {
            results[index] = result;
        }
        results
    }

    /// Draws `shots` measurement outcomes of `circuit` as a histogram,
    /// sharding the shot budget across the workers in chunks of
    /// [`SHOT_CHUNK`].
    ///
    /// Each worker runs the circuit once (deterministically, on fresh
    /// state) and then serves chunks from its cached final state, so
    /// large shot counts amortize the simulation cost across the pool.
    /// The merged histogram is a pure function of (root seed, circuit,
    /// shots) — calling this twice, or with a different worker count,
    /// yields identical counts.
    ///
    /// # Errors
    ///
    /// Preparation/execution errors, or [`ExecError::WorkerLost`] if
    /// workers died before serving every chunk.
    pub fn sample_counts(
        &self,
        circuit: &Circuit,
        shots: usize,
    ) -> Result<HashMap<u64, usize>, ExecError> {
        self.sample_counts_with(circuit, None, shots)
    }

    /// [`BackendPool::sample_counts`] with a per-call strategy override
    /// (e.g. sampling an approximate run's distribution).
    ///
    /// # Errors
    ///
    /// See [`BackendPool::sample_counts`].
    pub fn sample_counts_with(
        &self,
        circuit: &Circuit,
        strategy: Option<Strategy>,
        shots: usize,
    ) -> Result<HashMap<u64, usize>, ExecError> {
        if shots == 0 {
            return Ok(HashMap::new());
        }
        // The epoch invalidates the workers' cached run state; chunk
        // *seeds* are keyed on the chunk index alone so repeated calls
        // stay reproducible.
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed);
        let circuit = Arc::new(circuit.clone());
        let chunks = shots.div_ceil(SHOT_CHUNK);
        let (reply, results_rx) = mpsc::channel();
        for chunk in 0..chunks {
            let size = SHOT_CHUNK.min(shots - chunk * SHOT_CHUNK);
            let seed = self.seeds.seed(DOMAIN_SAMPLE, chunk as u64);
            self.submit(Task::Sample {
                epoch,
                chunk,
                circuit: Arc::clone(&circuit),
                strategy,
                shots: size,
                seed,
                reply: reply.clone(),
            });
        }
        drop(reply);
        let mut merged: HashMap<u64, usize> = HashMap::new();
        let mut arrived = vec![false; chunks];
        while let Ok((chunk, result)) = results_rx.recv() {
            for (outcome, count) in result? {
                *merged.entry(outcome).or_insert(0) += count;
            }
            arrived[chunk] = true;
        }
        if let Some(lost) = arrived.iter().position(|&done| !done) {
            return Err(ExecError::WorkerLost { job: lost });
        }
        Ok(merged)
    }

    /// A statistics snapshot: wall time, queue pressure, per-worker
    /// node/cache state.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers(),
            uptime: self.created.elapsed(),
            tasks_submitted: self.tasks_submitted.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            per_worker: self
                .worker_stats
                .iter()
                .map(|cell| cell.lock().unwrap_or_else(PoisonError::into_inner).clone())
                .collect(),
        }
    }

    /// Builds the batch's shared frozen snapshot, when the template
    /// asks for one: every gate of every job circuit is warmed **on
    /// this (submitting) thread, in input order**, so the frozen prefix
    /// is a pure function of the job list — never of worker count or
    /// scheduling. Returns `None` when snapshots are off, for the
    /// pure-tableau engine (no DD package to share), or when warming
    /// fails (the per-job run then reports the error in its own slot,
    /// exactly as without snapshots).
    fn batch_snapshot(&self, jobs: &[PoolJob]) -> Option<Arc<SimSnapshot>> {
        if !self.template.share_snapshot_enabled()
            || self.template.engine_kind() == Engine::Stabilizer
        {
            return None;
        }
        self.template
            .build_snapshot(jobs.iter().map(PoolJob::circuit))
            .ok()
            .map(Arc::new)
    }

    fn submit(&self, task: Task) {
        self.tasks_submitted.fetch_add(1, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
        let sent = self.sender.as_ref().is_some_and(|tx| tx.send(task).is_ok());
        if !sent {
            // Every worker is gone; dropping the task drops its reply
            // sender, which surfaces as WorkerLost at the collector.
            self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl Drop for BackendPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Extension hook giving [`SimulatorBuilder`] a direct path into the
/// pooled execution layer:
/// `Simulator::builder().workers(4).build_pool()`.
pub trait BuildPool {
    /// Builds a [`BackendPool`] from this template (worker count and
    /// root seed from the builder; see
    /// [`SimulatorBuilder::worker_count`] and
    /// [`SimulatorBuilder::sample_seed`]).
    fn build_pool(self) -> BackendPool;
}

impl BuildPool for SimulatorBuilder {
    fn build_pool(self) -> BackendPool {
        BackendPool::new(self)
    }
}

struct Worker {
    id: usize,
    template: SimulatorBuilder,
    backend: AnyBackend,
    epoch: Option<(u64, RunOutcome<AnyHandle>)>,
    /// Cache counters harvested from retired backends (each run job
    /// rebuilds the backend, so the live package only covers the
    /// current job). Summed across workers these cover every executed
    /// job — deterministic regardless of scheduling. The pure-tableau
    /// engine owns no DD package, so its jobs contribute zeros.
    harvested_ct_hits: u64,
    harvested_ct_misses: u64,
    harvested_peak_nodes: usize,
    harvested_snapshot_hits: u64,
    harvested_snapshot_gate_hits: u64,
}

impl Worker {
    /// Replaces the backend with a fresh instance built from the
    /// template (plus an optional policy or strategy override — the
    /// policy factory wins), layered over the batch's shared frozen
    /// snapshot when one was built. Job isolation is the pool's
    /// determinism linchpin — see the module docs.
    fn fresh_backend(
        &mut self,
        strategy: Option<Strategy>,
        policy: Option<&Arc<dyn PolicyFactory>>,
        snapshot: Option<Arc<SimSnapshot>>,
    ) {
        if let Some(pkg) = self.backend.package_stats() {
            self.harvested_ct_hits += pkg.ct_hits;
            self.harvested_ct_misses += pkg.ct_misses;
            self.harvested_peak_nodes = self.harvested_peak_nodes.max(pkg.peak_nodes());
            self.harvested_snapshot_hits += pkg.snapshot_hits;
        }
        self.harvested_snapshot_gate_hits += self.backend.snapshot_gate_hits();
        self.epoch = None; // handle dies with the old package
        let mut template = self.template.clone();
        if let Some(factory) = policy {
            template = template.policy_factory(Arc::clone(factory));
        } else if let Some(strategy) = strategy {
            template = template.strategy(strategy);
        }
        self.backend = template.build_engine_backend_with_snapshot(snapshot);
    }

    fn run_job(
        &mut self,
        job: &PoolJob,
        seed: u64,
        snapshot: Option<Arc<SimSnapshot>>,
    ) -> Result<PoolOutcome, ExecError> {
        self.fresh_backend(job.strategy, job.policy.as_ref(), snapshot);
        let recorder = job.trace.then(|| {
            let recorder = TraceRecorder::shared();
            self.backend
                .attach_observer(recorder.clone() as SharedObserver);
            recorder
        });
        let exe = self.backend.prepare(&job.circuit)?;
        let outcome = self.backend.run(&exe)?;
        let counts = if job.shots > 0 {
            self.backend.reseed(seed);
            Some(self.backend.sample_counts(&outcome, job.shots))
        } else {
            None
        };
        // Capture the (fallible) observable value but release the
        // outcome before propagating any error: an early return here
        // would otherwise pin the run's GC roots until this worker's
        // next job rebuilds its backend.
        let expectation = job
            .expectation
            .as_ref()
            .map(|f| self.backend.expectation(&outcome, &**f));
        let final_size = self.backend.final_size(&outcome);
        let stats = outcome.stats.clone();
        let n_qubits = outcome.n_qubits();
        self.backend.release(outcome);
        let expectation = expectation.transpose()?;
        let trace = recorder.map(|recorder| {
            recorder
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
        });
        Ok(PoolOutcome {
            name: job.circuit.name().to_string(),
            n_qubits,
            stats,
            final_size,
            counts,
            expectation,
            trace,
            worker: self.id,
        })
    }

    fn sample_chunk(
        &mut self,
        epoch: u64,
        circuit: &Circuit,
        strategy: Option<Strategy>,
        shots: usize,
        seed: u64,
    ) -> Result<HashMap<u64, usize>, ExecError> {
        if self.epoch.as_ref().map(|(e, _)| *e) != Some(epoch) {
            self.fresh_backend(strategy, None, None);
            let exe = self.backend.prepare(circuit)?;
            let outcome = self.backend.run(&exe)?;
            self.epoch = Some((epoch, outcome));
        }
        let (_, outcome) = self.epoch.as_ref().expect("epoch state just ensured");
        self.backend.reseed(seed);
        Ok(self.backend.sample_counts(outcome, shots))
    }

    fn note_task(
        &self,
        cell: &Mutex<WorkerStats>,
        busy: Duration,
        shots: usize,
        is_run: bool,
        failed: bool,
    ) {
        let mut stats = cell.lock().unwrap_or_else(PoisonError::into_inner);
        if is_run {
            stats.jobs += 1;
            stats.failed_jobs += usize::from(failed);
        } else {
            stats.sample_chunks += 1;
        }
        stats.shots_drawn += shots;
        stats.busy += busy;
        stats.cached_gates = self.backend.gate_cache_len();
        // Harvested totals plus the live package (when the engine owns
        // one): covers every job this worker has executed.
        if let Some(pkg) = self.backend.package_stats() {
            stats.alive_nodes = pkg.vnodes_alive + pkg.mnodes_alive;
            stats.peak_nodes = self.harvested_peak_nodes.max(pkg.peak_nodes());
            stats.ct_hits = self.harvested_ct_hits + pkg.ct_hits;
            stats.ct_misses = self.harvested_ct_misses + pkg.ct_misses;
            stats.unique_len = pkg.unique_len;
            stats.unique_capacity = pkg.unique_capacity;
            stats.snapshot_hits = self.harvested_snapshot_hits + pkg.snapshot_hits;
            stats.frozen_nodes = pkg.frozen_nodes();
        } else {
            stats.alive_nodes = 0;
            stats.peak_nodes = self.harvested_peak_nodes;
            stats.ct_hits = self.harvested_ct_hits;
            stats.ct_misses = self.harvested_ct_misses;
            stats.unique_len = 0;
            stats.unique_capacity = 0;
            stats.snapshot_hits = self.harvested_snapshot_hits;
            stats.frozen_nodes = 0;
        }
        stats.snapshot_gate_hits =
            self.harvested_snapshot_gate_hits + self.backend.snapshot_gate_hits();
    }
}

fn worker_loop(
    id: usize,
    template: &SimulatorBuilder,
    queue: &Mutex<mpsc::Receiver<Task>>,
    depth: &AtomicUsize,
    stats: &Mutex<WorkerStats>,
) {
    let mut worker = Worker {
        id,
        template: template.clone(),
        backend: template.clone().build_engine_backend(),
        epoch: None,
        harvested_ct_hits: 0,
        harvested_ct_misses: 0,
        harvested_peak_nodes: 0,
        harvested_snapshot_hits: 0,
        harvested_snapshot_gate_hits: 0,
    };
    loop {
        // Hold the queue lock only for the dequeue, never while
        // executing: a long job must not serialize the other workers.
        let task = {
            let receiver = queue.lock().unwrap_or_else(PoisonError::into_inner);
            receiver.recv()
        };
        let Ok(task) = task else {
            break; // pool dropped its sender: orderly shutdown
        };
        depth.fetch_sub(1, Ordering::Relaxed);
        let start = Instant::now();
        match task {
            Task::Run {
                index,
                job,
                seed,
                snapshot,
                reply,
            } => {
                let shots = job.shots;
                let result = worker.run_job(&job, seed, snapshot);
                worker.note_task(
                    stats,
                    start.elapsed(),
                    if result.is_ok() { shots } else { 0 },
                    true,
                    result.is_err(),
                );
                let _ = reply.send((index, result));
            }
            Task::Sample {
                epoch,
                chunk,
                circuit,
                strategy,
                shots,
                seed,
                reply,
            } => {
                let result = worker.sample_chunk(epoch, &circuit, strategy, shots, seed);
                worker.note_task(
                    stats,
                    start.elapsed(),
                    if result.is_ok() { shots } else { 0 },
                    false,
                    result.is_err(),
                );
                let _ = reply.send((chunk, result));
            }
        }
    }
}

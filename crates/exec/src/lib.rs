//! Multi-threaded pooled execution over the unified `Backend` API.
//!
//! The paper trades controlled fidelity loss for large resource
//! savings on a *single* simulation; this crate scales the surrounding
//! system: a [`BackendPool`] owns N worker threads, each with its own
//! DD backend built from a shared [`SimulatorBuilder`] template, and
//! shards batched runs ([`BackendPool::run_batch`] /
//! [`BackendPool::run_jobs`]) and large shot-sampling requests
//! ([`BackendPool::sample_counts`]) across them through a channel-based
//! work queue.
//!
//! **Determinism is thread-count-invariant:** per-job seeds come from a
//! SplitMix64 [`SeedStream`] keyed on `(root seed, job index)`, and
//! every job runs on freshly built simulator state, so a pool with one
//! worker and a pool with eight produce identical outcomes and
//! histograms for the same root seed (see the [`pool`](self) module
//! docs for why job isolation is required, and the workspace contract
//! suite for the assertion).
//!
//! **Execution is fault-tolerant:** the pool supervises its workers
//! (a thread killed by a panicking job is respawned into the same slot,
//! so capacity self-heals), re-dispatches jobs lost to worker deaths or
//! blown deadlines under a deterministic
//! [`RetryPolicy`](approxdd_sim::RetryPolicy) — retried results are
//! byte-identical to first-try results because seeds are keyed on the
//! job index, never the attempt — and enforces per-job wall-clock
//! deadlines cooperatively through the policy seam, with an optional
//! degradation ladder ([`PoolJob::degrade_with`]). A seeded
//! [`FaultPlan`] (test/bench only, driven by the [`DOMAIN_FAULT`] seed
//! stream) injects worker panics, delays and forced aborts at
//! deterministic job indices to exercise all of it.
//!
//! [`SimulatorBuilder`]: approxdd_sim::SimulatorBuilder
//!
//! # Examples
//!
//! ```
//! use approxdd_exec::BuildPool;
//! use approxdd_circuit::generators;
//! use approxdd_sim::Simulator;
//!
//! # fn main() -> Result<(), approxdd_backend::ExecError> {
//! let pool = Simulator::builder().workers(2).seed(7).build_pool();
//! let circuits: Vec<_> = (0..4).map(|s| generators::supremacy(2, 3, 8, s)).collect();
//!
//! // Batched runs: one outcome per circuit, input order preserved.
//! let outcomes = pool.run_batch(&circuits)?;
//! assert_eq!(outcomes.len(), 4);
//!
//! // Sharded sampling: 10k shots split across the workers.
//! let counts = pool.sample_counts(&generators::ghz(8), 10_000)?;
//! assert_eq!(counts.values().sum::<usize>(), 10_000);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod fault;
mod pool;
mod seed;
mod supervise;

pub use fault::{silence_injected_panics, FaultKind, FaultPlan, InjectedPanic};
pub use pool::{
    BackendPool, BuildPool, ChunkSettled, PoolJob, PoolOutcome, PoolStats, SharedDiagonal,
    WorkerStats, SHOT_CHUNK,
};
pub use seed::{splitmix64, SeedStream, DOMAIN_FAULT, DOMAIN_NOISE, DOMAIN_RUN, DOMAIN_SAMPLE};

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_backend::ExecError;
    use approxdd_circuit::generators;
    use approxdd_sim::{Simulator, Strategy};

    #[test]
    fn build_pool_uses_builder_knobs() {
        let pool = Simulator::builder().workers(3).seed(99).build_pool();
        assert_eq!(pool.workers(), 3);
        assert_eq!(pool.root_seed(), 99);
        // workers(0) clamps to one worker, never a dead pool.
        let pool = BackendPool::with_workers(Simulator::builder(), 0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn pool_cache_aggregate_is_worker_count_invariant() {
        // The pool-level cache metrics CI archives must be a function
        // of the executed jobs, not of which worker ran what: workers
        // harvest retired-backend counters, so the sums (and the peak
        // maximum) are identical across pool sizes.
        let circuits: Vec<_> = (0..6).map(|s| generators::supremacy(2, 3, 8, s)).collect();
        let run = |workers: usize| {
            let pool = Simulator::builder().workers(workers).seed(5).build_pool();
            pool.run_batch(&circuits).expect("batch");
            let stats = pool.stats();
            let hits: u64 = stats.per_worker.iter().map(|w| w.ct_hits).sum();
            let misses: u64 = stats.per_worker.iter().map(|w| w.ct_misses).sum();
            (hits, misses, stats.peak_nodes(), stats.ct_hit_rate())
        };
        let one = run(1);
        let three = run(3);
        assert!(one.0 > 0, "workload must exercise the caches");
        assert_eq!(one, three, "1-worker vs 3-worker cache aggregates");
    }

    #[test]
    fn batch_outcomes_match_input_order() {
        let pool = Simulator::builder().workers(4).build_pool();
        let circuits = vec![
            generators::ghz(4),
            generators::w_state(5),
            generators::qft(4),
        ];
        let outcomes = pool.run_batch(&circuits).expect("batch");
        assert_eq!(outcomes.len(), 3);
        for (outcome, circuit) in outcomes.iter().zip(&circuits) {
            assert_eq!(outcome.name, circuit.name());
            assert_eq!(outcome.n_qubits, circuit.n_qubits());
            assert_eq!(outcome.stats.gates_applied, circuit.gate_count());
            assert!((outcome.stats.fidelity - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn per_job_strategy_overrides_apply() {
        let pool = Simulator::builder().workers(2).seed(3).build_pool();
        let circuit = generators::supremacy(2, 3, 12, 1);
        let jobs = vec![
            PoolJob::new(circuit.clone()),
            PoolJob::new(circuit).strategy(Strategy::fidelity_driven(0.6, 0.9)),
        ];
        let results = pool.run_jobs(jobs);
        let exact = results[0].as_ref().expect("exact job");
        let approx = results[1].as_ref().expect("approx job");
        assert_eq!(exact.stats.approx_rounds, 0);
        assert!(approx.stats.approx_rounds > 0);
        assert!(approx.stats.fidelity < 1.0);
        assert!(approx.final_size <= exact.final_size);
    }

    #[test]
    fn sharded_sampling_merges_full_shot_budget() {
        let pool = Simulator::builder().workers(3).seed(1).build_pool();
        let shots = 2 * SHOT_CHUNK + 17; // forces multiple uneven chunks
        let counts = pool
            .sample_counts(&generators::ghz(6), shots)
            .expect("counts");
        assert_eq!(counts.values().sum::<usize>(), shots);
        // GHZ: only the two branch outcomes occur.
        assert_eq!(counts.len(), 2);
        assert!(counts.contains_key(&0) && counts.contains_key(&0x3F));
    }

    #[test]
    fn sampling_errors_propagate_not_hang() {
        let pool = Simulator::builder()
            .fidelity_driven(2.0, 0.9) // invalid template strategy
            .workers(2)
            .build_pool();
        let err = pool
            .sample_counts(&generators::ghz(4), 100)
            .expect_err("invalid strategy must fail");
        assert!(matches!(err, ExecError::Sim(_)), "{err:?}");
    }

    #[test]
    fn pool_stats_track_work() {
        let pool = Simulator::builder().workers(2).build_pool();
        let circuits = vec![generators::ghz(4); 6];
        pool.run_batch(&circuits).expect("batch");
        pool.sample_counts(&generators::ghz(4), 100)
            .expect("counts");
        let stats = pool.stats();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.jobs_completed(), 6);
        assert_eq!(stats.shots_drawn(), 100);
        assert!(stats.tasks_submitted >= 7);
        assert_eq!(stats.queue_depth, 0, "all work drained");
        assert!(stats.max_queue_depth >= 1);
        assert_eq!(stats.per_worker.len(), 2);
        assert_eq!(stats.per_worker.iter().map(|w| w.jobs).sum::<usize>(), 6);
    }

    #[test]
    fn empty_submissions_are_cheap_noops() {
        let pool = Simulator::builder().workers(2).build_pool();
        assert!(pool.run_batch(&[]).expect("empty batch").is_empty());
        assert!(pool
            .sample_counts(&generators::ghz(3), 0)
            .expect("zero shots")
            .is_empty());
    }

    /// Sharded sampling around the 2048-shot chunk boundary: zero
    /// shots, a sub-chunk budget, exactly one chunk, and exact
    /// multiples must all merge to the full budget with histograms that
    /// are invariant under worker count (chunk seeds are keyed on the
    /// chunk index alone, so the decomposition — not the scheduling —
    /// determines every draw).
    #[test]
    fn sharded_sampling_chunk_boundaries_are_worker_invariant() {
        let circuit = generators::ghz(5);
        for shots in [
            0,
            1,
            SHOT_CHUNK - 1,
            SHOT_CHUNK,
            SHOT_CHUNK + 1,
            2 * SHOT_CHUNK,
        ] {
            let counts_for = |workers: usize| {
                let pool = Simulator::builder().workers(workers).seed(21).build_pool();
                pool.sample_counts(&circuit, shots).expect("counts")
            };
            let one = counts_for(1);
            assert_eq!(one.values().sum::<usize>(), shots, "shots {shots}");
            for workers in [2, 8] {
                assert_eq!(
                    counts_for(workers),
                    one,
                    "{workers}-worker counts diverge at shots = {shots}"
                );
            }
            if shots > 0 {
                // GHZ: only the two branch outcomes ever occur.
                assert!(one.keys().all(|&k| k == 0 || k == 0x1F), "{one:?}");
            }
        }
    }

    /// Repeating the same sampling request on one pool must reproduce
    /// the histogram exactly: the epoch only invalidates cached run
    /// state, never the chunk seed derivation.
    #[test]
    fn repeated_sampling_requests_are_reproducible() {
        let pool = Simulator::builder().workers(3).seed(4).build_pool();
        let circuit = generators::w_state(6);
        let shots = SHOT_CHUNK + 7;
        let first = pool.sample_counts(&circuit, shots).expect("first");
        let second = pool.sample_counts(&circuit, shots).expect("second");
        assert_eq!(first, second);
    }

    /// The copy-on-write snapshot contract: sharing a frozen package
    /// prefix across workers must not change a single result bit.
    /// Fingerprints (which cover amplitude-derived fields, counts and
    /// expectations bit-for-bit) are compared between snapshot-on and
    /// snapshot-off at 1, 2 and 8 workers.
    #[test]
    fn snapshot_on_fingerprints_match_snapshot_off_across_worker_counts() {
        let circuits: Vec<_> = (0..5).map(|s| generators::supremacy(2, 3, 10, s)).collect();
        let run = |share: bool, workers: usize| {
            let pool = Simulator::builder()
                .workers(workers)
                .seed(17)
                .share_snapshot(share)
                .build_pool();
            let jobs: Vec<_> = circuits
                .iter()
                .map(|c| PoolJob::new(c.clone()).shots(256))
                .collect();
            let fps: Vec<u64> = pool
                .run_jobs(jobs)
                .iter()
                .map(|r| r.as_ref().expect("job").fingerprint())
                .collect();
            (fps, pool.stats())
        };
        let (off, off_stats) = run(false, 1);
        assert_eq!(off_stats.snapshot_gate_hits(), 0);
        assert_eq!(off_stats.frozen_nodes(), 0);
        for workers in [1, 2, 8] {
            let (on, on_stats) = run(true, workers);
            assert_eq!(off, on, "fingerprints diverge at {workers} workers");
            assert!(on_stats.snapshot_gate_hits() > 0, "snapshot unused");
            assert!(on_stats.frozen_nodes() > 0);
        }
    }

    /// Snapshot counters must aggregate like the cache counters:
    /// harvested on backend retirement, so the cross-worker sums are a
    /// function of the job list, not the scheduling.
    #[test]
    fn snapshot_counters_are_worker_count_invariant() {
        let circuits = vec![generators::qft(5); 4];
        let run = |workers: usize| {
            let pool = Simulator::builder()
                .workers(workers)
                .seed(2)
                .share_snapshot(true)
                .build_pool();
            pool.run_batch(&circuits).expect("batch");
            let stats = pool.stats();
            (stats.snapshot_gate_hits(), stats.snapshot_hits())
        };
        let one = run(1);
        assert!(one.0 > 0, "warmed gates must be served from the snapshot");
        assert_eq!(one, run(3), "1-worker vs 3-worker snapshot counters");
    }

    /// The admission seam (satellite of the serving PR): submitting
    /// past the bound returns the typed [`ExecError::QueueFull`]
    /// immediately — it never blocks, and never enqueues anything — and
    /// jobs admitted within the bound produce exactly the fingerprints
    /// an unbounded pool produces, at 1, 2 and 8 workers.
    #[test]
    fn admission_bound_rejects_typed_and_never_blocks() {
        use std::time::{Duration, Instant};
        let circuits: Vec<_> = (0..3).map(|s| generators::supremacy(2, 3, 8, s)).collect();
        let jobs = || {
            circuits
                .iter()
                .map(|c| PoolJob::new(c.clone()).shots(128))
                .collect::<Vec<_>>()
        };
        let want: Vec<u64> = Simulator::builder()
            .workers(1)
            .seed(11)
            .build_pool()
            .run_jobs(jobs())
            .into_iter()
            .map(|r| r.expect("unbounded job").fingerprint())
            .collect();
        for workers in [1, 2, 8] {
            let pool = Simulator::builder()
                .workers(workers)
                .seed(11)
                .queue_capacity(4)
                .build_pool();
            let oversized: Vec<_> = (0..8).map(|_| PoolJob::new(generators::ghz(4))).collect();
            let start = Instant::now();
            let err = pool
                .run_jobs_admitted(oversized)
                .expect_err("8 tasks past a capacity-4 bound");
            assert!(
                matches!(
                    err,
                    ExecError::QueueFull {
                        queued: 0,
                        submitted: 8,
                        capacity: 4
                    }
                ),
                "{err:?}"
            );
            assert!(
                start.elapsed() < Duration::from_secs(2),
                "admission rejection must be immediate"
            );
            // Nothing was enqueued by the rejection…
            assert_eq!(pool.stats().tasks_submitted, 0);
            // …and an in-bound submission runs to the same bits as the
            // unbounded pool.
            let got: Vec<u64> = pool
                .run_jobs_admitted(jobs())
                .expect("3 tasks fit a capacity-4 bound")
                .into_iter()
                .map(|r| r.expect("admitted job").fingerprint())
                .collect();
            assert_eq!(
                got, want,
                "admitted fingerprints diverge at {workers} workers"
            );
        }
    }

    /// Admission consults the *live* queue depth: while earlier
    /// (delayed) work still occupies the queue, a submission that would
    /// overflow the bound is rejected from another thread without
    /// disturbing the in-flight batch.
    #[test]
    fn admission_sees_in_flight_queue_depth() {
        use std::sync::Arc;
        use std::time::Duration;
        let pool = Arc::new(
            Simulator::builder()
                .workers(1)
                .seed(3)
                .queue_capacity(2)
                .build_pool(),
        );
        pool.inject_faults(Some(
            FaultPlan::new().delay_on(0..4, Duration::from_millis(120)),
        ));
        let busy = Arc::clone(&pool);
        let batch = std::thread::spawn(move || {
            busy.run_jobs((0..4).map(|_| PoolJob::new(generators::ghz(3))).collect())
        });
        // Wait (bounded) for the single worker to fall behind.
        let mut saw_backlog = false;
        for _ in 0..400 {
            if pool.stats().queue_depth >= 2 {
                saw_backlog = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(saw_backlog, "delayed jobs never backed the queue up");
        let err = pool.try_admit(1).expect_err("queue is past the bound");
        assert!(matches!(err, ExecError::QueueFull { .. }), "{err:?}");
        // The rejected probe never perturbed the admitted batch.
        for outcome in batch.join().expect("batch thread") {
            outcome.expect("delayed job still succeeds");
        }
        pool.inject_faults(None);
        assert!(pool.try_admit(1).is_ok(), "drained queue admits again");
    }

    /// The chunk-settlement callback streams every chunk exactly once,
    /// with monotone progress, and the final view equals the returned
    /// histogram — which stays byte-identical to the callback-free
    /// path.
    #[test]
    fn streamed_sampling_reports_every_chunk_and_matches_plain() {
        let circuit = generators::ghz(6);
        let shots = 2 * SHOT_CHUNK + 17;
        let pool = Simulator::builder().workers(3).seed(1).build_pool();
        let plain = pool.sample_counts(&circuit, shots).expect("plain");
        let mut seen = Vec::new();
        let mut last_view = std::collections::HashMap::new();
        let streamed = pool
            .sample_counts_streamed(&circuit, None, shots, &mut |settled| {
                assert_eq!(settled.chunks, 3);
                assert_eq!(settled.settled, seen.len() + 1);
                seen.push(settled.chunk);
                last_view = settled.merged.clone();
            })
            .expect("streamed");
        assert_eq!(streamed, plain);
        assert_eq!(last_view, plain, "final partial view is the result");
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2], "each chunk settles exactly once");
    }

    #[test]
    fn per_job_expectation_is_computed_worker_side() {
        use std::sync::Arc;
        let circuit = generators::w_state(5);
        let ones: crate::SharedDiagonal = Arc::new(|i: u64| f64::from(i.count_ones()));
        let run = |workers: usize| {
            let pool = Simulator::builder().workers(workers).seed(9).build_pool();
            let jobs = vec![
                PoolJob::new(circuit.clone()).expectation(Arc::clone(&ones)),
                PoolJob::new(circuit.clone()),
            ];
            let results = pool.run_jobs(jobs);
            (
                results[0].as_ref().expect("job 0").clone(),
                results[1].as_ref().expect("job 1").clone(),
            )
        };
        let (with, without) = run(1);
        // W state: exactly one excited qubit.
        assert!((with.expectation.expect("requested") - 1.0).abs() < 1e-9);
        assert_eq!(without.expectation, None);
        // The observable value participates in the fingerprint and is
        // worker-count-invariant like every other result field.
        assert_ne!(with.fingerprint(), without.fingerprint());
        let (with8, _) = run(8);
        assert_eq!(with.fingerprint(), with8.fingerprint());
    }
}

//! Seeded fault injection for pool-resilience testing.
//!
//! A [`FaultPlan`] tells a [`crate::BackendPool`] to fail specific jobs
//! in specific ways — panic the executing worker, sleep before running,
//! or force an abort — at **deterministic job indices**, so every
//! recovery path (supervision, retry, deadlines) is reproducibly
//! testable across 1/2/8 workers. Plans are test/bench machinery:
//! nothing installs one by default, and a pool without a plan has zero
//! fault-injection overhead beyond one atomic load per job.
//!
//! Determinism comes from the same seed-stream contract as everything
//! else in this crate: a seeded plan derives job `j`'s fault decision
//! from `SeedStream::seed(DOMAIN_FAULT, j)` — a pure function of (root
//! seed, job index), never of worker count or scheduling. Explicit
//! index lists ([`FaultPlan::panic_on`] and friends) override the
//! seeded decision for pinpoint tests.
//!
//! By default a fault fires only on a job's **first** attempt
//! ([`FaultPlan::faulty_attempts`]), modelling transient failures:
//! retried attempts succeed, and the retried result must be
//! byte-identical to an undisturbed run — the central property test of
//! the resilience suite.

use std::collections::BTreeSet;
use std::sync::Once;
use std::time::Duration;

use crate::seed::{SeedStream, DOMAIN_FAULT};

/// What a [`FaultPlan`] does to a selected job attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic the executing worker thread (via
    /// [`std::panic::panic_any`] with an [`InjectedPanic`] payload), so
    /// the job's reply is dropped, the caller sees
    /// `ExecError::WorkerLost`, and supervision must respawn the
    /// worker.
    Panic,
    /// Sleep for the given duration before running the job normally.
    /// The job still succeeds — delays exercise deadline enforcement
    /// and scheduling skew without changing any result byte (runtime is
    /// fingerprint-excluded).
    Delay(Duration),
    /// Fail the job with `ExecError::FaultInjected` without running it
    /// — a worker-survivable failure, exercising retry without
    /// supervision.
    Abort,
}

/// A deterministic fault-injection plan for a [`crate::BackendPool`].
///
/// Two selection mechanisms compose:
///
/// * **Seeded rates** — [`FaultPlan::seeded`] draws a uniform value
///   `u ∈ [0, 1)` per job from the `DOMAIN_FAULT` stream and maps it
///   onto consecutive probability bands: `u < panic_rate` panics,
///   `u < panic_rate + delay_rate` delays, `u < panic_rate +
///   delay_rate + abort_rate` aborts.
/// * **Explicit indices** — [`FaultPlan::panic_on`] /
///   [`FaultPlan::delay_on`] / [`FaultPlan::abort_on`] pin faults to
///   exact job indices; explicit lists take precedence over the seeded
///   decision (panic > delay > abort if one index is listed twice).
///
/// ```
/// use approxdd_exec::{FaultKind, FaultPlan};
/// use std::time::Duration;
///
/// let plan = FaultPlan::new()
///     .panic_on([2])
///     .delay_on([0, 5], Duration::from_millis(10));
/// assert_eq!(plan.decide(2, 0), Some(FaultKind::Panic));
/// assert_eq!(plan.decide(0, 0), Some(FaultKind::Delay(Duration::from_millis(10))));
/// // Retried attempts run clean by default.
/// assert_eq!(plan.decide(2, 1), None);
/// assert_eq!(plan.decide(3, 0), None);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seeds: Option<SeedStream>,
    panic_rate: f64,
    delay_rate: f64,
    abort_rate: f64,
    delay: Duration,
    panic_jobs: BTreeSet<usize>,
    delay_jobs: BTreeSet<usize>,
    abort_jobs: BTreeSet<usize>,
    faulty_attempts: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultPlan {
    /// An empty plan: no seeded rates, no explicit indices — decides
    /// [`None`] for every job until configured.
    #[must_use]
    pub fn new() -> Self {
        Self {
            seeds: None,
            panic_rate: 0.0,
            delay_rate: 0.0,
            abort_rate: 0.0,
            delay: Duration::from_millis(5),
            panic_jobs: BTreeSet::new(),
            delay_jobs: BTreeSet::new(),
            abort_jobs: BTreeSet::new(),
            faulty_attempts: 1,
        }
    }

    /// A plan drawing per-job fault decisions from the `DOMAIN_FAULT`
    /// stream rooted at `root` — same root, same faults, at any worker
    /// count. Configure the bands with [`FaultPlan::rates`].
    #[must_use]
    pub fn seeded(root: u64) -> Self {
        Self {
            seeds: Some(SeedStream::new(root)),
            ..Self::new()
        }
    }

    /// Sets the seeded probability bands (each clamped to `[0, 1]`,
    /// summed bands saturate at 1). Only meaningful on a
    /// [`FaultPlan::seeded`] plan.
    #[must_use]
    pub fn rates(mut self, panic: f64, delay: f64, abort: f64) -> Self {
        self.panic_rate = panic.clamp(0.0, 1.0);
        self.delay_rate = delay.clamp(0.0, 1.0);
        self.abort_rate = abort.clamp(0.0, 1.0);
        self
    }

    /// Sets the sleep injected by [`FaultKind::Delay`] faults (default
    /// 5 ms).
    #[must_use]
    pub fn delay_duration(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }

    /// Pins worker panics to exact job indices.
    #[must_use]
    pub fn panic_on(mut self, jobs: impl IntoIterator<Item = usize>) -> Self {
        self.panic_jobs.extend(jobs);
        self
    }

    /// Pins delays to exact job indices, with the given sleep.
    #[must_use]
    pub fn delay_on(mut self, jobs: impl IntoIterator<Item = usize>, delay: Duration) -> Self {
        self.delay_jobs.extend(jobs);
        self.delay = delay;
        self
    }

    /// Pins forced aborts (`ExecError::FaultInjected`) to exact job
    /// indices.
    #[must_use]
    pub fn abort_on(mut self, jobs: impl IntoIterator<Item = usize>) -> Self {
        self.abort_jobs.extend(jobs);
        self
    }

    /// How many leading attempts of a selected job fault (default 1:
    /// only the first attempt fails, so a retry succeeds). `u32::MAX`
    /// makes the fault permanent — useful for testing attempt
    /// exhaustion.
    #[must_use]
    pub fn faulty_attempts(mut self, attempts: u32) -> Self {
        self.faulty_attempts = attempts;
        self
    }

    /// The fault to inject for `job` on its zero-based `attempt`, if
    /// any. A pure function of the plan and its arguments.
    #[must_use]
    pub fn decide(&self, job: usize, attempt: u32) -> Option<FaultKind> {
        if attempt >= self.faulty_attempts {
            return None;
        }
        if self.panic_jobs.contains(&job) {
            return Some(FaultKind::Panic);
        }
        if self.delay_jobs.contains(&job) {
            return Some(FaultKind::Delay(self.delay));
        }
        if self.abort_jobs.contains(&job) {
            return Some(FaultKind::Abort);
        }
        let seeds = self.seeds?;
        // Uniform in [0, 1) from the high 53 bits, like rand's
        // open-interval f64 conversion — deterministic per job index.
        #[allow(clippy::cast_precision_loss)]
        let u = (seeds.seed(DOMAIN_FAULT, job as u64) >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.panic_rate {
            Some(FaultKind::Panic)
        } else if u < self.panic_rate + self.delay_rate {
            Some(FaultKind::Delay(self.delay))
        } else if u < self.panic_rate + self.delay_rate + self.abort_rate {
            Some(FaultKind::Abort)
        } else {
            None
        }
    }

    /// Whether the plan can ever inject anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.panic_jobs.is_empty()
            && self.delay_jobs.is_empty()
            && self.abort_jobs.is_empty()
            && (self.seeds.is_none() || self.panic_rate + self.delay_rate + self.abort_rate <= 0.0)
    }
}

/// The panic payload of [`FaultKind::Panic`] — a typed value (not a
/// `&str`) so the filtering hook installed by
/// [`silence_injected_panics`] can tell injected panics from real
/// bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedPanic {
    /// The faulted job's index.
    pub job: usize,
    /// The zero-based attempt the fault fired on.
    pub attempt: u32,
}

/// Installs (once per process) a panic hook that suppresses the
/// default backtrace spew for [`InjectedPanic`] payloads while leaving
/// every other panic's reporting untouched. Call it at the top of
/// tests that install panic-injecting [`FaultPlan`]s — otherwise every
/// injected worker death prints a scary (but harmless) panic message.
pub fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_faults() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        for job in 0..64 {
            assert_eq!(plan.decide(job, 0), None);
        }
    }

    #[test]
    fn explicit_indices_fire_exactly_once_by_default() {
        let plan = FaultPlan::new()
            .panic_on([1])
            .abort_on([2])
            .delay_on([3], Duration::from_millis(7));
        assert!(!plan.is_empty());
        assert_eq!(plan.decide(1, 0), Some(FaultKind::Panic));
        assert_eq!(plan.decide(2, 0), Some(FaultKind::Abort));
        assert_eq!(
            plan.decide(3, 0),
            Some(FaultKind::Delay(Duration::from_millis(7)))
        );
        assert_eq!(plan.decide(0, 0), None);
        // Attempt 1 runs clean — the transient-fault model.
        for job in 0..4 {
            assert_eq!(plan.decide(job, 1), None, "job {job}");
        }
    }

    #[test]
    fn faulty_attempts_extends_or_exhausts() {
        let plan = FaultPlan::new().abort_on([0]).faulty_attempts(3);
        assert_eq!(plan.decide(0, 0), Some(FaultKind::Abort));
        assert_eq!(plan.decide(0, 2), Some(FaultKind::Abort));
        assert_eq!(plan.decide(0, 3), None);
        let permanent = FaultPlan::new().abort_on([0]).faulty_attempts(u32::MAX);
        assert_eq!(plan.decide(0, 1), Some(FaultKind::Abort));
        assert_eq!(permanent.decide(0, u32::MAX - 1), Some(FaultKind::Abort));
    }

    #[test]
    fn seeded_plans_are_pure_functions_of_root_and_index() {
        let a = FaultPlan::seeded(42).rates(0.2, 0.2, 0.2);
        let b = FaultPlan::seeded(42).rates(0.2, 0.2, 0.2);
        let c = FaultPlan::seeded(43).rates(0.2, 0.2, 0.2);
        let mut kinds = [0usize; 4];
        let mut differs = false;
        for job in 0..256 {
            assert_eq!(a.decide(job, 0), b.decide(job, 0), "job {job}");
            differs |= a.decide(job, 0) != c.decide(job, 0);
            match a.decide(job, 0) {
                None => kinds[0] += 1,
                Some(FaultKind::Panic) => kinds[1] += 1,
                Some(FaultKind::Delay(_)) => kinds[2] += 1,
                Some(FaultKind::Abort) => kinds[3] += 1,
            }
        }
        // All three bands and the clean band are populated at 20% each
        // over 256 jobs, and a different root selects different jobs.
        assert!(kinds.iter().all(|&k| k > 0), "{kinds:?}");
        assert!(differs);
    }

    #[test]
    fn rates_clamp_and_saturate() {
        let plan = FaultPlan::seeded(1).rates(2.0, -1.0, 0.5);
        // panic band clamped to 1.0: everything panics.
        for job in 0..32 {
            assert_eq!(plan.decide(job, 0), Some(FaultKind::Panic));
        }
    }
}

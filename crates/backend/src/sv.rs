//! [`Backend`] over the dense statevector baseline.

use std::collections::HashMap;

use approxdd_telemetry::Span;

use approxdd_circuit::Circuit;
use approxdd_complex::Cplx;
use approxdd_statevector::{self as statevector, State, StateError, MAX_DENSE_QUBITS};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Backend, BackendStats, Executable, Result, RunOutcome};

/// The dense exact baseline behind the [`Backend`] API.
///
/// Each run materializes the full `2^n` amplitude vector
/// ([`BackendStats::peak_size`] reports that count), so preparation
/// rejects circuits wider than [`MAX_DENSE_QUBITS`]. Outcomes own
/// their [`State`], so `release` is a plain drop — the backend exists
/// to make the baseline interchangeable with the DD engine in generic
/// comparison code.
#[derive(Debug)]
pub struct StatevectorBackend {
    rng: StdRng,
}

impl StatevectorBackend {
    /// A backend with the default sampling seed
    /// ([`approxdd_sim::DEFAULT_SAMPLE_SEED`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_seed(approxdd_sim::DEFAULT_SAMPLE_SEED)
    }

    /// A backend whose sampling RNG is seeded with `seed`.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Default for StatevectorBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl Backend for StatevectorBackend {
    type Handle = State;

    fn name(&self) -> &'static str {
        "statevector"
    }

    fn prepare(&self, circuit: &Circuit) -> Result<Executable> {
        circuit.validate()?;
        if circuit.n_qubits() > MAX_DENSE_QUBITS {
            return Err(StateError::TooManyQubits {
                n_qubits: circuit.n_qubits(),
                max: MAX_DENSE_QUBITS,
            }
            .into());
        }
        Ok(Executable::from_validated(circuit.clone()))
    }

    fn run(&mut self, exe: &Executable) -> Result<RunOutcome<State>> {
        let span = Span::enter("sv.run");
        let state = statevector::run_circuit(exe.circuit())?;
        let stats = BackendStats {
            gates_applied: exe.circuit().gate_count(),
            peak_size: state.amplitudes().len(),
            approx_rounds: 0,
            fidelity: 1.0,
            fidelity_lower_bound: 1.0,
            policy: "exact".to_string(),
            nodes_removed: 0,
            runtime: span.finish(),
            size_series: Vec::new(),
            dd: None,
            engine: "statevector",
            clifford_prefix_len: 0,
        };
        Ok(RunOutcome::new(stats, exe.n_qubits(), state))
    }

    fn sample(&mut self, outcome: &RunOutcome<State>) -> u64 {
        outcome.handle().sample(&mut self.rng)
    }

    fn sample_counts(&mut self, outcome: &RunOutcome<State>, shots: usize) -> HashMap<u64, usize> {
        outcome.handle().sample_counts(shots, &mut self.rng)
    }

    fn amplitudes(&self, outcome: &RunOutcome<State>) -> Result<Vec<Cplx>> {
        Ok(outcome.handle().amplitudes().to_vec())
    }

    fn probability(&self, outcome: &RunOutcome<State>, basis: u64) -> Result<f64> {
        crate::check_basis(basis, outcome.n_qubits())?;
        Ok(outcome.handle().probability(basis))
    }

    fn expectation(
        &self,
        outcome: &RunOutcome<State>,
        diagonal: &dyn Fn(u64) -> f64,
    ) -> Result<f64> {
        Ok(outcome.handle().expectation_diagonal(diagonal))
    }

    fn release(&mut self, outcome: RunOutcome<State>) {
        drop(outcome);
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }
}

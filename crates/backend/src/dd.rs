//! [`Backend`] over the approximate decision-diagram simulator.

use std::collections::HashMap;

use approxdd_circuit::Circuit;
use approxdd_complex::Cplx;
use approxdd_sim::{RunResult, Simulator};

use crate::{Backend, ExecError, Executable, Result, RunOutcome};

/// The decision-diagram engine behind the [`Backend`] API.
///
/// Wraps a configured [`Simulator`] (build one with
/// `Simulator::builder()`, or go straight to a backend with
/// [`crate::BuildBackend::build_backend`]); every approximation
/// strategy the builder can express runs through this backend
/// unchanged. Engine-specific operations (DOT export, fused execution,
/// checkpointing) remain available through [`DdBackend::sim_mut`].
#[derive(Debug)]
pub struct DdBackend {
    sim: Simulator,
}

impl DdBackend {
    /// Wraps a configured simulator.
    #[must_use]
    pub fn new(sim: Simulator) -> Self {
        Self { sim }
    }

    /// An exact (non-approximating) DD backend with default options.
    #[must_use]
    pub fn exact() -> Self {
        Self::new(Simulator::default())
    }

    /// Read access to the wrapped simulator.
    #[must_use]
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    /// Mutable access to the wrapped simulator (package queries, fused
    /// runs, checkpointing…).
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// Unwraps the simulator.
    #[must_use]
    pub fn into_sim(self) -> Simulator {
        self.sim
    }

    /// Exact fidelity between two of this backend's live outcomes.
    #[must_use]
    pub fn fidelity_between(
        &mut self,
        a: &RunOutcome<RunResult>,
        b: &RunOutcome<RunResult>,
    ) -> f64 {
        self.sim.fidelity_between(a.handle(), b.handle())
    }
}

impl From<Simulator> for DdBackend {
    fn from(sim: Simulator) -> Self {
        Self::new(sim)
    }
}

impl Default for DdBackend {
    fn default() -> Self {
        Self::exact()
    }
}

impl Backend for DdBackend {
    type Handle = RunResult;

    fn name(&self) -> &'static str {
        "dd"
    }

    fn prepare(&self, circuit: &Circuit) -> Result<Executable> {
        // Validates whatever policy the simulator runs with — a
        // Strategy preset or a custom ApproxPolicy (its begin() hook).
        self.sim.validate_policy(circuit).map_err(ExecError::from)?;
        circuit.validate()?;
        Ok(Executable::from_validated(circuit.clone()))
    }

    fn run(&mut self, exe: &Executable) -> Result<RunOutcome<RunResult>> {
        let result = self.sim.run(exe.circuit())?;
        let stats = result.stats.clone().into();
        Ok(RunOutcome::new(stats, exe.n_qubits(), result))
    }

    fn sample(&mut self, outcome: &RunOutcome<RunResult>) -> u64 {
        self.sim.draw(outcome.handle())
    }

    fn sample_counts(
        &mut self,
        outcome: &RunOutcome<RunResult>,
        shots: usize,
    ) -> HashMap<u64, usize> {
        self.sim.draw_counts(outcome.handle(), shots)
    }

    fn amplitudes(&self, outcome: &RunOutcome<RunResult>) -> Result<Vec<Cplx>> {
        Ok(self.sim.amplitudes(outcome.handle())?)
    }

    fn probability(&self, outcome: &RunOutcome<RunResult>, basis: u64) -> Result<f64> {
        crate::check_basis(basis, outcome.n_qubits())?;
        Ok(self
            .sim
            .package()
            .probability(outcome.handle().state(), basis))
    }

    fn release(&mut self, outcome: RunOutcome<RunResult>) {
        self.sim.release(outcome.handle());
    }

    fn reseed(&mut self, seed: u64) {
        self.sim.reseed(seed);
    }
}

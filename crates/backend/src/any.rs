//! Engine-polymorphic backend for pooled execution.

use std::collections::HashMap;

use approxdd_circuit::Circuit;
use approxdd_complex::Cplx;
use approxdd_dd::PackageStats;
use approxdd_sim::{RunResult, SharedObserver};
use approxdd_stabilizer::Tableau;

use crate::hybrid::HybridHandle;
use crate::{Backend, DdBackend, Executable, HybridBackend, Result, RunOutcome, StabilizerBackend};

/// A [`Backend`] that is one of the three engines, selected at build
/// time by `SimulatorBuilder::engine` — the concrete type pooled
/// workers hold, so one pool implementation serves every engine.
///
/// Built by [`crate::BuildBackend::build_engine_backend`].
#[derive(Debug)]
pub enum AnyBackend {
    /// The decision-diagram engine.
    Dd(DdBackend),
    /// The stabilizer tableau (Clifford circuits only).
    Stabilizer(StabilizerBackend),
    /// Clifford-prefix dispatch over both.
    Hybrid(HybridBackend),
}

/// The run handle of an [`AnyBackend`], mirroring its engine.
#[derive(Debug)]
pub enum AnyHandle {
    /// DD run result.
    Dd(Box<RunResult>),
    /// Final tableau of a stabilizer run.
    Stabilizer(Tableau),
    /// Hybrid outcome (tableau or DD).
    Hybrid(HybridHandle),
}

/// A handle from a different engine reached this backend — outcomes
/// are only valid on the backend that produced them.
const MISMATCH: &str = "RunOutcome used with a different engine than produced it";

impl AnyBackend {
    /// DD-package counters, when this engine owns a package
    /// (`None` for the pure-tableau engine).
    #[must_use]
    pub fn package_stats(&self) -> Option<PackageStats> {
        match self {
            AnyBackend::Dd(b) => Some(b.sim().package().stats()),
            AnyBackend::Hybrid(b) => Some(b.sim().package().stats()),
            AnyBackend::Stabilizer(_) => None,
        }
    }

    /// Gate-DD cache occupancy of the wrapped simulator (0 for the
    /// tableau engine, which builds no gate DDs).
    #[must_use]
    pub fn gate_cache_len(&self) -> usize {
        match self {
            AnyBackend::Dd(b) => b.sim().gate_cache_len(),
            AnyBackend::Hybrid(b) => b.sim().gate_cache_len(),
            AnyBackend::Stabilizer(_) => 0,
        }
    }

    /// Gate-DD lookups the wrapped simulator served from a shared
    /// frozen snapshot (0 for the tableau engine or when the backend
    /// was built without a snapshot).
    #[must_use]
    pub fn snapshot_gate_hits(&self) -> u64 {
        match self {
            AnyBackend::Dd(b) => b.sim().snapshot_gate_hits(),
            AnyBackend::Hybrid(b) => b.sim().snapshot_gate_hits(),
            AnyBackend::Stabilizer(_) => 0,
        }
    }

    /// Attaches a run-trace observer to the wrapped simulator. The
    /// tableau engine emits no trace events, so this is a no-op there
    /// (pooled trace capture simply records an empty trace).
    pub fn attach_observer(&mut self, observer: SharedObserver) {
        match self {
            AnyBackend::Dd(b) => b.sim_mut().attach_observer(observer),
            AnyBackend::Hybrid(b) => b.sim_mut().attach_observer(observer),
            AnyBackend::Stabilizer(_) => {}
        }
    }

    /// Size of an outcome's final state representation: DD node count,
    /// or tableau storage words.
    #[must_use]
    pub fn final_size(&self, outcome: &RunOutcome<AnyHandle>) -> usize {
        match (self, outcome.handle()) {
            (AnyBackend::Dd(b), AnyHandle::Dd(r)) => b.sim().package().vsize(r.state()),
            (AnyBackend::Stabilizer(_), AnyHandle::Stabilizer(t)) => t.storage_words(),
            (AnyBackend::Hybrid(b), AnyHandle::Hybrid(h)) => match h {
                HybridHandle::Dd(r) => b.sim().package().vsize(r.state()),
                HybridHandle::Clifford(t) => t.storage_words(),
            },
            _ => unreachable!("{MISMATCH}"),
        }
    }
}

impl Backend for AnyBackend {
    type Handle = AnyHandle;

    fn name(&self) -> &'static str {
        match self {
            AnyBackend::Dd(b) => b.name(),
            AnyBackend::Stabilizer(b) => b.name(),
            AnyBackend::Hybrid(b) => b.name(),
        }
    }

    fn prepare(&self, circuit: &Circuit) -> Result<Executable> {
        match self {
            AnyBackend::Dd(b) => b.prepare(circuit),
            AnyBackend::Stabilizer(b) => b.prepare(circuit),
            AnyBackend::Hybrid(b) => b.prepare(circuit),
        }
    }

    fn run(&mut self, exe: &Executable) -> Result<RunOutcome<AnyHandle>> {
        match self {
            AnyBackend::Dd(b) => b
                .run(exe)
                .map(|o| o.map_handle(|r| AnyHandle::Dd(Box::new(r)))),
            AnyBackend::Stabilizer(b) => b.run(exe).map(|o| o.map_handle(AnyHandle::Stabilizer)),
            AnyBackend::Hybrid(b) => b.run(exe).map(|o| o.map_handle(AnyHandle::Hybrid)),
        }
    }

    fn sample(&mut self, outcome: &RunOutcome<AnyHandle>) -> u64 {
        match (self, outcome.handle()) {
            (AnyBackend::Dd(b), AnyHandle::Dd(r)) => b.sim_mut().draw(r),
            (AnyBackend::Stabilizer(b), AnyHandle::Stabilizer(t)) => b.sample_tableau(t),
            (AnyBackend::Hybrid(b), AnyHandle::Hybrid(h)) => b.sample_handle(h),
            _ => unreachable!("{MISMATCH}"),
        }
    }

    fn sample_counts(
        &mut self,
        outcome: &RunOutcome<AnyHandle>,
        shots: usize,
    ) -> HashMap<u64, usize> {
        match (self, outcome.handle()) {
            (AnyBackend::Dd(b), AnyHandle::Dd(r)) => b.sim_mut().draw_counts(r, shots),
            (AnyBackend::Stabilizer(b), AnyHandle::Stabilizer(t)) => {
                b.sample_counts_tableau(t, shots)
            }
            (AnyBackend::Hybrid(b), AnyHandle::Hybrid(h)) => b.sample_counts_handle(h, shots),
            _ => unreachable!("{MISMATCH}"),
        }
    }

    fn amplitudes(&self, outcome: &RunOutcome<AnyHandle>) -> Result<Vec<Cplx>> {
        match (self, outcome.handle()) {
            (AnyBackend::Dd(b), AnyHandle::Dd(r)) => Ok(b.sim().amplitudes(r)?),
            (AnyBackend::Stabilizer(_), AnyHandle::Stabilizer(t)) => Ok(t.amplitudes()?),
            (AnyBackend::Hybrid(b), AnyHandle::Hybrid(h)) => match h {
                HybridHandle::Clifford(t) => Ok(t.amplitudes()?),
                HybridHandle::Dd(r) => Ok(b.sim().amplitudes(r)?),
            },
            _ => unreachable!("{MISMATCH}"),
        }
    }

    fn probability(&self, outcome: &RunOutcome<AnyHandle>, basis: u64) -> Result<f64> {
        crate::check_basis(basis, outcome.n_qubits())?;
        match (self, outcome.handle()) {
            (AnyBackend::Dd(b), AnyHandle::Dd(r)) => {
                Ok(b.sim().package().probability(r.state(), basis))
            }
            (AnyBackend::Stabilizer(_), AnyHandle::Stabilizer(t)) => Ok(t.probability(basis)),
            (AnyBackend::Hybrid(b), AnyHandle::Hybrid(h)) => match h {
                HybridHandle::Clifford(t) => Ok(t.probability(basis)),
                HybridHandle::Dd(r) => Ok(b.sim().package().probability(r.state(), basis)),
            },
            _ => unreachable!("{MISMATCH}"),
        }
    }

    fn release(&mut self, outcome: RunOutcome<AnyHandle>) {
        match (self, outcome.handle()) {
            (AnyBackend::Dd(b), AnyHandle::Dd(r)) => b.sim_mut().release(r),
            (AnyBackend::Stabilizer(_), AnyHandle::Stabilizer(_)) => {}
            (AnyBackend::Hybrid(b), AnyHandle::Hybrid(h)) => match h {
                HybridHandle::Clifford(_) => {}
                HybridHandle::Dd(r) => b.sim_mut().release(r),
            },
            _ => unreachable!("{MISMATCH}"),
        }
    }

    fn reseed(&mut self, seed: u64) {
        match self {
            AnyBackend::Dd(b) => b.reseed(seed),
            AnyBackend::Stabilizer(b) => b.reseed(seed),
            AnyBackend::Hybrid(b) => b.reseed(seed),
        }
    }
}

//! Unified execution API over the workspace's simulation engines.
//!
//! The reproduced paper is fundamentally comparative — every Table I
//! row pits approximate DD simulation against an exact baseline — and
//! this crate provides the one front door both sides go through: the
//! [`Backend`] trait. A backend **prepares** a circuit into an
//! [`Executable`], **runs** it (singly or batched) into a typed
//! [`RunOutcome`] carrying [`BackendStats`], and then answers
//! measurement-side queries (sampling, histograms, amplitudes,
//! basis-state probabilities, diagonal expectations) until the outcome
//! is **released**. All failures funnel into the single [`ExecError`].
//!
//! Two implementations ship here:
//!
//! * [`DdBackend`] — the approximate decision-diagram simulator
//!   ([`approxdd_sim::Simulator`]), including every approximation
//!   strategy its builder can configure;
//! * [`StatevectorBackend`] — the dense exact baseline.
//!
//! Benchmark rows, cross-validation checks, and the examples are all
//! one generic function over `B: Backend`; comparing engines is the
//! default shape of the codebase rather than hand-wired glue.
//!
//! # Examples
//!
//! ```
//! use approxdd_backend::{Backend, BuildBackend, StatevectorBackend};
//! use approxdd_circuit::generators;
//! use approxdd_sim::Simulator;
//!
//! # fn main() -> Result<(), approxdd_backend::ExecError> {
//! let circuit = generators::ghz(8);
//!
//! // Same generic driver for both engines.
//! fn ghz_tail_mass<B: Backend>(backend: &mut B, c: &approxdd_circuit::Circuit)
//!     -> Result<f64, approxdd_backend::ExecError>
//! {
//!     let exe = backend.prepare(c)?;
//!     let run = backend.run(&exe)?;
//!     let p = backend.probability(&run, 0)? + backend.probability(&run, 0xFF)?;
//!     backend.release(run);
//!     Ok(p)
//! }
//!
//! let mut dd = Simulator::builder().seed(7).build_backend();
//! let mut sv = StatevectorBackend::with_seed(7);
//! assert!((ghz_tail_mass(&mut dd, &circuit)? - 1.0).abs() < 1e-9);
//! assert!((ghz_tail_mass(&mut sv, &circuit)? - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

mod any;
mod dd;
mod error;
mod hybrid;
mod stab;
mod sv;

pub use any::{AnyBackend, AnyHandle};
pub use dd::DdBackend;
pub use error::ExecError;
pub use hybrid::{HybridBackend, HybridHandle};
pub use stab::StabilizerBackend;
pub use sv::StatevectorBackend;

use std::collections::HashMap;
use std::time::Duration;

use approxdd_circuit::Circuit;
use approxdd_complex::Cplx;
use approxdd_sim::{Engine, SimSnapshot, SimStats, SimulatorBuilder};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ExecError>;

/// A circuit validated and packaged for execution on a [`Backend`].
///
/// Produced by [`Backend::prepare`]; reusable across [`Backend::run`]
/// calls and across backends (preparation is engine-agnostic
/// validation — engine-specific limits like the dense width cap are
/// still checked per backend).
#[derive(Debug, Clone)]
pub struct Executable {
    circuit: Circuit,
}

impl Executable {
    /// Wraps a circuit that has already passed validation.
    fn from_validated(circuit: Circuit) -> Self {
        Self { circuit }
    }

    /// The underlying circuit.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Register width.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.circuit.n_qubits()
    }

    /// The circuit's name.
    #[must_use]
    pub fn name(&self) -> &str {
        self.circuit.name()
    }
}

/// Engine-agnostic statistics of one run — the unified face of
/// [`SimStats`] and the dense engine's bookkeeping; the quantities a
/// Table I row needs.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendStats {
    /// State-transforming operations applied.
    pub gates_applied: usize,
    /// Peak size of the state representation: DD node count for the DD
    /// engine, amplitude count (`2^n`) for the dense engine.
    pub peak_size: usize,
    /// Approximation rounds performed (0 for exact engines).
    pub approx_rounds: usize,
    /// End-to-end fidelity estimate (1.0 for exact engines).
    pub fidelity: f64,
    /// Guaranteed end-to-end fidelity floor: product of the per-round
    /// *target* fidelities of every fired round that removed nodes
    /// (≤ the measured [`BackendStats::fidelity`]; 1.0 for exact
    /// engines).
    pub fidelity_lower_bound: f64,
    /// Name of the approximation policy that steered the run
    /// (`"exact"` for engines that never approximate).
    pub policy: String,
    /// Nodes removed by truncation (0 for exact engines).
    pub nodes_removed: usize,
    /// Wall-clock runtime of the run.
    pub runtime: Duration,
    /// Representation size after every gate, when recorded (DD engine
    /// with `record_size_series`; empty otherwise).
    pub size_series: Vec<usize>,
    /// DD-package counters at the end of the run — per-table
    /// compute-cache hit rates and occupancy, unique-table occupancy,
    /// and peak node counts (`None` for engines without a DD package,
    /// i.e. the dense baseline). Session-cumulative for the DD engine:
    /// the package persists across runs of one backend.
    pub dd: Option<approxdd_dd::PackageStats>,
    /// Short name of the engine that produced this run (`"dd"`,
    /// `"statevector"`, `"stabilizer"`, `"hybrid"`). Excluded from
    /// pooled-run fingerprints: the same job must fingerprint
    /// identically however it was routed.
    pub engine: &'static str,
    /// Number of leading circuit operations absorbed by a stabilizer
    /// tableau before (or instead of) the main engine: the whole
    /// circuit for the stabilizer engine, the maximal Clifford prefix
    /// for the hybrid engine, 0 for engines without a Clifford fast
    /// path.
    pub clifford_prefix_len: usize,
}

impl BackendStats {
    /// Aggregate compute-cache hit rate of the run's DD package
    /// (`None` for non-DD engines).
    #[must_use]
    pub fn ct_hit_rate(&self) -> Option<f64> {
        self.dd.as_ref().map(approxdd_dd::PackageStats::ct_hit_rate)
    }

    /// Unique-table occupancy of the run's DD package (`None` for
    /// non-DD engines).
    #[must_use]
    pub fn unique_occupancy(&self) -> Option<f64> {
        self.dd
            .as_ref()
            .map(approxdd_dd::PackageStats::unique_occupancy)
    }

    /// Peak simultaneously-alive DD nodes, both node kinds combined
    /// (`None` for non-DD engines).
    #[must_use]
    pub fn peak_nodes(&self) -> Option<usize> {
        self.dd.as_ref().map(approxdd_dd::PackageStats::peak_nodes)
    }
}

impl From<SimStats> for BackendStats {
    fn from(s: SimStats) -> Self {
        Self {
            gates_applied: s.gates_applied,
            peak_size: s.max_dd_size,
            approx_rounds: s.approx_rounds,
            fidelity: s.fidelity,
            fidelity_lower_bound: s.fidelity_lower_bound,
            policy: s.policy,
            nodes_removed: s.nodes_removed,
            runtime: s.runtime,
            size_series: s.size_series,
            dd: Some(s.package),
            engine: "dd",
            clifford_prefix_len: 0,
        }
    }
}

/// The typed result of [`Backend::run`]: unified statistics plus the
/// engine-specific handle queries go through.
///
/// For the DD backend the handle pins GC roots inside the simulator's
/// package — pass outcomes back to [`Backend::release`] when done so
/// long sessions don't accumulate dead state. Deliberately not
/// `Clone`: release consumes the only copy, so no stale outcome can
/// outlive its engine resources.
#[derive(Debug)]
pub struct RunOutcome<H> {
    /// Unified run statistics.
    pub stats: BackendStats,
    n_qubits: usize,
    handle: H,
}

impl<H> RunOutcome<H> {
    /// Packs an engine handle with its stats.
    fn new(stats: BackendStats, n_qubits: usize, handle: H) -> Self {
        Self {
            stats,
            n_qubits,
            handle,
        }
    }

    /// Register width of the run.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The engine-specific handle (a `RunResult` for the DD backend, a
    /// dense `State` for the statevector backend). Prefer the
    /// [`Backend`] queries; the handle is an escape hatch for
    /// engine-specific operations and inherits the engine's lifetime
    /// rules (see `RunResult::state`'s hazard note).
    #[must_use]
    pub fn handle(&self) -> &H {
        &self.handle
    }

    /// Rewraps the handle (used by [`AnyBackend`] to lift concrete
    /// outcomes into [`AnyHandle`]).
    fn map_handle<T>(self, f: impl FnOnce(H) -> T) -> RunOutcome<T> {
        RunOutcome {
            stats: self.stats,
            n_qubits: self.n_qubits,
            handle: f(self.handle),
        }
    }
}

/// A quantum-circuit execution engine with a uniform lifecycle:
/// `prepare → run (or run_batch) → query → release`.
///
/// The trait is object-safe, so heterogeneous engine collections
/// (`Vec<Box<dyn Backend<Handle = …>>>`) work; sampling uses the
/// backend's owned RNG ([`Backend::reseed`]) instead of threading
/// generic RNG parameters through every call.
pub trait Backend {
    /// Engine-specific run handle stored inside [`RunOutcome`].
    type Handle;

    /// Short engine name (`"dd"`, `"statevector"`) for labels and
    /// error messages.
    fn name(&self) -> &'static str;

    /// Validates `circuit` (and the backend's configuration) into a
    /// reusable [`Executable`].
    ///
    /// # Errors
    ///
    /// Validation errors ([`ExecError::Circuit`], [`ExecError::Sim`],
    /// [`ExecError::State`]).
    fn prepare(&self, circuit: &Circuit) -> Result<Executable>;

    /// Executes one prepared circuit from `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Engine execution errors.
    fn run(&mut self, exe: &Executable) -> Result<RunOutcome<Self::Handle>>;

    /// Executes a batch of prepared circuits, returning one outcome per
    /// executable in order. The default runs them sequentially and
    /// fails fast on the first error (releasing nothing — callers that
    /// need partial results should run singly).
    ///
    /// # Errors
    ///
    /// The first failing run's error.
    fn run_batch(&mut self, exes: &[Executable]) -> Result<Vec<RunOutcome<Self::Handle>>> {
        exes.iter().map(|exe| self.run(exe)).collect()
    }

    /// Draws one measurement outcome using the backend's owned RNG.
    fn sample(&mut self, outcome: &RunOutcome<Self::Handle>) -> u64;

    /// Draws `shots` outcomes into a histogram.
    fn sample_counts(
        &mut self,
        outcome: &RunOutcome<Self::Handle>,
        shots: usize,
    ) -> HashMap<u64, usize> {
        let mut counts = HashMap::new();
        for _ in 0..shots {
            *counts.entry(self.sample(outcome)).or_insert(0) += 1;
        }
        counts
    }

    /// Dense amplitudes of the final state (small registers only).
    ///
    /// # Errors
    ///
    /// [`ExecError::Dd`] / [`ExecError::State`] width-limit errors.
    fn amplitudes(&self, outcome: &RunOutcome<Self::Handle>) -> Result<Vec<Cplx>>;

    /// Born-rule probability of the basis state `basis`.
    ///
    /// # Errors
    ///
    /// [`ExecError::BasisOutOfRange`] when `basis` does not fit the
    /// register.
    fn probability(&self, outcome: &RunOutcome<Self::Handle>, basis: u64) -> Result<f64>;

    /// Expectation value of the diagonal observable `Σ f(i) |i⟩⟨i|`.
    /// The default derives it from [`Backend::amplitudes`], so it
    /// shares the dense width limits; backends may override with a
    /// representation-native path.
    ///
    /// # Errors
    ///
    /// See [`Backend::amplitudes`].
    fn expectation(
        &self,
        outcome: &RunOutcome<Self::Handle>,
        diagonal: &dyn Fn(u64) -> f64,
    ) -> Result<f64> {
        let amps = self.amplitudes(outcome)?;
        Ok(amps
            .iter()
            .enumerate()
            .map(|(i, a)| a.mag2() * diagonal(i as u64))
            .sum())
    }

    /// Ends an outcome's life, releasing engine resources it pins
    /// (GC roots for the DD backend). Consumes the outcome: the
    /// type-level guarantee against the dangling-handle hazard.
    fn release(&mut self, outcome: RunOutcome<Self::Handle>);

    /// Re-seeds the backend's sampling RNG.
    fn reseed(&mut self, seed: u64);
}

/// Prepares and runs `circuit` in one call.
///
/// # Errors
///
/// Preparation or execution errors.
pub fn run_circuit<B: Backend>(
    backend: &mut B,
    circuit: &Circuit,
) -> Result<RunOutcome<B::Handle>> {
    let exe = backend.prepare(circuit)?;
    backend.run(&exe)
}

/// Runs `circuit` and returns the final dense amplitudes, releasing
/// the outcome — the one-line equivalence-check primitive.
///
/// # Errors
///
/// Preparation, execution, or amplitude-export errors.
pub fn amplitudes_of<B: Backend>(backend: &mut B, circuit: &Circuit) -> Result<Vec<Cplx>> {
    let outcome = run_circuit(backend, circuit)?;
    let amps = backend.amplitudes(&outcome)?;
    backend.release(outcome);
    Ok(amps)
}

/// Extension hook giving [`SimulatorBuilder`] a direct path into the
/// backend layer: `Simulator::builder()….build_backend()`.
pub trait BuildBackend {
    /// Builds the configured simulator wrapped as a [`DdBackend`].
    fn build_backend(self) -> DdBackend;

    /// Builds the backend the builder's [`Engine`] knob selects —
    /// DD, stabilizer tableau, or hybrid Clifford-prefix dispatch —
    /// as the engine-polymorphic [`AnyBackend`]. This is what pooled
    /// execution calls, so `.engine(…)` routes every worker.
    fn build_engine_backend(self) -> AnyBackend;

    /// Like [`BuildBackend::build_engine_backend`], but layers DD-based
    /// engines over a shared frozen [`SimSnapshot`] when one is given:
    /// warmed gate DDs resolve from the snapshot and the package
    /// allocates only above the frozen watermark. The stabilizer
    /// engine has no DD package, so it ignores the snapshot; `None`
    /// behaves exactly like [`BuildBackend::build_engine_backend`].
    /// This is the per-job constructor pooled workers call when the
    /// template has `share_snapshot(true)`.
    fn build_engine_backend_with_snapshot(
        self,
        snapshot: Option<std::sync::Arc<SimSnapshot>>,
    ) -> AnyBackend;
}

impl BuildBackend for SimulatorBuilder {
    fn build_backend(self) -> DdBackend {
        DdBackend::new(self.build())
    }

    fn build_engine_backend(self) -> AnyBackend {
        match self.engine_kind() {
            Engine::Stabilizer => {
                AnyBackend::Stabilizer(StabilizerBackend::with_seed(self.sample_seed()))
            }
            Engine::Hybrid => {
                let seed = self.sample_seed();
                AnyBackend::Hybrid(HybridBackend::with_seed(self.build(), seed))
            }
            // Engine is non-exhaustive; unknown engines run on the DD
            // reference implementation.
            _ => AnyBackend::Dd(DdBackend::new(self.build())),
        }
    }

    fn build_engine_backend_with_snapshot(
        self,
        snapshot: Option<std::sync::Arc<SimSnapshot>>,
    ) -> AnyBackend {
        let Some(snapshot) = snapshot else {
            return self.build_engine_backend();
        };
        match self.engine_kind() {
            Engine::Stabilizer => {
                AnyBackend::Stabilizer(StabilizerBackend::with_seed(self.sample_seed()))
            }
            Engine::Hybrid => {
                let seed = self.sample_seed();
                AnyBackend::Hybrid(HybridBackend::with_seed(
                    self.build_with_snapshot(snapshot),
                    seed,
                ))
            }
            _ => AnyBackend::Dd(DdBackend::new(self.build_with_snapshot(snapshot))),
        }
    }
}

/// Bounds-checks a basis index against a register width.
pub(crate) fn check_basis(basis: u64, n_qubits: usize) -> Result<()> {
    if n_qubits < 64 && basis >> n_qubits != 0 {
        return Err(ExecError::BasisOutOfRange { basis, n_qubits });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_circuit::generators;
    use approxdd_sim::{Simulator, Strategy};

    fn backends() -> (DdBackend, StatevectorBackend) {
        (
            Simulator::builder().seed(11).build_backend(),
            StatevectorBackend::with_seed(11),
        )
    }

    fn assert_amplitudes_agree<A: Backend, B: Backend>(a: &mut A, b: &mut B, circuit: &Circuit) {
        let xs = amplitudes_of(a, circuit).expect("backend a");
        let ys = amplitudes_of(b, circuit).expect("backend b");
        assert_eq!(xs.len(), ys.len());
        for (i, (x, y)) in xs.iter().zip(&ys).enumerate() {
            assert!(
                (*x - *y).mag() < 1e-9,
                "{}: amplitude {i}: {} = {x} vs {} = {y}",
                circuit.name(),
                a.name(),
                b.name()
            );
        }
    }

    #[test]
    fn engines_agree_through_the_trait() {
        let (mut dd, mut sv) = backends();
        assert_amplitudes_agree(&mut dd, &mut sv, &generators::ghz(6));
        assert_amplitudes_agree(&mut dd, &mut sv, &generators::qft(5));
        assert_amplitudes_agree(&mut dd, &mut sv, &generators::supremacy(2, 3, 8, 3));
    }

    #[test]
    fn run_batch_returns_per_circuit_outcomes_in_order() {
        let circuits = [
            generators::ghz(4),
            generators::w_state(4),
            generators::qft(4),
        ];
        let (mut dd, mut sv) = backends();
        let exes: Vec<Executable> = circuits
            .iter()
            .map(|c| dd.prepare(c).expect("prepare"))
            .collect();
        let dd_outs = dd.run_batch(&exes).expect("dd batch");
        let sv_outs = sv.run_batch(&exes).expect("sv batch");
        assert_eq!(dd_outs.len(), 3);
        assert_eq!(sv_outs.len(), 3);
        for ((d, s), c) in dd_outs.iter().zip(&sv_outs).zip(&circuits) {
            assert_eq!(d.n_qubits(), c.n_qubits());
            assert_eq!(s.stats.gates_applied, c.gate_count());
            assert_eq!(s.stats.peak_size, 1 << c.n_qubits());
            assert!((d.stats.fidelity - 1.0).abs() < 1e-12);
        }
        for out in dd_outs {
            dd.release(out);
        }
    }

    #[test]
    fn sampling_is_deterministic_after_reseed() {
        let circuit = generators::ghz(8);
        let (mut dd, _) = backends();
        let out = run_circuit(&mut dd, &circuit).expect("run");
        dd.reseed(5);
        let first: Vec<u64> = (0..8).map(|_| dd.sample(&out)).collect();
        dd.reseed(5);
        let second: Vec<u64> = (0..8).map(|_| dd.sample(&out)).collect();
        assert_eq!(first, second);
        for v in first {
            assert!(v == 0 || v == 0xFF, "GHZ outcome {v:#x}");
        }
        dd.release(out);
    }

    #[test]
    fn probability_rejects_out_of_range_basis() {
        let circuit = generators::ghz(3);
        let (mut dd, mut sv) = backends();
        let out = run_circuit(&mut dd, &circuit).expect("run");
        assert!(matches!(
            dd.probability(&out, 8),
            Err(ExecError::BasisOutOfRange {
                basis: 8,
                n_qubits: 3
            })
        ));
        assert!((dd.probability(&out, 7).expect("p") - 0.5).abs() < 1e-12);
        dd.release(out);
        let out = run_circuit(&mut sv, &circuit).expect("run");
        assert!(matches!(
            sv.probability(&out, 9),
            Err(ExecError::BasisOutOfRange { .. })
        ));
        sv.release(out);
    }

    #[test]
    fn expectation_agrees_across_engines() {
        let circuit = generators::w_state(5);
        let (mut dd, mut sv) = backends();
        let ones = |i: u64| f64::from(i.count_ones());
        let dd_out = run_circuit(&mut dd, &circuit).expect("dd");
        let sv_out = run_circuit(&mut sv, &circuit).expect("sv");
        let a = dd.expectation(&dd_out, &ones).expect("dd exp");
        let b = sv.expectation(&sv_out, &ones).expect("sv exp");
        // W state has exactly one excited qubit.
        assert!((a - 1.0).abs() < 1e-9, "{a}");
        assert!((a - b).abs() < 1e-9);
        dd.release(dd_out);
        sv.release(sv_out);
    }

    #[test]
    fn prepare_rejects_bad_configurations() {
        let sv = StatevectorBackend::new();
        let wide = generators::ghz(approxdd_statevector::MAX_DENSE_QUBITS + 1);
        assert!(matches!(
            sv.prepare(&wide),
            Err(ExecError::State(
                approxdd_statevector::StateError::TooManyQubits { .. }
            ))
        ));
        let dd = Simulator::builder()
            .strategy(Strategy::FidelityDriven {
                final_fidelity: 2.0,
                round_fidelity: 0.9,
            })
            .build_backend();
        assert!(matches!(
            dd.prepare(&generators::ghz(3)),
            Err(ExecError::Sim(_))
        ));
    }

    #[test]
    fn approximate_dd_backend_reports_rounds_through_stats() {
        let circuit = generators::supremacy(2, 3, 12, 1);
        let mut dd = Simulator::builder()
            .fidelity_driven(0.6, 0.9)
            .seed(3)
            .build_backend();
        let out = run_circuit(&mut dd, &circuit).expect("run");
        assert!(out.stats.approx_rounds > 0);
        assert!(out.stats.fidelity >= 0.6 - 1e-9 && out.stats.fidelity < 1.0);
        assert!(out.stats.nodes_removed > 0);
        dd.release(out);
    }
}

//! The unified execution error.

use std::error::Error;
use std::fmt;
use std::time::Duration;

use approxdd_circuit::noise::NoiseError;
use approxdd_circuit::CircuitError;
use approxdd_dd::DdError;
use approxdd_sim::SimError;
use approxdd_stabilizer::StabilizerError;
use approxdd_statevector::StateError;

/// Every way a [`crate::Backend`] can fail, absorbing the engine error
/// types via `From` so `?` works across layers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// The DD simulator failed.
    Sim(SimError),
    /// The dense statevector engine failed.
    State(StateError),
    /// The stabilizer tableau engine failed (non-Clifford operation or
    /// width cap).
    Stabilizer(StabilizerError),
    /// The decision-diagram engine failed.
    Dd(DdError),
    /// The circuit failed validation.
    Circuit(CircuitError),
    /// A noise model failed validation (stochastic trajectory
    /// execution; see `approxdd-noise`).
    Noise(NoiseError),
    /// A basis-state query indexed outside the register.
    BasisOutOfRange {
        /// The requested basis index.
        basis: u64,
        /// Register width of the run.
        n_qubits: usize,
    },
    /// The backend cannot perform the requested operation.
    Unsupported {
        /// Backend name ([`crate::Backend::name`]).
        backend: &'static str,
        /// What was requested.
        what: &'static str,
    },
    /// A pool worker terminated (panicked or was torn down) before
    /// returning a job's result. Produced by the `approxdd-exec`
    /// execution layer, never by a single-threaded backend. Retryable:
    /// the pool's `RetryPolicy` re-dispatches lost jobs, and because
    /// per-job seeds are a pure function of the job index, a retried
    /// success is byte-identical to a first-try success.
    WorkerLost {
        /// Index of the job whose result was lost.
        job: usize,
        /// Zero-based attempt on which the worker was lost (`0` for a
        /// first try; the Display message reports it one-based).
        attempt: u32,
    },
    /// A job's wall-clock deadline elapsed before the run finished.
    /// Enforced cooperatively: a deadline-wrapping policy
    /// (`approxdd_sim::DeadlinePolicy`) aborts the run at the first
    /// operation past the cutoff, and the pool worker surfaces the
    /// abort as this typed error. Produced by the `approxdd-exec`
    /// execution layer.
    DeadlineExceeded {
        /// Index of the job that blew its deadline.
        job: usize,
        /// Zero-based attempt that exceeded the deadline.
        attempt: u32,
        /// The wall-clock budget the job was given.
        budget: Duration,
    },
    /// A seeded fault-injection plan (`approxdd_exec::FaultPlan`)
    /// forced this job to fail. Test/bench only — never produced
    /// unless a plan was explicitly installed on the pool. Retryable,
    /// exactly like [`ExecError::WorkerLost`].
    FaultInjected {
        /// Index of the faulted job.
        job: usize,
        /// Zero-based attempt the fault fired on.
        attempt: u32,
    },
    /// A submission was rejected at the admission seam because it would
    /// push the pool's work queue past its configured capacity
    /// (`SimulatorBuilder::queue_capacity`). Backpressure, not a
    /// failure of any job: nothing was enqueued, nothing ran, and
    /// already-admitted work is untouched. Produced only by the
    /// admission-checked submission paths of `approxdd-exec`
    /// (`BackendPool::run_jobs_admitted` / `BackendPool::try_admit`);
    /// serving layers map it to HTTP 429.
    QueueFull {
        /// Tasks already waiting in the queue at rejection time.
        queued: usize,
        /// Tasks the rejected submission asked to add.
        submitted: usize,
        /// The configured admission capacity.
        capacity: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Sim(e) => write!(f, "dd simulator error: {e}"),
            ExecError::State(e) => write!(f, "statevector error: {e}"),
            ExecError::Stabilizer(e) => write!(f, "stabilizer engine error: {e}"),
            ExecError::Dd(e) => write!(f, "decision-diagram error: {e}"),
            ExecError::Circuit(e) => write!(f, "circuit error: {e}"),
            ExecError::Noise(e) => write!(f, "noise model error: {e}"),
            ExecError::BasisOutOfRange { basis, n_qubits } => {
                write!(f, "basis state {basis} outside a {n_qubits}-qubit register")
            }
            ExecError::Unsupported { backend, what } => {
                write!(f, "backend '{backend}' does not support {what}")
            }
            ExecError::WorkerLost { job, attempt } => {
                write!(
                    f,
                    "pool worker terminated before completing job {job} (attempt {})",
                    attempt + 1
                )
            }
            ExecError::DeadlineExceeded {
                job,
                attempt,
                budget,
            } => {
                write!(
                    f,
                    "job {job} exceeded its {budget:?} deadline (attempt {})",
                    attempt + 1
                )
            }
            ExecError::FaultInjected { job, attempt } => {
                write!(
                    f,
                    "injected fault failed job {job} (attempt {})",
                    attempt + 1
                )
            }
            ExecError::QueueFull {
                queued,
                submitted,
                capacity,
            } => {
                write!(
                    f,
                    "queue full: {queued} queued + {submitted} submitted exceeds capacity {capacity}"
                )
            }
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Sim(e) => Some(e),
            ExecError::State(e) => Some(e),
            ExecError::Stabilizer(e) => Some(e),
            ExecError::Dd(e) => Some(e),
            ExecError::Circuit(e) => Some(e),
            ExecError::Noise(e) => Some(e),
            ExecError::BasisOutOfRange { .. }
            | ExecError::Unsupported { .. }
            | ExecError::WorkerLost { .. }
            | ExecError::DeadlineExceeded { .. }
            | ExecError::FaultInjected { .. }
            | ExecError::QueueFull { .. } => None,
        }
    }
}

impl From<SimError> for ExecError {
    /// Unwraps the simulator's own wrappers so an error surfaces the
    /// same way regardless of which layer reported it.
    fn from(e: SimError) -> Self {
        match e {
            SimError::Dd(inner) => ExecError::Dd(inner),
            SimError::Circuit(inner) => ExecError::Circuit(inner),
            other => ExecError::Sim(other),
        }
    }
}

impl From<StateError> for ExecError {
    fn from(e: StateError) -> Self {
        ExecError::State(e)
    }
}

impl From<StabilizerError> for ExecError {
    fn from(e: StabilizerError) -> Self {
        ExecError::Stabilizer(e)
    }
}

impl From<DdError> for ExecError {
    fn from(e: DdError) -> Self {
        ExecError::Dd(e)
    }
}

impl From<CircuitError> for ExecError {
    fn from(e: CircuitError) -> Self {
        ExecError::Circuit(e)
    }
}

impl From<NoiseError> for ExecError {
    fn from(e: NoiseError) -> Self {
        ExecError::Noise(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_unwrap_nested_sim_errors() {
        let e: ExecError = SimError::Dd(DdError::InvalidPermutation).into();
        assert!(matches!(e, ExecError::Dd(_)), "{e:?}");
        let e: ExecError = DdError::InvalidPermutation.into();
        assert!(matches!(e, ExecError::Dd(_)));
        let e: ExecError = SimError::InvalidStrategy { reason: "x" }.into();
        assert!(matches!(e, ExecError::Sim(_)));
        assert!(e.to_string().contains("dd simulator"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: Send + Sync + Error>() {}
        assert_traits::<ExecError>();
    }

    /// Walks an error's `source` chain and returns its depth (0 for a
    /// leaf error with no cause).
    fn chain_depth(e: &dyn Error) -> usize {
        let mut depth = 0;
        let mut cursor = e.source();
        while let Some(inner) = cursor {
            depth += 1;
            cursor = inner.source();
        }
        depth
    }

    /// Taxonomy audit: every variant renders a non-empty Display and
    /// its `source` chain is exactly as deep as its construction — the
    /// engine wrappers expose their cause, the execution-layer leaves
    /// (worker loss, deadlines, injected faults) expose none.
    #[test]
    fn every_variant_displays_and_chains_as_constructed() {
        use approxdd_circuit::noise::NoiseError;
        let wrapped: Vec<(ExecError, usize)> = vec![
            (ExecError::Sim(SimError::InvalidStrategy { reason: "x" }), 1),
            (
                ExecError::State(StateError::TooManyQubits {
                    n_qubits: 40,
                    max: 30,
                }),
                1,
            ),
            (
                ExecError::Stabilizer(StabilizerError::TooManyQubits {
                    n_qubits: 70,
                    max: 64,
                }),
                1,
            ),
            (ExecError::Dd(DdError::InvalidPermutation), 1),
            (
                ExecError::Circuit(CircuitError::QubitOutOfRange {
                    op_index: 0,
                    qubit: 5,
                    n_qubits: 3,
                }),
                1,
            ),
            (
                ExecError::Noise(NoiseError::InvalidRate {
                    channel: "bit-flip",
                    rate: 2.0,
                }),
                1,
            ),
            (
                ExecError::BasisOutOfRange {
                    basis: 9,
                    n_qubits: 3,
                },
                0,
            ),
            (
                ExecError::Unsupported {
                    backend: "dd",
                    what: "time travel",
                },
                0,
            ),
            (ExecError::WorkerLost { job: 3, attempt: 1 }, 0),
            (
                ExecError::DeadlineExceeded {
                    job: 5,
                    attempt: 2,
                    budget: Duration::from_millis(250),
                },
                0,
            ),
            (ExecError::FaultInjected { job: 7, attempt: 0 }, 0),
        ];
        for (e, want_depth) in &wrapped {
            assert!(!e.to_string().is_empty(), "{e:?} has an empty Display");
            assert_eq!(chain_depth(e), *want_depth, "{e:?} chain depth");
        }
        // A doubly-nested wrapper keeps chaining through: the Sim layer
        // exposes the DD cause one hop further down.
        let nested = ExecError::Sim(SimError::WidthMismatch {
            state: 2,
            circuit: 3,
        });
        assert_eq!(chain_depth(&nested), 1);
    }

    /// The execution-layer messages must name the job index and the
    /// 1-based attempt count — that is what a server log greps for.
    #[test]
    fn resilience_errors_name_job_and_attempt() {
        let lost = ExecError::WorkerLost { job: 3, attempt: 1 };
        assert!(lost.to_string().contains("job 3"), "{lost}");
        assert!(lost.to_string().contains("attempt 2"), "{lost}");
        let deadline = ExecError::DeadlineExceeded {
            job: 5,
            attempt: 0,
            budget: Duration::from_millis(250),
        };
        assert!(deadline.to_string().contains("job 5"), "{deadline}");
        assert!(deadline.to_string().contains("attempt 1"), "{deadline}");
        assert!(deadline.to_string().contains("250ms"), "{deadline}");
        let injected = ExecError::FaultInjected { job: 7, attempt: 2 };
        assert!(injected.to_string().contains("job 7"), "{injected}");
        assert!(injected.to_string().contains("attempt 3"), "{injected}");
    }
}

//! The unified execution error.

use std::error::Error;
use std::fmt;

use approxdd_circuit::noise::NoiseError;
use approxdd_circuit::CircuitError;
use approxdd_dd::DdError;
use approxdd_sim::SimError;
use approxdd_stabilizer::StabilizerError;
use approxdd_statevector::StateError;

/// Every way a [`crate::Backend`] can fail, absorbing the engine error
/// types via `From` so `?` works across layers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// The DD simulator failed.
    Sim(SimError),
    /// The dense statevector engine failed.
    State(StateError),
    /// The stabilizer tableau engine failed (non-Clifford operation or
    /// width cap).
    Stabilizer(StabilizerError),
    /// The decision-diagram engine failed.
    Dd(DdError),
    /// The circuit failed validation.
    Circuit(CircuitError),
    /// A noise model failed validation (stochastic trajectory
    /// execution; see `approxdd-noise`).
    Noise(NoiseError),
    /// A basis-state query indexed outside the register.
    BasisOutOfRange {
        /// The requested basis index.
        basis: u64,
        /// Register width of the run.
        n_qubits: usize,
    },
    /// The backend cannot perform the requested operation.
    Unsupported {
        /// Backend name ([`crate::Backend::name`]).
        backend: &'static str,
        /// What was requested.
        what: &'static str,
    },
    /// A pool worker terminated (panicked or was torn down) before
    /// returning a job's result. Produced by the `approxdd-exec`
    /// execution layer, never by a single-threaded backend.
    WorkerLost {
        /// Index of the job whose result was lost.
        job: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Sim(e) => write!(f, "dd simulator error: {e}"),
            ExecError::State(e) => write!(f, "statevector error: {e}"),
            ExecError::Stabilizer(e) => write!(f, "stabilizer engine error: {e}"),
            ExecError::Dd(e) => write!(f, "decision-diagram error: {e}"),
            ExecError::Circuit(e) => write!(f, "circuit error: {e}"),
            ExecError::Noise(e) => write!(f, "noise model error: {e}"),
            ExecError::BasisOutOfRange { basis, n_qubits } => {
                write!(f, "basis state {basis} outside a {n_qubits}-qubit register")
            }
            ExecError::Unsupported { backend, what } => {
                write!(f, "backend '{backend}' does not support {what}")
            }
            ExecError::WorkerLost { job } => {
                write!(f, "pool worker terminated before completing job {job}")
            }
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Sim(e) => Some(e),
            ExecError::State(e) => Some(e),
            ExecError::Stabilizer(e) => Some(e),
            ExecError::Dd(e) => Some(e),
            ExecError::Circuit(e) => Some(e),
            ExecError::Noise(e) => Some(e),
            ExecError::BasisOutOfRange { .. }
            | ExecError::Unsupported { .. }
            | ExecError::WorkerLost { .. } => None,
        }
    }
}

impl From<SimError> for ExecError {
    /// Unwraps the simulator's own wrappers so an error surfaces the
    /// same way regardless of which layer reported it.
    fn from(e: SimError) -> Self {
        match e {
            SimError::Dd(inner) => ExecError::Dd(inner),
            SimError::Circuit(inner) => ExecError::Circuit(inner),
            other => ExecError::Sim(other),
        }
    }
}

impl From<StateError> for ExecError {
    fn from(e: StateError) -> Self {
        ExecError::State(e)
    }
}

impl From<StabilizerError> for ExecError {
    fn from(e: StabilizerError) -> Self {
        ExecError::Stabilizer(e)
    }
}

impl From<DdError> for ExecError {
    fn from(e: DdError) -> Self {
        ExecError::Dd(e)
    }
}

impl From<CircuitError> for ExecError {
    fn from(e: CircuitError) -> Self {
        ExecError::Circuit(e)
    }
}

impl From<NoiseError> for ExecError {
    fn from(e: NoiseError) -> Self {
        ExecError::Noise(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_unwrap_nested_sim_errors() {
        let e: ExecError = SimError::Dd(DdError::InvalidPermutation).into();
        assert!(matches!(e, ExecError::Dd(_)), "{e:?}");
        let e: ExecError = DdError::InvalidPermutation.into();
        assert!(matches!(e, ExecError::Dd(_)));
        let e: ExecError = SimError::InvalidStrategy { reason: "x" }.into();
        assert!(matches!(e, ExecError::Sim(_)));
        assert!(e.to_string().contains("dd simulator"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: Send + Sync + Error>() {}
        assert_traits::<ExecError>();
    }
}

//! [`Backend`] over the stabilizer-tableau engine.

use std::collections::HashMap;

use approxdd_telemetry::Span;

use approxdd_circuit::Circuit;
use approxdd_complex::Cplx;
use approxdd_stabilizer::{StabilizerError, Tableau, MAX_INDEXED_QUBITS};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Backend, BackendStats, Executable, Result, RunOutcome};

/// The Aaronson–Gottesman tableau behind the [`Backend`] API:
/// polynomial-time and exact, for Clifford circuits only.
///
/// Preparation rejects circuits with any non-Clifford operation (use
/// [`crate::HybridBackend`] to run those with a tableau prefix) and
/// registers wider than [`MAX_INDEXED_QUBITS`] (`u64` basis indexing).
/// Outcomes own their [`Tableau`], so `release` is a plain drop.
/// Sampling draws from the backend's owned RNG, one `bool` per support
/// dimension, so reseed-and-replay determinism matches the other
/// engines.
#[derive(Debug)]
pub struct StabilizerBackend {
    rng: StdRng,
}

impl StabilizerBackend {
    /// A backend with the default sampling seed
    /// ([`approxdd_sim::DEFAULT_SAMPLE_SEED`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_seed(approxdd_sim::DEFAULT_SAMPLE_SEED)
    }

    /// A backend whose sampling RNG is seeded with `seed`.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Default for StabilizerBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl StabilizerBackend {
    /// Draws one sample straight from a tableau with the backend's RNG
    /// (the engine-dispatch path of `AnyBackend`).
    pub(crate) fn sample_tableau(&mut self, tableau: &Tableau) -> u64 {
        tableau.sample(&mut self.rng)
    }

    /// Histogram counterpart of [`StabilizerBackend::sample_tableau`].
    pub(crate) fn sample_counts_tableau(
        &mut self,
        tableau: &Tableau,
        shots: usize,
    ) -> HashMap<u64, usize> {
        tableau.sample_counts(shots, &mut self.rng)
    }
}

impl Backend for StabilizerBackend {
    type Handle = Tableau;

    fn name(&self) -> &'static str {
        "stabilizer"
    }

    fn prepare(&self, circuit: &Circuit) -> Result<Executable> {
        circuit.validate()?;
        if circuit.n_qubits() > MAX_INDEXED_QUBITS {
            return Err(StabilizerError::TooManyQubits {
                n_qubits: circuit.n_qubits(),
                max: MAX_INDEXED_QUBITS,
            }
            .into());
        }
        if !circuit.is_clifford() {
            return Err(StabilizerError::NonClifford {
                index: circuit.clifford_prefix_len(),
            }
            .into());
        }
        Ok(Executable::from_validated(circuit.clone()))
    }

    fn run(&mut self, exe: &Executable) -> Result<RunOutcome<Tableau>> {
        let span = Span::enter("stab.run");
        let mut tableau = Tableau::new(exe.n_qubits());
        let mut gates_applied = 0;
        for (index, op) in exe.circuit().ops().iter().enumerate() {
            if tableau.apply_op(index, op)? {
                gates_applied += 1;
            }
        }
        let stats = BackendStats {
            gates_applied,
            peak_size: tableau.storage_words(),
            approx_rounds: 0,
            fidelity: 1.0,
            fidelity_lower_bound: 1.0,
            policy: "exact".to_string(),
            nodes_removed: 0,
            runtime: span.finish(),
            size_series: Vec::new(),
            dd: None,
            engine: "stabilizer",
            clifford_prefix_len: exe.circuit().ops().len(),
        };
        Ok(RunOutcome::new(stats, exe.n_qubits(), tableau))
    }

    fn sample(&mut self, outcome: &RunOutcome<Tableau>) -> u64 {
        outcome.handle().sample(&mut self.rng)
    }

    fn sample_counts(
        &mut self,
        outcome: &RunOutcome<Tableau>,
        shots: usize,
    ) -> HashMap<u64, usize> {
        outcome.handle().sample_counts(shots, &mut self.rng)
    }

    fn amplitudes(&self, outcome: &RunOutcome<Tableau>) -> Result<Vec<Cplx>> {
        Ok(outcome.handle().amplitudes()?)
    }

    fn probability(&self, outcome: &RunOutcome<Tableau>, basis: u64) -> Result<f64> {
        crate::check_basis(basis, outcome.n_qubits())?;
        Ok(outcome.handle().probability(basis))
    }

    fn release(&mut self, outcome: RunOutcome<Tableau>) {
        drop(outcome);
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }
}

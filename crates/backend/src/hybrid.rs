//! Hybrid Clifford-prefix dispatch: tableau first, DD for the rest.

use std::collections::HashMap;

use approxdd_telemetry::Span;

use approxdd_circuit::Circuit;
use approxdd_complex::Cplx;
use approxdd_dd::{GateKind, Package, VEdge};
use approxdd_sim::{RunResult, Simulator};
use approxdd_stabilizer::{Tableau, MAX_INDEXED_QUBITS};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Backend, BackendStats, ExecError, Executable, Result, RunOutcome};

/// Dispatcher that simulates the maximal Clifford prefix of every
/// circuit on a stabilizer tableau and hands the remainder to the DD
/// engine, seeded with the synthesized stabilizer state.
///
/// Pure-Clifford circuits never touch the DD package: their outcome
/// holds the tableau itself and every query (amplitudes, probability,
/// sampling) answers in polynomial time. Circuits with a non-Clifford
/// tail run on the wrapped [`Simulator`] from the synthesized initial
/// state, with the configured approximation policy steering the suffix
/// exactly as it would a full DD run. Registers wider than
/// [`MAX_INDEXED_QUBITS`] fall back to a whole-circuit DD run (the
/// basis-state synthesis needs `u64` indexing).
#[derive(Debug)]
pub struct HybridBackend {
    sim: Simulator,
    rng: StdRng,
}

/// The two shapes a hybrid run can end in.
#[derive(Debug)]
pub enum HybridHandle {
    /// The whole circuit was Clifford — the final state is a tableau.
    Clifford(Box<Tableau>),
    /// A non-Clifford suffix ran on the DD engine.
    Dd(Box<RunResult>),
}

impl HybridBackend {
    /// Wraps a configured simulator with the default sampling seed for
    /// the tableau path.
    #[must_use]
    pub fn new(sim: Simulator) -> Self {
        Self::with_seed(sim, approxdd_sim::DEFAULT_SAMPLE_SEED)
    }

    /// Wraps a configured simulator; `seed` drives sampling of
    /// pure-Clifford outcomes (DD outcomes sample through the
    /// simulator's own seeded RNG).
    #[must_use]
    pub fn with_seed(sim: Simulator, seed: u64) -> Self {
        Self {
            sim,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Read access to the wrapped simulator.
    #[must_use]
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    /// Mutable access to the wrapped simulator.
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// The prefix length this backend will actually absorb for
    /// `circuit`: the Clifford prefix, or 0 when the register is too
    /// wide for the tableau→DD handoff.
    #[must_use]
    pub fn effective_prefix_len(circuit: &Circuit) -> usize {
        if circuit.n_qubits() > MAX_INDEXED_QUBITS {
            0
        } else {
            circuit.clifford_prefix_len()
        }
    }
}

/// Builds the DD state vector of a stabilizer state exactly.
///
/// Fast path: a rank-0 tableau is a basis state — one `basis_state`
/// call plus the witness phase. General case: starting from the
/// witness basis state, apply the projector `(I + g)/2` of every
/// stabilizer generator `g` with a nonempty X-part (pure-Z generators
/// act as the identity on every intermediate, which always lies inside
/// the final support) and renormalize; the result is the state up to a
/// unit phase, which the tracked witness amplitude then pins down
/// exactly. No intermediate can vanish: the unnormalized product is
/// `|ψ⟩⟨ψ|b⟩` with `⟨ψ|b⟩ ≠ 0` by choice of witness.
///
/// GC safety: the package only collects garbage inside a simulator's
/// run loop, never during these package calls, and `run_from` pins the
/// returned edge before its first gate.
pub(crate) fn synthesize_state(package: &mut Package, tableau: &Tableau) -> Result<VEdge> {
    let n = tableau.n_qubits();
    let witness = tableau.witness_index();
    let target = tableau.witness_amplitude().to_cplx();
    let mut v = package.basis_state(n, witness);
    if tableau.support_rank() == 0 {
        // Basis state: amplitude is the witness phase itself.
        return Ok(v.scaled(target));
    }
    let x_mat = GateKind::X.matrix();
    let y_mat = GateKind::Y.matrix();
    let z_mat = GateKind::Z.matrix();
    for i in 0..n {
        if !(0..n).any(|q| tableau.stabilizer_x(i, q)) {
            continue;
        }
        // g·v one single-qubit factor at a time (distinct qubits
        // commute), then v ← (v ± g·v)/‖…‖.
        let mut gv = v;
        for q in 0..n {
            let mat = match (tableau.stabilizer_x(i, q), tableau.stabilizer_z(i, q)) {
                (false, false) => continue,
                (true, false) => x_mat,
                (true, true) => y_mat,
                (false, true) => z_mat,
            };
            let gate = package.single_gate(n, q, mat)?;
            gv = package.apply(gate, gv);
        }
        if tableau.stabilizer_sign(i) {
            gv = gv.scaled(Cplx::real(-1.0));
        }
        v = package.add(v, gv);
        let norm = package.norm(v);
        debug_assert!(norm > 1e-12, "projector product of a support witness");
        v = v.scaled(Cplx::real(1.0 / norm));
    }
    // The projectors fix the state up to a unit phase; the witness
    // amplitude fixes the phase.
    let actual = package.amplitude(v, witness);
    Ok(v.scaled(target / actual))
}

impl HybridBackend {
    /// Draws one sample from a bare handle (the engine-dispatch path
    /// of `AnyBackend`).
    pub(crate) fn sample_handle(&mut self, handle: &HybridHandle) -> u64 {
        match handle {
            HybridHandle::Clifford(t) => t.sample(&mut self.rng),
            HybridHandle::Dd(r) => self.sim.draw(r),
        }
    }

    /// Histogram counterpart of [`HybridBackend::sample_handle`].
    pub(crate) fn sample_counts_handle(
        &mut self,
        handle: &HybridHandle,
        shots: usize,
    ) -> HashMap<u64, usize> {
        match handle {
            HybridHandle::Clifford(t) => t.sample_counts(shots, &mut self.rng),
            HybridHandle::Dd(r) => self.sim.draw_counts(r, shots),
        }
    }
}

impl Backend for HybridBackend {
    type Handle = HybridHandle;

    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn prepare(&self, circuit: &Circuit) -> Result<Executable> {
        self.sim.validate_policy(circuit).map_err(ExecError::from)?;
        circuit.validate()?;
        Ok(Executable::from_validated(circuit.clone()))
    }

    fn run(&mut self, exe: &Executable) -> Result<RunOutcome<HybridHandle>> {
        let span = Span::enter("hybrid.run");
        let n = exe.n_qubits();
        let circuit = exe.circuit();
        let ops = circuit.ops();
        let prefix = Self::effective_prefix_len(circuit);

        let mut tableau = Tableau::new(n);
        let mut prefix_gates = 0;
        for (index, op) in ops.iter().take(prefix).enumerate() {
            if tableau.apply_op(index, op)? {
                prefix_gates += 1;
            }
        }

        if prefix == ops.len() {
            // Pure Clifford: the DD package is never touched.
            let stats = BackendStats {
                gates_applied: prefix_gates,
                peak_size: tableau.storage_words(),
                approx_rounds: 0,
                fidelity: 1.0,
                fidelity_lower_bound: 1.0,
                policy: "exact".to_string(),
                nodes_removed: 0,
                runtime: span.finish(),
                size_series: Vec::new(),
                dd: None,
                engine: "hybrid",
                clifford_prefix_len: prefix,
            };
            return Ok(RunOutcome::new(
                stats,
                n,
                HybridHandle::Clifford(Box::new(tableau)),
            ));
        }

        let initial = synthesize_state(self.sim.package_mut(), &tableau)?;
        let mut suffix = Circuit::new(n, circuit.name());
        for op in &ops[prefix..] {
            suffix.push(op.clone());
        }
        let result = self.sim.run_from(&suffix, initial)?;
        let mut stats: BackendStats = result.stats.clone().into();
        stats.engine = "hybrid";
        stats.clifford_prefix_len = prefix;
        stats.gates_applied += prefix_gates;
        stats.peak_size = stats.peak_size.max(tableau.storage_words());
        stats.runtime = span.finish();
        Ok(RunOutcome::new(
            stats,
            n,
            HybridHandle::Dd(Box::new(result)),
        ))
    }

    fn sample(&mut self, outcome: &RunOutcome<HybridHandle>) -> u64 {
        match outcome.handle() {
            HybridHandle::Clifford(t) => t.sample(&mut self.rng),
            HybridHandle::Dd(r) => self.sim.draw(r),
        }
    }

    fn sample_counts(
        &mut self,
        outcome: &RunOutcome<HybridHandle>,
        shots: usize,
    ) -> HashMap<u64, usize> {
        match outcome.handle() {
            HybridHandle::Clifford(t) => t.sample_counts(shots, &mut self.rng),
            HybridHandle::Dd(r) => self.sim.draw_counts(r, shots),
        }
    }

    fn amplitudes(&self, outcome: &RunOutcome<HybridHandle>) -> Result<Vec<Cplx>> {
        match outcome.handle() {
            HybridHandle::Clifford(t) => Ok(t.amplitudes()?),
            HybridHandle::Dd(r) => Ok(self.sim.amplitudes(r)?),
        }
    }

    fn probability(&self, outcome: &RunOutcome<HybridHandle>, basis: u64) -> Result<f64> {
        crate::check_basis(basis, outcome.n_qubits())?;
        match outcome.handle() {
            HybridHandle::Clifford(t) => Ok(t.probability(basis)),
            HybridHandle::Dd(r) => Ok(self.sim.package().probability(r.state(), basis)),
        }
    }

    fn release(&mut self, outcome: RunOutcome<HybridHandle>) {
        match outcome.handle() {
            HybridHandle::Clifford(_) => {}
            HybridHandle::Dd(r) => self.sim.release(r),
        }
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
        self.sim.reseed(seed);
    }
}

//! The [`Cplx`] complex number type.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// This is deliberately a plain value type (no interning, no tolerance):
/// tolerance-aware behaviour lives in [`crate::Tolerance`] so that exact
/// arithmetic and approximate comparison cannot be confused.
///
/// # Examples
///
/// ```
/// use approxdd_complex::Cplx;
///
/// let i = Cplx::I;
/// assert_eq!(i * i, Cplx::new(-1.0, 0.0));
/// assert_eq!(Cplx::new(3.0, 4.0).mag(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cplx {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Cplx {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Cplx = Cplx { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Cplx = Cplx { re: 0.0, im: 1.0 };
    /// `1/sqrt(2)`, the ubiquitous Hadamard coefficient.
    pub const FRAC_1_SQRT_2: Cplx = Cplx {
        re: std::f64::consts::FRAC_1_SQRT_2,
        im: 0.0,
    };

    /// Creates a complex number from real and imaginary parts.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[must_use]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^{i theta}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use approxdd_complex::Cplx;
    /// let c = Cplx::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((c.re).abs() < 1e-15);
    /// assert!((c.im - 2.0).abs() < 1e-15);
    /// ```
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// The primitive `n`-th root of unity raised to the `k`-th power,
    /// `e^{2 pi i k / n}` — the phase appearing in the quantum Fourier
    /// transform.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn root_of_unity(k: i64, n: u64) -> Self {
        assert!(n != 0, "root_of_unity: order must be nonzero");
        let theta = 2.0 * std::f64::consts::PI * (k as f64) / (n as f64);
        Self::from_polar(1.0, theta)
    }

    /// Squared magnitude `|z|^2`. Cheaper than [`Cplx::mag`]; the quantity
    /// the Born rule and node contributions are built from.
    #[must_use]
    pub fn mag2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[must_use]
    pub fn mag(self) -> f64 {
        self.mag2().sqrt()
    }

    /// Argument (phase angle) in radians, in `(-pi, pi]`.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns `Cplx::ZERO`-adjacent garbage (infinities/NaN) if `self` is
    /// exactly zero, mirroring `f64` division semantics; callers guard with
    /// a tolerance check.
    #[must_use]
    pub fn recip(self) -> Self {
        let d = self.mag2();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Principal square root.
    #[must_use]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.mag().sqrt(), self.arg() / 2.0)
    }

    /// Whether both components are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Scales by a real factor.
    #[must_use]
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Fused multiply-add `self * b + c`, the inner-loop operation of the
    /// matrix–vector recursion.
    #[must_use]
    pub fn mul_add(self, b: Cplx, c: Cplx) -> Self {
        self * b + c
    }

    /// The unit-magnitude phase `z / |z|` of a nonzero value.
    #[must_use]
    pub fn phase(self) -> Self {
        let m = self.mag();
        Self {
            re: self.re / m,
            im: self.im / m,
        }
    }
}

impl Add for Cplx {
    type Output = Cplx;
    fn add(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Cplx {
    fn add_assign(&mut self, rhs: Cplx) {
        *self = *self + rhs;
    }
}

impl Sub for Cplx {
    type Output = Cplx;
    fn sub(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Cplx {
    fn sub_assign(&mut self, rhs: Cplx) {
        *self = *self - rhs;
    }
}

impl Mul for Cplx {
    type Output = Cplx;
    fn mul(self, rhs: Cplx) -> Cplx {
        Cplx::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Cplx {
    fn mul_assign(&mut self, rhs: Cplx) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Cplx {
    type Output = Cplx;
    fn mul(self, rhs: f64) -> Cplx {
        self.scale(rhs)
    }
}

impl Mul<Cplx> for f64 {
    type Output = Cplx;
    fn mul(self, rhs: Cplx) -> Cplx {
        rhs.scale(self)
    }
}

impl Div for Cplx {
    type Output = Cplx;
    // Division is multiplication by the reciprocal.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Cplx) -> Cplx {
        self * rhs.recip()
    }
}

impl DivAssign for Cplx {
    fn div_assign(&mut self, rhs: Cplx) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Cplx {
    type Output = Cplx;
    fn div(self, rhs: f64) -> Cplx {
        Cplx::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Cplx {
    type Output = Cplx;
    fn neg(self) -> Cplx {
        Cplx::new(-self.re, -self.im)
    }
}

impl Sum for Cplx {
    fn sum<I: Iterator<Item = Cplx>>(iter: I) -> Cplx {
        iter.fold(Cplx::ZERO, |a, b| a + b)
    }
}

impl Product for Cplx {
    fn product<I: Iterator<Item = Cplx>>(iter: I) -> Cplx {
        iter.fold(Cplx::ONE, |a, b| a * b)
    }
}

impl From<f64> for Cplx {
    fn from(re: f64) -> Self {
        Cplx::real(re)
    }
}

impl From<(f64, f64)> for Cplx {
    fn from((re, im): (f64, f64)) -> Self {
        Cplx::new(re, im)
    }
}

impl fmt::Display for Cplx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im == 0.0 {
            write!(f, "{}", self.re)
        } else if self.im < 0.0 {
            write!(f, "{}-{}i", self.re, -self.im)
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Cplx, b: Cplx) -> bool {
        (a - b).mag() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Cplx::new(0.3, -0.7);
        assert!(close(z + Cplx::ZERO, z));
        assert!(close(z * Cplx::ONE, z));
        assert!(close(z - z, Cplx::ZERO));
        assert!(close(z * z.recip(), Cplx::ONE));
        assert!(close(-(-z), z));
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Cplx::new(1.0, 2.0);
        let b = Cplx::new(3.0, -4.0);
        // (1+2i)(3-4i) = 3 - 4i + 6i + 8 = 11 + 2i
        assert!(close(a * b, Cplx::new(11.0, 2.0)));
    }

    #[test]
    fn conjugate_properties() {
        let z = Cplx::new(0.6, 0.8);
        assert!(close(z.conj().conj(), z));
        assert!((z * z.conj()).im.abs() < 1e-15);
        assert!(((z * z.conj()).re - z.mag2()).abs() < 1e-15);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Cplx::new(-0.4, 0.9);
        let back = Cplx::from_polar(z.mag(), z.arg());
        assert!(close(back, z));
    }

    #[test]
    fn roots_of_unity_cycle() {
        let w = Cplx::root_of_unity(1, 8);
        let mut acc = Cplx::ONE;
        for _ in 0..8 {
            acc *= w;
        }
        assert!(close(acc, Cplx::ONE));
        // Half-way around is -1.
        assert!(close(Cplx::root_of_unity(4, 8), Cplx::new(-1.0, 0.0)));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Cplx::new(-1.0, 0.0);
        let r = z.sqrt();
        assert!(close(r * r, z));
        assert!(close(Cplx::I, Cplx::new(-1.0, 0.0).sqrt()));
    }

    #[test]
    fn phase_is_unit() {
        let z = Cplx::new(3.0, -4.0);
        assert!((z.phase().mag() - 1.0).abs() < 1e-15);
        assert!(close(z.phase() * Cplx::real(z.mag()), z));
    }

    #[test]
    fn sum_and_product_folds() {
        let xs = [Cplx::ONE, Cplx::I, Cplx::new(1.0, 1.0)];
        let s: Cplx = xs.iter().copied().sum();
        assert!(close(s, Cplx::new(2.0, 2.0)));
        let p: Cplx = xs.iter().copied().product();
        // 1 * i * (1+i) = i + i^2 = -1 + i
        assert!(close(p, Cplx::new(-1.0, 1.0)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cplx::real(1.5).to_string(), "1.5");
        assert_eq!(Cplx::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Cplx::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn scalar_ops() {
        let z = Cplx::new(1.0, -2.0);
        assert!(close(z * 2.0, Cplx::new(2.0, -4.0)));
        assert!(close(2.0 * z, z * 2.0));
        assert!(close(z / 2.0, Cplx::new(0.5, -1.0)));
    }
}

//! Complex arithmetic substrate for decision-diagram based quantum circuit
//! simulation.
//!
//! Decision diagrams require *canonical* representations: two edge weights
//! that are "the same number up to numerical noise" must be recognized as
//! equal, otherwise structurally identical sub-diagrams are duplicated and
//! the compression that makes DDs attractive evaporates. Following the
//! implementation strategy of Zulehner, Hillmich and Wille ("How to
//! efficiently handle complex values?", ICCAD 2019), this crate provides
//!
//! * [`Cplx`] — a plain `f64`-pair complex number with the full arithmetic
//!   surface needed by a simulator,
//! * [`Tolerance`] — tolerance-aware approximate equality, and
//! * [`quantize`] and [`Tolerance::key`] — a tolerance-grid quantization
//!   used to hash weights consistently with approximate equality.
//!
//! # Examples
//!
//! ```
//! use approxdd_complex::{Cplx, Tolerance};
//!
//! let a = Cplx::new(1.0 / 2.0_f64.sqrt(), 0.0);
//! let b = a * a;                       // 0.5 + 0i
//! assert!(Tolerance::default().eq(b, Cplx::new(0.5, 0.0)));
//! assert!((b.mag2() - 0.25).abs() < 1e-12);
//! ```

mod value;

pub use value::Cplx;

/// Default comparison tolerance used throughout the decision-diagram
/// engine. The value mirrors the magnitude used by the reference C++
/// implementation family (JKQ/MQT DDSIM).
pub const DEFAULT_TOLERANCE: f64 = 1e-12;

/// Tolerance-aware approximate comparison of real and complex values.
///
/// A [`Tolerance`] bundles the epsilon used for equality tests and for the
/// quantization grid, so all comparisons in one decision-diagram package
/// are mutually consistent.
///
/// # Examples
///
/// ```
/// use approxdd_complex::{Cplx, Tolerance};
///
/// let tol = Tolerance::new(1e-9);
/// assert!(tol.eq_real(1.0, 1.0 + 1e-10));
/// assert!(!tol.eq_real(1.0, 1.0 + 1e-8));
/// assert!(tol.is_zero(Cplx::new(1e-10, -1e-10)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    eps: f64,
    /// Precomputed `1 / (2 * eps)`: quantization runs on the DD
    /// package's hottest path (every unique-table probe), where a
    /// multiply is several times cheaper than the division it
    /// replaces.
    inv_pitch: f64,
}

impl Tolerance {
    /// Creates a tolerance with the given epsilon.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not finite and strictly positive.
    #[must_use]
    pub fn new(eps: f64) -> Self {
        assert!(
            eps.is_finite() && eps > 0.0,
            "tolerance epsilon must be finite and positive, got {eps}"
        );
        Self {
            eps,
            inv_pitch: 1.0 / (2.0 * eps),
        }
    }

    /// The epsilon of this tolerance.
    #[must_use]
    pub fn eps(self) -> f64 {
        self.eps
    }

    /// Approximate equality of two real numbers: `|a - b| <= eps`.
    #[must_use]
    pub fn eq_real(self, a: f64, b: f64) -> bool {
        (a - b).abs() <= self.eps
    }

    /// Approximate equality of two complex numbers (component-wise).
    #[must_use]
    pub fn eq(self, a: Cplx, b: Cplx) -> bool {
        self.eq_real(a.re, b.re) && self.eq_real(a.im, b.im)
    }

    /// Whether a complex value is approximately zero (component-wise).
    #[must_use]
    pub fn is_zero(self, a: Cplx) -> bool {
        a.re.abs() <= self.eps && a.im.abs() <= self.eps
    }

    /// Whether a complex value is approximately one.
    #[must_use]
    pub fn is_one(self, a: Cplx) -> bool {
        self.eq(a, Cplx::ONE)
    }

    /// Quantizes a real value onto the tolerance grid, producing an integer
    /// key such that values within one epsilon of each other land on the
    /// same or adjacent grid points.
    #[must_use]
    pub fn quantize(self, x: f64) -> i64 {
        quantize_scaled(x, self.inv_pitch)
    }

    /// A hashable key for a complex value, consistent with [`Tolerance::eq`]
    /// up to grid-boundary effects: values that compare equal hash to the
    /// same or to an adjacent key. The decision-diagram unique table uses
    /// this as its hash component; boundary misses only cost deduplication
    /// quality, never correctness.
    #[must_use]
    pub fn key(self, a: Cplx) -> (i64, i64) {
        (self.quantize(a.re), self.quantize(a.im))
    }
}

impl Default for Tolerance {
    fn default() -> Self {
        Self::new(DEFAULT_TOLERANCE)
    }
}

/// Quantizes `x` onto a grid of pitch `2 * eps`, mapping near-equal values
/// to identical integers (up to boundary effects).
///
/// The pitch is twice the epsilon so that two values within `eps` of each
/// other differ by at most one grid step.
#[must_use]
pub fn quantize(x: f64, eps: f64) -> i64 {
    quantize_scaled(x, 1.0 / (2.0 * eps))
}

/// [`quantize`] with the reciprocal grid pitch precomputed (the form
/// the DD hot path uses: one multiply instead of one divide).
#[must_use]
pub fn quantize_scaled(x: f64, inv_pitch: f64) -> i64 {
    let scaled = x * inv_pitch;
    // Saturate rather than wrap for pathological magnitudes.
    if scaled >= i64::MAX as f64 {
        i64::MAX
    } else if scaled <= i64::MIN as f64 {
        i64::MIN
    } else {
        scaled.round() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_eq_real_symmetric() {
        let t = Tolerance::new(1e-6);
        assert!(t.eq_real(0.5, 0.5 + 5e-7));
        assert!(t.eq_real(0.5 + 5e-7, 0.5));
        assert!(!t.eq_real(0.5, 0.5 + 2e-6));
    }

    #[test]
    fn tolerance_zero_detection() {
        let t = Tolerance::default();
        assert!(t.is_zero(Cplx::ZERO));
        assert!(t.is_zero(Cplx::new(1e-13, 0.0)));
        assert!(!t.is_zero(Cplx::new(1e-6, 0.0)));
        assert!(!t.is_zero(Cplx::new(0.0, 1e-6)));
    }

    #[test]
    fn tolerance_one_detection() {
        let t = Tolerance::default();
        assert!(t.is_one(Cplx::ONE));
        assert!(t.is_one(Cplx::new(1.0 + 1e-13, -1e-13)));
        assert!(!t.is_one(Cplx::new(1.0 + 1e-6, 0.0)));
    }

    #[test]
    fn quantize_groups_close_values() {
        let eps = 1e-9;
        let a = quantize(0.123_456_789, eps);
        let b = quantize(0.123_456_789 + 1e-10, eps);
        assert!((a - b).abs() <= 1);
    }

    #[test]
    fn quantize_separates_distant_values() {
        let eps = 1e-9;
        let a = quantize(0.1, eps);
        let b = quantize(0.2, eps);
        assert!((a - b).abs() > 1);
    }

    #[test]
    fn quantize_saturates() {
        assert_eq!(quantize(f64::MAX, 1e-12), i64::MAX);
        assert_eq!(quantize(f64::MIN, 1e-12), i64::MIN);
    }

    #[test]
    #[should_panic(expected = "tolerance epsilon")]
    fn tolerance_rejects_nonpositive() {
        let _ = Tolerance::new(0.0);
    }

    #[test]
    #[should_panic(expected = "tolerance epsilon")]
    fn tolerance_rejects_nan() {
        let _ = Tolerance::new(f64::NAN);
    }
}

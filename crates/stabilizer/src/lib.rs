//! Aaronson–Gottesman stabilizer-tableau simulation with exact global
//! phase.
//!
//! A [`Tableau`] stores the CHP bit-matrix form of a stabilizer state
//! (2n rows of X/Z bits plus a sign column) and additionally tracks a
//! **witness**: one basis state in the support together with its exact
//! amplitude. The witness is what turns the textbook tableau — which
//! only knows the state up to global phase — into a full
//! `Backend`-grade engine: amplitudes, probabilities, dense export and
//! exact
//! sampling all derive from it.
//!
//! Amplitudes of a stabilizer state are always of the form
//! `2^{e/2} · ω^m` with `ω = e^{iπ/4}`, so the witness amplitude is the
//! integer pair [`Amp`] `(e, m)` and every update is exact integer
//! arithmetic — there is no float drift even at 60+ qubits, where
//! amplitudes (`2^{-30}` and below) would be indistinguishable from
//! zero under any fixed float tolerance.
//!
//! Measurement outcomes in the *random* branch are drawn from the
//! caller-supplied RNG (one `bool` per random measurement), which is
//! how the backend layer keeps results byte-identical across worker
//! counts: the RNG is seeded per-job from the deterministic seed
//! stream, never from worker-local state.
//!
//! `Backend` is implemented in `approxdd-backend` (crate dependency
//! order); this crate exposes the raw engine.
//!
//! # Examples
//!
//! ```
//! use approxdd_circuit::generators;
//! use approxdd_stabilizer::Tableau;
//!
//! let t = Tableau::run(&generators::ghz(40)).unwrap();
//! assert_eq!(t.support_rank(), 1); // |0…0⟩ + |1…1⟩
//! assert!((t.probability(0) - 0.5).abs() < 1e-12);
//! assert!((t.probability((1u64 << 40) - 1) - 0.5).abs() < 1e-12);
//! assert_eq!(t.probability(1), 0.0);
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use approxdd_circuit::{Circuit, CliffordGate, CliffordOp, Operation};
use approxdd_complex::Cplx;
use rand::Rng;

/// Widest register whose basis states fit a `u64` index (the DD package
/// shares this cap for `basis_state`).
pub const MAX_INDEXED_QUBITS: usize = 63;

/// Widest register [`Tableau::amplitudes`] will export densely.
pub const MAX_DENSE_QUBITS: usize = 26;

/// Errors from the stabilizer engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StabilizerError {
    /// The circuit contains an operation the tableau cannot execute.
    NonClifford {
        /// Index of the offending operation within the circuit.
        index: usize,
    },
    /// Register too wide for u64 basis indexing / dense export.
    TooManyQubits {
        /// Requested width.
        n_qubits: usize,
        /// Supported maximum for the attempted operation.
        max: usize,
    },
}

impl fmt::Display for StabilizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StabilizerError::NonClifford { index } => {
                write!(f, "operation {index} is not Clifford")
            }
            StabilizerError::TooManyQubits { n_qubits, max } => {
                write!(f, "{n_qubits} qubits exceeds the supported {max}")
            }
        }
    }
}

impl Error for StabilizerError {}

/// An exact stabilizer amplitude `2^{e/2} · ω^m`, `ω = e^{iπ/4}`, or
/// zero.
///
/// Every nonzero amplitude of a stabilizer state has this form, and the
/// form is closed under the updates the tableau performs (Clifford
/// gates, measurement renormalization, amplitude ratios along the
/// stabilizer group), so the engine never touches floats until a value
/// leaves through [`Amp::to_cplx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Amp {
    zero: bool,
    /// Exponent of √2.
    e: i32,
    /// Exponent of ω, mod 8.
    m: u8,
}

impl Amp {
    /// The amplitude 1.
    #[must_use]
    pub fn one() -> Self {
        Amp {
            zero: false,
            e: 0,
            m: 0,
        }
    }

    /// The amplitude 0.
    #[must_use]
    pub fn zero() -> Self {
        Amp {
            zero: true,
            e: 0,
            m: 0,
        }
    }

    /// Whether this is the zero amplitude.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.zero
    }

    /// Multiply by `i^quarter`.
    #[must_use]
    pub fn mul_i_pow(self, quarter: u32) -> Self {
        self.mul_omega_pow(2 * quarter)
    }

    /// Multiply by `ω^k`.
    #[must_use]
    pub fn mul_omega_pow(self, k: u32) -> Self {
        if self.zero {
            return self;
        }
        Amp {
            m: ((u32::from(self.m) + k) % 8) as u8,
            ..self
        }
    }

    /// Multiply by `√2^d` (`d` may be negative).
    #[must_use]
    pub fn mul_sqrt2_pow(self, d: i32) -> Self {
        if self.zero {
            return self;
        }
        Amp {
            e: self.e + d,
            ..self
        }
    }

    /// Squared magnitude, `2^e`.
    #[must_use]
    pub fn mag2(self) -> f64 {
        if self.zero {
            0.0
        } else {
            (self.e as f64).exp2()
        }
    }

    /// Convert to a complex float at the API boundary.
    #[must_use]
    pub fn to_cplx(self) -> Cplx {
        if self.zero {
            return Cplx::ZERO;
        }
        const S: f64 = std::f64::consts::FRAC_1_SQRT_2;
        const UNIT: [(f64, f64); 8] = [
            (1.0, 0.0),
            (S, S),
            (0.0, 1.0),
            (-S, S),
            (-1.0, 0.0),
            (-S, -S),
            (0.0, -1.0),
            (S, -S),
        ];
        let mag = ((self.e as f64) / 2.0).exp2();
        let (re, im) = UNIT[self.m as usize];
        Cplx::new(mag * re, mag * im)
    }

    /// Exact sum of two amplitudes of the *same* stabilizer state
    /// (their ratio is a 4th root of unity, so the ω-distance is even),
    /// then divided by √2 — the shape of every Hadamard update.
    /// `None` encodes destructive interference (exact zero).
    fn add_div_sqrt2(a: Option<Amp>, b: Option<Amp>) -> Option<Amp> {
        let out = match (a, b) {
            (None, None) => None,
            (Some(x), None) | (None, Some(x)) => Some(x),
            (Some(x), Some(y)) => {
                debug_assert_eq!(x.e, y.e, "same-state amplitudes share magnitude");
                let d = (u32::from(y.m) + 8 - u32::from(x.m)) % 8;
                match d {
                    0 => Some(x.mul_sqrt2_pow(2)),
                    4 => None,
                    2 => Some(x.mul_sqrt2_pow(1).mul_omega_pow(1)),
                    6 => Some(x.mul_sqrt2_pow(1).mul_omega_pow(7)),
                    _ => unreachable!("odd ω-distance between same-state amplitudes"),
                }
            }
        };
        out.map(|v| v.mul_sqrt2_pow(-1))
    }
}

/// Outcome of a single-qubit computational-basis measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// The measured bit.
    pub outcome: bool,
    /// Whether the outcome was forced by the state (no RNG draw).
    pub deterministic: bool,
}

/// A stabilizer state on `n` qubits in CHP tableau form plus a phase
/// witness.
///
/// Rows `0..n` are destabilizers, rows `n..2n` stabilizers; row `i` of
/// each half is conjugate to row `n+i` of the other. X/Z bits are
/// packed 64 per word.
#[derive(Debug, Clone)]
pub struct Tableau {
    n: usize,
    /// Words per row.
    w: usize,
    x: Vec<u64>,
    z: Vec<u64>,
    r: Vec<u8>,
    wit_b: Vec<u64>,
    wit_a: Amp,
}

/// The stabilizer generators in reduced row-echelon form over the
/// X-part, with exact `i^t` phases — the solver behind amplitudes,
/// probabilities and sampling.
struct GroupSolver {
    w: usize,
    rank: usize,
    x: Vec<u64>,
    z: Vec<u64>,
    /// Phase exponent of i, mod 4, per row.
    t: Vec<u8>,
    /// Pivot column per echelon row (`len == rank`).
    pivots: Vec<usize>,
}

/// `i`-exponent of the per-column phase when multiplying Pauli rows
/// `(x1, z1) · (x2, z2)`, summed bit-parallel over one word pair.
fn pauli_mul_phase_word(x1: u64, z1: u64, x2: u64, z2: u64) -> i64 {
    let plus = (x1 & z1 & z2 & !x2) | (x1 & !z1 & z2 & x2) | (!x1 & z1 & x2 & !z2);
    let minus = (x1 & z1 & x2 & !z2) | (x1 & !z1 & z2 & !x2) | (!x1 & z1 & x2 & z2);
    i64::from(plus.count_ones()) - i64::from(minus.count_ones())
}

impl GroupSolver {
    /// Multiply row `dst` (on the left by `src`): phases compose
    /// exactly; X/Z parts XOR.
    fn rowmul(&mut self, dst: usize, src: usize) {
        let w = self.w;
        let mut g = i64::from(self.t[dst]) + i64::from(self.t[src]);
        for k in 0..w {
            g += pauli_mul_phase_word(
                self.x[src * w + k],
                self.z[src * w + k],
                self.x[dst * w + k],
                self.z[dst * w + k],
            );
        }
        self.t[dst] = g.rem_euclid(4) as u8;
        for k in 0..w {
            self.x[dst * w + k] ^= self.x[src * w + k];
            self.z[dst * w + k] ^= self.z[src * w + k];
        }
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let w = self.w;
        for k in 0..w {
            self.x.swap(a * w + k, b * w + k);
            self.z.swap(a * w + k, b * w + k);
        }
        self.t.swap(a, b);
    }

    fn xbit(&self, row: usize, col: usize) -> bool {
        self.x[row * self.w + col / 64] >> (col % 64) & 1 == 1
    }

    /// Express `diff` (an X-part bit vector) as a product of echelon
    /// rows. Returns the accumulated group element `(x, z, t)` or
    /// `None` when `diff` is outside the span — i.e. the target basis
    /// state has amplitude exactly zero.
    fn decompose(&self, diff: &[u64]) -> Option<(Vec<u64>, Vec<u64>, u8)> {
        let w = self.w;
        let mut u = diff.to_vec();
        let mut ax = vec![0u64; w];
        let mut az = vec![0u64; w];
        let mut at: i64 = 0;
        for (idx, &col) in self.pivots.iter().enumerate() {
            if u[col / 64] >> (col % 64) & 1 == 1 {
                at += i64::from(self.t[idx]);
                for k in 0..w {
                    at += pauli_mul_phase_word(
                        self.x[idx * w + k],
                        self.z[idx * w + k],
                        ax[k],
                        az[k],
                    );
                    ax[k] ^= self.x[idx * w + k];
                    az[k] ^= self.z[idx * w + k];
                    u[k] ^= self.x[idx * w + k];
                }
            }
        }
        if u.iter().any(|&word| word != 0) {
            return None;
        }
        Some((ax, az, at.rem_euclid(4) as u8))
    }

    /// `i`-exponent of the amplitude ratio `⟨b ⊕ diff|ψ⟩ / ⟨b|ψ⟩`, or
    /// `None` when `b ⊕ diff` is outside the support.
    ///
    /// With `g = i^t X^u Z^v` the stabilizer element reaching the
    /// target, `⟨b'|ψ⟩ = ⟨b'|g|ψ⟩ = i^{t + |x∧z|} (−1)^{v·b} ⟨b|ψ⟩`.
    fn ratio_quarter(&self, b: &[u64], diff: &[u64]) -> Option<u32> {
        let (ax, az, at) = self.decompose(diff)?;
        let mut q = i64::from(at);
        let mut zb = 0u32;
        for k in 0..self.w {
            q += i64::from((ax[k] & az[k]).count_ones());
            zb ^= (az[k] & b[k]).count_ones() & 1;
        }
        q += 2 * i64::from(zb);
        Some(q.rem_euclid(4) as u32)
    }
}

impl Tableau {
    /// The all-zero computational basis state `|0…0⟩` on `n` qubits.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let w = n.div_ceil(64).max(1);
        let mut t = Tableau {
            n,
            w,
            x: vec![0; 2 * n * w],
            z: vec![0; 2 * n * w],
            r: vec![0; 2 * n],
            wit_b: vec![0; w],
            wit_a: Amp::one(),
        };
        for i in 0..n {
            t.x[i * w + i / 64] |= 1 << (i % 64); // destabilizer X_i
            t.z[(n + i) * w + i / 64] |= 1 << (i % 64); // stabilizer Z_i
        }
        t
    }

    /// Run a whole circuit from `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// [`StabilizerError::NonClifford`] at the first operation the
    /// tableau cannot execute.
    pub fn run(circuit: &Circuit) -> Result<Self, StabilizerError> {
        let mut t = Tableau::new(circuit.n_qubits());
        for (index, op) in circuit.ops().iter().enumerate() {
            t.apply_op(index, op)?;
        }
        Ok(t)
    }

    /// Register width.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Number of `u64` words backing the bit matrices — the tableau
    /// analogue of "peak nodes" for stats reporting.
    #[must_use]
    pub fn storage_words(&self) -> usize {
        self.x.len() + self.z.len() + self.wit_b.len()
    }

    /// Apply one circuit operation. Markers (barrier / approx point)
    /// are identities and return `Ok(false)`; executed gates return
    /// `Ok(true)`.
    ///
    /// # Errors
    ///
    /// [`StabilizerError::NonClifford`] when the operation has no
    /// tableau form; `index` is echoed back for diagnostics.
    pub fn apply_op(&mut self, index: usize, op: &Operation) -> Result<bool, StabilizerError> {
        if !op.is_gate() {
            return Ok(false);
        }
        let Some(cop) = op.clifford_op() else {
            return Err(StabilizerError::NonClifford { index });
        };
        self.apply_clifford(&cop);
        Ok(true)
    }

    /// Apply a classified Clifford operation.
    pub fn apply_clifford(&mut self, op: &CliffordOp) {
        match *op {
            CliffordOp::Single { gate, target } => self.apply_single(gate, target),
            CliffordOp::Controlled {
                gate,
                control,
                positive,
                target,
            } => {
                if !positive {
                    self.apply_single(CliffordGate::X, control);
                }
                match gate {
                    CliffordGate::X => self.apply_cx(control, target),
                    // CY = S(t) · CX · S†(t), exact including phase.
                    CliffordGate::Y => {
                        self.apply_single(CliffordGate::Sdg, target);
                        self.apply_cx(control, target);
                        self.apply_single(CliffordGate::S, target);
                    }
                    CliffordGate::Z => self.apply_cz(control, target),
                    _ => unreachable!("CliffordOp::Controlled is Pauli by construction"),
                }
                if !positive {
                    self.apply_single(CliffordGate::X, control);
                }
            }
        }
    }

    /// Apply an uncontrolled single-qubit Clifford gate.
    pub fn apply_single(&mut self, gate: CliffordGate, q: usize) {
        debug_assert!(q < self.n);
        match gate {
            CliffordGate::I => {}
            CliffordGate::X => {
                self.rows_x(q);
                self.toggle_wit_bit(q);
            }
            CliffordGate::Y => {
                // ⟨b⊕e_q|Y_q ψ⟩ = i(−1)^{b_q}⟨b|ψ⟩ with b_q the old bit.
                let old = self.wit_bit(q);
                self.rows_y(q);
                self.toggle_wit_bit(q);
                self.wit_a = self.wit_a.mul_omega_pow(2 + 4 * u32::from(old));
            }
            CliffordGate::Z => {
                self.rows_z(q);
                if self.wit_bit(q) {
                    self.wit_a = self.wit_a.mul_omega_pow(4);
                }
            }
            CliffordGate::H => self.apply_h(q),
            CliffordGate::S => {
                self.rows_s(q);
                if self.wit_bit(q) {
                    self.wit_a = self.wit_a.mul_omega_pow(2);
                }
            }
            CliffordGate::Sdg => {
                self.rows_sdg(q);
                if self.wit_bit(q) {
                    self.wit_a = self.wit_a.mul_omega_pow(6);
                }
            }
            // √X = H·S·H and √X† = H·S†·H, exact with no extra phase.
            CliffordGate::Sx => {
                self.apply_h(q);
                self.apply_single(CliffordGate::S, q);
                self.apply_h(q);
            }
            CliffordGate::Sxdg => {
                self.apply_h(q);
                self.apply_single(CliffordGate::Sdg, q);
                self.apply_h(q);
            }
            // √Y = ω·H·Z and √Y† = ω⁷·Z·H (rightmost factor first).
            CliffordGate::Sy => {
                self.apply_single(CliffordGate::Z, q);
                self.apply_h(q);
                self.wit_a = self.wit_a.mul_omega_pow(1);
            }
            CliffordGate::Sydg => {
                self.apply_h(q);
                self.apply_single(CliffordGate::Z, q);
                self.wit_a = self.wit_a.mul_omega_pow(7);
            }
        }
    }

    /// CNOT.
    pub fn apply_cx(&mut self, control: usize, target: usize) {
        debug_assert!(control < self.n && target < self.n && control != target);
        let w = self.w;
        let (cw, cm) = (control / 64, 1u64 << (control % 64));
        let (tw, tm) = (target / 64, 1u64 << (target % 64));
        for i in 0..2 * self.n {
            let xc = self.x[i * w + cw] & cm != 0;
            let zc = self.z[i * w + cw] & cm != 0;
            let xt = self.x[i * w + tw] & tm != 0;
            let zt = self.z[i * w + tw] & tm != 0;
            if xc && zt && (xt == zc) {
                self.r[i] ^= 1;
            }
            if xc {
                self.x[i * w + tw] ^= tm;
            }
            if zt {
                self.z[i * w + cw] ^= cm;
            }
        }
        if self.wit_bit(control) {
            self.toggle_wit_bit(target);
        }
    }

    /// CZ (native diagonal update; no Hadamard conjugation).
    pub fn apply_cz(&mut self, control: usize, target: usize) {
        debug_assert!(control < self.n && target < self.n && control != target);
        let w = self.w;
        let (cw, cm) = (control / 64, 1u64 << (control % 64));
        let (tw, tm) = (target / 64, 1u64 << (target % 64));
        for i in 0..2 * self.n {
            let xc = self.x[i * w + cw] & cm != 0;
            let zc = self.z[i * w + cw] & cm != 0;
            let xt = self.x[i * w + tw] & tm != 0;
            let zt = self.z[i * w + tw] & tm != 0;
            if xc && xt && (zc != zt) {
                self.r[i] ^= 1;
            }
            if xt {
                self.z[i * w + cw] ^= cm;
            }
            if xc {
                self.z[i * w + tw] ^= tm;
            }
        }
        if self.wit_bit(control) && self.wit_bit(target) {
            self.wit_a = self.wit_a.mul_omega_pow(4);
        }
    }

    /// Hadamard. The only gate whose witness update needs the
    /// stabilizer group: the new amplitude mixes the two old
    /// amplitudes at `q ← 0/1`, so one amplitude-ratio solve runs
    /// against the *pre-gate* tableau.
    fn apply_h(&mut self, q: usize) {
        debug_assert!(q < self.n);
        let (wq, m) = (q / 64, 1u64 << (q % 64));
        // Old amplitudes at the witness with qubit q forced to 0 / 1.
        let solver = self.group_solver();
        let mut diff = vec![0u64; self.w];
        diff[wq] = m;
        let other = solver
            .ratio_quarter(&self.wit_b, &diff)
            .map(|quarter| self.wit_a.mul_i_pow(quarter));
        let (a0, a1) = if self.wit_bit(q) {
            (other, Some(self.wit_a))
        } else {
            (Some(self.wit_a), other)
        };
        // New amplitudes: (a0 ± a1)/√2 at q ← 0 / 1; at least one is
        // nonzero because a0 or a1 is the witness amplitude itself.
        let neg = |a: Option<Amp>| a.map(|v| v.mul_omega_pow(4));
        match Amp::add_div_sqrt2(a0, a1) {
            Some(na) => {
                self.set_wit_bit(q, false);
                self.wit_a = na;
            }
            None => {
                let na = Amp::add_div_sqrt2(a0, neg(a1))
                    .expect("H keeps at least one of the two mixed amplitudes nonzero");
                self.set_wit_bit(q, true);
                self.wit_a = na;
            }
        }
        // Tableau rows after the witness is repaired.
        let w = self.w;
        for i in 0..2 * self.n {
            let xb = self.x[i * w + wq] & m != 0;
            let zb = self.z[i * w + wq] & m != 0;
            if xb && zb {
                self.r[i] ^= 1;
            }
            if xb != zb {
                self.x[i * w + wq] ^= m;
                self.z[i * w + wq] ^= m;
            }
        }
    }

    /// Measure qubit `q` in the computational basis, collapsing the
    /// state. Random outcomes draw exactly one `bool` from `rng`;
    /// deterministic outcomes draw nothing.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> Measurement {
        debug_assert!(q < self.n);
        let (n, w) = (self.n, self.w);
        let (wq, m) = (q / 64, 1u64 << (q % 64));
        let p = (n..2 * n).find(|&i| self.x[i * w + wq] & m != 0);
        let Some(p) = p else {
            return Measurement {
                outcome: self.deterministic_outcome(q),
                deterministic: true,
            };
        };
        let outcome = rng.gen::<bool>();
        // Witness repair against the *pre-measurement* group: if the
        // witness disagrees with the outcome, row p (anticommuting
        // with Z_q, so flipping bit q) moves it into the surviving
        // half; either way the projection renormalizes by √2.
        if self.wit_bit(q) != outcome {
            let mut quarter = 2 * i64::from(self.r[p]);
            let mut zb = 0u32;
            for k in 0..w {
                let (px, pz) = (self.x[p * w + k], self.z[p * w + k]);
                quarter += i64::from((px & pz).count_ones());
                zb ^= (pz & self.wit_b[k]).count_ones() & 1;
            }
            quarter += 2 * i64::from(zb);
            for k in 0..w {
                self.wit_b[k] ^= self.x[p * w + k];
            }
            self.wit_a = self.wit_a.mul_i_pow(quarter.rem_euclid(4) as u32);
        }
        debug_assert_eq!(self.wit_bit(q), outcome);
        self.wit_a = self.wit_a.mul_sqrt2_pow(1);
        // Standard CHP update.
        for i in 0..2 * n {
            if i != p && self.x[i * w + wq] & m != 0 {
                self.rowsum(i, p);
            }
        }
        for k in 0..w {
            self.x[(p - n) * w + k] = self.x[p * w + k];
            self.z[(p - n) * w + k] = self.z[p * w + k];
            self.x[p * w + k] = 0;
            self.z[p * w + k] = 0;
        }
        self.r[p - n] = self.r[p];
        self.z[p * w + wq] = m;
        self.r[p] = u8::from(outcome);
        Measurement {
            outcome,
            deterministic: false,
        }
    }

    /// Exact amplitude `⟨basis|ψ⟩`.
    ///
    /// # Panics
    ///
    /// When `n_qubits > 63` (basis states no longer fit a `u64`).
    #[must_use]
    pub fn amplitude(&self, basis: u64) -> Cplx {
        self.amplitude_amp(basis).to_cplx()
    }

    /// Exact amplitude in integer form.
    #[must_use]
    pub fn amplitude_amp(&self, basis: u64) -> Amp {
        assert!(
            self.n <= MAX_INDEXED_QUBITS,
            "u64 basis indexing caps at {MAX_INDEXED_QUBITS} qubits"
        );
        let solver = self.group_solver();
        let mut diff = vec![0u64; self.w];
        diff[0] = basis ^ self.wit_b[0];
        match solver.ratio_quarter(&self.wit_b, &diff) {
            Some(quarter) => self.wit_a.mul_i_pow(quarter),
            None => Amp::zero(),
        }
    }

    /// Exact probability of `basis`: `2^{−rank}` inside the support,
    /// `0` outside.
    #[must_use]
    pub fn probability(&self, basis: u64) -> f64 {
        self.amplitude_amp(basis).mag2()
    }

    /// Dense amplitude export (support enumerated by Gray code; the
    /// `2^n − 2^rank` off-support entries are exact zeros).
    ///
    /// # Errors
    ///
    /// [`StabilizerError::TooManyQubits`] beyond [`MAX_DENSE_QUBITS`].
    pub fn amplitudes(&self) -> Result<Vec<Cplx>, StabilizerError> {
        if self.n > MAX_DENSE_QUBITS {
            return Err(StabilizerError::TooManyQubits {
                n_qubits: self.n,
                max: MAX_DENSE_QUBITS,
            });
        }
        let solver = self.group_solver();
        let mut out = vec![Cplx::ZERO; 1usize << self.n];
        // Walk the support incrementally: Gray-code step s toggles
        // echelon row trailing_zeros(s), so each step is one row
        // multiply instead of a fresh decomposition.
        let mut cur_b = self.wit_b[0];
        let (mut ax, mut az) = (0u64, 0u64);
        let mut at: i64 = 0;
        out[cur_b as usize] = self.wit_a.to_cplx();
        for s in 1u64..1u64 << solver.rank {
            let j = s.trailing_zeros() as usize;
            at += i64::from(solver.t[j]) + pauli_mul_phase_word(solver.x[j], solver.z[j], ax, az);
            ax ^= solver.x[j];
            az ^= solver.z[j];
            cur_b = self.wit_b[0] ^ ax;
            let q = (at
                + i64::from((ax & az).count_ones())
                + 2 * i64::from((az & self.wit_b[0]).count_ones() & 1))
            .rem_euclid(4) as u32;
            out[cur_b as usize] = self.wit_a.mul_i_pow(q).to_cplx();
        }
        Ok(out)
    }

    /// Draw one basis state: witness XOR a uniform subset of the
    /// support basis (one `bool` per support dimension, independent of
    /// tableau internals, so replaying the RNG replays the sample).
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        assert!(self.n <= MAX_INDEXED_QUBITS);
        let solver = self.group_solver();
        self.sample_with(&solver, rng)
    }

    /// Histogram of `shots` samples. Draws the same RNG sequence as
    /// `shots` individual [`Tableau::sample`] calls.
    #[must_use]
    pub fn sample_counts<R: Rng + ?Sized>(&self, shots: usize, rng: &mut R) -> HashMap<u64, usize> {
        assert!(self.n <= MAX_INDEXED_QUBITS);
        let solver = self.group_solver();
        let mut counts = HashMap::new();
        for _ in 0..shots {
            *counts.entry(self.sample_with(&solver, rng)).or_insert(0) += 1;
        }
        counts
    }

    fn sample_with<R: Rng + ?Sized>(&self, solver: &GroupSolver, rng: &mut R) -> u64 {
        let mut b = self.wit_b[0];
        for j in 0..solver.rank {
            if rng.gen::<bool>() {
                b ^= solver.x[j];
            }
        }
        b
    }

    /// Dimension `k` of the affine support: the state is a uniform
    /// superposition (with phases) over `2^k` basis states.
    #[must_use]
    pub fn support_rank(&self) -> usize {
        self.group_solver().rank
    }

    /// The tracked support basis state, as a `u64` index.
    #[must_use]
    pub fn witness_index(&self) -> u64 {
        assert!(self.n <= MAX_INDEXED_QUBITS);
        self.wit_b[0]
    }

    /// The exact amplitude at [`Tableau::witness_index`].
    #[must_use]
    pub fn witness_amplitude(&self) -> Amp {
        self.wit_a
    }

    /// X-bit `q` of stabilizer generator `i` (`i < n`).
    #[must_use]
    pub fn stabilizer_x(&self, i: usize, q: usize) -> bool {
        self.xbit(self.n + i, q)
    }

    /// Z-bit `q` of stabilizer generator `i`.
    #[must_use]
    pub fn stabilizer_z(&self, i: usize, q: usize) -> bool {
        self.z[(self.n + i) * self.w + q / 64] >> (q % 64) & 1 == 1
    }

    /// Sign bit of stabilizer generator `i` (`true` = −1).
    #[must_use]
    pub fn stabilizer_sign(&self, i: usize) -> bool {
        self.r[self.n + i] == 1
    }

    // ---- internals -----------------------------------------------------

    /// X: rows with a Z component flip sign (X Z X = −Z).
    fn rows_x(&mut self, q: usize) {
        let (wq, m) = (q / 64, 1u64 << (q % 64));
        for i in 0..2 * self.n {
            if self.z[i * self.w + wq] & m != 0 {
                self.r[i] ^= 1;
            }
        }
    }

    /// Z: rows with an X component flip sign.
    fn rows_z(&mut self, q: usize) {
        let (wq, m) = (q / 64, 1u64 << (q % 64));
        for i in 0..2 * self.n {
            if self.x[i * self.w + wq] & m != 0 {
                self.r[i] ^= 1;
            }
        }
    }

    /// Y: rows with exactly one of X/Z flip sign.
    fn rows_y(&mut self, q: usize) {
        let (wq, m) = (q / 64, 1u64 << (q % 64));
        for i in 0..2 * self.n {
            if (self.x[i * self.w + wq] & m != 0) != (self.z[i * self.w + wq] & m != 0) {
                self.r[i] ^= 1;
            }
        }
    }

    /// S: X → Y, Y → −X (r ^= x∧z; z ^= x).
    fn rows_s(&mut self, q: usize) {
        let (wq, m) = (q / 64, 1u64 << (q % 64));
        for i in 0..2 * self.n {
            let xb = self.x[i * self.w + wq] & m != 0;
            let zb = self.z[i * self.w + wq] & m != 0;
            if xb && zb {
                self.r[i] ^= 1;
            }
            if xb {
                self.z[i * self.w + wq] ^= m;
            }
        }
    }

    /// S†: X → −Y, Y → X (r ^= x∧¬z; z ^= x).
    fn rows_sdg(&mut self, q: usize) {
        let (wq, m) = (q / 64, 1u64 << (q % 64));
        for i in 0..2 * self.n {
            let xb = self.x[i * self.w + wq] & m != 0;
            let zb = self.z[i * self.w + wq] & m != 0;
            if xb && !zb {
                self.r[i] ^= 1;
            }
            if xb {
                self.z[i * self.w + wq] ^= m;
            }
        }
    }

    fn xbit(&self, row: usize, col: usize) -> bool {
        self.x[row * self.w + col / 64] >> (col % 64) & 1 == 1
    }

    fn wit_bit(&self, q: usize) -> bool {
        self.wit_b[q / 64] >> (q % 64) & 1 == 1
    }

    fn toggle_wit_bit(&mut self, q: usize) {
        self.wit_b[q / 64] ^= 1 << (q % 64);
    }

    fn set_wit_bit(&mut self, q: usize, v: bool) {
        if self.wit_bit(q) != v {
            self.toggle_wit_bit(q);
        }
    }

    /// AG rowsum: row `h` ← row `i` · row `h`, with the ±1 sign
    /// resolved through exact mod-4 phase accumulation.
    fn rowsum(&mut self, h: usize, i: usize) {
        let w = self.w;
        let mut g = 2 * (i64::from(self.r[h]) + i64::from(self.r[i]));
        for k in 0..w {
            g += pauli_mul_phase_word(
                self.x[i * w + k],
                self.z[i * w + k],
                self.x[h * w + k],
                self.z[h * w + k],
            );
        }
        let g = g.rem_euclid(4);
        // Destabilizer rows (h < n) may anticommute with the source
        // row; their phases are don't-care in CHP, so only stabilizer
        // targets must land on ±1.
        debug_assert!(h < self.n || g % 2 == 0, "stabilizer rowsum is ±1");
        self.r[h] = u8::from(g >= 2);
        for k in 0..w {
            self.x[h * w + k] ^= self.x[i * w + k];
            self.z[h * w + k] ^= self.z[i * w + k];
        }
    }

    /// Outcome of a measurement fully determined by the stabilizers:
    /// the product of stabilizer rows selected by destabilizer X-bits
    /// at `q` equals `±Z_q`; the sign is the outcome.
    fn deterministic_outcome(&self, q: usize) -> bool {
        let (n, w) = (self.n, self.w);
        let (wq, m) = (q / 64, 1u64 << (q % 64));
        let mut ax = vec![0u64; w];
        let mut az = vec![0u64; w];
        let mut at: i64 = 0;
        for i in 0..n {
            if self.x[i * w + wq] & m != 0 {
                let s = n + i;
                at += 2 * i64::from(self.r[s]);
                for k in 0..w {
                    at += pauli_mul_phase_word(self.x[s * w + k], self.z[s * w + k], ax[k], az[k]);
                    ax[k] ^= self.x[s * w + k];
                    az[k] ^= self.z[s * w + k];
                }
            }
        }
        debug_assert!(ax.iter().all(|&word| word == 0));
        let at = at.rem_euclid(4);
        debug_assert_eq!(at % 2, 0);
        at == 2
    }

    /// Reduce copies of the stabilizer rows to reduced row echelon
    /// form over the X-part, phases tracked exactly.
    fn group_solver(&self) -> GroupSolver {
        let (n, w) = (self.n, self.w);
        let mut s = GroupSolver {
            w,
            rank: 0,
            x: self.x[n * w..2 * n * w].to_vec(),
            z: self.z[n * w..2 * n * w].to_vec(),
            t: self.r[n..2 * n].iter().map(|&b| 2 * b).collect(),
            pivots: Vec::new(),
        };
        let mut row = 0;
        for col in 0..n {
            let Some(p) = (row..n).find(|&i| s.xbit(i, col)) else {
                continue;
            };
            s.swap_rows(row, p);
            for i in 0..n {
                if i != row && s.xbit(i, col) {
                    s.rowmul(i, row);
                }
            }
            s.pivots.push(col);
            row += 1;
        }
        s.rank = row;
        debug_assert_eq!(
            self.wit_a.e,
            -(s.rank as i32),
            "normalized stabilizer amplitude is 2^{{-rank/2}}"
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_circuit::generators;
    use approxdd_circuit::{Circuit, Control, Gate};
    use approxdd_statevector::State;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_matches_statevector(circuit: &Circuit) {
        let t = Tableau::run(circuit).unwrap();
        let mut sv = State::zero(circuit.n_qubits());
        sv.run(circuit).unwrap();
        let got = t.amplitudes().unwrap();
        let want = sv.amplitudes();
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (g.re - w.re).abs() < 1e-12 && (g.im - w.im).abs() < 1e-12,
                "{}: amplitude {i}: tableau {g:?} vs statevector {w:?}",
                circuit.name()
            );
        }
    }

    #[test]
    fn single_gate_states_match_statevector_exactly() {
        for gate in [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::Sx,
            Gate::Sxdg,
            Gate::Sy,
            Gate::Sydg,
        ] {
            for pre in [None, Some(Gate::H), Some(Gate::X), Some(Gate::Sx)] {
                let mut c = Circuit::new(1, "single");
                if let Some(p) = pre {
                    c.gate(p, 0);
                }
                c.gate(gate, 0);
                assert_matches_statevector(&c);
            }
        }
    }

    #[test]
    fn two_qubit_gates_match_statevector_exactly() {
        for (name, builder) in [("cx", 0usize), ("cz", 1), ("cy", 2), ("ncx", 3), ("ncz", 4)] {
            for pre in 0..4u32 {
                let mut c = Circuit::new(2, name);
                if pre & 1 != 0 {
                    c.h(0);
                }
                if pre & 2 != 0 {
                    c.gate(Gate::Sy, 1);
                }
                let ctl = |gate, positive: bool| Operation::Gate {
                    gate,
                    target: 1,
                    controls: vec![if positive {
                        Control::positive(0)
                    } else {
                        Control::negative(0)
                    }],
                };
                match builder {
                    0 => c.cx(0, 1),
                    1 => c.cz(0, 1),
                    2 => c.push(ctl(Gate::Y, true)),
                    3 => c.push(ctl(Gate::X, false)),
                    _ => c.push(ctl(Gate::Z, false)),
                };
                assert_matches_statevector(&c);
            }
        }
    }

    #[test]
    fn random_clifford_circuits_match_statevector_exactly() {
        for n in 1..=6 {
            for seed in 0..8 {
                let c = generators::random_clifford(n, 12, seed);
                assert_matches_statevector(&c);
            }
        }
    }

    #[test]
    fn ghz_at_forty_qubits_is_exact() {
        let t = Tableau::run(&generators::ghz(40)).unwrap();
        let ones = (1u64 << 40) - 1;
        assert_eq!(t.support_rank(), 1);
        let a0 = t.amplitude(0);
        let a1 = t.amplitude(ones);
        let expected = (0.5f64).sqrt();
        assert!((a0.re - expected).abs() < 1e-12 && a0.im.abs() < 1e-15);
        assert!((a1.re - expected).abs() < 1e-12 && a1.im.abs() < 1e-15);
        // Off-support amplitudes are exact zeros, not small floats.
        assert_eq!(t.amplitude(1), Cplx::ZERO);
        assert_eq!(t.probability(ones - 1), 0.0);
    }

    #[test]
    fn probabilities_sum_to_one_over_the_support() {
        for seed in 0..6 {
            let c = generators::random_clifford(8, 10, seed);
            let t = Tableau::run(&c).unwrap();
            let k = t.support_rank();
            let p = t.probability(t.witness_index());
            assert!((p - 0.5f64.powi(k as i32)).abs() < 1e-15);
            let total: f64 = (0..1u64 << 8).map(|b| t.probability(b)).sum();
            assert!((total - 1.0).abs() < 1e-12, "seed {seed}: total {total}");
        }
    }

    #[test]
    fn measurement_marginals_match_statevector() {
        for seed in 0..10 {
            let c = generators::random_clifford(5, 8, seed);
            let mut sv = State::zero(5);
            sv.run(&c).unwrap();
            for q in 0..5 {
                let p1: f64 = (0..1u64 << 5)
                    .filter(|b| b >> q & 1 == 1)
                    .map(|b| sv.probability(b))
                    .sum();
                let mut t = Tableau::run(&c).unwrap();
                let mut rng = StdRng::seed_from_u64(seed ^ (q as u64) << 32);
                let m = t.measure(q, &mut rng);
                if m.deterministic {
                    let expect = if m.outcome { 1.0 } else { 0.0 };
                    assert!((p1 - expect).abs() < 1e-12, "seed {seed} q{q}");
                } else {
                    assert!((p1 - 0.5).abs() < 1e-12, "seed {seed} q{q}: p1 = {p1}");
                }
            }
        }
    }

    #[test]
    fn post_measurement_state_matches_projected_statevector() {
        for seed in 0..10 {
            let c = generators::random_clifford(4, 8, seed);
            let mut t = Tableau::run(&c).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let m = t.measure(1, &mut rng);
            let mut sv = State::zero(4);
            sv.run(&c).unwrap();
            // Project and renormalize the dense state by hand.
            let mut dense: Vec<Cplx> = sv.amplitudes().to_vec();
            let mut norm2 = 0.0;
            for (b, a) in dense.iter_mut().enumerate() {
                if (b >> 1 & 1 == 1) != m.outcome {
                    *a = Cplx::ZERO;
                }
                norm2 += a.mag2();
            }
            let scale = 1.0 / norm2.sqrt();
            let got = t.amplitudes().unwrap();
            for (b, want) in dense.iter().enumerate() {
                let w = *want * scale;
                let g = got[b];
                assert!(
                    (g.re - w.re).abs() < 1e-12 && (g.im - w.im).abs() < 1e-12,
                    "seed {seed} basis {b}: {g:?} vs {w:?}"
                );
            }
            // Re-measuring the same qubit is now deterministic.
            let m2 = t.measure(1, &mut rng);
            assert!(m2.deterministic);
            assert_eq!(m2.outcome, m.outcome);
        }
    }

    #[test]
    fn sampling_stays_inside_the_support_and_replays() {
        let c = generators::random_clifford(9, 10, 3);
        let t = Tableau::run(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let counts = t.sample_counts(256, &mut rng);
        for &b in counts.keys() {
            assert!(t.probability(b) > 0.0, "sampled {b} off-support");
        }
        // Same seed, per-shot draws: identical sequence.
        let mut rng2 = StdRng::seed_from_u64(42);
        let mut replay = HashMap::new();
        for _ in 0..256 {
            *replay.entry(t.sample(&mut rng2)).or_insert(0) += 1;
        }
        assert_eq!(counts, replay);
    }

    #[test]
    fn ghz_samples_are_all_zeros_or_all_ones() {
        let t = Tableau::run(&generators::ghz(24)).unwrap();
        let ones = (1u64 << 24) - 1;
        let mut rng = StdRng::seed_from_u64(7);
        let counts = t.sample_counts(200, &mut rng);
        assert!(counts.keys().all(|&b| b == 0 || b == ones));
        assert_eq!(counts.values().sum::<usize>(), 200);
        assert!(counts.len() == 2, "200 shots virtually surely hit both");
    }

    #[test]
    fn non_clifford_gate_is_rejected_with_its_index() {
        let mut c = Circuit::new(2, "t-gate");
        c.h(0).cx(0, 1).t(1);
        assert_eq!(
            Tableau::run(&c).err(),
            Some(StabilizerError::NonClifford { index: 2 })
        );
    }

    #[test]
    fn markers_are_skipped() {
        let mut c = Circuit::new(2, "markers");
        c.h(0);
        c.barrier();
        c.approx_point();
        c.cx(0, 1);
        let t = Tableau::run(&c).unwrap();
        assert_eq!(t.support_rank(), 1);
        assert!((t.probability(0b11) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn dense_export_caps_at_max_dense_qubits() {
        let t = Tableau::run(&generators::ghz(30)).unwrap();
        assert!(matches!(
            t.amplitudes(),
            Err(StabilizerError::TooManyQubits { n_qubits: 30, .. })
        ));
    }
}

//! Linear cross-entropy benchmarking (XEB) — the fidelity estimator
//! used for the quantum-supremacy experiments the paper benchmarks
//! against (\[4\], \[14\]): given the *ideal* output probabilities of a
//! circuit and a set of measured bitstrings, the linear XEB statistic
//!
//! ```text
//! F_XEB = D · mean(p_ideal(x_i)) − 1,     D = 2^n
//! ```
//!
//! estimates the depolarizing fidelity of the device (or, here, of an
//! approximate simulation) producing the samples: 1 for perfect
//! sampling from a Porter–Thomas distribution, 0 for uniform noise.

use crate::State;

/// Linear XEB statistic from ideal probabilities and sampled outcomes.
///
/// # Panics
///
/// Panics if `ideal_probs` is empty or `samples` is empty, or if a
/// sample indexes outside the distribution.
#[must_use]
pub fn linear_xeb(ideal_probs: &[f64], samples: &[u64]) -> f64 {
    assert!(!ideal_probs.is_empty() && !samples.is_empty());
    let d = ideal_probs.len() as f64;
    let mean: f64 = samples
        .iter()
        .map(|&s| ideal_probs[usize::try_from(s).expect("sample fits usize")])
        .sum::<f64>()
        / samples.len() as f64;
    d * mean - 1.0
}

/// Linear XEB of samples against the ideal distribution of `state`.
#[must_use]
pub fn xeb_against_state(state: &State, samples: &[u64]) -> f64 {
    let probs: Vec<f64> = state.amplitudes().iter().map(|a| a.mag2()).collect();
    linear_xeb(&probs, samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_circuit::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn supremacy_state() -> State {
        let mut s = State::zero(10);
        s.run(&generators::supremacy(2, 5, 12, 3)).unwrap();
        s
    }

    /// The expected XEB of ideal sampling: `D·Σp² − 1` (exactly 1 only
    /// for a perfect Porter–Thomas distribution).
    fn ideal_xeb(s: &State) -> f64 {
        let d = s.amplitudes().len() as f64;
        let sum_p2: f64 = s.amplitudes().iter().map(|a| a.mag2().powi(2)).sum();
        d * sum_p2 - 1.0
    }

    #[test]
    fn perfect_sampling_matches_ideal_expectation() {
        let s = supremacy_state();
        let want = ideal_xeb(&s);
        assert!(want > 0.5, "circuit must scramble: {want}");
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<u64> = (0..6000).map(|_| s.sample(&mut rng)).collect();
        let xeb = xeb_against_state(&s, &samples);
        assert!((xeb - want).abs() < 0.25, "xeb {xeb} vs ideal {want}");
    }

    #[test]
    fn uniform_noise_scores_near_zero() {
        let s = supremacy_state();
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<u64> = (0..4000).map(|_| rng.gen_range(0..1024)).collect();
        let xeb = xeb_against_state(&s, &samples);
        assert!(xeb.abs() < 0.15, "xeb {xeb}");
    }

    #[test]
    fn xeb_tracks_partial_fidelity() {
        // Mix ideal samples with uniform noise at ratio q: expected
        // XEB ≈ q · ideal_xeb (the depolarizing model behind XEB).
        let s = supremacy_state();
        let mut rng = StdRng::seed_from_u64(3);
        let q = 0.5;
        let want = q * ideal_xeb(&s);
        let samples: Vec<u64> = (0..8000)
            .map(|_| {
                if rng.gen_bool(q) {
                    s.sample(&mut rng)
                } else {
                    rng.gen_range(0..1024)
                }
            })
            .collect();
        let xeb = xeb_against_state(&s, &samples);
        assert!((xeb - want).abs() < 0.2, "xeb {xeb} vs expected {want}");
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn empty_samples_panic() {
        let _ = linear_xeb(&[0.5, 0.5], &[]);
    }
}

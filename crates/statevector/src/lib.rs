//! Dense state-vector simulation — the "naive array" baseline the paper
//! contrasts decision diagrams against (Section II-A / III), and the
//! exact oracle this workspace's tests validate the DD engine with.
//!
//! The representation is the full `2^n` amplitude vector, so memory is
//! exponential regardless of state structure; practical up to ~24 qubits.
//!
//! # Examples
//!
//! ```
//! use approxdd_circuit::generators;
//! use approxdd_statevector::State;
//!
//! let mut s = State::zero(3);
//! s.run(&generators::ghz(3)).unwrap();
//! assert!((s.probability(0b000) - 0.5).abs() < 1e-12);
//! assert!((s.probability(0b111) - 0.5).abs() < 1e-12);
//! ```

pub mod density;
pub mod xeb;

pub use density::{DensityMatrix, KrausOperator, MAX_DENSITY_QUBITS};

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use approxdd_circuit::{Circuit, Operation};
use approxdd_complex::Cplx;
use rand::Rng;

/// Errors from dense simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StateError {
    /// Register too wide for a dense vector on this machine.
    TooManyQubits {
        /// Requested width.
        n_qubits: usize,
        /// Supported maximum.
        max: usize,
    },
    /// Operation qubits out of range or overlapping.
    BadOperation {
        /// Index of the operation within the circuit (`usize::MAX` for
        /// direct calls).
        op_index: usize,
    },
    /// Circuit width does not match the state.
    WidthMismatch {
        /// State width.
        state: usize,
        /// Circuit width.
        circuit: usize,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::TooManyQubits { n_qubits, max } => {
                write!(f, "{n_qubits} qubits exceed dense maximum of {max}")
            }
            StateError::BadOperation { op_index } => {
                write!(f, "malformed operation at index {op_index}")
            }
            StateError::WidthMismatch { state, circuit } => {
                write!(f, "state has {state} qubits but circuit has {circuit}")
            }
        }
    }
}

impl Error for StateError {}

/// Maximum dense register width (2^26 amplitudes = 1 GiB of `Cplx`).
pub const MAX_DENSE_QUBITS: usize = 26;

/// A dense quantum state.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    n: usize,
    amps: Vec<Cplx>,
}

impl State {
    /// The all-zeros state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > MAX_DENSE_QUBITS`.
    #[must_use]
    pub fn zero(n_qubits: usize) -> Self {
        Self::basis(n_qubits, 0)
    }

    /// The computational basis state `|idx⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > MAX_DENSE_QUBITS` or `idx` out of range.
    #[must_use]
    pub fn basis(n_qubits: usize, idx: u64) -> Self {
        assert!(
            n_qubits <= MAX_DENSE_QUBITS,
            "dense state limited to {MAX_DENSE_QUBITS} qubits"
        );
        assert!((idx as usize) < (1usize << n_qubits));
        let mut amps = vec![Cplx::ZERO; 1 << n_qubits];
        amps[idx as usize] = Cplx::ONE;
        Self { n: n_qubits, amps }
    }

    /// Builds a state from raw amplitudes (length must be a power of
    /// two). The vector is used as-is; callers wanting a unit state
    /// should normalize first.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or exceeds the dense
    /// maximum.
    #[must_use]
    pub fn from_amplitudes(amps: Vec<Cplx>) -> Self {
        assert!(amps.len().is_power_of_two() && !amps.is_empty());
        let n = amps.len().trailing_zeros() as usize;
        assert!(n <= MAX_DENSE_QUBITS);
        Self { n, amps }
    }

    /// Register width.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The amplitude slice (little-endian basis indexing: bit `q` of the
    /// index is qubit `q`).
    #[must_use]
    pub fn amplitudes(&self) -> &[Cplx] {
        &self.amps
    }

    /// Consumes the state, returning its amplitude vector (the
    /// allocation-reuse path of the density-matrix column kernels).
    #[must_use]
    pub fn into_amplitudes(self) -> Vec<Cplx> {
        self.amps
    }

    /// Born-rule probability of basis state `idx`.
    #[must_use]
    pub fn probability(&self, idx: u64) -> f64 {
        self.amps[idx as usize].mag2()
    }

    /// ℓ2 norm of the state.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.mag2()).sum::<f64>().sqrt()
    }

    /// Hermitian inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn inner_product(&self, other: &State) -> Cplx {
        assert_eq!(self.n, other.n);
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|²` (Definition 1 of the paper).
    #[must_use]
    pub fn fidelity(&self, other: &State) -> f64 {
        self.inner_product(other).mag2()
    }

    /// Applies one circuit operation in place.
    ///
    /// # Errors
    ///
    /// [`StateError::BadOperation`] on out-of-range or overlapping
    /// qubits.
    pub fn apply(&mut self, op: &Operation) -> Result<(), StateError> {
        self.apply_indexed(op, usize::MAX)
    }

    fn apply_indexed(&mut self, op: &Operation, op_index: usize) -> Result<(), StateError> {
        match op {
            Operation::Gate {
                gate,
                target,
                controls,
            } => {
                let t = *target;
                if t >= self.n {
                    return Err(StateError::BadOperation { op_index });
                }
                let mut cmask = 0usize;
                let mut cval = 0usize;
                for c in controls {
                    if c.qubit >= self.n || c.qubit == t || cmask >> c.qubit & 1 == 1 {
                        return Err(StateError::BadOperation { op_index });
                    }
                    cmask |= 1 << c.qubit;
                    if c.positive {
                        cval |= 1 << c.qubit;
                    }
                }
                let m = gate.matrix();
                let tbit = 1usize << t;
                for i in 0..self.amps.len() {
                    // Visit each amplitude pair once via its |0>-member,
                    // and only when the controls are satisfied.
                    if i & tbit != 0 || (i & cmask) != cval {
                        continue;
                    }
                    let j = i | tbit;
                    let a0 = self.amps[i];
                    let a1 = self.amps[j];
                    self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                    self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
                }
                Ok(())
            }
            Operation::Permutation {
                lo,
                k,
                perm,
                controls,
                ..
            } => {
                let (lo, k) = (*lo, *k);
                if lo + k > self.n || perm.len() != 1 << k {
                    return Err(StateError::BadOperation { op_index });
                }
                let mut cmask = 0usize;
                let mut cval = 0usize;
                for c in controls {
                    if c.qubit >= self.n || (c.qubit >= lo && c.qubit < lo + k) {
                        return Err(StateError::BadOperation { op_index });
                    }
                    cmask |= 1 << c.qubit;
                    if c.positive {
                        cval |= 1 << c.qubit;
                    }
                }
                let block_mask = ((1usize << k) - 1) << lo;
                // perm is a bijection on control-satisfied indices, so
                // every target index is written exactly once.
                let mut fresh = vec![Cplx::ZERO; self.amps.len()];
                for (i, amp) in self.amps.iter().enumerate() {
                    let j = if (i & cmask) == cval {
                        let block = (i & block_mask) >> lo;
                        (i & !block_mask) | (perm[block] << lo)
                    } else {
                        i
                    };
                    fresh[j] = *amp;
                }
                self.amps = fresh;
                Ok(())
            }
            Operation::DenseBlock {
                lo,
                k,
                matrix,
                controls,
                ..
            } => {
                let (lo, k) = (*lo, *k);
                let dim = 1usize << k;
                if lo + k > self.n || matrix.len() != dim * dim {
                    return Err(StateError::BadOperation { op_index });
                }
                let mut cmask = 0usize;
                let mut cval = 0usize;
                for c in controls {
                    if c.qubit >= self.n || (c.qubit >= lo && c.qubit < lo + k) {
                        return Err(StateError::BadOperation { op_index });
                    }
                    cmask |= 1 << c.qubit;
                    if c.positive {
                        cval |= 1 << c.qubit;
                    }
                }
                let block_mask = (dim - 1) << lo;
                let mut fresh = self.amps.clone();
                // Iterate over block bases (indices with block bits zero
                // and controls satisfied) and apply the dense matrix.
                for base in 0..self.amps.len() {
                    if base & block_mask != 0 || (base & cmask) != cval {
                        continue;
                    }
                    let mut input = vec![Cplx::ZERO; dim];
                    for (b, slot) in input.iter_mut().enumerate() {
                        *slot = self.amps[base | (b << lo)];
                    }
                    for r in 0..dim {
                        let mut acc = Cplx::ZERO;
                        for (c, inp) in input.iter().enumerate() {
                            acc += matrix[r * dim + c] * *inp;
                        }
                        fresh[base | (r << lo)] = acc;
                    }
                }
                self.amps = fresh;
                Ok(())
            }
            Operation::ApproxPoint | Operation::Barrier => Ok(()),
        }
    }

    /// Runs an entire circuit.
    ///
    /// # Errors
    ///
    /// [`StateError::WidthMismatch`] or the first per-operation error.
    pub fn run(&mut self, circuit: &Circuit) -> Result<(), StateError> {
        if circuit.n_qubits() != self.n {
            return Err(StateError::WidthMismatch {
                state: self.n,
                circuit: circuit.n_qubits(),
            });
        }
        for (i, op) in circuit.ops().iter().enumerate() {
            self.apply_indexed(op, i)?;
        }
        Ok(())
    }

    /// Draws one measurement outcome.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut r = rng.gen::<f64>() * self.norm().powi(2);
        for (i, a) in self.amps.iter().enumerate() {
            r -= a.mag2();
            if r <= 0.0 {
                return i as u64;
            }
        }
        (self.amps.len() - 1) as u64
    }

    /// Draws `shots` outcomes into a histogram.
    #[must_use]
    pub fn sample_counts<R: Rng + ?Sized>(&self, shots: usize, rng: &mut R) -> HashMap<u64, usize> {
        let mut counts = HashMap::new();
        for _ in 0..shots {
            *counts.entry(self.sample(rng)).or_insert(0) += 1;
        }
        counts
    }

    /// Normalizes the state to unit norm (no-op on the zero vector).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for a in &mut self.amps {
                *a = *a / n;
            }
        }
    }

    /// Expectation value of a diagonal (computational-basis) observable
    /// `O = Σ f(i) |i⟩⟨i|`: `Σ_i |a_i|² · f(i)`.
    #[must_use]
    pub fn expectation_diagonal(&self, f: &dyn Fn(u64) -> f64) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .map(|(i, a)| a.mag2() * f(i as u64))
            .sum()
    }
}

/// Runs `circuit` from `|0…0⟩` on a fresh dense state.
///
/// # Errors
///
/// [`StateError::TooManyQubits`] beyond [`MAX_DENSE_QUBITS`], or the
/// first per-operation error.
pub fn run_circuit(circuit: &Circuit) -> Result<State, StateError> {
    if circuit.n_qubits() > MAX_DENSE_QUBITS {
        return Err(StateError::TooManyQubits {
            n_qubits: circuit.n_qubits(),
            max: MAX_DENSE_QUBITS,
        });
    }
    let mut state = State::zero(circuit.n_qubits());
    state.run(circuit)?;
    Ok(state)
}

/// Runs a batch of circuits, one fresh dense state each — the
/// statevector side of the `approxdd-backend` batched-execution API.
///
/// # Errors
///
/// The first failing circuit's error; earlier results are discarded.
pub fn run_batch<'a, I>(circuits: I) -> Result<Vec<State>, StateError>
where
    I: IntoIterator<Item = &'a Circuit>,
{
    circuits.into_iter().map(run_circuit).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_circuit::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ghz_probabilities() {
        let mut s = State::zero(4);
        s.run(&generators::ghz(4)).unwrap();
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b1111) - 0.5).abs() < 1e-12);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn controlled_gate_respects_polarity() {
        use approxdd_circuit::{Control, Gate, Operation};
        let mut s = State::basis(2, 0b00);
        // X on q0 negatively controlled by q1 -> fires (q1 = 0).
        s.apply(&Operation::Gate {
            gate: Gate::X,
            target: 0,
            controls: vec![Control::negative(1)],
        })
        .unwrap();
        assert!((s.probability(0b01) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permutation_moves_amplitudes() {
        use approxdd_circuit::Operation;
        use std::sync::Arc;
        let mut s = State::basis(3, 0b010);
        // Cyclic shift on low 2 qubits: |2> -> |3>.
        s.apply(&Operation::Permutation {
            lo: 0,
            k: 2,
            perm: Arc::new(vec![1, 2, 3, 0]),
            controls: vec![],
            label: "cycle".into(),
        })
        .unwrap();
        assert!((s.probability(0b011) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn controlled_permutation_only_fires_when_satisfied() {
        use approxdd_circuit::{Control, Operation};
        use std::sync::Arc;
        let op = Operation::Permutation {
            lo: 0,
            k: 1,
            perm: Arc::new(vec![1, 0]),
            controls: vec![Control::positive(1)],
            label: "cx".into(),
        };
        let mut s = State::basis(2, 0b00);
        s.apply(&op).unwrap();
        assert!((s.probability(0b00) - 1.0).abs() < 1e-12, "control off");
        let mut s = State::basis(2, 0b10);
        s.apply(&op).unwrap();
        assert!((s.probability(0b11) - 1.0).abs() < 1e-12, "control on");
    }

    #[test]
    fn qft_of_zero_is_uniform() {
        let n = 5;
        let mut s = State::zero(n);
        s.run(&generators::qft(n)).unwrap();
        let want = 1.0 / (1u64 << n) as f64;
        for i in 0..(1u64 << n) {
            assert!((s.probability(i) - want).abs() < 1e-10, "idx {i}");
        }
    }

    #[test]
    fn qft_inverse_qft_is_identity() {
        let n = 4;
        let mut s = State::basis(n, 11);
        s.run(&generators::qft(n)).unwrap();
        s.run(&generators::inverse_qft(n, false)).unwrap();
        assert!((s.probability(11) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn grover_amplifies_marked_state() {
        let n = 5;
        let marked = 0b10110;
        let mut s = State::zero(n);
        s.run(&generators::grover(n, marked, None)).unwrap();
        let p = s.probability(marked);
        assert!(p > 0.85, "marked probability {p}");
    }

    #[test]
    fn bernstein_vazirani_recovers_secret() {
        let n = 7;
        let secret = 0b1011001;
        let mut s = State::zero(n);
        s.run(&generators::bernstein_vazirani(n, secret)).unwrap();
        assert!((s.probability(secret) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn w_state_has_uniform_one_hot_support() {
        let n = 4;
        let mut s = State::zero(n);
        s.run(&generators::w_state(n)).unwrap();
        for q in 0..n {
            let p = s.probability(1 << q);
            assert!((p - 1.0 / n as f64).abs() < 1e-10, "qubit {q}: {p}");
        }
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut s = State::zero(1);
        s.run(&generators::ghz(1)).unwrap(); // single H
        let mut rng = StdRng::seed_from_u64(5);
        let counts = s.sample_counts(2000, &mut rng);
        let ones = *counts.get(&1).unwrap_or(&0) as f64;
        assert!((ones / 2000.0 - 0.5).abs() < 0.06);
    }

    #[test]
    fn run_circuit_and_batch_helpers_agree_with_manual_runs() {
        let ghz = generators::ghz(3);
        let qft = generators::qft(3);
        let states = run_batch([&ghz, &qft]).unwrap();
        assert_eq!(states.len(), 2);
        let mut manual = State::zero(3);
        manual.run(&ghz).unwrap();
        assert_eq!(states[0], manual);
        assert!((states[1].norm() - 1.0).abs() < 1e-12);
        let single = run_circuit(&ghz).unwrap();
        assert_eq!(single, states[0]);
    }

    #[test]
    fn diagonal_expectation_of_ghz_counts_excited_qubits() {
        let mut s = State::zero(4);
        s.run(&generators::ghz(4)).unwrap();
        // Observable: number of 1-bits. GHZ: (0 + 4) / 2 = 2.
        let value = s.expectation_diagonal(&|i| f64::from(i.count_ones()));
        assert!((value - 2.0).abs() < 1e-12, "{value}");
    }

    #[test]
    fn width_mismatch_is_reported() {
        let mut s = State::zero(2);
        assert!(matches!(
            s.run(&generators::ghz(3)),
            Err(StateError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn unitarity_preserves_norm_on_random_circuits() {
        for seed in 0..5 {
            let c = generators::random_circuit(6, 8, seed);
            let mut s = State::zero(6);
            s.run(&c).unwrap();
            assert!((s.norm() - 1.0).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn supremacy_circuit_spreads_mass() {
        let c = generators::supremacy(2, 3, 10, 7);
        let mut s = State::zero(6);
        s.run(&c).unwrap();
        assert!((s.norm() - 1.0).abs() < 1e-9);
        // Porter-Thomas-ish: no basis state should dominate.
        let max_p = (0..64).map(|i| s.probability(i)).fold(0.0, f64::max);
        assert!(max_p < 0.5, "max probability {max_p}");
    }
}

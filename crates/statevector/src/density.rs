//! Dense density-matrix simulation — the exact baseline for noisy
//! circuits.
//!
//! A [`DensityMatrix`] holds the full `2ⁿ × 2ⁿ` operator `ρ`, applies
//! circuit operations by conjugation (`ρ → U ρ U†`, reusing the dense
//! [`State`] gate kernels column-by-column) and applies noise channels
//! in Kraus form (`ρ → Σᵢ Kᵢ ρ Kᵢ†`, each `Kᵢ` a product of
//! single-qubit factors). This is quadratically more expensive than a
//! state vector, so the width cap is deliberately small
//! ([`MAX_DENSITY_QUBITS`]): it exists to *validate* the stochastic
//! trajectory sampler of `approxdd-noise`, not to scale.

use approxdd_circuit::{Circuit, Operation};
use approxdd_complex::Cplx;

use crate::{State, StateError};

/// Maximum density-matrix width (2²ⁿ entries; 10 qubits = 16 MiB).
pub const MAX_DENSITY_QUBITS: usize = 10;

/// One Kraus operator expressed as a product of single-qubit factors:
/// `(qubit, 2×2 row-major matrix)` pairs. An empty list is the
/// identity. Scale factors (e.g. `√q` selection weights) should be
/// folded into one of the matrices.
pub type KrausOperator = Vec<(usize, [[Cplx; 2]; 2])>;

/// A dense density matrix `ρ`, row-major (`elems[r * dim + c] = ⟨r|ρ|c⟩`,
/// little-endian basis indexing like [`State`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n: usize,
    elems: Vec<Cplx>,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > MAX_DENSITY_QUBITS`.
    #[must_use]
    pub fn zero(n_qubits: usize) -> Self {
        assert!(
            n_qubits <= MAX_DENSITY_QUBITS,
            "density matrix limited to {MAX_DENSITY_QUBITS} qubits"
        );
        let dim = 1usize << n_qubits;
        let mut elems = vec![Cplx::ZERO; dim * dim];
        elems[0] = Cplx::ONE;
        Self { n: n_qubits, elems }
    }

    /// The pure density matrix `|ψ⟩⟨ψ|` of a state vector.
    ///
    /// # Panics
    ///
    /// Panics if the state exceeds [`MAX_DENSITY_QUBITS`].
    #[must_use]
    pub fn pure(state: &State) -> Self {
        assert!(state.n_qubits() <= MAX_DENSITY_QUBITS);
        let amps = state.amplitudes();
        let dim = amps.len();
        let mut elems = vec![Cplx::ZERO; dim * dim];
        for (r, a) in amps.iter().enumerate() {
            for (c, b) in amps.iter().enumerate() {
                elems[r * dim + c] = *a * b.conj();
            }
        }
        Self {
            n: state.n_qubits(),
            elems,
        }
    }

    /// Register width.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Hilbert-space dimension `2ⁿ`.
    #[must_use]
    pub fn dim(&self) -> usize {
        1 << self.n
    }

    /// The raw row-major entries.
    #[must_use]
    pub fn elements(&self) -> &[Cplx] {
        &self.elems
    }

    /// `tr ρ` (1 for any trace-preserving evolution of a unit state).
    #[must_use]
    pub fn trace(&self) -> f64 {
        let dim = self.dim();
        (0..dim).map(|i| self.elems[i * dim + i].re).sum()
    }

    /// `tr ρ²` — 1 for pure states, `1/2ⁿ` for the maximally mixed
    /// state. Decays as noise mixes the state.
    #[must_use]
    pub fn purity(&self) -> f64 {
        // tr ρ² = Σ_{r,c} ρ[r,c]·ρ[c,r] = Σ |ρ[r,c]|² for Hermitian ρ.
        self.elems.iter().map(|e| e.mag2()).sum()
    }

    /// The diagonal `⟨i|ρ|i⟩` — the exact measurement distribution.
    #[must_use]
    pub fn diagonal(&self) -> Vec<f64> {
        let dim = self.dim();
        (0..dim).map(|i| self.elems[i * dim + i].re).collect()
    }

    /// Expectation value of the diagonal observable `Σ f(i) |i⟩⟨i|`.
    #[must_use]
    pub fn expectation_diagonal(&self, f: &dyn Fn(u64) -> f64) -> f64 {
        self.diagonal()
            .iter()
            .enumerate()
            .map(|(i, p)| p * f(i as u64))
            .sum()
    }

    /// Fidelity against a pure state: `⟨ψ|ρ|ψ⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn fidelity_pure(&self, state: &State) -> f64 {
        assert_eq!(state.n_qubits(), self.n);
        let dim = self.dim();
        let amps = state.amplitudes();
        let mut acc = Cplx::ZERO;
        for r in 0..dim {
            for c in 0..dim {
                acc += amps[r].conj() * self.elems[r * dim + c] * amps[c];
            }
        }
        acc.re
    }

    /// Conjugate transpose in place (`ρ → ρ†`; a no-op on Hermitian
    /// matrices, used internally to reuse left-multiplication kernels
    /// for right multiplication).
    fn adjoint_in_place(&mut self) {
        let dim = self.dim();
        for r in 0..dim {
            self.elems[r * dim + r] = self.elems[r * dim + r].conj();
            for c in r + 1..dim {
                let a = self.elems[r * dim + c].conj();
                let b = self.elems[c * dim + r].conj();
                self.elems[r * dim + c] = b;
                self.elems[c * dim + r] = a;
            }
        }
    }

    /// Left-multiplies by a circuit operation: `ρ → U ρ`, applying the
    /// dense [`State`] kernel to every column.
    fn apply_left(&mut self, op: &Operation) -> Result<(), StateError> {
        let dim = self.dim();
        let mut column = vec![Cplx::ZERO; dim];
        for c in 0..dim {
            for (r, slot) in column.iter_mut().enumerate() {
                *slot = self.elems[r * dim + c];
            }
            let mut state = State::from_amplitudes(std::mem::take(&mut column));
            state.apply(op)?;
            column = state.into_amplitudes();
            for (r, value) in column.iter().enumerate() {
                self.elems[r * dim + c] = *value;
            }
        }
        Ok(())
    }

    /// Applies a circuit operation by conjugation: `ρ → U ρ U†`.
    ///
    /// # Errors
    ///
    /// The [`State`] kernel's [`StateError`] for malformed operations.
    pub fn apply_op(&mut self, op: &Operation) -> Result<(), StateError> {
        if !op.is_gate() {
            return Ok(());
        }
        // ρ U† = (U ρ†)†, so two left-multiplications bracketed by
        // adjoints give the conjugation without a transposed kernel.
        self.apply_left(op)?;
        self.adjoint_in_place();
        self.apply_left(op)?;
        self.adjoint_in_place();
        Ok(())
    }

    /// Left-multiplies by a single-qubit matrix on qubit `q`.
    fn mul_left_1q(&mut self, q: usize, m: &[[Cplx; 2]; 2]) {
        let dim = self.dim();
        let bit = 1usize << q;
        for c in 0..dim {
            for r0 in 0..dim {
                if r0 & bit != 0 {
                    continue;
                }
                let r1 = r0 | bit;
                let a0 = self.elems[r0 * dim + c];
                let a1 = self.elems[r1 * dim + c];
                self.elems[r0 * dim + c] = m[0][0] * a0 + m[0][1] * a1;
                self.elems[r1 * dim + c] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    /// Right-multiplies by the adjoint of a single-qubit matrix on
    /// qubit `q`: `ρ → ρ M†`.
    fn mul_right_dagger_1q(&mut self, q: usize, m: &[[Cplx; 2]; 2]) {
        let dim = self.dim();
        let bit = 1usize << q;
        for r in 0..dim {
            for c0 in 0..dim {
                if c0 & bit != 0 {
                    continue;
                }
                let c1 = c0 | bit;
                let a0 = self.elems[r * dim + c0];
                let a1 = self.elems[r * dim + c1];
                self.elems[r * dim + c0] = a0 * m[0][0].conj() + a1 * m[0][1].conj();
                self.elems[r * dim + c1] = a0 * m[1][0].conj() + a1 * m[1][1].conj();
            }
        }
    }

    /// Applies a noise channel in Kraus form: `ρ → Σᵢ Kᵢ ρ Kᵢ†`, each
    /// operator a product of single-qubit factors (see
    /// [`KrausOperator`]). Callers are responsible for completeness
    /// (`Σ Kᵢ†Kᵢ = I`) if they want the trace preserved.
    ///
    /// # Panics
    ///
    /// Panics if a factor's qubit is out of range.
    pub fn apply_kraus(&mut self, operators: &[KrausOperator]) {
        let mut sum = vec![Cplx::ZERO; self.elems.len()];
        for kraus in operators {
            let mut term = self.clone();
            for &(q, m) in kraus {
                assert!(q < self.n, "kraus factor qubit {q} out of range");
                term.mul_left_1q(q, &m);
                term.mul_right_dagger_1q(q, &m);
            }
            for (acc, e) in sum.iter_mut().zip(&term.elems) {
                *acc += *e;
            }
        }
        self.elems = sum;
    }

    /// Runs a noiseless circuit by conjugation (channel application is
    /// the caller's job — see `approxdd-noise`'s exact baseline, which
    /// interleaves [`DensityMatrix::apply_op`] and
    /// [`DensityMatrix::apply_kraus`]).
    ///
    /// # Errors
    ///
    /// [`StateError::WidthMismatch`] or the first per-operation error.
    pub fn run(&mut self, circuit: &Circuit) -> Result<(), StateError> {
        if circuit.n_qubits() != self.n {
            return Err(StateError::WidthMismatch {
                state: self.n,
                circuit: circuit.n_qubits(),
            });
        }
        for op in circuit.ops() {
            self.apply_op(op)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_circuit::generators;

    fn x_matrix() -> [[Cplx; 2]; 2] {
        [[Cplx::ZERO, Cplx::ONE], [Cplx::ONE, Cplx::ZERO]]
    }

    #[test]
    fn pure_evolution_matches_statevector() {
        for circuit in [
            generators::ghz(4),
            generators::qft(3),
            generators::supremacy(2, 2, 6, 1),
        ] {
            let mut rho = DensityMatrix::zero(circuit.n_qubits());
            rho.run(&circuit).unwrap();
            let sv = crate::run_circuit(&circuit).unwrap();
            let want = DensityMatrix::pure(&sv);
            assert!((rho.trace() - 1.0).abs() < 1e-10, "{}", circuit.name());
            assert!((rho.purity() - 1.0).abs() < 1e-10, "{}", circuit.name());
            for (a, b) in rho.elements().iter().zip(want.elements()) {
                assert!((*a - *b).mag() < 1e-9, "{}", circuit.name());
            }
            assert!((rho.fidelity_pure(&sv) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn bit_flip_kraus_mixes_the_diagonal() {
        // X-flip with p = 0.25 on |0⟩: diag (0.75, 0.25), purity drops.
        let p: f64 = 0.25;
        let mut rho = DensityMatrix::zero(1);
        let id = [
            [Cplx::real((1.0 - p).sqrt()), Cplx::ZERO],
            [Cplx::ZERO, Cplx::real((1.0 - p).sqrt())],
        ];
        let flip = [
            [Cplx::ZERO, Cplx::real(p.sqrt())],
            [Cplx::real(p.sqrt()), Cplx::ZERO],
        ];
        rho.apply_kraus(&[vec![(0, id)], vec![(0, flip)]]);
        let diag = rho.diagonal();
        assert!((diag[0] - 0.75).abs() < 1e-12);
        assert!((diag[1] - 0.25).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!(rho.purity() < 1.0);
    }

    #[test]
    fn two_factor_kraus_acts_on_both_qubits() {
        // X⊗X on |00⟩⟨00| → |11⟩⟨11|.
        let mut rho = DensityMatrix::zero(2);
        rho.apply_kraus(&[vec![(0, x_matrix()), (1, x_matrix())]]);
        let diag = rho.diagonal();
        assert!((diag[3] - 1.0).abs() < 1e-12, "{diag:?}");
    }

    #[test]
    fn amplitude_damping_fixed_point_is_ground_state() {
        // Full damping sends |1⟩ to |0⟩.
        let gamma: f64 = 1.0;
        let k0 = [
            [Cplx::ONE, Cplx::ZERO],
            [Cplx::ZERO, Cplx::real((1.0 - gamma).sqrt())],
        ];
        let k1 = [
            [Cplx::ZERO, Cplx::real(gamma.sqrt())],
            [Cplx::ZERO, Cplx::ZERO],
        ];
        let mut one = State::zero(1);
        one.apply(&Operation::Gate {
            gate: approxdd_circuit::Gate::X,
            target: 0,
            controls: vec![],
        })
        .unwrap();
        let mut rho = DensityMatrix::pure(&one);
        rho.apply_kraus(&[vec![(0, k0)], vec![(0, k1)]]);
        let diag = rho.diagonal();
        assert!((diag[0] - 1.0).abs() < 1e-12);
        assert!(diag[1].abs() < 1e-12);
    }

    #[test]
    fn expectation_and_diagonal_agree() {
        let mut rho = DensityMatrix::zero(3);
        rho.run(&generators::ghz(3)).unwrap();
        let ones = rho.expectation_diagonal(&|i| f64::from(i.count_ones()));
        assert!((ones - 1.5).abs() < 1e-10, "{ones}");
        let total: f64 = rho.diagonal().iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn width_mismatch_is_reported() {
        let mut rho = DensityMatrix::zero(2);
        assert!(matches!(
            rho.run(&generators::ghz(3)),
            Err(StateError::WidthMismatch { .. })
        ));
    }
}

//! Warm sessions: an LRU cache of frozen simulation snapshots keyed on
//! the *circuit family*.
//!
//! The pool already shares one [`SimSnapshot`] across the jobs of a
//! single batch ([`approxdd_exec::BackendPool::run_jobs`] with
//! `share_snapshot` on). A serving workload submits the *same family*
//! of circuits across many independent requests, so the server keeps
//! the frozen tier alive between batches: the first request of a
//! family pays the freeze, every later request layers straight over
//! the cached `Arc`.
//!
//! # Determinism
//!
//! A snapshot is a pure function of (simulator options, circuit gate
//! structure) — see [`SimSnapshot::build`] — and running over a
//! snapshot is bit-identical to running without one (the PR 7
//! contract). Promoting the snapshot from per-batch to cross-batch
//! therefore cannot move a single result bit: warm and cold runs of
//! the same request fingerprint identically, which
//! `tests/serve_e2e.rs` and the proptest in `tests/session_props.rs`
//! both assert. The cache key hashes the gate structure (qubit count
//! and every operation, *not* the circuit name), so two differently
//! named but structurally identical circuits share a session — safe
//! for the same reason.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use approxdd_circuit::Circuit;
use approxdd_sim::SimSnapshot;

/// The structural family key of a circuit: a hash over its register
/// width and operation list, excluding its name.
///
/// Two circuits with equal families would warm identical snapshots
/// (snapshot construction never reads the name), so they may share a
/// cached session.
#[must_use]
pub fn family_hash(circuit: &Circuit) -> u64 {
    let mut h = DefaultHasher::new();
    circuit.n_qubits().hash(&mut h);
    circuit.ops().len().hash(&mut h);
    for op in circuit.ops() {
        // Operation intentionally exposes no Hash impl (f64 angles);
        // its Debug form is a complete, stable rendering of the
        // structure, which is exactly what the family key needs.
        format!("{op:?}").hash(&mut h);
    }
    h.finish()
}

/// One cached warm session.
#[derive(Debug)]
struct SessionEntry {
    family: u64,
    snapshot: Arc<SimSnapshot>,
}

/// Counters describing a [`SessionCache`]'s behavior — served from
/// `GET /stats` and never part of any job result or fingerprint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Lookups that found a warm session.
    pub hits: u64,
    /// Lookups that missed (the request then pays a cold freeze).
    pub misses: u64,
    /// Snapshots inserted over the cache's lifetime.
    pub inserts: u64,
    /// Sessions evicted by the LRU cap.
    pub evictions: u64,
    /// Sessions currently cached.
    pub entries: usize,
    /// Frozen DD nodes held by the cached sessions combined.
    pub frozen_nodes: usize,
    /// Times any currently cached snapshot was layered under a worker
    /// package (the cross-batch reuse odometer).
    pub attaches: u64,
}

/// An LRU cache mapping [`family_hash`] keys to frozen snapshots.
///
/// Capacity 0 disables caching entirely (every lookup misses, inserts
/// are dropped). The cache is a plain `Vec` ordered coldest-first —
/// at serving scale (a handful of circuit families) linear scans beat
/// any indexed structure, and eviction is `remove(0)`.
#[derive(Debug)]
pub struct SessionCache {
    capacity: usize,
    entries: Vec<SessionEntry>,
    hits: u64,
    misses: u64,
    inserts: u64,
    evictions: u64,
}

impl SessionCache {
    /// Creates a cache holding at most `capacity` warm sessions.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SessionCache {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            inserts: 0,
            evictions: 0,
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a warm session, marking it most-recently-used on a hit.
    pub fn get(&mut self, family: u64) -> Option<Arc<SimSnapshot>> {
        match self.entries.iter().position(|e| e.family == family) {
            Some(idx) => {
                self.hits += 1;
                let entry = self.entries.remove(idx);
                let snapshot = Arc::clone(&entry.snapshot);
                self.entries.push(entry);
                Some(snapshot)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly frozen session, evicting the coldest entry
    /// when full. If the family is already cached (two runners raced
    /// on the same cold family), the existing entry wins and is
    /// returned, so every racer layers over one canonical `Arc`.
    pub fn insert(&mut self, family: u64, snapshot: Arc<SimSnapshot>) -> Arc<SimSnapshot> {
        if self.capacity == 0 {
            return snapshot;
        }
        if let Some(idx) = self.entries.iter().position(|e| e.family == family) {
            let entry = self.entries.remove(idx);
            let canonical = Arc::clone(&entry.snapshot);
            self.entries.push(entry);
            return canonical;
        }
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
            self.evictions += 1;
        }
        self.inserts += 1;
        self.entries.push(SessionEntry {
            family,
            snapshot: Arc::clone(&snapshot),
        });
        snapshot
    }

    /// Point-in-time counters.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            hits: self.hits,
            misses: self.misses,
            inserts: self.inserts,
            evictions: self.evictions,
            entries: self.entries.len(),
            frozen_nodes: self.entries.iter().map(|e| e.snapshot.frozen_nodes()).sum(),
            attaches: self.entries.iter().map(|e| e.snapshot.attaches()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_circuit::generators;
    use approxdd_sim::Simulator;

    fn snap(n: usize) -> Arc<SimSnapshot> {
        let circuit = generators::ghz(n);
        Arc::new(
            Simulator::builder()
                .build_snapshot([&circuit])
                .expect("snapshot builds"),
        )
    }

    #[test]
    fn family_ignores_name_but_not_structure() {
        let a = generators::ghz(5);
        let mut b = generators::ghz(5);
        b.set_name("renamed");
        assert_eq!(family_hash(&a), family_hash(&b));
        assert_ne!(family_hash(&a), family_hash(&generators::ghz(6)));
        assert_ne!(family_hash(&a), family_hash(&generators::qft(5)));
    }

    #[test]
    fn lru_evicts_coldest_and_counts() {
        let mut cache = SessionCache::new(2);
        assert!(cache.get(1).is_none());
        cache.insert(1, snap(2));
        cache.insert(2, snap(3));
        assert!(cache.get(1).is_some()); // 1 is now warmest
        cache.insert(3, snap(4)); // evicts 2, the coldest
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        let s = cache.stats();
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 2);
        assert_eq!(s.inserts, 3);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert!(s.frozen_nodes > 0);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let mut cache = SessionCache::new(0);
        cache.insert(1, snap(2));
        assert!(cache.get(1).is_none());
        assert_eq!(cache.stats().inserts, 0);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn racing_insert_returns_canonical_arc() {
        let mut cache = SessionCache::new(2);
        let first = cache.insert(7, snap(2));
        let second = cache.insert(7, snap(2));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.stats().inserts, 1);
    }
}

//! # approxdd-server — simulation as a service
//!
//! A long-lived job server over the workspace's execution stack:
//! clients `POST` OpenQASM circuits with a policy preset and a shot
//! budget, the server runs them on a shared
//! [`approxdd_exec::BackendPool`], and streams results back as
//! newline-delimited JSON — deterministic trace events, partial
//! histograms as sampling chunks settle, then a final record whose
//! fingerprint is byte-identical to a direct pool run of the same job.
//!
//! Everything is `std`-only: the HTTP layer is a hand-rolled
//! HTTP/1.1 subset over [`std::net::TcpListener`] ([`http`]), the
//! JSON comes from the workspace's shared writer
//! ([`approxdd_sim::json`]); the workspace builds fully offline.
//!
//! ```no_run
//! use approxdd_server::{JobServer, ServerConfig};
//! use approxdd_sim::Simulator;
//!
//! let config = ServerConfig::new()
//!     .template(Simulator::builder().seed(7).workers(4).share_snapshot(true))
//!     .queue_capacity(32)
//!     .sessions(8);
//! let server = JobServer::bind("127.0.0.1:0", config)?;
//! println!("listening on http://{}", server.local_addr());
//! server.run()?; // blocks until POST /shutdown drains it
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! The three layers, each its own module:
//!
//! * [`http`] — request parsing and response/NDJSON writing;
//! * [`scheduler`] — bounded priority admission with per-client
//!   token-bucket quotas (typed 429 backpressure, never blocking);
//! * [`session`] — the warm-session LRU promoting frozen
//!   [`approxdd_sim::SimSnapshot`]s from per-batch to cross-batch,
//!   with the determinism argument for why that is result-invisible;
//! * [`server`] — the accept → admit → schedule → stream → settle
//!   lifecycle tying them together.

#![warn(missing_docs)]

pub mod error;
pub mod http;
pub mod scheduler;
pub mod server;
pub mod session;

pub use error::ServeError;
pub use scheduler::{Quota, Scheduler};
pub use server::{JobServer, ServerConfig};
pub use session::{family_hash, SessionCache, SessionStats};

//! Typed serving errors with stable HTTP mappings.
//!
//! Every rejection the server hands a client flows through
//! [`ServeError`], so the HTTP status, the machine-readable `kind`
//! string in the JSON body, and the human-readable message stay in one
//! place. Admission failures ([`ServeError::QueueFull`],
//! [`ServeError::QuotaExhausted`]) are *backpressure*, not faults: the
//! client is told to retry later (429), and nothing about them is ever
//! folded into a job result.

use std::error::Error;
use std::fmt;

use approxdd_backend::ExecError;

/// An error surfaced to an HTTP client of the job server.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The scheduler's bounded queue is at capacity: the job was
    /// rejected *before* touching the pool (HTTP 429).
    QueueFull {
        /// Jobs already waiting when the submission arrived.
        queued: usize,
        /// The configured admission capacity.
        capacity: usize,
    },
    /// The submitting client spent its token-bucket quota (HTTP 429).
    QuotaExhausted {
        /// The client identifier whose bucket ran dry.
        client: String,
    },
    /// The request was malformed: bad QASM, an unknown parameter
    /// value, or an invalid policy combination (HTTP 400).
    BadRequest(String),
    /// No such job or route (HTTP 404).
    NotFound(String),
    /// The server is draining after `POST /shutdown` and accepts no
    /// new jobs (HTTP 503).
    ShuttingDown,
    /// The simulation itself failed after admission (HTTP 500 —
    /// reported on the job's event stream, since submission already
    /// returned 202).
    Exec(ExecError),
}

impl ServeError {
    /// The HTTP status code this error maps to.
    #[must_use]
    pub fn http_status(&self) -> u16 {
        match self {
            ServeError::QueueFull { .. } | ServeError::QuotaExhausted { .. } => 429,
            ServeError::BadRequest(_) => 400,
            ServeError::NotFound(_) => 404,
            ServeError::ShuttingDown => 503,
            ServeError::Exec(_) => 500,
        }
    }

    /// A stable machine-readable discriminant for JSON error bodies.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::QueueFull { .. } => "queue_full",
            ServeError::QuotaExhausted { .. } => "quota_exhausted",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::NotFound(_) => "not_found",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::Exec(_) => "exec",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { queued, capacity } => {
                write!(f, "queue full: {queued} jobs queued at capacity {capacity}")
            }
            ServeError::QuotaExhausted { client } => {
                write!(f, "quota exhausted for client {client:?}")
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::NotFound(what) => write!(f, "not found: {what}"),
            ServeError::ShuttingDown => f.write_str("server is shutting down"),
            ServeError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExecError> for ServeError {
    fn from(e: ExecError) -> Self {
        // A pool-level queue rejection is backpressure, same as a
        // scheduler-level one: keep the 429 mapping instead of
        // wrapping it as an opaque execution fault.
        if let ExecError::QueueFull {
            queued, capacity, ..
        } = e
        {
            ServeError::QueueFull { queued, capacity }
        } else {
            ServeError::Exec(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_and_kinds_are_stable() {
        let cases: Vec<(ServeError, u16, &str)> = vec![
            (
                ServeError::QueueFull {
                    queued: 4,
                    capacity: 4,
                },
                429,
                "queue_full",
            ),
            (
                ServeError::QuotaExhausted { client: "a".into() },
                429,
                "quota_exhausted",
            ),
            (ServeError::BadRequest("x".into()), 400, "bad_request"),
            (ServeError::NotFound("job 7".into()), 404, "not_found"),
            (ServeError::ShuttingDown, 503, "shutting_down"),
        ];
        for (err, status, kind) in cases {
            assert_eq!(err.http_status(), status, "{err}");
            assert_eq!(err.kind(), kind, "{err}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn pool_queue_full_keeps_backpressure_status() {
        let e: ServeError = ExecError::QueueFull {
            queued: 3,
            submitted: 2,
            capacity: 4,
        }
        .into();
        assert_eq!(e.http_status(), 429);
        assert_eq!(e.kind(), "queue_full");
    }
}

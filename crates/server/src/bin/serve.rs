//! `serve` — run the approxdd job server from the command line.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--seed N] [--engine dd|stabilizer|hybrid]
//!       [--queue N] [--sessions N] [--runners N] [--retry N]
//!       [--quota-burst F --quota-refill F] [--addr-file PATH]
//! ```
//!
//! Binds (port 0 picks an ephemeral port), prints the listening
//! address, optionally writes it to `--addr-file` (how the CI smoke
//! test discovers the port), and serves until `POST /shutdown`.

use std::io::Write;
use std::process::ExitCode;

use approxdd_server::{JobServer, Quota, ServerConfig};
use approxdd_sim::{Engine, RetryPolicy, Simulator};

struct Args {
    addr: String,
    workers: Option<usize>,
    seed: u64,
    engine: Engine,
    queue: usize,
    sessions: usize,
    runners: usize,
    retry: u32,
    quota_burst: Option<f64>,
    quota_refill: Option<f64>,
    addr_file: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        workers: None,
        seed: 0,
        engine: Engine::Dd,
        queue: 64,
        sessions: 8,
        runners: 1,
        retry: 1,
        quota_burst: None,
        quota_refill: None,
        addr_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => args.workers = Some(parse(&value("--workers")?, "--workers")?),
            "--seed" => args.seed = parse(&value("--seed")?, "--seed")?,
            "--engine" => {
                args.engine = match value("--engine")?.as_str() {
                    "dd" => Engine::Dd,
                    "stabilizer" => Engine::Stabilizer,
                    "hybrid" => Engine::Hybrid,
                    other => return Err(format!("unknown engine {other:?}")),
                }
            }
            "--queue" => args.queue = parse(&value("--queue")?, "--queue")?,
            "--sessions" => args.sessions = parse(&value("--sessions")?, "--sessions")?,
            "--runners" => args.runners = parse(&value("--runners")?, "--runners")?,
            "--retry" => args.retry = parse(&value("--retry")?, "--retry")?,
            "--quota-burst" => {
                args.quota_burst = Some(parse(&value("--quota-burst")?, "--quota-burst")?);
            }
            "--quota-refill" => {
                args.quota_refill = Some(parse(&value("--quota-refill")?, "--quota-refill")?);
            }
            "--addr-file" => args.addr_file = Some(value("--addr-file")?),
            "--help" | "-h" => {
                return Err("usage: serve [--addr HOST:PORT] [--workers N] [--seed N] \
                     [--engine dd|stabilizer|hybrid] [--queue N] [--sessions N] \
                     [--runners N] [--retry N] [--quota-burst F --quota-refill F] \
                     [--addr-file PATH]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("bad value for {flag}: {raw:?}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut template = Simulator::builder()
        .seed(args.seed)
        .engine(args.engine)
        .share_snapshot(true)
        .retry(RetryPolicy::new(args.retry));
    if let Some(workers) = args.workers {
        template = template.workers(workers);
    }
    let mut config = ServerConfig::new()
        .template(template)
        .queue_capacity(args.queue)
        .sessions(args.sessions)
        .runners(args.runners);
    if let (Some(burst), Some(refill_per_sec)) = (args.quota_burst, args.quota_refill) {
        config = config.quota(Quota {
            burst,
            refill_per_sec,
        });
    }

    let server = match JobServer::bind(&args.addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    println!("serve listening on http://{addr}");
    let _ = std::io::stdout().flush();
    if let Some(path) = &args.addr_file {
        if let Err(e) = std::fs::write(path, addr.to_string()) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    match server.run() {
        Ok(()) => {
            println!("serve drained, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("server error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Admission control: a bounded priority queue plus per-client
//! token-bucket quotas.
//!
//! Admission happens *before* a job touches the [`approxdd_exec`]
//! pool, and never blocks: a full queue or an empty bucket rejects
//! immediately with a typed [`ServeError`] that maps to HTTP 429.
//! Accepted jobs are ordered by descending priority, ties broken by
//! submission order (FIFO within a priority band), so a burst of
//! best-effort work cannot starve an urgent request — and two
//! same-priority requests execute in arrival order, keeping the
//! serving schedule deterministic for a deterministic client.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;

use crate::error::ServeError;

/// Per-client token-bucket quota: `burst` tokens capacity, refilled
/// continuously at `refill_per_sec`. Each accepted job spends one
/// token; a client with an empty bucket is rejected with HTTP 429
/// until time refills it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quota {
    /// Bucket capacity — the largest burst a client can submit
    /// back-to-back.
    pub burst: f64,
    /// Sustained tokens per second.
    pub refill_per_sec: f64,
}

#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    last_refill: Instant,
}

#[derive(Debug, PartialEq, Eq)]
struct QueuedJob {
    priority: i32,
    seq: u64,
    job: u64,
}

impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first, then earlier sequence.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The bounded priority queue with quota enforcement. Callers hold it
/// behind a mutex; every method is constant-time-ish and non-blocking.
#[derive(Debug)]
pub struct Scheduler {
    capacity: usize,
    heap: BinaryHeap<QueuedJob>,
    next_seq: u64,
    quota: Option<Quota>,
    buckets: HashMap<String, TokenBucket>,
    rejected_queue_full: u64,
    rejected_quota: u64,
    admitted: u64,
}

impl Scheduler {
    /// Creates a scheduler admitting at most `capacity` queued jobs,
    /// with optional per-client quotas.
    #[must_use]
    pub fn new(capacity: usize, quota: Option<Quota>) -> Self {
        Scheduler {
            capacity: capacity.max(1),
            heap: BinaryHeap::new(),
            next_seq: 0,
            quota,
            buckets: HashMap::new(),
            rejected_queue_full: 0,
            rejected_quota: 0,
            admitted: 0,
        }
    }

    /// Tries to admit job `job` for `client` at `priority`. Never
    /// blocks: either the job is queued, or a typed backpressure
    /// error comes back immediately.
    pub fn admit(&mut self, client: &str, priority: i32, job: u64) -> Result<(), ServeError> {
        if self.heap.len() >= self.capacity {
            self.rejected_queue_full += 1;
            return Err(ServeError::QueueFull {
                queued: self.heap.len(),
                capacity: self.capacity,
            });
        }
        if let Some(quota) = self.quota {
            let now = Instant::now();
            let bucket = self
                .buckets
                .entry(client.to_string())
                .or_insert(TokenBucket {
                    tokens: quota.burst,
                    last_refill: now,
                });
            let elapsed = now.duration_since(bucket.last_refill).as_secs_f64();
            bucket.tokens = (bucket.tokens + elapsed * quota.refill_per_sec).min(quota.burst);
            bucket.last_refill = now;
            if bucket.tokens < 1.0 {
                self.rejected_quota += 1;
                return Err(ServeError::QuotaExhausted {
                    client: client.to_string(),
                });
            }
            bucket.tokens -= 1.0;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedJob { priority, seq, job });
        self.admitted += 1;
        Ok(())
    }

    /// Pops the highest-priority (earliest within a band) queued job.
    pub fn pop(&mut self) -> Option<u64> {
        self.heap.pop().map(|q| q.job)
    }

    /// Jobs currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Jobs admitted over the scheduler's lifetime.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Submissions rejected because the queue was full.
    #[must_use]
    pub fn rejected_queue_full(&self) -> u64 {
        self.rejected_queue_full
    }

    /// Submissions rejected because the client's bucket ran dry.
    #[must_use]
    pub fn rejected_quota(&self) -> u64 {
        self.rejected_quota
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_bands_pop_fifo_within_band() {
        let mut s = Scheduler::new(16, None);
        s.admit("a", 0, 1).unwrap();
        s.admit("a", 5, 2).unwrap();
        s.admit("a", 0, 3).unwrap();
        s.admit("a", 5, 4).unwrap();
        assert_eq!(
            [s.pop(), s.pop(), s.pop(), s.pop()],
            [Some(2), Some(4), Some(1), Some(3)]
        );
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn full_queue_rejects_typed() {
        let mut s = Scheduler::new(2, None);
        s.admit("a", 0, 1).unwrap();
        s.admit("a", 0, 2).unwrap();
        match s.admit("a", 0, 3) {
            Err(ServeError::QueueFull { queued, capacity }) => {
                assert_eq!((queued, capacity), (2, 2));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(s.rejected_queue_full(), 1);
        assert_eq!(s.admitted(), 2);
        // Draining makes room again.
        assert!(s.pop().is_some());
        s.admit("a", 0, 3).unwrap();
    }

    #[test]
    fn quota_rejects_per_client_and_refills() {
        let quota = Quota {
            burst: 2.0,
            refill_per_sec: 1000.0,
        };
        let mut s = Scheduler::new(64, Some(quota));
        s.admit("alice", 0, 1).unwrap();
        s.admit("alice", 0, 2).unwrap();
        // Timing-tolerant: keep submitting in a tight loop until the
        // bucket runs dry instead of asserting on the exact third
        // call (the 1000/s refill could sneak a token in between).
        let mut rejected = false;
        for job in 3..40 {
            if matches!(
                s.admit("alice", 0, job),
                Err(ServeError::QuotaExhausted { .. })
            ) {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "sustained burst must exhaust the bucket");
        // An unrelated client is unaffected.
        s.admit("bob", 0, 100).unwrap();
        // Waiting refills alice.
        std::thread::sleep(std::time::Duration::from_millis(5));
        s.admit("alice", 0, 200).unwrap();
        assert!(s.rejected_quota() >= 1);
    }
}

//! A minimal HTTP/1.1 request parser and response writer over
//! [`std::net::TcpStream`].
//!
//! Hand-rolled for the same reason as the JSON writer
//! ([`approxdd_sim::json`]): the workspace builds fully offline, so
//! there is no hyper/axum to reach for. The subset implemented is
//! exactly what the job server needs — one request per connection
//! (`Connection: close` semantics), `Content-Length` bodies, query
//! strings with percent-decoding, and chunk-free streaming responses
//! whose bodies are newline-delimited JSON written as events settle.
//!
//! Limits are deliberate: 64 KiB of head (request line + headers) and
//! 4 MiB of body. A QASM circuit that exceeds the body cap is beyond
//! what the simulator would finish in any reasonable deadline anyway.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use approxdd_sim::json::Json;

/// Maximum bytes of request line + headers.
const MAX_HEAD: usize = 64 * 1024;
/// Maximum bytes of request body (`Content-Length`).
const MAX_BODY: usize = 4 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path without the query string (`/jobs/12`).
    pub path: String,
    /// Percent-decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header name/value pairs (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first query parameter named `key`, if any.
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The first header named `name` (case-insensitive), if any.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one HTTP request off `stream`.
///
/// Returns `Ok(None)` on a clean EOF before any byte arrived (the
/// peer connected and closed — how the server's own shutdown wakeup
/// connection looks) and `Err` for malformed or oversized requests.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Option<Request>> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(bad("request head exceeds 64 KiB"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(bad("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| bad("request head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or_else(|| bad("missing request target"))?;
    let (path, query) = split_target(target);

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| bad("unparseable Content-Length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(bad("request body exceeds 4 MiB"));
    }

    // Body bytes may already sit in `buf` past the head terminator.
    let body_start = head_end + 4;
    let mut body: Vec<u8> = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// Writes a complete response with the given status and body.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a JSON document as a complete response.
pub fn write_json(stream: &mut TcpStream, status: u16, body: &Json) -> io::Result<()> {
    write_response(
        stream,
        status,
        "application/json",
        format!("{body}\n").as_bytes(),
    )
}

/// Writes the head of a streaming NDJSON response. The caller then
/// writes newline-terminated JSON lines directly and closes the
/// connection when the stream ends (`Connection: close` framing — no
/// Content-Length, no chunked encoding).
pub fn start_ndjson(stream: &mut TcpStream) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (percent_decode(target), Vec::new()),
        Some((path, qs)) => {
            let query = qs
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(pair), String::new()),
                })
                .collect();
            (percent_decode(path), query)
        }
    }
}

/// Decodes `%XX` escapes and `+`-as-space (application/x-www-form-
/// urlencoded query conventions). Invalid escapes pass through
/// verbatim rather than failing the whole request.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                if let (Some(hi), Some(lo)) = (
                    bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                    bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
                ) {
                    #[allow(clippy::cast_possible_truncation)]
                    out.push((hi * 16 + lo) as u8);
                    i += 3;
                } else {
                    out.push(b'%');
                    i += 1;
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_target_and_decodes() {
        let (path, query) = split_target("/jobs?shots=1024&client=alice%20a&x=a+b");
        assert_eq!(path, "/jobs");
        assert_eq!(
            query,
            vec![
                ("shots".to_string(), "1024".to_string()),
                ("client".to_string(), "alice a".to_string()),
                ("x".to_string(), "a b".to_string()),
            ]
        );
    }

    #[test]
    fn invalid_percent_escapes_pass_through() {
        assert_eq!(percent_decode("a%zz%4"), "a%zz%4");
        assert_eq!(percent_decode("%41"), "A");
    }

    #[test]
    fn finds_head_terminator() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }
}

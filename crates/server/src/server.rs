//! The job server: accept → admit → schedule → stream → settle.
//!
//! One [`JobServer`] owns a [`BackendPool`] (the existing worker-pool
//! execution layer), a [`SessionCache`] of warm snapshots, and a
//! bounded priority [`Scheduler`]. Connections are cheap threads that
//! parse one request each; runner threads pull admitted jobs off the
//! scheduler and execute them on the shared pool; `GET /jobs/{id}`
//! replays a job's event log and then follows it live, so a client
//! can attach before, during, or after execution and always see the
//! same complete NDJSON stream.
//!
//! # Endpoints
//!
//! | Method & path    | Meaning                                                |
//! |------------------|--------------------------------------------------------|
//! | `POST /jobs`     | Submit QASM (body) + query params; `202 {"job":id}`    |
//! | `GET /jobs/{id}` | NDJSON event stream: trace, partials, final result     |
//! | `GET /stats`     | Pool, scheduler, and session counters                  |
//! | `GET /metrics`   | Prometheus text exposition of the telemetry registry   |
//! | `GET /healthz`   | Liveness probe                                         |
//! | `POST /shutdown` | Graceful drain: finish admitted jobs, then exit        |
//!
//! # Determinism contract
//!
//! The final `result` event of a job carries the
//! [`PoolOutcome::fingerprint`] of the run. For a given server root
//! seed, the same (QASM, policy, shots) request produces a
//! byte-identical fingerprint regardless of worker count, whether the
//! session was warm or cold, and across worker respawns — it is the
//! same number a direct [`BackendPool::run_jobs`] call computes for
//! the same job. Everything scheduling-dependent (queue position,
//! partial-histogram settlement order, worker indexes, retry counts)
//! is reported in events or `/stats` but excluded from fingerprints.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use approxdd_circuit::qasm::from_qasm;
use approxdd_circuit::Circuit;
use approxdd_exec::{BackendPool, PoolJob, PoolOutcome};
use approxdd_sim::json::Json;
use approxdd_sim::{Engine, SimulatorBuilder, Strategy, TraceEvent};
use approxdd_telemetry as telemetry;

use crate::error::ServeError;
use crate::http::{read_request, start_ndjson, write_json, write_response, Request};
use crate::scheduler::{Quota, Scheduler};
use crate::session::{family_hash, SessionCache};

/// Read timeout on client sockets: a stalled request cannot pin a
/// connection thread forever.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Configuration for a [`JobServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    template: SimulatorBuilder,
    queue_capacity: usize,
    session_capacity: usize,
    quota: Option<Quota>,
    runners: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            template: SimulatorBuilder::new(),
            queue_capacity: 64,
            session_capacity: 8,
            quota: None,
            runners: 1,
        }
    }
}

impl ServerConfig {
    /// Starts from defaults: 64-deep queue, 8 warm sessions, one
    /// runner, no quotas, default simulator template.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The simulator template every job runs under. Its seed is the
    /// server's root seed (the determinism domain), its worker knob
    /// sizes the pool, its engine/policy are the per-job defaults.
    #[must_use]
    pub fn template(mut self, template: SimulatorBuilder) -> Self {
        self.template = template;
        self
    }

    /// Scheduler admission capacity (clamped to ≥ 1): submissions
    /// beyond this many queued jobs are rejected with HTTP 429.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Warm sessions to keep (LRU); 0 disables cross-batch snapshot
    /// reuse entirely.
    #[must_use]
    pub fn sessions(mut self, capacity: usize) -> Self {
        self.session_capacity = capacity;
        self
    }

    /// Per-client token-bucket quota (default: none).
    #[must_use]
    pub fn quota(mut self, quota: Quota) -> Self {
        self.quota = Some(quota);
        self
    }

    /// Runner threads executing scheduled jobs (clamped to ≥ 1). Each
    /// runner dispatches one job at a time to the shared pool, so
    /// `runners` bounds how many jobs are *in flight* concurrently;
    /// intra-job parallelism comes from the pool's workers either way.
    #[must_use]
    pub fn runners(mut self, runners: usize) -> Self {
        self.runners = runners.max(1);
        self
    }
}

/// Everything a job needs to execute, parsed at submission time.
#[derive(Debug)]
struct JobSpec {
    circuit: Circuit,
    strategy: Option<Strategy>,
    shots: usize,
    trace: bool,
    partials: bool,
    deadline: Option<Duration>,
}

#[derive(Debug, Default)]
struct EventLog {
    lines: Vec<String>,
    done: bool,
}

/// A job's mailbox: the runner appends NDJSON lines, streaming
/// connections replay-then-follow via the condvar.
#[derive(Debug)]
struct JobState {
    id: u64,
    spec: Mutex<Option<JobSpec>>,
    events: Mutex<EventLog>,
    cond: Condvar,
    /// Submission time — a runner picking the job up records the
    /// admit→start latency into the `server.admit_wait` phase.
    admitted: Instant,
}

impl JobState {
    fn new(id: u64, spec: JobSpec) -> Self {
        JobState {
            id,
            spec: Mutex::new(Some(spec)),
            events: Mutex::new(EventLog::default()),
            cond: Condvar::new(),
            admitted: Instant::now(),
        }
    }

    fn push(&self, event: &Json) {
        let mut log = self.events.lock().expect("event log poisoned");
        log.lines.push(event.to_string());
        self.cond.notify_all();
    }

    fn finish(&self) {
        let mut log = self.events.lock().expect("event log poisoned");
        log.done = true;
        self.cond.notify_all();
    }

    /// Blocks until there are events past `cursor` (or the job is
    /// done), then returns them plus the done flag.
    fn wait_from(&self, cursor: usize) -> (Vec<String>, bool) {
        let mut log = self.events.lock().expect("event log poisoned");
        while log.lines.len() <= cursor && !log.done {
            log = self.cond.wait(log).expect("event log poisoned");
        }
        let from = cursor.min(log.lines.len());
        (log.lines[from..].to_vec(), log.done)
    }
}

struct Inner {
    pool: BackendPool,
    template: SimulatorBuilder,
    session_capacity: usize,
    sessions: Mutex<SessionCache>,
    sched: Mutex<Scheduler>,
    sched_cond: Condvar,
    jobs: Mutex<HashMap<u64, Arc<JobState>>>,
    next_job: AtomicU64,
    draining: AtomicBool,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    started: Instant,
    addr: SocketAddr,
}

/// The long-lived job server. Bind, then [`JobServer::run`] — which
/// blocks until a `POST /shutdown` drains it.
pub struct JobServer {
    inner: Arc<Inner>,
    listener: TcpListener,
    runners: usize,
}

impl JobServer {
    /// Binds the listening socket and builds the pool (workers spawn
    /// immediately, per the pool's semantics). Use port 0 for an
    /// ephemeral port and read it back via [`JobServer::local_addr`].
    ///
    /// # Errors
    ///
    /// Propagates socket binding failures.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let runners = config.runners;
        let pool = BackendPool::new(config.template.clone());
        let inner = Arc::new(Inner {
            pool,
            template: config.template,
            session_capacity: config.session_capacity,
            sessions: Mutex::new(SessionCache::new(config.session_capacity)),
            sched: Mutex::new(Scheduler::new(config.queue_capacity, config.quota)),
            sched_cond: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            started: Instant::now(),
            addr: local,
        });
        Ok(JobServer {
            inner,
            listener,
            runners,
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The underlying pool — exposed so tests can inject fault plans
    /// or read stats before [`JobServer::run`] consumes the server.
    #[must_use]
    pub fn pool(&self) -> &BackendPool {
        &self.inner.pool
    }

    /// Serves until drained: accepts connections, schedules jobs, and
    /// returns after `POST /shutdown` once every admitted job has
    /// settled and every open stream has been flushed.
    ///
    /// # Errors
    ///
    /// Propagates runner-thread spawn failures; per-connection I/O
    /// errors are contained to their connection.
    pub fn run(self) -> io::Result<()> {
        let mut runner_handles = Vec::with_capacity(self.runners);
        for i in 0..self.runners {
            let inner = Arc::clone(&self.inner);
            runner_handles.push(
                thread::Builder::new()
                    .name(format!("serve-runner-{i}"))
                    .spawn(move || runner_loop(&inner))?,
            );
        }

        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.inner.draining.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let inner = Arc::clone(&self.inner);
            if let Ok(handle) = thread::Builder::new()
                .name("serve-conn".into())
                .spawn(move || handle_connection(&inner, stream))
            {
                conns.push(handle);
            }
            // Reap finished connection threads so the handle list
            // stays bounded by *concurrent* connections.
            conns = conns
                .into_iter()
                .filter_map(|h| {
                    if h.is_finished() {
                        let _ = h.join();
                        None
                    } else {
                        Some(h)
                    }
                })
                .collect();
        }

        // Drain: runners finish the queue, streams flush, then done.
        self.inner.sched_cond.notify_all();
        for handle in runner_handles {
            let _ = handle.join();
        }
        for handle in conns {
            let _ = handle.join();
        }
        Ok(())
    }
}

fn runner_loop(inner: &Inner) {
    loop {
        let job_id = {
            let mut sched = inner.sched.lock().expect("scheduler poisoned");
            loop {
                if let Some(id) = sched.pop() {
                    break id;
                }
                if inner.draining.load(Ordering::Acquire) {
                    return;
                }
                sched = inner.sched_cond.wait(sched).expect("scheduler poisoned");
            }
        };
        execute_job(inner, job_id);
    }
}

/// Runs one admitted job on the pool and settles its event stream.
fn execute_job(inner: &Inner, job_id: u64) {
    let Some(state) = inner
        .jobs
        .lock()
        .expect("job table poisoned")
        .get(&job_id)
        .map(Arc::clone)
    else {
        return;
    };
    let Some(spec) = state.spec.lock().expect("job spec poisoned").take() else {
        return;
    };
    if telemetry::enabled() {
        telemetry::phase_histogram("server.admit_wait").observe_duration(state.admitted.elapsed());
    }
    // Records admit→settle wall time on every exit path via drop.
    let _run_span = telemetry::Span::enter("server.run");

    state.push(&Json::obj([
        ("type", Json::str("started")),
        ("job", json_u64(job_id)),
    ]));

    let snapshot = warm_session(inner, &state, &spec.circuit);

    // Partial histograms ride the sharded-sampling path (chunk seeds
    // keyed on chunk index): the final merged histogram is streamed,
    // but the shots do NOT ride the run job below — the two sampling
    // paths draw from different seed domains, and mixing them would
    // break the fingerprint's equality with a direct pool run.
    let mut partial_counts: Option<HashMap<u64, usize>> = None;
    if spec.partials && spec.shots > 0 {
        let result = inner.pool.sample_counts_streamed(
            &spec.circuit,
            spec.strategy,
            spec.shots,
            &mut |chunk| {
                state.push(&Json::obj([
                    ("type", Json::str("partial")),
                    ("job", json_u64(job_id)),
                    ("settled_chunks", Json::int(chunk.settled)),
                    ("total_chunks", Json::int(chunk.chunks)),
                    ("shots_settled", Json::int(chunk.shots_settled)),
                    ("counts", Json::counts(chunk.merged)),
                ]));
            },
        );
        match result {
            Ok(counts) => partial_counts = Some(counts),
            Err(e) => {
                fail_job(inner, &state, job_id, &e.into());
                return;
            }
        }
    }

    let mut job = PoolJob::new(spec.circuit).trace(spec.trace);
    if let Some(strategy) = spec.strategy {
        job = job.strategy(strategy);
    }
    if spec.shots > 0 && !spec.partials {
        job = job.shots(spec.shots);
    }
    if let Some(budget) = spec.deadline {
        job = job.deadline(budget);
    }

    let mut results = inner.pool.run_jobs_with_snapshot(vec![job], snapshot);
    // Settle latency: from the pool handing back outcomes to the event
    // stream being finished (covers trace/result pushes and failures).
    let _settle_span = telemetry::Span::enter("server.settle");
    match results.pop() {
        Some(Ok(outcome)) => {
            if let Some(trace) = &outcome.trace {
                for event in trace {
                    state.push(&trace_json(job_id, event));
                }
            }
            if let Some(counts) = &partial_counts {
                state.push(&Json::obj([
                    ("type", Json::str("histogram")),
                    ("job", json_u64(job_id)),
                    ("source", Json::str("sharded_sampling")),
                    ("shots", Json::int(spec.shots)),
                    ("counts", Json::counts(counts)),
                ]));
            }
            state.push(&result_json(job_id, &outcome));
            inner.jobs_completed.fetch_add(1, Ordering::Relaxed);
            state.finish();
        }
        Some(Err(e)) => fail_job(inner, &state, job_id, &e.into()),
        None => fail_job(
            inner,
            &state,
            job_id,
            &ServeError::BadRequest("pool returned no outcome".into()),
        ),
    }
}

/// Resolves the job's warm session: a cache hit reuses the frozen
/// tier built by an earlier request of the same family; a miss pays
/// the freeze and caches it. Emits a `session` event either way.
fn warm_session(
    inner: &Inner,
    state: &JobState,
    circuit: &Circuit,
) -> Option<Arc<approxdd_sim::SimSnapshot>> {
    if inner.session_capacity == 0 || inner.template.engine_kind() == Engine::Stabilizer {
        return None;
    }
    let family = family_hash(circuit);
    let cached = inner
        .sessions
        .lock()
        .expect("session cache poisoned")
        .get(family);
    let (snapshot, warm) = match cached {
        Some(snapshot) => (snapshot, true),
        None => {
            // Freeze outside the cache lock: a slow freeze must not
            // stall other runners' lookups. A racing runner may build
            // the same family concurrently; insert() keeps one
            // canonical Arc.
            let Ok(built) = inner.template.build_snapshot([circuit]) else {
                return None;
            };
            let canonical = inner
                .sessions
                .lock()
                .expect("session cache poisoned")
                .insert(family, Arc::new(built));
            (canonical, false)
        }
    };
    state.push(&Json::obj([
        ("type", Json::str("session")),
        ("job", json_u64(state.id)),
        ("family", Json::str(format!("{family:016x}"))),
        ("warm", Json::Bool(warm)),
        ("frozen_nodes", Json::int(snapshot.frozen_nodes())),
        ("cached_gates", Json::int(snapshot.cached_gates())),
    ]));
    Some(snapshot)
}

fn fail_job(inner: &Inner, state: &JobState, job_id: u64, err: &ServeError) {
    state.push(&Json::obj([
        ("type", Json::str("error")),
        ("job", json_u64(job_id)),
        ("kind", Json::str(err.kind())),
        ("error", Json::str(err.to_string())),
    ]));
    inner.jobs_failed.fetch_add(1, Ordering::Relaxed);
    state.finish();
}

fn handle_connection(inner: &Arc<Inner>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let request = match read_request(&mut stream) {
        Ok(Some(request)) => request,
        // Clean immediate EOF: the shutdown wakeup (or a port probe).
        Ok(None) => return,
        Err(e) => {
            let _ = respond_error(&mut stream, &ServeError::BadRequest(e.to_string()));
            return;
        }
    };
    let route = match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/jobs") => "/jobs",
        ("GET", path) if path.starts_with("/jobs/") => "/jobs/{id}",
        ("GET", "/stats") => "/stats",
        ("GET", "/healthz") => "/healthz",
        ("GET", "/metrics") => "/metrics",
        ("POST", "/shutdown") => "/shutdown",
        _ => "other",
    };
    telemetry::count_with("approxdd_server_requests_total", &[("route", route)], 1);
    let result = match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/jobs") => submit_job(inner, &mut stream, &request),
        ("GET", path) if path.starts_with("/jobs/") => stream_job(inner, &mut stream, path),
        ("GET", "/stats") => write_json(&mut stream, 200, &stats_json(inner)).map_err(Into::into),
        ("GET", "/healthz") => {
            write_json(&mut stream, 200, &Json::obj([("ok", Json::Bool(true))])).map_err(Into::into)
        }
        ("GET", "/metrics") => serve_metrics(inner, &mut stream),
        ("POST", "/shutdown") => shutdown(inner, &mut stream),
        (_, path) => Err(ServeError::NotFound(format!("{} {path}", request.method))),
    };
    if let Err(err) = result {
        let _ = respond_error(&mut stream, &err);
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        // Connection-level I/O failures after routing: nothing to
        // send anyone; classified as a bad request for bookkeeping.
        ServeError::BadRequest(e.to_string())
    }
}

fn respond_error(stream: &mut TcpStream, err: &ServeError) -> io::Result<()> {
    let body = Json::obj([
        ("error", Json::str(err.to_string())),
        ("kind", Json::str(err.kind())),
    ]);
    write_json(stream, err.http_status(), &body)
}

/// `POST /jobs` — parse, admit, 202.
fn submit_job(
    inner: &Arc<Inner>,
    stream: &mut TcpStream,
    request: &Request,
) -> Result<(), ServeError> {
    if inner.draining.load(Ordering::Acquire) {
        return Err(ServeError::ShuttingDown);
    }
    let spec = parse_spec(request)?;
    let priority = parse_param(request, "priority", 0i32)?;
    let client = request.query_param("client").unwrap_or("anon").to_string();

    let job_id = inner.next_job.fetch_add(1, Ordering::Relaxed);
    let accepted = Json::obj([
        ("type", Json::str("accepted")),
        ("job", json_u64(job_id)),
        ("circuit", Json::str(spec.circuit.name())),
        ("n_qubits", Json::int(spec.circuit.n_qubits())),
        ("shots", Json::int(spec.shots)),
        ("priority", Json::Num(f64::from(priority))),
        ("client", Json::str(client.as_str())),
    ]);
    let state = Arc::new(JobState::new(job_id, spec));
    state.push(&accepted);
    inner
        .jobs
        .lock()
        .expect("job table poisoned")
        .insert(job_id, Arc::clone(&state));

    let admitted = inner
        .sched
        .lock()
        .expect("scheduler poisoned")
        .admit(&client, priority, job_id);
    if let Err(err) = admitted {
        // Settle the state before dropping it so any stream that
        // attached in the insert→admit window terminates cleanly.
        state.finish();
        inner
            .jobs
            .lock()
            .expect("job table poisoned")
            .remove(&job_id);
        telemetry::count("approxdd_server_jobs_rejected_total", 1);
        return Err(err);
    }
    telemetry::count("approxdd_server_jobs_admitted_total", 1);
    inner.sched_cond.notify_one();

    let body = Json::obj([
        ("job", json_u64(job_id)),
        ("status", Json::str("queued")),
        ("stream", Json::str(format!("/jobs/{job_id}"))),
    ]);
    write_json(stream, 202, &body)?;
    Ok(())
}

/// `GET /jobs/{id}` — replay the event log, then follow it live.
fn stream_job(inner: &Arc<Inner>, stream: &mut TcpStream, path: &str) -> Result<(), ServeError> {
    let id: u64 = path["/jobs/".len()..]
        .parse()
        .map_err(|_| ServeError::BadRequest(format!("bad job id in {path}")))?;
    let Some(state) = inner
        .jobs
        .lock()
        .expect("job table poisoned")
        .get(&id)
        .map(Arc::clone)
    else {
        return Err(ServeError::NotFound(format!("job {id}")));
    };

    // Streaming reads can block on the condvar indefinitely; lift the
    // socket timeout so a long-running job doesn't look like a stall.
    let _ = stream.set_read_timeout(None);
    start_ndjson(stream)?;
    let mut cursor = 0;
    loop {
        let (lines, done) = state.wait_from(cursor);
        for line in &lines {
            stream.write_all(line.as_bytes())?;
            stream.write_all(b"\n")?;
        }
        stream.flush()?;
        cursor += lines.len();
        if done && lines.is_empty() {
            return Ok(());
        }
        if done {
            // One more pass to pick up lines raced in with `done`.
            let (rest, _) = state.wait_from(cursor);
            for line in &rest {
                stream.write_all(line.as_bytes())?;
                stream.write_all(b"\n")?;
            }
            stream.flush()?;
            return Ok(());
        }
    }
}

/// `POST /shutdown` — flip the drain flag, wake everyone, and nudge
/// the acceptor loop awake with a throwaway connection.
fn shutdown(inner: &Arc<Inner>, stream: &mut TcpStream) -> Result<(), ServeError> {
    let queued = inner.sched.lock().expect("scheduler poisoned").len();
    inner.draining.store(true, Ordering::Release);
    inner.sched_cond.notify_all();
    let body = Json::obj([
        ("draining", Json::Bool(true)),
        ("queued", Json::int(queued)),
    ]);
    write_json(stream, 200, &body)?;
    // The acceptor is blocked in accept(); a no-op connection makes
    // it loop, observe `draining`, and begin the join sequence.
    let _ = TcpStream::connect(inner.addr);
    Ok(())
}

/// `GET /stats` — scheduler, session, and pool counters. None of
/// these numbers ever feed a fingerprint.
fn stats_json(inner: &Arc<Inner>) -> Json {
    let (queued, admitted, rejected_full, rejected_quota) = {
        let sched = inner.sched.lock().expect("scheduler poisoned");
        (
            sched.len(),
            sched.admitted(),
            sched.rejected_queue_full(),
            sched.rejected_quota(),
        )
    };
    let sessions = inner
        .sessions
        .lock()
        .expect("session cache poisoned")
        .stats();
    let pool = inner.pool.stats();
    Json::obj([
        (
            "uptime_seconds",
            Json::Num(inner.started.elapsed().as_secs_f64()),
        ),
        (
            "draining",
            Json::Bool(inner.draining.load(Ordering::Acquire)),
        ),
        (
            "jobs",
            Json::obj([
                ("admitted", json_u64(admitted)),
                ("queued", Json::int(queued)),
                (
                    "completed",
                    json_u64(inner.jobs_completed.load(Ordering::Relaxed)),
                ),
                (
                    "failed",
                    json_u64(inner.jobs_failed.load(Ordering::Relaxed)),
                ),
                ("rejected_queue_full", json_u64(rejected_full)),
                ("rejected_quota", json_u64(rejected_quota)),
            ]),
        ),
        (
            "sessions",
            Json::obj([
                ("capacity", Json::int(inner.session_capacity)),
                ("entries", Json::int(sessions.entries)),
                ("session_hits", json_u64(sessions.hits)),
                ("session_misses", json_u64(sessions.misses)),
                ("inserts", json_u64(sessions.inserts)),
                ("evictions", json_u64(sessions.evictions)),
                ("frozen_nodes", Json::int(sessions.frozen_nodes)),
                ("attaches", json_u64(sessions.attaches)),
            ]),
        ),
        (
            "pool",
            Json::obj([
                ("workers", Json::int(pool.workers)),
                ("tasks_submitted", Json::int(pool.tasks_submitted)),
                ("queue_depth", Json::int(pool.queue_depth)),
                ("max_queue_depth", Json::int(pool.max_queue_depth)),
                ("respawns", Json::int(pool.respawns)),
                ("retries", Json::int(pool.retries)),
                ("deadline_exceeded", Json::int(pool.deadline_exceeded)),
                ("jobs_completed", Json::int(pool.jobs_completed())),
                ("shots_drawn", Json::int(pool.shots_drawn())),
                ("snapshot_hits", json_u64(pool.snapshot_hits())),
                ("snapshot_gate_hits", json_u64(pool.snapshot_gate_hits())),
                ("frozen_nodes", Json::int(pool.frozen_nodes())),
                ("peak_nodes", Json::int(pool.peak_nodes())),
            ]),
        ),
    ])
}

/// `GET /metrics` — Prometheus text exposition over the process-wide
/// registry. Counter and histogram series accumulate at their
/// instrumentation sites; the scheduler, session-cache, pool and
/// DD-package aggregates below are mirrored into gauges at scrape time
/// instead (their native counters live behind the worker/lock
/// machinery that already tracks them — per-lookup atomics in the
/// compute-table hot path would cost more than the work measured).
fn serve_metrics(inner: &Arc<Inner>, stream: &mut TcpStream) -> Result<(), ServeError> {
    let registry = telemetry::global();
    let (queued, admitted, rejected_full, rejected_quota) = {
        let sched = inner.sched.lock().expect("scheduler poisoned");
        (
            sched.len(),
            sched.admitted(),
            sched.rejected_queue_full(),
            sched.rejected_quota(),
        )
    };
    let sessions = inner
        .sessions
        .lock()
        .expect("session cache poisoned")
        .stats();
    let pool = inner.pool.stats();
    let set = |name: &str, value: u64| registry.gauge(name).set(value);
    set("approxdd_sched_queued", queued as u64);
    set("approxdd_sched_admitted", admitted);
    set("approxdd_sched_rejected_queue_full", rejected_full);
    set("approxdd_sched_rejected_quota", rejected_quota);
    set(
        "approxdd_server_jobs_completed",
        inner.jobs_completed.load(Ordering::Relaxed),
    );
    set(
        "approxdd_server_jobs_failed",
        inner.jobs_failed.load(Ordering::Relaxed),
    );
    set("approxdd_sessions_capacity", inner.session_capacity as u64);
    set("approxdd_sessions_entries", sessions.entries as u64);
    set("approxdd_sessions_hits", sessions.hits);
    set("approxdd_sessions_misses", sessions.misses);
    set("approxdd_sessions_inserts", sessions.inserts);
    set("approxdd_sessions_evictions", sessions.evictions);
    set(
        "approxdd_sessions_frozen_nodes",
        sessions.frozen_nodes as u64,
    );
    set("approxdd_sessions_attaches", sessions.attaches);
    set("approxdd_pool_workers", pool.workers as u64);
    set("approxdd_pool_tasks_submitted", pool.tasks_submitted as u64);
    set("approxdd_pool_queue_depth", pool.queue_depth as u64);
    set("approxdd_pool_max_queue_depth", pool.max_queue_depth as u64);
    set("approxdd_pool_jobs_completed", pool.jobs_completed() as u64);
    set("approxdd_pool_shots_drawn", pool.shots_drawn() as u64);
    set(
        "approxdd_dd_ct_hits",
        pool.per_worker.iter().map(|w| w.ct_hits).sum(),
    );
    set(
        "approxdd_dd_ct_misses",
        pool.per_worker.iter().map(|w| w.ct_misses).sum(),
    );
    set("approxdd_dd_peak_nodes", pool.peak_nodes() as u64);
    set("approxdd_dd_frozen_nodes", pool.frozen_nodes() as u64);
    set("approxdd_dd_snapshot_hits", pool.snapshot_hits());
    set("approxdd_dd_snapshot_gate_hits", pool.snapshot_gate_hits());
    let body = registry.render_prometheus();
    write_response(stream, 200, "text/plain; version=0.0.4", body.as_bytes())?;
    Ok(())
}

/// Parses the request into a [`JobSpec`]: QASM body plus `shots`,
/// `policy` (+ its numeric knobs), `trace`, `partials`, `deadline_ms`.
fn parse_spec(request: &Request) -> Result<JobSpec, ServeError> {
    let qasm = std::str::from_utf8(&request.body)
        .map_err(|_| ServeError::BadRequest("body is not UTF-8".into()))?;
    if qasm.trim().is_empty() {
        return Err(ServeError::BadRequest(
            "empty body: POST the circuit as OpenQASM 2.0".into(),
        ));
    }
    let circuit =
        from_qasm(qasm).map_err(|e| ServeError::BadRequest(format!("QASM parse error: {e}")))?;
    let strategy = parse_strategy(request)?;
    let shots = parse_param(request, "shots", 0usize)?;
    let trace = parse_param(request, "trace", 1u8)? != 0;
    let partials = parse_param(request, "partials", 0u8)? != 0;
    let deadline = request
        .query_param("deadline_ms")
        .map(|v| {
            v.parse::<u64>()
                .map(Duration::from_millis)
                .map_err(|_| ServeError::BadRequest(format!("bad deadline_ms: {v:?}")))
        })
        .transpose()?;
    Ok(JobSpec {
        circuit,
        strategy,
        shots,
        trace,
        partials,
        deadline,
    })
}

/// `policy=exact|memory|memory_table1|fidelity` with `nodes`, `round`
/// and `final` knobs; absent means the server template's default.
fn parse_strategy(request: &Request) -> Result<Option<Strategy>, ServeError> {
    let Some(policy) = request.query_param("policy") else {
        return Ok(None);
    };
    let strategy = match policy {
        "exact" => Strategy::Exact,
        "memory" => Strategy::memory_driven(
            parse_param(request, "nodes", 4096usize)?,
            parse_param(request, "round", 0.99f64)?,
        ),
        "memory_table1" => Strategy::memory_driven_table1(
            parse_param(request, "nodes", 4096usize)?,
            parse_param(request, "round", 0.99f64)?,
        ),
        "fidelity" => Strategy::fidelity_driven(
            parse_param(request, "final", 0.9f64)?,
            parse_param(request, "round", 0.99f64)?,
        ),
        other => {
            return Err(ServeError::BadRequest(format!(
                "unknown policy {other:?} (expected exact|memory|memory_table1|fidelity)"
            )))
        }
    };
    strategy
        .validate()
        .map_err(|e| ServeError::BadRequest(format!("invalid policy: {e}")))?;
    Ok(Some(strategy))
}

fn parse_param<T: std::str::FromStr>(
    request: &Request,
    key: &str,
    default: T,
) -> Result<T, ServeError> {
    match request.query_param(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| ServeError::BadRequest(format!("bad {key}: {raw:?}"))),
    }
}

#[allow(clippy::cast_precision_loss)]
fn json_u64(n: u64) -> Json {
    Json::Num(n as f64)
}

/// Renders a [`TraceEvent`] as one NDJSON event object.
fn trace_json(job_id: u64, event: &TraceEvent) -> Json {
    let mut fields = vec![
        ("type".to_string(), Json::str("trace")),
        ("job".to_string(), json_u64(job_id)),
    ];
    let (kind, rest): (&str, Vec<(&str, Json)>) = match event {
        TraceEvent::RunStarted {
            circuit,
            n_qubits,
            total_ops,
            policy,
        } => (
            "run_started",
            vec![
                ("circuit", Json::str(circuit.as_str())),
                ("n_qubits", Json::int(*n_qubits)),
                ("total_ops", Json::int(*total_ops)),
                ("policy", Json::str(policy.as_str())),
            ],
        ),
        TraceEvent::GateApplied {
            op_index,
            gates_applied,
            live_nodes,
        } => (
            "gate_applied",
            vec![
                ("op_index", Json::int(*op_index)),
                ("gates_applied", Json::int(*gates_applied)),
                ("live_nodes", Json::int(*live_nodes)),
            ],
        ),
        TraceEvent::RoundStarted {
            op_index,
            round,
            target_fidelity,
            live_nodes,
        } => (
            "round_started",
            vec![
                ("op_index", Json::int(*op_index)),
                ("round", Json::int(*round)),
                ("target_fidelity", Json::Num(*target_fidelity)),
                ("live_nodes", Json::int(*live_nodes)),
            ],
        ),
        TraceEvent::Truncated {
            op_index,
            round,
            nodes_before,
            nodes_after,
            removed_nodes,
            removed_mass,
        } => (
            "truncated",
            vec![
                ("op_index", Json::int(*op_index)),
                ("round", Json::int(*round)),
                ("nodes_before", Json::int(*nodes_before)),
                ("nodes_after", Json::int(*nodes_after)),
                ("removed_nodes", Json::int(*removed_nodes)),
                ("removed_mass", Json::Num(*removed_mass)),
            ],
        ),
        TraceEvent::RunFinished {
            gates_applied,
            rounds,
            fidelity,
            fidelity_lower_bound,
        } => (
            "run_finished",
            vec![
                ("gates_applied", Json::int(*gates_applied)),
                ("rounds", Json::int(*rounds)),
                ("fidelity", Json::Num(*fidelity)),
                ("fidelity_lower_bound", Json::Num(*fidelity_lower_bound)),
            ],
        ),
        // TraceEvent is non_exhaustive upstream-compatible: render
        // unknown variants opaquely rather than dropping them.
        #[allow(unreachable_patterns)]
        other => ("other", vec![("debug", Json::str(format!("{other:?}")))]),
    };
    fields.push(("event".to_string(), Json::str(kind)));
    for (k, v) in rest {
        fields.push((k.to_string(), v));
    }
    Json::Obj(fields)
}

/// The final `result` event: every deterministic result field plus
/// the fingerprint, with the scheduling diagnostics (`worker`,
/// `attempts`, `degraded`) reported alongside but — like everywhere
/// else — excluded from the fingerprint itself.
fn result_json(job_id: u64, outcome: &PoolOutcome) -> Json {
    Json::obj([
        ("type", Json::str("result")),
        ("job", json_u64(job_id)),
        (
            "fingerprint",
            Json::str(format!("{:016x}", outcome.fingerprint())),
        ),
        ("circuit", Json::str(outcome.name.as_str())),
        ("n_qubits", Json::int(outcome.n_qubits)),
        ("gates_applied", Json::int(outcome.stats.gates_applied)),
        ("approx_rounds", Json::int(outcome.stats.approx_rounds)),
        ("fidelity", Json::Num(outcome.stats.fidelity)),
        (
            "fidelity_lower_bound",
            Json::Num(outcome.stats.fidelity_lower_bound),
        ),
        ("peak_size", Json::int(outcome.stats.peak_size)),
        ("final_size", Json::int(outcome.final_size)),
        (
            "counts",
            outcome.counts.as_ref().map_or(Json::Null, Json::counts),
        ),
        (
            "expectation",
            outcome.expectation.map_or(Json::Null, Json::Num),
        ),
        ("worker", Json::int(outcome.worker)),
        ("attempts", Json::Num(f64::from(outcome.attempts))),
        ("degraded", Json::Bool(outcome.degraded)),
    ])
}

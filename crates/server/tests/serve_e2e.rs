//! End-to-end serving tests over real TCP: the acceptance contract is
//! that the final streamed `result` event's fingerprint is
//! byte-identical to a direct [`BackendPool::run_jobs`] call for the
//! same (QASM, policy, seed, shots) — cold, warm, and after a worker
//! respawn — at every worker count, and that backpressure comes back
//! as typed HTTP 429 without ever blocking the submitter.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use approxdd_circuit::generators;
use approxdd_circuit::qasm::{from_qasm, to_qasm};
use approxdd_exec::{BackendPool, FaultPlan, PoolJob};
use approxdd_server::{JobServer, Quota, ServerConfig};
use approxdd_sim::{RetryPolicy, Simulator, SimulatorBuilder};

/// Sends one raw HTTP request and returns (status, whole body).
fn http(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Pulls the string value of `"key":"..."` out of a JSON-ish line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Pulls the numeric value following `"key":`.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    digits.parse().ok()
}

/// Submits QASM and returns the job's full NDJSON stream.
fn submit_and_stream(addr: SocketAddr, target: &str, qasm: &str) -> String {
    let (status, body) = http(addr, "POST", target, qasm);
    assert_eq!(status, 202, "submission failed: {body}");
    let job = num_field(&body, "job").expect("job id in 202 body") as u64;
    let (status, stream) = http(addr, "GET", &format!("/jobs/{job}"), "");
    assert_eq!(status, 200);
    stream
}

/// The fingerprint carried by the stream's final `result` event.
fn stream_fingerprint(stream: &str) -> String {
    let result_line = stream
        .lines()
        .find(|l| l.contains("\"type\":\"result\""))
        .unwrap_or_else(|| panic!("no result event in stream:\n{stream}"));
    str_field(result_line, "fingerprint").expect("fingerprint field")
}

fn template(workers: usize) -> SimulatorBuilder {
    Simulator::builder()
        .seed(7)
        .workers(workers)
        .share_snapshot(true)
}

fn start(config: ServerConfig) -> (SocketAddr, thread::JoinHandle<()>) {
    let server = JobServer::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: thread::JoinHandle<()>) {
    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("server thread");
}

/// The acceptance criterion, verbatim: same (QASM, policy, seed,
/// shots) through the server — cold session, then warm — equals a
/// direct pool run's fingerprint, at 1, 2 and 8 workers.
#[test]
fn streamed_fingerprint_matches_direct_pool_run_cold_and_warm() {
    let qasm = to_qasm(&generators::ghz(6)).expect("export qasm");
    let circuit = from_qasm(&qasm).expect("reimport qasm");
    for workers in [1usize, 2, 8] {
        let direct_pool = BackendPool::new(template(workers));
        let direct = direct_pool
            .run_jobs(vec![PoolJob::new(circuit.clone()).shots(256)])
            .pop()
            .expect("one result")
            .expect("direct run succeeds");
        let want = format!("{:016x}", direct.fingerprint());

        let (addr, handle) = start(ServerConfig::new().template(template(workers)));
        let cold = submit_and_stream(addr, "/jobs?shots=256", &qasm);
        assert!(
            cold.contains("\"warm\":false"),
            "first request of a family must be cold:\n{cold}"
        );
        let warm = submit_and_stream(addr, "/jobs?shots=256", &qasm);
        assert!(
            warm.contains("\"warm\":true"),
            "second request of the same family must hit the session:\n{warm}"
        );
        assert_eq!(stream_fingerprint(&cold), want, "cold at {workers} workers");
        assert_eq!(stream_fingerprint(&warm), want, "warm at {workers} workers");

        let (status, stats) = http(addr, "GET", "/stats", "");
        assert_eq!(status, 200);
        let hits = num_field(&stats, "session_hits").expect("session_hits in stats");
        assert!(hits >= 1.0, "stats must prove the warm hit: {stats}");
        shutdown(addr, handle);
    }
}

/// A worker death + respawn between attempts must not move the
/// fingerprint: retry seeds are keyed on the job, never the attempt.
#[test]
fn fingerprint_survives_worker_respawn() {
    let qasm = to_qasm(&generators::ghz(5)).expect("export qasm");
    let circuit = from_qasm(&qasm).expect("reimport qasm");
    let direct = BackendPool::new(template(2))
        .run_jobs(vec![PoolJob::new(circuit).shots(128)])
        .pop()
        .expect("one result")
        .expect("direct run succeeds");
    let want = format!("{:016x}", direct.fingerprint());

    let config = ServerConfig::new().template(template(2).retry(RetryPolicy::new(2)));
    let server = JobServer::bind("127.0.0.1:0", config).expect("bind");
    // Every server job is submitted as its own single-job batch, so
    // job index 0 panics on its first attempt — a worker dies, the
    // supervisor respawns it, the retry succeeds.
    server
        .pool()
        .inject_faults(Some(FaultPlan::new().panic_on([0])));
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run().expect("server run"));

    let stream = submit_and_stream(addr, "/jobs?shots=128", &qasm);
    assert_eq!(stream_fingerprint(&stream), want);
    assert!(
        stream.contains("\"attempts\":2"),
        "the retry must be visible as a diagnostic:\n{stream}"
    );
    let (_, stats) = http(addr, "GET", "/stats", "");
    let respawns = num_field(&stats, "respawns").expect("respawns in stats");
    assert!(respawns >= 1.0, "a worker must have respawned: {stats}");
    shutdown(addr, handle);
}

/// Backpressure: a full scheduler queue answers 429/queue_full
/// immediately; a drained quota bucket answers 429/quota_exhausted;
/// neither ever blocks the submitting connection.
#[test]
fn backpressure_is_typed_and_immediate() {
    let qasm = to_qasm(&generators::ghz(4)).expect("export qasm");
    let config = ServerConfig::new()
        .template(template(1))
        .queue_capacity(1)
        .quota(Quota {
            burst: 3.0,
            refill_per_sec: 0.001,
        });
    let server = JobServer::bind("127.0.0.1:0", config).expect("bind");
    // Slow the first pool task down so submissions pile up behind it.
    server.pool().inject_faults(Some(
        FaultPlan::new().delay_on(0..1, Duration::from_millis(300)),
    ));
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run().expect("server run"));

    let (status, _) = http(addr, "POST", "/jobs?shots=32&client=alice", &qasm);
    assert_eq!(status, 202);
    // Give the runner a beat to pop job 1 into execution (where the
    // injected delay holds it), freeing the queue slot for job 2.
    thread::sleep(Duration::from_millis(100));
    let (status, _) = http(addr, "POST", "/jobs?shots=32&client=alice", &qasm);
    assert_eq!(status, 202);

    let started = std::time::Instant::now();
    let (status, body) = http(addr, "POST", "/jobs?shots=32&client=alice", &qasm);
    assert_eq!(status, 429, "third submission must be rejected: {body}");
    assert!(body.contains("queue_full"), "typed kind expected: {body}");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "backpressure must not block"
    );

    // Wait out the queue, then exhaust the quota (burst 3, two spent).
    thread::sleep(Duration::from_millis(700));
    let (status, _) = http(addr, "POST", "/jobs?shots=32&client=alice", &qasm);
    assert_eq!(status, 202);
    let (status, body) = http(addr, "POST", "/jobs?shots=32&client=alice", &qasm);
    assert_eq!(status, 429, "quota must be spent: {body}");
    assert!(body.contains("quota_exhausted"), "typed kind: {body}");
    // A different client has its own bucket.
    let (status, _) = http(addr, "POST", "/jobs?shots=32&client=bob", &qasm);
    assert_eq!(status, 202);
    shutdown(addr, handle);
}

/// Malformed inputs map to typed 4xx responses, not hangs or 500s.
#[test]
fn bad_requests_are_typed() {
    let (addr, handle) = start(ServerConfig::new().template(template(1)));
    let (status, body) = http(addr, "POST", "/jobs", "not qasm at all");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("bad_request"));
    let (status, body) = http(addr, "GET", "/jobs/9999", "");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("not_found"));
    let (status, _) = http(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let qasm = to_qasm(&generators::ghz(3)).expect("export qasm");
    let (status, body) = http(addr, "POST", "/jobs?policy=bogus", &qasm);
    assert_eq!(status, 400, "{body}");
    let (status, body) = http(addr, "POST", "/jobs?shots=many", &qasm);
    assert_eq!(status, 400, "{body}");
    shutdown(addr, handle);
}

/// Partial histograms stream as sampling chunks settle, and the final
/// sharded histogram equals a direct `sample_counts` of the same
/// request (the run fingerprint rides a separate, unaffected path).
#[test]
fn partials_stream_and_settle_deterministically() {
    let qasm = to_qasm(&generators::ghz(5)).expect("export qasm");
    let circuit = from_qasm(&qasm).expect("reimport qasm");
    let shots = 3000; // > SHOT_CHUNK so at least two chunks settle
    let direct = BackendPool::new(template(2))
        .sample_counts(&circuit, shots)
        .expect("direct sampling");
    let direct_json = approxdd_sim::json::Json::counts(&direct).to_string();

    let (addr, handle) = start(ServerConfig::new().template(template(2)));
    let stream = submit_and_stream(addr, &format!("/jobs?shots={shots}&partials=1"), &qasm);
    let partials: Vec<&str> = stream
        .lines()
        .filter(|l| l.contains("\"type\":\"partial\""))
        .collect();
    assert!(partials.len() >= 2, "expected ≥ 2 partials:\n{stream}");
    let histogram = stream
        .lines()
        .find(|l| l.contains("\"type\":\"histogram\""))
        .expect("final sharded histogram event");
    assert!(
        histogram.contains(&direct_json),
        "sharded histogram must match direct sampling\nwant {direct_json}\ngot {histogram}"
    );
    // The run result still settles after the histogram.
    assert!(stream.contains("\"type\":\"result\""));
    shutdown(addr, handle);
}

/// Graceful drain: jobs admitted before `POST /shutdown` still
/// execute and stream to completion; `run()` returns cleanly.
#[test]
fn shutdown_drains_admitted_jobs() {
    let qasm = to_qasm(&generators::ghz(4)).expect("export qasm");
    let config = ServerConfig::new().template(template(1));
    let server = JobServer::bind("127.0.0.1:0", config).expect("bind");
    server.pool().inject_faults(Some(
        FaultPlan::new().delay_on(0..1, Duration::from_millis(200)),
    ));
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run().expect("server run"));

    let (status, body) = http(addr, "POST", "/jobs?shots=64", &qasm);
    assert_eq!(status, 202);
    let job = num_field(&body, "job").expect("job id") as u64;
    // Attach the stream *before* shutting down: the drain must keep
    // this connection open until the delayed job settles.
    let reader = thread::spawn(move || http(addr, "GET", &format!("/jobs/{job}"), ""));
    thread::sleep(Duration::from_millis(50));
    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("server drains");
    let (status, stream) = reader.join().expect("stream thread");
    assert_eq!(status, 200);
    assert!(
        stream.contains("\"type\":\"result\""),
        "the admitted job must settle through the drain:\n{stream}"
    );
    // New submissions during/after the drain are refused, not queued.
    if let Ok(mut late) = TcpStream::connect(addr) {
        let _ = write!(
            late,
            "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n"
        );
        let mut response = String::new();
        let _ = late.read_to_string(&mut response);
        assert!(
            response.is_empty() || response.contains("503") || response.contains("400"),
            "late submission must not be admitted: {response}"
        );
    }
}
